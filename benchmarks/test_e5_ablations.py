"""E5 — ablations of the design choices §III calls out.

1. Readback ordering (challenge 7): reading a kernel result directly
   from the framebuffer vs paying the extra pass-through copy shader.
   The paper: "with careful kernel ordering the texture to be read can
   be already mapped into the framebuffer, so that there is no need
   for the additional shader."

2. Packing overhead (§V): the paper's kernels win "even with the
   extra burden of packing and unpacking inputs and outputs".  The
   ablation quantifies that burden against a hypothetical native-
   format kernel.
"""

import pytest

from repro.experiments.ablation import (
    run_packing_ablation,
    run_readback_ablation,
)


@pytest.fixture(scope="module")
def readback():
    result = run_readback_ablation()
    print()
    print(f"{result.name}:")
    print(f"  optimised   : {result.optimized.total_seconds * 1e3:8.3f} ms")
    print(f"  unoptimised : {result.unoptimized.total_seconds * 1e3:8.3f} ms")
    print(f"  overhead    : x{result.overhead_factor:.2f}")
    return result


@pytest.fixture(scope="module")
def packing():
    result = run_packing_ablation()
    print()
    print(f"{result.name}:")
    print(f"  native-format ALU/element : "
          f"{result.optimized_alu_per_element:8.1f}")
    print(f"  packed (§IV) ALU/element  : "
          f"{result.unoptimized_alu_per_element:8.1f}")
    print(f"  arithmetic overhead       : x{result.alu_overhead_factor:.2f}")
    print(f"  end-to-end overhead       : x{result.overhead_factor:.2f}")
    return result


def test_benchmark_readback(benchmark):
    benchmark.pedantic(run_readback_ablation, rounds=1, iterations=1)


def test_benchmark_packing(benchmark):
    benchmark.pedantic(run_packing_ablation, rounds=1, iterations=1)


class TestReadbackShape:
    def test_copy_pass_costs_more(self, readback):
        assert readback.overhead_factor > 1.1

    def test_copy_pass_not_catastrophic(self, readback):
        # One extra fullscreen pass: bounded, not orders of magnitude.
        assert readback.overhead_factor < 4.0

    def test_same_results_either_way(self, readback):
        # Implicit: run_readback_ablation asserts result equality.
        assert readback.optimized.total_seconds > 0


class TestPackingShape:
    def test_packing_costs_arithmetic(self, packing):
        """The §IV int32 transformations roughly double the
        per-element shader arithmetic relative to a byte-format kernel
        (addressing and fetch costs are common to both) — the 'burden'
        the paper accepts to get generality."""
        assert packing.alu_overhead_factor > 1.5

    def test_burden_does_not_erase_the_win(self, packing):
        # End-to-end the packed kernel stays within a small factor:
        # transfers and fixed costs dominate at this size.
        assert packing.overhead_factor < 2.0
