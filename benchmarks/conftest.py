"""Benchmark harness configuration.

Each benchmark module reproduces one experiment from the paper's
evaluation (see DESIGN.md's per-experiment index).  Run with::

    pytest benchmarks/ --benchmark-only

The benches print the same rows the paper reports and assert the
*shape* of the results (who wins, by roughly what factor) rather than
absolute numbers, since the substrate is a simulator rather than the
authors' Raspberry Pi.
"""
