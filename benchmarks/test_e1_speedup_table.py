"""E1 — regenerate the paper's §V results table.

Paper numbers: sum 7.2x (int) / 6.5x (fp); sgemm 6.5x (int) / 6.3x (fp)
at the paper's sizes (1024-element configuration: 2^20-element arrays
for sum, 1024x1024 matrices for sgemm), wall times including transfers
and kernel compilation.

Shape assertions: the GPU wins all four benchmarks by 4-10x; integer
beats float on the same benchmark; and each speedup is within ~20% of
the paper's figure.
"""

import pytest

from repro.experiments.speedup import (
    PAPER_SPEEDUPS,
    format_speedup_table,
    run_speedup_table,
)


@pytest.fixture(scope="module")
def table():
    rows = run_speedup_table()
    print()
    print(format_speedup_table(rows))
    return {(row.benchmark, row.fmt): row for row in rows}


def test_benchmark_regenerates_table(benchmark, table):
    """Timed entry point: re-running the projection pipeline."""
    benchmark.pedantic(run_speedup_table, rounds=1, iterations=1)


class TestShape:
    def test_gpu_wins_everywhere(self, table):
        for row in table.values():
            assert row.speedup > 4.0, f"{row.benchmark}/{row.fmt} GPU should win"

    def test_speedups_in_paper_band(self, table):
        for key, row in table.items():
            paper = PAPER_SPEEDUPS[key]
            assert row.speedup == pytest.approx(paper, rel=0.20), (
                f"{key}: measured {row.speedup:.2f} vs paper {paper}"
            )

    def test_int_beats_float_per_benchmark(self, table):
        assert table[("sum", "int32")].speedup > table[("sum", "float32")].speedup
        assert (
            table[("sgemm", "int32")].speedup
            >= table[("sgemm", "float32")].speedup * 0.98
        )

    def test_sum_has_highest_speedup(self, table):
        best = max(table.values(), key=lambda row: row.speedup)
        assert (best.benchmark, best.fmt) == ("sum", "int32")

    def test_wall_times_include_compile_and_transfers(self, table):
        for row in table.values():
            assert row.gpu.compile_seconds > 0
            assert row.gpu.upload_seconds > 0
            assert row.gpu.readback_seconds > 0

    def test_results_validated_against_cpu(self, table):
        assert all(row.validated for row in table.values())
