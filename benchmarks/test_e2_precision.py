"""E2 — regenerate the paper's §V precision finding.

Paper: fp32 GPU results agree with the CPU "within the 15 most
significant bits of the mantissa" — better than fp16 (10-bit
mantissa), between fp24 (16-bit) and fp32 (23-bit) — while "the same
transformations on the CPU are precise" (bit-exact).

The bench prints the matched-bit table for sum and sgemm under the
platform model (``videocore``) and the CPU-reference model
(``exact``), plus the mantissa-agreement histogram.
"""

import numpy as np
import pytest

from repro.experiments.prec import (
    FP16_MANTISSA_BITS,
    FP32_MANTISSA_BITS,
    PAPER_BAND_BITS,
    format_precision_rows,
    run_precision_experiment,
)


@pytest.fixture(scope="module")
def rows():
    result = run_precision_experiment()
    print()
    print(format_precision_rows(result))
    return {(row.benchmark, row.model): row for row in result}


def test_benchmark_regenerates_experiment(benchmark):
    benchmark.pedantic(run_precision_experiment, rounds=1, iterations=1)


class TestShape:
    def test_platform_results_in_paper_band(self, rows):
        """>= 15 matched mantissa bits under the videocore model."""
        for bench in ("sum", "sgemm"):
            row = rows[(bench, "videocore")]
            assert row.in_paper_band, f"{bench}: {row.report}"

    def test_platform_better_than_fp16(self, rows):
        for bench in ("sum", "sgemm"):
            report = rows[(bench, "videocore")].report
            assert report.median_bits > FP16_MANTISSA_BITS

    def test_platform_below_full_fp32(self, rows):
        """The loss is real: the platform is NOT bit-exact."""
        for bench in ("sum", "sgemm"):
            report = rows[(bench, "videocore")].report
            assert report.median_bits < FP32_MANTISSA_BITS

    def test_cpu_transformations_are_precise(self, rows):
        """Under the exact model (the CPU path) agreement is full."""
        for bench in ("sum", "sgemm"):
            report = rows[(bench, "exact")].report
            assert report.median_bits == FP32_MANTISSA_BITS

    def test_band_is_15_bits(self):
        assert PAPER_BAND_BITS == 15
