"""E3 — regenerate Figure 2 (CPU vs GPU float byte layout).

Prints the byte-layout table for representative floats and asserts the
structural properties the figure illustrates: the full biased exponent
occupies GPU byte 3, the sign bit moves to byte 2's MSB, and the
mantissa bytes are untouched.
"""

import numpy as np
import pytest

from repro.experiments.fig2 import (
    DEFAULT_VALUES,
    format_fig2_rows,
    run_fig2_layout,
)


@pytest.fixture(scope="module")
def rows():
    result = run_fig2_layout()
    print()
    print(format_fig2_rows(result))
    return result


def test_benchmark_regenerates_figure(benchmark):
    benchmark.pedantic(run_fig2_layout, rounds=3, iterations=1)


class TestShape:
    def test_gpu_byte3_is_biased_exponent(self, rows):
        for row in rows:
            assert row.gpu_bytes[3] == row.biased_exponent

    def test_gpu_byte2_msb_is_sign(self, rows):
        for row in rows:
            assert (row.gpu_bytes[2] >> 7) == row.sign

    def test_mantissa_low_bytes_unchanged(self, rows):
        for row in rows:
            assert row.gpu_bytes[0] == row.cpu_bytes[0]
            assert row.gpu_bytes[1] == row.cpu_bytes[1]

    def test_mantissa_high_bits_preserved(self, rows):
        for row in rows:
            assert (row.gpu_bytes[2] & 0x7F) == (row.mantissa >> 16)

    def test_covers_default_values(self, rows):
        assert len(rows) == len(DEFAULT_VALUES)

    def test_one_point_zero_reference_row(self, rows):
        one = next(r for r in rows if r.value == 1.0)
        # 1.0f: IEEE 0x3F800000 -> GPU bytes (b3..b0) = 7f 00 00 00.
        assert one.gpu_bytes == (0, 0, 0, 0x7F)
