"""E8 (claim check) — "all benchmarks of Rodinia suite fit in these
two cases" (§III-8).

The paper dismisses the single-output restriction by noting every
Rodinia kernel either has one output or splits cleanly.  This bench
runs four representative Rodinia workloads (nn, kmeans, hotspot,
pathfinder) through the framework, validates each against its CPU
reference, and mechanically verifies that every compiled fragment
shader writes exactly one output.
"""

import numpy as np
import pytest

from repro import GpgpuDevice
from repro.workloads import (
    hotspot_cpu,
    hotspot_gpu,
    kmeans_assign_cpu,
    kmeans_assign_gpu,
    nearest_neighbor_cpu,
    nearest_neighbor_gpu,
    pathfinder_cpu,
    pathfinder_gpu,
)


def run_all(device: GpgpuDevice) -> dict:
    rng = np.random.default_rng(2016)
    results = {}

    lat = rng.uniform(-90, 90, 1024).astype(np.float32)
    lon = rng.uniform(-180, 180, 1024).astype(np.float32)
    gpu_idx, __ = nearest_neighbor_gpu(device, lat, lon, (30.0, -90.0))
    cpu_idx, __ = nearest_neighbor_cpu(lat, lon, (30.0, -90.0))
    results["nn"] = gpu_idx == cpu_idx

    points = rng.standard_normal((256, 2)).astype(np.float32)
    centroids = rng.standard_normal((5, 2)).astype(np.float32) * 2
    agreement = (
        kmeans_assign_gpu(device, points, centroids)
        == kmeans_assign_cpu(points, centroids)
    ).mean()
    results["kmeans"] = agreement > 0.99

    temp = rng.uniform(20, 90, (16, 16)).astype(np.float32)
    power = rng.uniform(0, 1, (16, 16)).astype(np.float32)
    results["hotspot"] = np.allclose(
        hotspot_gpu(device, temp, power, 4),
        hotspot_cpu(temp, power, 4),
        rtol=1e-4, atol=1e-3,
    )

    grid = rng.integers(0, 10, (16, 32)).astype(np.int32)
    results["pathfinder"] = np.array_equal(
        pathfinder_gpu(device, grid), pathfinder_cpu(grid)
    )
    return results


@pytest.fixture(scope="module")
def outcome():
    device = GpgpuDevice(float_model="ieee32")
    results = run_all(device)
    print()
    print(f"{'workload':>11} {'validated':>10}")
    for name, ok in results.items():
        print(f"{name:>11} {str(ok):>10}")
    return device, results


def test_benchmark_rodinia_workloads(benchmark):
    device = GpgpuDevice(float_model="ieee32")
    benchmark.pedantic(run_all, args=(device,), rounds=1, iterations=1)


class TestShape:
    def test_all_workloads_validate(self, outcome):
        __, results = outcome
        assert all(results.values()), results

    def test_every_kernel_single_output(self, outcome):
        device, __ = outcome
        fragment_programs = [
            prog for prog in device.ctx._programs.values()
            if prog.linked and prog.fragment is not None
        ]
        assert len(fragment_programs) >= 5  # several distinct kernels ran
        for prog in fragment_programs:
            written = prog.fragment.written_builtins
            outputs = written & {"gl_FragColor", "gl_FragData"}
            assert len(outputs) == 1, (
                f"kernel writes {outputs}: violates the single-output model"
            )
