"""E10 — speedup vs problem size (crossover analysis).

Fixed costs — two shader compilations and per-draw driver overhead —
dominate small problems, so the CPU wins below a crossover size and
the GPU's advantage saturates toward the E1 figure above it.  The
bench prints the sweep and asserts the monotone shape.
"""

import pytest

from repro.experiments.speedup import PAPER_SPEEDUPS
from repro.experiments.sweep import format_sweep, run_size_sweep


@pytest.fixture(scope="module")
def sweep():
    result = run_size_sweep("int32")
    print()
    print(format_sweep(result))
    return result


def test_benchmark_size_sweep(benchmark):
    benchmark.pedantic(
        run_size_sweep, args=("int32", (1024, 65536)), rounds=1, iterations=1
    )


class TestShape:
    def test_cpu_wins_tiny_problems(self, sweep):
        assert sweep.points[0].speedup < 1.0

    def test_gpu_wins_large_problems(self, sweep):
        assert sweep.points[-1].speedup > 4.0

    def test_crossover_exists_and_is_moderate(self, sweep):
        crossover = sweep.crossover_size()
        assert crossover is not None
        assert 1024 <= crossover <= 262144

    def test_speedup_monotone_in_size(self, sweep):
        speedups = [point.speedup for point in sweep.points]
        assert all(a <= b + 1e-9 for a, b in zip(speedups, speedups[1:]))

    def test_saturates_toward_paper_figure(self, sweep):
        final = sweep.points[-1].speedup
        assert final == pytest.approx(PAPER_SPEEDUPS[("sum", "int32")], rel=0.2)

    def test_gpu_time_grows_sublinearly_at_the_bottom(self, sweep):
        # Fixed costs dominate: 4x the work costs far less than 4x the
        # time at small sizes.
        first, second = sweep.points[0], sweep.points[1]
        assert second.gpu_seconds < 4 * first.gpu_seconds
