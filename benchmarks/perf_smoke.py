"""Wall-clock smoke benchmark: AST walker vs compiled linear IR.

Times repeated kernel launches (the steady state the program cache is
for) of the two paper workloads that bracket the shader-complexity
range — the int32 ``sum`` elementwise kernel and the loop-heavy
``sgemm`` — under both execution backends, and records the results in
``BENCH_glsl_exec.json`` at the repository root.

The sum microbenchmark runs in the dispatch-bound regime (small batch,
many launches), which is where interpreter overhead — the thing the IR
backend removes — dominates; at very large batches both backends
converge on the same numpy bulk work.  The script also demonstrates the
two cache layers: a second ``device.kernel()`` request for the same
source is served from the kernel cache (no recompile, no relink), and
repeated launches never re-lower the shader (the compiled program is
cached on the CheckedShader).

Run from the repository root::

    PYTHONPATH=src python benchmarks/perf_smoke.py [--out BENCH_glsl_exec.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import time
from pathlib import Path

import numpy as np

from repro.core.api.device import GpgpuDevice
from repro.kernels.elementwise import make_sum_kernel
from repro.kernels.sgemm import make_sgemm_kernel

SUM_N = 512  # dispatch-bound: launch overhead, not numpy bulk work
SGEMM_N = 8  # 8x8 matrices, 8-iteration dot-product loop per fragment
REPS = 50
WARMUP = 5


def _time_interleaved(launches, reps=REPS, warmup=WARMUP):
    """Time several launch thunks with interleaved sampling.

    Alternating between the backends on every reptition means clock
    drift (CPU frequency ramp-up, background load) hits all of them
    equally instead of biasing whichever ran first.
    """
    for _ in range(warmup):
        for launch in launches.values():
            launch()
    samples = {name: [] for name in launches}
    for _ in range(reps):
        for name, launch in launches.items():
            t0 = time.perf_counter()
            launch()
            samples[name].append(time.perf_counter() - t0)
    return {
        name: {
            "median_ms": statistics.median(ts) * 1e3,
            "min_ms": min(ts) * 1e3,
            "reps": reps,
        }
        for name, ts in samples.items()
    }


def _sum_launch(backend):
    dev = GpgpuDevice(float_model="videocore", execution_backend=backend)
    rng = np.random.default_rng(0)
    a_host = rng.integers(-(2**20), 2**20, size=SUM_N).astype(np.int64)
    b_host = rng.integers(-(2**20), 2**20, size=SUM_N).astype(np.int64)
    a = dev.array(a_host, "int32")
    b = dev.array(b_host, "int32")
    out = dev.empty(SUM_N, "int32")
    kernel = make_sum_kernel(dev, "int32")
    expected = a_host + b_host
    return dev, out, expected, lambda: kernel(out, {"a": a, "b": b})


def bench_sum():
    rigs = {backend: _sum_launch(backend) for backend in ("ast", "ir")}
    stats = _time_interleaved(
        {backend: rig[3] for backend, rig in rigs.items()}
    )
    for backend, (dev, out, expected, launch) in rigs.items():
        stats[backend]["correct"] = bool(
            np.array_equal(out.to_host(), expected)
        )
        # Cache behaviour: an identical kernel request is a cache hit,
        # and relaunching triggers no further compiles or links.
        compiles_before = dev.ctx.stats.shader_compiles
        links_before = dev.ctx.stats.program_links
        make_sum_kernel(dev, "int32")
        launch()
        stats[backend]["kernel_cache_hits"] = dev.kernel_cache_hits
        stats[backend]["recompiles_on_relaunch"] = (
            dev.ctx.stats.shader_compiles - compiles_before
        )
        stats[backend]["relinks_on_relaunch"] = (
            dev.ctx.stats.program_links - links_before
        )
    return stats


def _sgemm_launch(backend):
    dev = GpgpuDevice(float_model="videocore", execution_backend=backend)
    rng = np.random.default_rng(1)
    n = SGEMM_N
    a_host = rng.uniform(-1, 1, size=n * n).astype(np.float32)
    b_host = rng.uniform(-1, 1, size=n * n).astype(np.float32)
    c_host = rng.uniform(-1, 1, size=n * n).astype(np.float32)
    a = dev.array(a_host, "float32")
    b = dev.array(b_host, "float32")
    c0 = dev.array(c_host, "float32")
    out = dev.empty(n * n, "float32")
    kernel = make_sgemm_kernel(dev, "float32", n)
    uniforms = {"u_n": float(n), "u_alpha": 1.0, "u_beta": 1.0}
    return lambda: kernel(out, {"a": a, "b": b, "c0": c0}, uniforms)


def bench_sgemm():
    return _time_interleaved(
        {backend: _sgemm_launch(backend) for backend in ("ast", "ir")}
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_glsl_exec.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = {
        "description": "repeated-launch wall clock, AST walker vs linear IR",
        "python": platform.python_version(),
        "workloads": {},
    }
    for name, fn, size in (
        ("sum_int32", bench_sum, SUM_N),
        ("sgemm_float32", bench_sgemm, SGEMM_N),
    ):
        per_backend = fn()
        for backend in ("ast", "ir"):
            print(
                f"{name} [{backend}] median {per_backend[backend]['median_ms']:.3f} ms"
                f"  min {per_backend[backend]['min_ms']:.3f} ms"
            )
        ratio = per_backend["ast"]["median_ms"] / per_backend["ir"]["median_ms"]
        per_backend["speedup_ir_over_ast"] = round(ratio, 3)
        per_backend["size"] = size
        report["workloads"][name] = per_backend
        print(f"{name} speedup (ast/ir): {ratio:.3f}x")

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return report


if __name__ == "__main__":
    main()
