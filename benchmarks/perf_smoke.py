"""Wall-clock smoke benchmark: AST walker vs linear IR vs NumPy JIT.

Times repeated kernel launches (the steady state the program cache is
for) of the paper workloads that bracket the shader-complexity range —
the int32 ``sum`` elementwise kernel and the loop-heavy ``sgemm`` at
two sizes — under all three execution backends, and records the
results in ``BENCH_glsl_exec.json`` at the repository root.

The sum microbenchmark runs in the dispatch-bound regime (small batch,
many launches), which is where interpreter overhead — the thing the
compiled backends remove — dominates; at very large batches all
backends converge on the same numpy bulk work.  The script also
demonstrates the two cache layers: a second ``device.kernel()``
request for the same source is served from the kernel cache (no
recompile, no relink), and repeated launches never re-lower the shader
(the compiled program, and the JIT's generated function, are cached on
the CheckedShader).

Run from the repository root::

    PYTHONPATH=src python benchmarks/perf_smoke.py [--out BENCH_glsl_exec.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.api.device import GpgpuDevice
from repro.kernels.elementwise import make_sum_kernel
from repro.kernels.sgemm import make_sgemm_kernel

BACKENDS = ("ast", "ir", "jit")
SUM_N = 512  # dispatch-bound: launch overhead, not numpy bulk work
SGEMM_N = 8  # 8x8 matrices, 8-iteration dot-product loop per fragment
SGEMM_N_LARGE = 16  # 16x16: more per-fragment loop work, same dispatch
SGEMM_N_XL = 128  # 16384 fragments: the multiprocess-shading regime
SHADE_WORKERS = 2
REPS = 50
WARMUP = 5
XL_REPS = 7
XL_WARMUP = 2


def _time_interleaved(launches, reps=REPS, warmup=WARMUP):
    """Time several launch thunks with interleaved sampling.

    Alternating between the backends on every reptition means clock
    drift (CPU frequency ramp-up, background load) hits all of them
    equally instead of biasing whichever ran first.
    """
    for _ in range(warmup):
        for launch in launches.values():
            launch()
    samples = {name: [] for name in launches}
    for _ in range(reps):
        for name, launch in launches.items():
            t0 = time.perf_counter()
            launch()
            samples[name].append(time.perf_counter() - t0)
    return {
        name: {
            "median_ms": statistics.median(ts) * 1e3,
            "min_ms": min(ts) * 1e3,
            "reps": reps,
        }
        for name, ts in samples.items()
    }


def _cache_stats(stats, backend, dev, request_again, launch):
    """Cache behaviour: an identical kernel request is a cache hit,
    and relaunching triggers no further compiles or links."""
    compiles_before = dev.ctx.stats.shader_compiles
    links_before = dev.ctx.stats.program_links
    request_again()
    launch()
    stats[backend]["kernel_cache_hits"] = dev.kernel_cache_hits
    stats[backend]["recompiles_on_relaunch"] = (
        dev.ctx.stats.shader_compiles - compiles_before
    )
    stats[backend]["relinks_on_relaunch"] = (
        dev.ctx.stats.program_links - links_before
    )


def _gather_stats(stats, backend, dev):
    """Texture-gather engagement of the most recent draw: >0 gathers
    and 0 fallbacks on the JIT backend means every kernel fetch took
    the direct texel-storage path (zero on AST/IR by definition)."""
    draw = dev.ctx.stats.draws[-1]
    stats[backend]["texture_gathers"] = draw.texture_gathers
    stats[backend]["gather_fallbacks"] = draw.gather_fallbacks


def _sum_launch(backend):
    dev = GpgpuDevice(float_model="videocore", execution_backend=backend)
    rng = np.random.default_rng(0)
    a_host = rng.integers(-(2**20), 2**20, size=SUM_N).astype(np.int64)
    b_host = rng.integers(-(2**20), 2**20, size=SUM_N).astype(np.int64)
    a = dev.array(a_host, "int32")
    b = dev.array(b_host, "int32")
    out = dev.empty(SUM_N, "int32")
    kernel = make_sum_kernel(dev, "int32")
    expected = a_host + b_host
    return dev, out, expected, lambda: kernel(out, {"a": a, "b": b})


def bench_sum():
    rigs = {backend: _sum_launch(backend) for backend in BACKENDS}
    stats = _time_interleaved(
        {backend: rig[3] for backend, rig in rigs.items()}
    )
    for backend, (dev, out, expected, launch) in rigs.items():
        stats[backend]["correct"] = bool(
            np.array_equal(out.to_host(), expected)
        )
        _cache_stats(stats, backend, dev,
                     lambda dev=dev: make_sum_kernel(dev, "int32"), launch)
        _gather_stats(stats, backend, dev)
    return stats


def _sgemm_launch(backend, n, shade_workers=None, tile_size=None):
    dev = GpgpuDevice(
        float_model="videocore", execution_backend=backend,
        shade_workers=shade_workers, tile_size=tile_size,
    )
    rng = np.random.default_rng(1)
    a_host = rng.uniform(-1, 1, size=n * n).astype(np.float32)
    b_host = rng.uniform(-1, 1, size=n * n).astype(np.float32)
    c_host = rng.uniform(-1, 1, size=n * n).astype(np.float32)
    a = dev.array(a_host, "float32")
    b = dev.array(b_host, "float32")
    c0 = dev.array(c_host, "float32")
    out = dev.empty(n * n, "float32")
    kernel = make_sgemm_kernel(dev, "float32", n)
    uniforms = {"u_n": float(n), "u_alpha": 1.0, "u_beta": 1.0}
    launch = lambda: kernel(out, {"a": a, "b": b, "c0": c0}, uniforms)
    return dev, out, n, launch


def bench_sgemm(n=SGEMM_N, backends=BACKENDS, include_workers=False,
                worker_tile=None, reps=REPS, warmup=WARMUP):
    """Time sgemm under ``backends``; ``include_workers`` adds a
    ``jit+workers`` column (JIT backend with ``SHADE_WORKERS``
    fragment-shading worker processes and ``worker_tile``-pixel tiles;
    None = the automatic tiling policy)."""
    rigs = {backend: _sgemm_launch(backend, n) for backend in backends}
    if include_workers:
        rigs["jit+workers"] = _sgemm_launch(
            "jit", n, shade_workers=SHADE_WORKERS, tile_size=worker_tile
        )
    stats = _time_interleaved(
        {backend: rig[3] for backend, rig in rigs.items()},
        reps=reps, warmup=warmup,
    )
    # No closed-form host expectation under the videocore float model:
    # correctness here is bit-identical agreement with the reference
    # backend (whose conformance the differential oracle establishes).
    reference = rigs[backends[0]][1].to_host()
    for backend, (dev, out, size, launch) in rigs.items():
        stats[backend]["correct"] = bool(
            np.array_equal(out.to_host(), reference)
        )
        _cache_stats(
            stats, backend, dev,
            lambda dev=dev, size=size: make_sgemm_kernel(dev, "float32", size),
            launch,
        )
        _gather_stats(stats, backend, dev)
    if include_workers:
        from repro.gles2 import parallel

        stats["jit+workers"]["parallel_draws"] = parallel.parallel_draws
    return stats


GRAPH_CHAIN_N = 4096
GRAPH_CHAIN_STAGES = 3


def _graph_chain_rig(graph_mode):
    """A three-stage elementwise chain — the multi-pass shape the
    launch-graph scheduler fuses.  Eager: three draws through two
    materialised intermediates; graph: record + replay as one fused
    draw from pooled scratch."""
    dev = GpgpuDevice(
        float_model="videocore", execution_backend="jit",
        graph_mode=graph_mode,
    )
    shift = dev.kernel(
        "bench_shift", [("a", "float32")], "float32",
        "result = a + u_s;", uniforms=[("u_s", "float")],
    )
    scale = dev.kernel(
        "bench_scale", [("a", "float32")], "float32",
        "result = u_k * a;", uniforms=[("u_k", "float")],
    )
    rng = np.random.default_rng(2)
    src = dev.array(
        rng.uniform(-1, 1, GRAPH_CHAIN_N).astype(np.float32), "float32"
    )
    if graph_mode:
        state = {"out": None, "stats": None}

        def launch():
            if state["out"] is not None:
                state["out"].release()
            with dev.record() as graph:
                a = graph.scratch(GRAPH_CHAIN_N, "float32")
                graph.launch(shift, a, {"a": src}, {"u_s": 0.125})
                b = graph.scratch(GRAPH_CHAIN_N, "float32")
                graph.launch(scale, b, {"a": a}, {"u_k": 1.5})
                c = graph.scratch(GRAPH_CHAIN_N, "float32")
                graph.launch(shift, c, {"a": b}, {"u_s": -0.25})
                graph.keep(c)
            state["out"] = c
            state["stats"] = graph.stats

        return dev, state, launch
    mid1 = dev.empty(GRAPH_CHAIN_N, "float32")
    mid2 = dev.empty(GRAPH_CHAIN_N, "float32")
    out = dev.empty(GRAPH_CHAIN_N, "float32")
    state = {"out": out, "stats": None}

    def launch():
        shift(mid1, {"a": src}, {"u_s": 0.125})
        scale(mid2, {"a": mid1}, {"u_k": 1.5})
        shift(out, {"a": mid2}, {"u_s": -0.25})

    return dev, state, launch


def bench_graph():
    """Eager vs deferred-graph wall clock on the multi-pass chain.
    Fails the bench run outright if the replay stops fusing the chain
    into a single draw — a silent fusion loss would otherwise read as
    an ordinary perf regression."""
    rigs = {mode: _graph_chain_rig(mode == "graph")
            for mode in ("eager", "graph")}
    stats = _time_interleaved(
        {mode: rig[2] for mode, rig in rigs.items()}
    )
    eager_out = rigs["eager"][1]["out"].to_host()
    graph_out = rigs["graph"][1]["out"].to_host()
    stats["graph"]["correct"] = bool(
        np.array_equal(eager_out.view(np.uint32),
                       graph_out.view(np.uint32))
    )
    stats["eager"]["correct"] = True
    replay = rigs["graph"][1]["stats"]
    stats["graph"]["fused_draws_per_replay"] = replay.fused_draws
    stats["graph"]["elided_draws_per_replay"] = replay.elided_draws
    stats["graph"]["scratch_reuses_per_replay"] = replay.scratch_reuses
    graph_dev = rigs["graph"][0]
    stats["graph"]["elided_transfer_seconds"] = (
        graph_dev.wall_time().elided_transfer_seconds
    )
    if replay.fused_draws != 1 or replay.elided_draws != (
        GRAPH_CHAIN_STAGES - 1
    ):
        raise SystemExit(
            "map_chain_float32: launch-graph replay no longer fuses "
            f"the {GRAPH_CHAIN_STAGES}-stage chain into one draw "
            f"(fused={replay.fused_draws}, elided={replay.elided_draws})"
            " — see repro.core.api.graph"
        )
    if not stats["graph"]["correct"]:
        raise SystemExit(
            "map_chain_float32: fused replay diverged from eager "
            "execution — the round-trip bit-identity contract broke"
        )
    return stats


COLD_WARM_REPS = 5
COLD_WARM_MIN_SPEEDUP = 2.0

#: Child process for the cold/warm first-launch columns: build the
#: sgemm-8 JIT kernel and run its first launch in a fresh interpreter,
#: timing only the in-process work (interpreter/numpy startup is the
#: same either way and would dilute the compile-path signal).
_COLD_WARM_CHILD = r"""
import hashlib, json, time
import numpy as np
from repro.core.api.device import GpgpuDevice
from repro.kernels.sgemm import make_sgemm_kernel

n = 8
rng = np.random.default_rng(1)
a_host = rng.uniform(-1, 1, size=n * n).astype(np.float32)
b_host = rng.uniform(-1, 1, size=n * n).astype(np.float32)
c_host = rng.uniform(-1, 1, size=n * n).astype(np.float32)

t0 = time.perf_counter()
dev = GpgpuDevice(float_model="videocore", execution_backend="jit")
a = dev.array(a_host, "float32")
b = dev.array(b_host, "float32")
c0 = dev.array(c_host, "float32")
out = dev.empty(n * n, "float32")
kernel = make_sgemm_kernel(dev, "float32", n)
kernel(out, {"a": a, "b": b, "c0": c0},
       {"u_n": float(n), "u_alpha": 1.0, "u_beta": 1.0})
res = out.to_host()
elapsed = time.perf_counter() - t0

from repro.core import cache as store
from repro.glsl import ir, jit
print(json.dumps({
    "first_launch_ms": elapsed * 1e3,
    "digest": hashlib.sha256(res.tobytes()).hexdigest(),
    "disk": store.stats.snapshot(),
    "ir": ir.compile_events,
    "jit": jit.codegen_events,
}))
"""


def _cold_warm_child(cache_dir):
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = cache_dir
    env.setdefault("PYTHONPATH", str(Path(__file__).parent.parent / "src"))
    proc = subprocess.run(
        [sys.executable, "-c", _COLD_WARM_CHILD],
        capture_output=True, text=True, env=env, timeout=120,
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"first_launch_sgemm_float32: child failed\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


def bench_cold_warm(reps=COLD_WARM_REPS):
    """Disk-cache first-launch columns: kernel build + first launch of
    sgemm-8 (JIT) in a fresh process, against an empty artifact store
    (cold) vs a populated one (warm).  Fails the bench run outright if
    the warm runs stop hitting the disk cache, compile anything fresh,
    or lose the required speedup — a silent cache loss would otherwise
    read as an ordinary perf regression."""
    base = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        cold_samples, warm_samples = [], []
        digests = set()
        warm_dir = os.path.join(base, "warm")
        primer = _cold_warm_child(warm_dir)  # populate the shared store
        digests.add(primer["digest"])
        warm_reports = []
        for i in range(reps):
            cold = _cold_warm_child(os.path.join(base, f"cold{i}"))
            warm = _cold_warm_child(warm_dir)
            cold_samples.append(cold["first_launch_ms"])
            warm_samples.append(warm["first_launch_ms"])
            digests.add(cold["digest"])
            digests.add(warm["digest"])
            warm_reports.append(warm)
    finally:
        shutil.rmtree(base, ignore_errors=True)
    if len(digests) != 1:
        raise SystemExit(
            "first_launch_sgemm_float32: warm-start output diverged "
            "from cold compile — the artifact store broke bit-identity"
        )
    for warm in warm_reports:
        if warm["disk"]["hits"] == 0:
            raise SystemExit(
                "first_launch_sgemm_float32: warm run recorded zero "
                "disk-cache hits — the persistent store stopped serving"
            )
        if warm["ir"]["fresh"] or warm["jit"]["fresh"]:
            raise SystemExit(
                "first_launch_sgemm_float32: warm run still compiled "
                f"fresh (ir={warm['ir']}, jit={warm['jit']})"
            )
    stats = {
        "cold": {
            "median_ms": statistics.median(cold_samples),
            "min_ms": min(cold_samples),
            "reps": reps,
        },
        "warm": {
            "median_ms": statistics.median(warm_samples),
            "min_ms": min(warm_samples),
            "reps": reps,
        },
    }
    last = warm_reports[-1]
    stats["warm"]["disk_cache_hits"] = last["disk"]["hits"]
    stats["warm"]["ir_compiles_fresh"] = last["ir"]["fresh"]
    stats["warm"]["jit_codegen_fresh"] = last["jit"]["fresh"]
    stats["cold"]["correct"] = stats["warm"]["correct"] = True
    speedup = (stats["cold"]["median_ms"]
               / max(stats["warm"]["median_ms"], 1e-9))
    if speedup < COLD_WARM_MIN_SPEEDUP:
        raise SystemExit(
            "first_launch_sgemm_float32: warm first launch is only "
            f"{speedup:.2f}x faster than cold "
            f"(required >= {COLD_WARM_MIN_SPEEDUP}x) — the disk cache "
            "stopped paying for itself"
        )
    return stats


def sweep_tile(n=SGEMM_N_XL, workers=SHADE_WORKERS,
               tiles=(16, 32, 64, 128, 0), reps=XL_REPS, warmup=XL_WARMUP):
    """Tile-size sweep behind DEFAULT_TILE_SIZE: times sgemm-``n``
    under the JIT + worker pool at several tile sizes (0 = tiling off,
    the monolithic baseline)."""
    results = {}
    for tile in tiles:
        label = f"tile{tile}" if tile else "monolithic"
        shade_workers = workers if tile else None
        dev, out, __, launch = _sgemm_launch(
            "jit", n, shade_workers=shade_workers,
            tile_size=tile if tile else None,
        )
        for _ in range(warmup):
            launch()
        samples = []
        for _ in range(reps):
            t0 = time.perf_counter()
            launch()
            samples.append(time.perf_counter() - t0)
        results[label] = {
            "median_ms": statistics.median(samples) * 1e3,
            "min_ms": min(samples) * 1e3,
            "reps": reps,
        }
        print(f"sweep sgemm-{n} [{label}] "
              f"median {results[label]['median_ms']:.3f} ms")
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_glsl_exec.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--sweep-tile", action="store_true",
        help="additionally sweep fragment tile sizes on sgemm-128 "
             "under the worker pool (justifies DEFAULT_TILE_SIZE)",
    )
    args = parser.parse_args(argv)

    report = {
        "description": (
            "repeated-launch wall clock, AST walker vs linear IR vs "
            "NumPy-source JIT; 'jit+workers' columns add tiled "
            "multiprocess fragment shading "
            f"(shade_workers={SHADE_WORKERS}); map_chain_float32 "
            "times the deferred launch graph (record + fused replay) "
            "against eager multi-pass dispatch; "
            "first_launch_sgemm_float32 times kernel build + first "
            "launch in a fresh process with the persistent artifact "
            "store cold vs warm (REPRO_CACHE_DIR)"
        ),
        "python": platform.python_version(),
        # Worker-pool columns only make sense relative to the cores
        # actually available: on a single-core host they measure pure
        # dispatch overhead, not parallel shading.
        "cpu_count": os.cpu_count(),
        "workloads": {},
    }
    for name, fn, size, timed in (
        ("sum_int32", bench_sum, SUM_N, BACKENDS),
        ("sgemm_float32", bench_sgemm, SGEMM_N, BACKENDS),
        # sgemm-16 carries the jit+workers column (explicit 8-pixel
        # tiles: 256 fragments is far below the auto-tiling floor).
        ("sgemm_float32_16",
         lambda: bench_sgemm(SGEMM_N_LARGE, include_workers=True,
                             worker_tile=8),
         SGEMM_N_LARGE, BACKENDS + ("jit+workers",)),
        # sgemm-128 is the workload the worker pool targets: 16384
        # fragments with a 128-iteration loop each, where fragment
        # shading is ~98% of the launch.  AST/IR are skipped (minutes
        # per rep); tiling engages via the automatic policy.
        ("sgemm_float32_128",
         lambda: bench_sgemm(SGEMM_N_XL, backends=("jit",),
                             include_workers=True,
                             reps=XL_REPS, warmup=XL_WARMUP),
         SGEMM_N_XL, ("jit", "jit+workers")),
        # Deferred launch graph vs eager on the multi-pass map chain:
        # record/replay must beat three eager dispatches by fusing the
        # chain into one draw (asserted, not just timed).
        ("map_chain_float32", bench_graph, GRAPH_CHAIN_N,
         ("eager", "graph")),
        # Persistent artifact store: kernel build + first launch in a
        # fresh process, cold (empty REPRO_CACHE_DIR) vs warm
        # (populated).  Asserts disk hits, zero fresh compiles, and
        # the minimum warm speedup — not just timed.
        ("first_launch_sgemm_float32", bench_cold_warm, SGEMM_N,
         ("cold", "warm")),
    ):
        per_backend = fn()
        for backend in timed:
            print(
                f"{name} [{backend}] median {per_backend[backend]['median_ms']:.3f} ms"
                f"  min {per_backend[backend]['min_ms']:.3f} ms"
            )
        if "ast" in per_backend:
            ast_median = per_backend["ast"]["median_ms"]
            for compiled in ("ir", "jit"):
                ratio = ast_median / per_backend[compiled]["median_ms"]
                per_backend[f"speedup_{compiled}_over_ast"] = round(ratio, 3)
                print(f"{name} speedup (ast/{compiled}): {ratio:.3f}x")
        if "jit+workers" in per_backend:
            ratio = (per_backend["jit"]["median_ms"]
                     / per_backend["jit+workers"]["median_ms"])
            per_backend["speedup_workers_over_jit"] = round(ratio, 3)
            print(f"{name} speedup (jit/jit+workers): {ratio:.3f}x")
        if "eager" in per_backend and "graph" in per_backend:
            ratio = (per_backend["eager"]["median_ms"]
                     / per_backend["graph"]["median_ms"])
            per_backend["speedup_graph_over_eager"] = round(ratio, 3)
            print(f"{name} speedup (eager/graph): {ratio:.3f}x")
        if "cold" in per_backend and "warm" in per_backend:
            ratio = (per_backend["cold"]["median_ms"]
                     / per_backend["warm"]["median_ms"])
            per_backend["speedup_warm_over_cold"] = round(ratio, 3)
            print(f"{name} speedup (cold/warm): {ratio:.3f}x")
        per_backend["size"] = size
        report["workloads"][name] = per_backend

    # The gather fast path must actually engage on the kernel
    # workloads: a silent loss (e.g. a codegen-template rephrase that
    # breaks the IR annotation match) fails the bench run itself.
    for wname in ("sum_int32", "sgemm_float32", "sgemm_float32_128"):
        jit_stats = report["workloads"][wname]["jit"]
        if jit_stats.get("texture_gathers", 0) <= 0:
            raise SystemExit(
                f"{wname}: JIT draw reported no texture gathers — the "
                "gather fast path was lost (see repro.glsl.ir.gather)"
            )
        if jit_stats.get("gather_fallbacks", 0) != 0:
            raise SystemExit(
                f"{wname}: JIT draw hit gather fallbacks on a kernel "
                "whose fetches must all qualify"
            )

    if args.sweep_tile:
        report["tile_sweep_sgemm_128"] = sweep_tile()

    from repro.gles2 import parallel

    parallel.shutdown_pool()
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return report


if __name__ == "__main__":
    main()
