"""E4 — §IV round-trip correctness ("we validate the results with the
CPU").

For every numeric format the paper enables, data goes CPU -> texture
bytes -> shader unpack -> shader pack -> framebuffer bytes -> CPU and
must come back exact (within the stated envelopes: full range for
chars and floats, 24-bit envelope for integers on the fp32 path).

Prints a per-format table with the measured exactness; the benchmark
times the full GPU round trip per format.
"""

import numpy as np
import pytest

from repro import GpgpuDevice
from repro.core.numerics import FORMATS


def _values_for(fmt, count=512, seed=11):
    rng = np.random.default_rng(seed)
    if fmt.dtype == np.float16:
        return np.concatenate([
            (rng.standard_normal(count - 4) * 10.0),
            [0.0, 1.0, -1.0, 0.5],
        ]).astype(np.float16)
    if fmt.dtype.kind == "f":
        return np.concatenate([
            (rng.standard_normal(count - 6) *
             10.0 ** rng.integers(-20, 20, count - 6)),
            [0.0, 1.0, -1.0, 0.5, 1e10, -1e-10],
        ]).astype(np.float32)
    if fmt.limited_to_24_bits:
        lo = -(2**23) if fmt.dtype.kind == "i" else 0
        return rng.integers(lo, 2**23, count).astype(fmt.dtype)
    info = np.iinfo(fmt.dtype)
    return rng.integers(info.min, info.max + 1, count).astype(fmt.dtype)


def gpu_roundtrip(fmt_name, values):
    """Identity kernel: the full upload -> unpack -> pack -> readback."""
    device = GpgpuDevice(float_model="ieee32")
    kernel = device.kernel(
        f"ident_{fmt_name}", [("a", fmt_name)], fmt_name, "result = a;"
    )
    out = device.empty(values.shape[0], fmt_name)
    kernel(out, {"a": device.array(values)})
    return out.to_host()


@pytest.fixture(scope="module")
def results():
    table = {}
    print()
    print(f"{'format':>9} {'elements':>9} {'exact':>6}")
    for name, fmt in FORMATS.items():
        values = _values_for(fmt)
        recovered = gpu_roundtrip(name, values)
        if fmt.dtype.kind == "f":
            bit_view = np.uint16 if fmt.dtype == np.float16 else np.uint32
            exact = np.array_equal(
                recovered.view(bit_view), values.view(bit_view)
            )
        else:
            exact = np.array_equal(recovered, values)
        table[name] = (values, recovered, exact)
        print(f"{name:>9} {values.shape[0]:>9} {str(exact):>6}")
    return table


@pytest.mark.parametrize("name", list(FORMATS))
def test_roundtrip_exact(results, name):
    __, __, exact = results[name]
    assert exact, f"{name} did not round-trip exactly"


@pytest.mark.parametrize("name", list(FORMATS))
def test_benchmark_roundtrip(benchmark, name):
    values = _values_for(FORMATS[name], count=256)
    recovered = benchmark.pedantic(
        gpu_roundtrip, args=(name, values), rounds=1, iterations=1
    )
    assert recovered.shape == values.shape


def test_special_values_roundtrip():
    """Optional §IV-E feature: infinities and NaN survive the trip."""
    values = np.array([np.inf, -np.inf, np.nan, 0.0, 1.0], dtype=np.float32)
    recovered = gpu_roundtrip("float32", values)
    assert recovered[0] == np.inf
    assert recovered[1] == -np.inf
    assert np.isnan(recovered[2])
    assert recovered[3] == 0.0
    assert recovered[4] == 1.0
