"""E7 (extension) — why vendor half-float extensions are "not enough".

Paper §II-B(5/6): "some vendors provide extensions for half floats, in
general it is not enough for general purpose computations" and the
half-float framebuffer path is "neither enough nor portable".

This bench makes the claim quantitative: the same sum and sgemm
computations run through (a) the fp16 path a vendor extension would
give and (b) the paper's fp32 byte-packing path, both against the
fp32 CPU reference.  The fp16 path tops out at its 10-bit mantissa
(and overflows at 65504), while the paper's transformations keep the
full fp32 width — exceeding even the 15-bit band the real platform
achieves.
"""

import numpy as np
import pytest

from repro import GpgpuDevice
from repro.baselines import cpu_sgemm
from repro.baselines.cpu_kernels import random_matrices
from repro.core.numerics import FP16_MANTISSA_BITS, FP16_MAX
from repro.kernels import make_sgemm_kernel, make_sum_kernel
from repro.validation import precision_report


def run_sum(fmt: str, size: int = 4096, seed: int = 13):
    rng = np.random.default_rng(seed)
    a32 = (rng.standard_normal(size) * 100).astype(np.float32)
    b32 = (rng.standard_normal(size) * 100).astype(np.float32)
    device = GpgpuDevice(float_model="ieee32")
    kernel = make_sum_kernel(device, fmt)
    dtype = np.float16 if fmt == "float16" else np.float32
    out = device.empty(size, fmt)
    kernel(out, {"a": device.array(a32.astype(dtype)),
                 "b": device.array(b32.astype(dtype))})
    return precision_report(a32 + b32, out.to_host().astype(np.float64))


def run_sgemm(fmt: str, n: int = 32, seed: int = 14):
    a, b, c = random_matrices(n, np.float32, seed=seed)
    device = GpgpuDevice(float_model="ieee32")
    kernel = make_sgemm_kernel(device, fmt, n)
    dtype = np.float16 if fmt == "float16" else np.float32
    out = device.empty(n * n, fmt)
    kernel(
        out,
        {"a": device.array(a.reshape(-1).astype(dtype)),
         "b": device.array(b.reshape(-1).astype(dtype)),
         "c0": device.array(c.reshape(-1).astype(dtype))},
        {"u_n": float(n), "u_alpha": 1.0, "u_beta": 0.0},
    )
    reference = cpu_sgemm(1.0, a, b, 0.0, c)
    return precision_report(reference, out.to_host().astype(np.float64))


@pytest.fixture(scope="module")
def reports():
    table = {}
    print()
    print(f"{'benchmark':>9} {'path':>8} {'median bits':>12} {'>=15 bits':>10}")
    for bench, runner in (("sum", run_sum), ("sgemm", run_sgemm)):
        for fmt in ("float16", "float32"):
            report = runner(fmt)
            table[(bench, fmt)] = report
            print(f"{bench:>9} {fmt:>8} {report.median_bits:12.1f} "
                  f"{report.fraction_ge_15 * 100:9.1f}%")
    return table


def test_benchmark_fp16_sum(benchmark):
    benchmark.pedantic(run_sum, args=("float16", 1024), rounds=1, iterations=1)


def test_benchmark_fp32_sum(benchmark):
    benchmark.pedantic(run_sum, args=("float32", 1024), rounds=1, iterations=1)


class TestShape:
    def test_fp16_limited_to_its_mantissa(self, reports):
        for bench in ("sum", "sgemm"):
            report = reports[(bench, "float16")]
            assert report.median_bits <= FP16_MANTISSA_BITS + 1.5

    def test_fp16_misses_the_paper_band(self, reports):
        """The extension path cannot reach the >= 15-bit band."""
        for bench in ("sum", "sgemm"):
            assert not reports[(bench, "float16")].meets_paper_band()

    def test_fp32_path_reaches_the_band(self, reports):
        for bench in ("sum", "sgemm"):
            assert reports[(bench, "float32")].meets_paper_band()

    def test_fp32_beats_fp16_everywhere(self, reports):
        for bench in ("sum", "sgemm"):
            assert (
                reports[(bench, "float32")].median_bits
                > reports[(bench, "float16")].median_bits + 5
            )

    def test_fp16_range_saturates(self):
        """Beyond 65504 the fp16 path destroys data outright."""
        device = GpgpuDevice(float_model="ieee32")
        kernel = make_sum_kernel(device, "float16")
        big = np.array([60000.0, 1.0], dtype=np.float16)
        out = device.empty(2, "float16")
        kernel(out, {"a": device.array(big), "b": device.array(big)})
        result = out.to_host().astype(np.float64)
        assert np.isinf(result[0])  # 120000 overflows fp16
        assert result[1] == 2.0
        assert FP16_MAX == 65504.0
