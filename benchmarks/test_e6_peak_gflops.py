"""E6 — the 24 GFlops device peak (paper §I and §V).

"Raspberry Pi ... relies on the VideoCore IV GPU, capable of
24 GFlops."  The check recomputes the peak from microarchitectural
parameters and measures how close a pure-ALU kernel gets in the
timing model (it cannot exceed peak; a dense multiply-add kernel
should get within an order of magnitude even with packing overhead).
"""

import numpy as np
import pytest

from repro import GpgpuDevice
from repro.experiments.peak import PAPER_PEAK_GFLOPS, run_peak_check
from repro.perf.gpu_model import GpuModel


@pytest.fixture(scope="module")
def check():
    result = run_peak_check()
    print()
    print(f"derived peak : {result.derived_gflops:.1f} GFlops")
    print(f"model peak   : {result.model_gflops:.1f} GFlops")
    print(f"paper quote  : {result.paper_gflops:.1f} GFlops")
    return result


def test_benchmark_peak_check(benchmark):
    benchmark.pedantic(run_peak_check, rounds=10, iterations=1)


class TestShape:
    def test_peak_matches_paper(self, check):
        assert check.consistent
        assert check.model_gflops == PAPER_PEAK_GFLOPS

    def test_dense_kernel_throughput_below_peak(self):
        """A multiply-add-heavy float kernel: measured model GFlops
        must be positive and strictly below peak."""
        device = GpgpuDevice(float_model="ieee32")
        kernel = device.kernel(
            "flops",
            [("x", "float32")],
            "float32",
            # 32 multiply-adds per element.
            "float acc = x;\n"
            "for (int i = 0; i < 32; i++) { acc = acc * 1.0001 + 0.5; }\n"
            "result = acc;",
        )
        n = 4096
        out = device.empty(n, "float32")
        kernel(out, {"x": device.array(np.ones(n, dtype=np.float32))})
        draw = device.ctx.stats.draws[-1]
        model = GpuModel()
        seconds = model.draw_time(draw).shader_seconds
        flops = draw.fragment_ops.alu
        gflops = flops / seconds / 1e9
        assert 0 < gflops <= PAPER_PEAK_GFLOPS + 1e-9
        assert gflops > PAPER_PEAK_GFLOPS / 10
