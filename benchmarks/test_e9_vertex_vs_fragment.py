"""E9 (design comparison) — vertex vs fragment stage kernels (§III-1).

"The GPGPU computations can be either implemented in the vertex or
the fragment processing stage (or both), with the fragment one being
the most popular."  This bench quantifies *why* fragment kernels won:

* per-element fixed cost: a vertex costs ~80 pipeline cycles vs ~0.5
  for a fragment on the modeled VideoCore IV;
* data residence: fragment kernels read textures that stay on the
  GPU between launches, while the vertex path re-uploads attribute
  streams every launch (no vertex texture units on this device);
* expressiveness: the vertex path cannot gather at all.

Both paths must agree bit-for-bit on the same map kernel.
"""

import numpy as np
import pytest

from repro import GpgpuDevice
from repro.perf.wallclock import gpu_wall_time


def run_sum(stage: str, n: int = 16384, launches: int = 4):
    device = GpgpuDevice(float_model="ieee32")
    rng = np.random.default_rng(51)
    a = rng.integers(-(2**22), 2**22, n).astype(np.int32)
    b = rng.integers(-(2**22), 2**22, n).astype(np.int32)
    out = device.empty(n, "int32")
    if stage == "vertex":
        kernel = device.vertex_kernel(
            "e9v", [("a", "int32"), ("b", "int32")], "int32",
            "result = a + b;",
        )
        for __ in range(launches):
            kernel(out, {"a": a, "b": b})
    else:
        kernel = device.kernel(
            "e9f", [("a", "int32"), ("b", "int32")], "int32",
            "result = a + b;",
        )
        a_arr, b_arr = device.array(a), device.array(b)
        for __ in range(launches):
            kernel(out, {"a": a_arr, "b": b_arr})
    result = out.to_host()
    assert np.array_equal(result, a + b)
    return device, result


@pytest.fixture(scope="module")
def comparison():
    vertex_device, vertex_result = run_sum("vertex")
    fragment_device, fragment_result = run_sum("fragment")
    v_time = gpu_wall_time(vertex_device.ctx.stats)
    f_time = gpu_wall_time(fragment_device.ctx.stats)
    print()
    print(f"{'stage':>9} {'execute [ms]':>13} {'upload [ms]':>12} "
          f"{'total [ms]':>11}")
    for label, tl in (("vertex", v_time), ("fragment", f_time)):
        print(f"{label:>9} {tl.execute_seconds * 1e3:13.3f} "
              f"{tl.upload_seconds * 1e3:12.3f} "
              f"{tl.total_seconds * 1e3:11.3f}")
    return {
        "vertex": (vertex_device, vertex_result, v_time),
        "fragment": (fragment_device, fragment_result, f_time),
    }


def test_benchmark_vertex_stage(benchmark):
    benchmark.pedantic(run_sum, args=("vertex", 4096, 1),
                       rounds=1, iterations=1)


def test_benchmark_fragment_stage(benchmark):
    benchmark.pedantic(run_sum, args=("fragment", 4096, 1),
                       rounds=1, iterations=1)


class TestShape:
    def test_results_identical(self, comparison):
        __, v_result, __ = comparison["vertex"]
        __, f_result, __ = comparison["fragment"]
        assert np.array_equal(v_result, f_result)

    def test_fragment_execute_cheaper(self, comparison):
        """The per-vertex pipeline overhead makes the vertex stage
        slower for the same arithmetic."""
        __, __, v_time = comparison["vertex"]
        __, __, f_time = comparison["fragment"]
        assert f_time.execute_seconds < v_time.execute_seconds

    def test_vertex_path_reuploads_per_launch(self, comparison):
        """Fragment inputs upload once (textures persist); vertex
        attributes upload on every launch."""
        v_device, __, __ = comparison["vertex"]
        f_device, __, __ = comparison["fragment"]
        v_bytes = v_device.ctx.stats.buffer_upload_bytes
        f_bytes = (f_device.ctx.stats.texture_upload_bytes
                   + f_device.ctx.stats.buffer_upload_bytes)
        assert v_bytes > 2 * f_bytes

    def test_fragment_wins_end_to_end(self, comparison):
        __, __, v_time = comparison["vertex"]
        __, __, f_time = comparison["fragment"]
        assert f_time.total_seconds < v_time.total_seconds
