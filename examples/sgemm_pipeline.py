#!/usr/bin/env python
"""sgemm on the GPU: the paper's second benchmark, end to end.

Computes C = alpha*A@B + beta*C0 for float32 matrices entirely through
the OpenGL ES 2 path: matrices live in RGBA8 textures using the
Figure 2 float layout, each output element is one fragment running an
n-iteration dot-product loop, and the result is validated against the
CPU reference with the paper's mantissa-agreement metric.

Run:  python examples/sgemm_pipeline.py [n] [backend]

``backend`` is ast (default), ir, or jit.  Combine with the usual
knobs to exercise the full stack, e.g. a traced multiprocess run::

    REPRO_TRACE=out.json REPRO_SHADE_WORKERS=2 \
        python examples/sgemm_pipeline.py 128 jit
    python -m repro.trace view out.json
"""

import sys

import numpy as np

from repro import GpgpuDevice
from repro.baselines import cpu_sgemm
from repro.baselines.cpu_kernels import random_matrices
from repro.kernels import make_sgemm_kernel
from repro.validation import precision_report


def main(n: int = 32, backend: str = "ast"):
    alpha, beta = 1.5, 0.5
    a, b, c0 = random_matrices(n, np.float32)

    # --- GPU ----------------------------------------------------------
    device = GpgpuDevice(  # the real platform
        float_model="videocore", execution_backend=backend
    )
    kernel = make_sgemm_kernel(device, "float32", n)
    out = device.empty(n * n, "float32")
    kernel(
        out,
        {
            "a": device.array(a.reshape(-1)),
            "b": device.array(b.reshape(-1)),
            "c0": device.array(c0.reshape(-1)),
        },
        {"u_n": float(n), "u_alpha": alpha, "u_beta": beta},
    )
    gpu_result = out.to_host().reshape(n, n)

    # --- CPU reference and validation ---------------------------------
    cpu_result = cpu_sgemm(alpha, a, b, beta, c0)
    report = precision_report(cpu_result, gpu_result)
    print(f"sgemm {n}x{n} (float32, videocore model)")
    print(f"  {report}")
    print(f"  within the paper's 15-bit band: {report.meets_paper_band()}")

    print()
    print("modeled VideoCore IV wall time:")
    print(device.wall_time().breakdown())


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 32,
        sys.argv[2] if len(sys.argv) > 2 else "ast",
    )
