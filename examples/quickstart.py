#!/usr/bin/env python
"""Quickstart: your first GPGPU kernel on a low-end mobile GPU.

Reproduces the paper's core demo in a few lines: two int32 arrays are
packed into RGBA8 textures (OpenGL ES 2 has no other format — §II-B
limitation 5), a generated fragment shader unpacks them with the §IV
transformations, adds them, re-packs the result into the framebuffer,
and glReadPixels brings the bytes home.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GpgpuDevice


def main():
    device = GpgpuDevice(float_model="ieee32")

    # A kernel body is plain GLSL ES; inputs arrive unpacked as floats.
    add = device.kernel(
        name="sum",
        inputs=[("a", "int32"), ("b", "int32")],
        output="int32",
        body="result = a + b;",
    )

    n = 1024
    a_host = np.arange(n, dtype=np.int32) - n // 2
    b_host = np.full(n, 1000, dtype=np.int32)

    a = device.array(a_host)
    b = device.array(b_host)
    out = device.empty(n, "int32")

    add(out, {"a": a, "b": b})
    result = out.to_host()

    expected = a_host + b_host
    assert np.array_equal(result, expected), "GPU result mismatch!"
    print(f"sum of {n} int32 elements: OK (first 5: {result[:5]})")

    # The wall-time model shows where a real Raspberry Pi would spend
    # its time (compile + transfers + shader execution).
    print()
    print("modeled VideoCore IV wall time:")
    print(device.wall_time().breakdown())


if __name__ == "__main__":
    main()
