#!/usr/bin/env python
"""Mandelbrot escape-time iteration as a float32 GPGPU kernel.

Demonstrates non-trivial control flow inside a kernel (a bounded loop
with early exit via masking) and the float32 I/O path: iteration
counts are computed per element and read back through the §IV pack.

Run:  python examples/mandelbrot.py
"""

import numpy as np

from repro import GpgpuDevice

MAX_ITER = 48


def main():
    width, height = 48, 24
    device = GpgpuDevice(float_model="ieee32")

    kernel = device.kernel(
        "mandelbrot",
        inputs=[("cr", "float32"), ("ci", "float32")],
        output="float32",
        body=f"""
float zr = 0.0;
float zi = 0.0;
float escaped_at = float({MAX_ITER});
for (int i = 0; i < {MAX_ITER}; i++) {{
    float new_zr = zr * zr - zi * zi + cr;
    zi = 2.0 * zr * zi + ci;
    zr = new_zr;
    if (zr * zr + zi * zi > 4.0 && escaped_at == float({MAX_ITER})) {{
        escaped_at = float(i);
    }}
}}
result = escaped_at;
""",
    )

    ys, xs = np.mgrid[0:height, 0:width]
    cr = (xs / width * 3.0 - 2.1).astype(np.float32).reshape(-1)
    ci = (ys / height * 2.4 - 1.2).astype(np.float32).reshape(-1)

    out = device.empty(width * height, "float32")
    kernel(out, {"cr": device.array(cr), "ci": device.array(ci)})
    iterations = out.to_host().reshape(height, width)

    # CPU reference.
    zr = np.zeros_like(cr, dtype=np.float64)
    zi = np.zeros_like(ci, dtype=np.float64)
    escaped = np.full(cr.shape, MAX_ITER, dtype=np.float64)
    for i in range(MAX_ITER):
        new_zr = zr * zr - zi * zi + cr
        zi = 2.0 * zr * zi + ci
        zr = new_zr
        hit = (zr * zr + zi * zi > 4.0) & (escaped == MAX_ITER)
        escaped[hit] = i
    cpu = escaped.reshape(height, width)
    agreement = (iterations == cpu).mean() * 100

    shades = " .:-=+*#%@"
    for row in iterations:
        line = "".join(
            shades[min(int(v * (len(shades) - 1) / MAX_ITER), len(shades) - 1)]
            for v in row
        )
        print(line)
    print(f"\nGPU/CPU iteration agreement: {agreement:.1f}% "
          f"(float divergence near the boundary is expected)")
    print("\nmodeled VideoCore IV wall time:")
    print(device.wall_time().breakdown())


if __name__ == "__main__":
    main()
