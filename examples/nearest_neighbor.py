#!/usr/bin/env python
"""Nearest neighbour search — a Rodinia-style workload.

The paper points out (§III-8) that every kernel of the Rodinia
heterogeneous-computing suite fits the single-output model ES 2
imposes.  Rodinia's `nn` benchmark finds the record closest to a query
point; here it runs fully on the simulated GPU: a distance kernel (one
output per record) followed by a GPU argmin.

Run:  python examples/nearest_neighbor.py
"""

import numpy as np

from repro import GpgpuDevice
from repro.kernels import argmin_via_encoding


def main():
    rng = np.random.default_rng(2016)
    n = 4096
    # Records: latitude/longitude pairs, like Rodinia's hurricane data.
    lat = (rng.uniform(-90, 90, n)).astype(np.float32)
    lon = (rng.uniform(-180, 180, n)).astype(np.float32)
    query_lat, query_lon = 29.97, -90.05  # New Orleans

    device = GpgpuDevice(float_model="ieee32")

    distance = device.kernel(
        "nn_distance",
        inputs=[("lat", "float32"), ("lon", "float32")],
        output="float32",
        body=(
            "float dlat = lat - u_qlat;\n"
            "float dlon = lon - u_qlon;\n"
            "result = sqrt(dlat * dlat + dlon * dlon);"
        ),
        uniforms=[("u_qlat", "float"), ("u_qlon", "float")],
    )

    distances = device.empty(n, "float32")
    distance(
        distances,
        {"lat": device.array(lat), "lon": device.array(lon)},
        {"u_qlat": query_lat, "u_qlon": query_lon},
    )
    gpu_distances = distances.to_host()

    best = argmin_via_encoding(device, gpu_distances)

    # CPU reference.
    cpu_distances = np.sqrt((lat - query_lat) ** 2 + (lon - query_lon) ** 2)
    cpu_best = int(np.argmin(cpu_distances))

    print(f"query: ({query_lat}, {query_lon})  over {n} records")
    print(f"GPU nearest: record {best} at "
          f"({lat[best]:.2f}, {lon[best]:.2f}), "
          f"distance {gpu_distances[best]:.3f}")
    print(f"CPU nearest: record {cpu_best}, distance "
          f"{cpu_distances[cpu_best]:.3f}")
    assert best == cpu_best, "GPU and CPU disagree on the nearest record!"
    print("GPU result validated against CPU: OK")

    print()
    print("modeled VideoCore IV wall time:")
    print(device.wall_time().breakdown())


if __name__ == "__main__":
    main()
