#!/usr/bin/env python
"""Black-Scholes option pricing — a transcendental-heavy float kernel.

The classic GPGPU showcase of the early-GPGPU era the paper builds on:
one European call option priced per fragment.  Exercises the SFU path
(exp/log/sqrt) under the ``videocore`` precision model, and prints the
roofline placement of the kernel.

Run:  python examples/black_scholes.py
"""

import numpy as np

from repro import GpgpuDevice
from repro.perf.roofline import analyze_context, format_roofline
from repro.validation import precision_report

# Abramowitz & Stegun polynomial CDF approximation (the form every
# classic GPU Black-Scholes kernel used — only +,*,exp, one divide).
CND_PREAMBLE = """
float cnd(float d) {
    float k = 1.0 / (1.0 + 0.2316419 * abs(d));
    float poly = k * (0.319381530 + k * (-0.356563782 + k * (1.781477937
        + k * (-1.821255978 + k * 1.330274429))));
    float w = 1.0 - 0.39894228040 * exp(-0.5 * d * d) * poly;
    return d < 0.0 ? 1.0 - w : w;
}
"""

BODY = """
float sqrt_t = sqrt(t);
float d1 = (log(s / u_strike) + (u_rate + 0.5 * u_vol * u_vol) * t)
    / (u_vol * sqrt_t);
float d2 = d1 - u_vol * sqrt_t;
result = s * cnd(d1) - u_strike * exp(-u_rate * t) * cnd(d2);
"""


def cnd_cpu(d):
    k = 1.0 / (1.0 + 0.2316419 * np.abs(d))
    poly = k * (0.319381530 + k * (-0.356563782 + k * (1.781477937
        + k * (-1.821255978 + k * 1.330274429))))
    w = 1.0 - 0.39894228040 * np.exp(-0.5 * d * d) * poly
    return np.where(d < 0, 1.0 - w, w)


def black_scholes_cpu(s, t, strike, rate, vol):
    sqrt_t = np.sqrt(t)
    d1 = (np.log(s / strike) + (rate + 0.5 * vol**2) * t) / (vol * sqrt_t)
    d2 = d1 - vol * sqrt_t
    return s * cnd_cpu(d1) - strike * np.exp(-rate * t) * cnd_cpu(d2)


def main():
    n = 4096
    rng = np.random.default_rng(7)
    spot = rng.uniform(10, 100, n).astype(np.float32)
    expiry = rng.uniform(0.25, 2.0, n).astype(np.float32)
    strike, rate, vol = 50.0, 0.02, 0.30

    device = GpgpuDevice(float_model="videocore")
    kernel = device.kernel(
        "black_scholes",
        inputs=[("s", "float32"), ("t", "float32")],
        output="float32",
        body=BODY,
        uniforms=[("u_strike", "float"), ("u_rate", "float"),
                  ("u_vol", "float")],
        preamble=CND_PREAMBLE,
    )
    out = device.empty(n, "float32")
    kernel(
        out,
        {"s": device.array(spot), "t": device.array(expiry)},
        {"u_strike": strike, "u_rate": rate, "u_vol": vol},
    )
    gpu_prices = out.to_host()

    cpu_prices = black_scholes_cpu(
        spot.astype(np.float64), expiry.astype(np.float64),
        strike, rate, vol,
    )
    report = precision_report(cpu_prices, gpu_prices)
    print(f"priced {n} European calls on the GPU (videocore model)")
    print(f"  example: S={spot[0]:.2f} T={expiry[0]:.2f}y "
          f"-> C={gpu_prices[0]:.4f} (CPU {cpu_prices[0]:.4f})")
    print(f"  {report}")

    print()
    print("roofline placement:")
    print(format_roofline(analyze_context(device.ctx.stats)))

    print()
    print("modeled VideoCore IV wall time:")
    print(device.wall_time().breakdown())


if __name__ == "__main__":
    main()
