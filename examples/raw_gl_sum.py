#!/usr/bin/env python
"""The paper's technique with NO framework: raw EGL + OpenGL ES 2.

Everything the `repro` framework automates, written out by hand the
way a 2016 Raspberry Pi program would be — the EGL boot dance, the
hand-written §IV pack/unpack GLSL, the two-triangle quad, texture
setup, FBO readback.  Adds two int32 arrays.

Run:  python examples/raw_gl_sum.py
"""

import numpy as np

from repro.gles2 import enums as gl
from repro.gles2.egl import create_es2_context

N = 1024
WIDTH, HEIGHT = 32, 32  # 1024 elements folded into a 32x32 texture

VERTEX_SHADER = """
attribute vec2 a_position;
varying vec2 v_coord;
void main() {
    v_coord = a_position * 0.5 + 0.5;
    gl_Position = vec4(a_position, 0.0, 1.0);
}
"""

# The §IV transformations, hand-written (int32 in/out over RGBA8).
FRAGMENT_SHADER = """
precision highp float;
varying vec2 v_coord;
uniform sampler2D u_a;
uniform sampler2D u_b;

float unpack_int(vec4 texel) {
    vec4 b = floor(texel * 255.0 + vec4(0.5));
    float low = b.r + b.g * 256.0 + b.b * 65536.0;
    float hi = b.a < 128.0 ? b.a : b.a - 256.0;
    return low + hi * 16777216.0;
}

vec4 pack_int(float value) {
    float v = floor(value + 0.5);
    float low = v < 0.0 ? v + 16777216.0 : v;
    vec4 b;
    b.r = mod(low, 256.0);
    b.g = mod(floor(low / 256.0), 256.0);
    b.b = mod(floor(low / 65536.0), 256.0);
    b.a = v < 0.0 ? 255.0 : mod(floor(v / 16777216.0), 256.0);
    return b / 255.0;
}

void main() {
    float a = unpack_int(texture2D(u_a, v_coord));
    float b = unpack_int(texture2D(u_b, v_coord));
    gl_FragColor = pack_int(a + b);
}
"""

QUAD = np.array(
    [[-1, -1], [1, -1], [1, 1], [-1, -1], [1, 1], [-1, 1]], dtype=np.float32
)


def make_texture(ctx, int_values):
    """Upload an int32 array as its little-endian bytes in RGBA8."""
    (tex,) = ctx.glGenTextures(1)
    ctx.glBindTexture(gl.GL_TEXTURE_2D, tex)
    for pname, value in (
        (gl.GL_TEXTURE_MIN_FILTER, gl.GL_NEAREST),
        (gl.GL_TEXTURE_MAG_FILTER, gl.GL_NEAREST),
        (gl.GL_TEXTURE_WRAP_S, gl.GL_CLAMP_TO_EDGE),
        (gl.GL_TEXTURE_WRAP_T, gl.GL_CLAMP_TO_EDGE),
    ):
        ctx.glTexParameteri(gl.GL_TEXTURE_2D, pname, value)
    texels = int_values.astype("<i4").view(np.uint8).reshape(HEIGHT, WIDTH, 4)
    ctx.glTexImage2D(gl.GL_TEXTURE_2D, 0, gl.GL_RGBA, WIDTH, HEIGHT, 0,
                     gl.GL_RGBA, gl.GL_UNSIGNED_BYTE, texels)
    return tex


def compile_program(ctx):
    def compile_one(kind, source):
        shader = ctx.glCreateShader(kind)
        ctx.glShaderSource(shader, source)
        ctx.glCompileShader(shader)
        if not ctx.glGetShaderiv(shader, gl.GL_COMPILE_STATUS):
            raise RuntimeError(ctx.glGetShaderInfoLog(shader))
        return shader

    program = ctx.glCreateProgram()
    ctx.glAttachShader(program, compile_one(gl.GL_VERTEX_SHADER, VERTEX_SHADER))
    ctx.glAttachShader(program, compile_one(gl.GL_FRAGMENT_SHADER, FRAGMENT_SHADER))
    ctx.glLinkProgram(program)
    if not ctx.glGetProgramiv(program, gl.GL_LINK_STATUS):
        raise RuntimeError(ctx.glGetProgramInfoLog(program))
    return program


def main():
    rng = np.random.default_rng(9)
    a = rng.integers(-(2**22), 2**22, N).astype(np.int32)
    b = rng.integers(-(2**22), 2**22, N).astype(np.int32)

    # 1. EGL boot (what every Pi GPGPU program starts with).
    ctx = create_es2_context(WIDTH, HEIGHT)

    # 2. Inputs as byte textures; output FBO texture.
    tex_a, tex_b = make_texture(ctx, a), make_texture(ctx, b)
    tex_out = make_texture(ctx, np.zeros(N, dtype=np.int32))
    (fbo,) = ctx.glGenFramebuffers(1)
    ctx.glBindFramebuffer(gl.GL_FRAMEBUFFER, fbo)
    ctx.glFramebufferTexture2D(gl.GL_FRAMEBUFFER, gl.GL_COLOR_ATTACHMENT0,
                               gl.GL_TEXTURE_2D, tex_out, 0)
    assert ctx.glCheckFramebufferStatus(gl.GL_FRAMEBUFFER) \
        == gl.GL_FRAMEBUFFER_COMPLETE

    # 3. Program + uniforms + quad.
    program = compile_program(ctx)
    ctx.glUseProgram(program)
    ctx.glActiveTexture(gl.GL_TEXTURE0)
    ctx.glBindTexture(gl.GL_TEXTURE_2D, tex_a)
    ctx.glActiveTexture(gl.GL_TEXTURE0 + 1)
    ctx.glBindTexture(gl.GL_TEXTURE_2D, tex_b)
    ctx.glUniform1i(ctx.glGetUniformLocation(program, "u_a"), 0)
    ctx.glUniform1i(ctx.glGetUniformLocation(program, "u_b"), 1)
    loc = ctx.glGetAttribLocation(program, "a_position")
    ctx.glEnableVertexAttribArray(loc)
    ctx.glVertexAttribPointer(loc, 2, gl.GL_FLOAT, False, 0, QUAD)
    ctx.glViewport(0, 0, WIDTH, HEIGHT)

    # 4. One fullscreen-quad draw = one kernel launch.
    ctx.glDrawArrays(gl.GL_TRIANGLES, 0, 6)

    # 5. Readback: the output texture is attached to the bound FBO.
    pixels = ctx.glReadPixels(0, 0, WIDTH, HEIGHT, gl.GL_RGBA,
                              gl.GL_UNSIGNED_BYTE)
    result = pixels.reshape(-1, 4).view("<i4").reshape(-1)[:N]

    expected = a + b
    assert np.array_equal(result, expected), "raw GL sum mismatch!"
    print(f"raw EGL+GLES2 int32 sum of {N} elements: OK")
    print(f"  first rows: {result[:4]} == {expected[:4]}")
    print(f"  draw calls: {len(ctx.stats.draws)}, "
          f"shader ALU ops: {ctx.stats.total_ops().alu}")


if __name__ == "__main__":
    main()
