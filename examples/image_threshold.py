#!/usr/bin/env python
"""Image processing on byte data: adaptive threshold + box blur.

The motivating use case for GPGPU on phones in the paper's intro:
image-processing workloads.  This one stays in the natural uint8
domain (§IV-A) and chains two kernels through a Pipeline, letting the
challenge-(7) readback ordering keep the final result framebuffer-
resident (no copy pass).

Run:  python examples/image_threshold.py
"""

import numpy as np

from repro import GpgpuDevice, Pipeline


def synthetic_image(size: int = 64) -> np.ndarray:
    """A grey-level test card: gradient + bright blob + dark stripe."""
    y, x = np.mgrid[0:size, 0:size]
    image = (x * 255 / size).astype(np.float64)
    blob = 180 * np.exp(-(((x - 20) ** 2 + (y - 20) ** 2) / 60))
    image = np.clip(image + blob, 0, 255)
    image[:, size // 2 : size // 2 + 4] = 10
    return image.astype(np.uint8)


def main():
    size = 64
    image = synthetic_image(size)
    device = GpgpuDevice(float_model="ieee32")

    # Kernel 1: 3x1 horizontal box blur (gather kernel on bytes).
    blur = device.kernel(
        "box_blur",
        inputs=[("img", "uint8")],
        output="uint8",
        body="""
float width = u_width;
float row = floor(gpgpu_index / width);
float col = mod(gpgpu_index, width);
float left = col > 0.0 ? fetch_img(gpgpu_index - 1.0) : fetch_img(gpgpu_index);
float mid = fetch_img(gpgpu_index);
float right = col < width - 1.0 ? fetch_img(gpgpu_index + 1.0) : mid;
result = floor((left + mid + right) / 3.0);
""",
        uniforms=[("u_width", "float")],
        mode="gather",
    )

    # Kernel 2: binary threshold.
    threshold = device.kernel(
        "threshold",
        inputs=[("img", "uint8")],
        output="uint8",
        body="result = img >= u_cut ? 255.0 : 0.0;",
        uniforms=[("u_cut", "float")],
    )

    source = device.array(image.reshape(-1))
    blurred = device.empty(size * size, "uint8")
    binary = device.empty(size * size, "uint8")

    pipeline = Pipeline(device)
    pipeline.add(blur, blurred, {"img": source}, {"u_width": float(size)})
    pipeline.add(threshold, binary, {"img": blurred}, {"u_cut": 128.0})
    pipeline.run()

    result = binary.to_host().reshape(size, size)

    # CPU reference for validation.
    padded = image.astype(np.float64)
    left = np.concatenate([padded[:, :1], padded[:, :-1]], axis=1)
    right = np.concatenate([padded[:, 1:], padded[:, -1:]], axis=1)
    cpu_blur = np.floor((left + padded + right) / 3.0)
    cpu_binary = np.where(cpu_blur >= 128, 255, 0).astype(np.uint8)
    assert np.array_equal(result, cpu_binary), "GPU thresholding mismatch!"

    white = (result == 255).mean() * 100
    print(f"{size}x{size} image blurred + thresholded on the GPU")
    print(f"  white pixels: {white:.1f}%  (validated against CPU, exact)")

    # Render a small ASCII preview of the binary mask.
    step = size // 16
    print()
    for row in range(0, size, step * 2):
        line = "".join(
            "#" if result[row, col] else "." for col in range(0, size, step)
        )
        print("  " + line)

    print()
    print("modeled VideoCore IV wall time:")
    print(device.wall_time().breakdown())


if __name__ == "__main__":
    main()
