#!/usr/bin/env python
"""A guided tour of the paper's §IV float transformations.

Walks one float value through every stage: IEEE 754 bits, the Figure 2
CPU-side bit rearrangement, the four texture bytes, the shader-side
reconstruction, and the pack back into framebuffer bytes — printing
each intermediate so you can follow the paper's math on real numbers.

Run:  python examples/float_packing_tour.py [value]
"""

import sys

import numpy as np

from repro.core.numerics import (
    float_bits_to_gpu_word,
    pack_float,
    shader_pack_float,
    shader_unpack_float,
    texel_to_float,
    unpack_float,
)
from repro.experiments.fig2 import format_fig2_rows, run_fig2_layout


def tour(value: float):
    as32 = np.float32(value)
    bits = int(np.array([as32], dtype="<f4").view("<u4")[0])
    print(f"value            : {as32!r}")
    print(f"IEEE 754 bits    : 0x{bits:08x}")
    print(f"  sign           : {bits >> 31}")
    print(f"  biased exponent: {(bits >> 23) & 0xFF}")
    print(f"  mantissa       : 0x{bits & 0x7FFFFF:06x}")

    gpu_word = int(float_bits_to_gpu_word(np.array([bits], dtype=np.uint32))[0])
    print(f"Fig. 2 GPU word  : 0x{gpu_word:08x}  (exponent now fills byte 3)")

    texels = pack_float(np.array([as32], dtype=np.float32))
    print(f"texture bytes    : R={texels[0,0]} G={texels[0,1]} "
          f"B={texels[0,2]} A={texels[0,3]}")

    # What the shader sees (eq. (1)) and reconstructs (§IV-E).
    shader_floats = texel_to_float(texels)
    print(f"shader texel     : {np.round(shader_floats[0], 6)}")
    reconstructed = shader_unpack_float(shader_floats)[0]
    print(f"reconstructed    : {reconstructed!r}")

    # And back out through the framebuffer (§IV-E reverse + eq. (2)).
    outputs = shader_pack_float(np.array([reconstructed]))
    out_bytes = np.floor(np.clip(outputs, 0, 1) * 255 + 0.5).astype(np.uint8)
    recovered = unpack_float(out_bytes.reshape(1, 4))[0]
    print(f"framebuffer bytes: {list(out_bytes[0])}")
    print(f"recovered        : {recovered!r}")
    exact = np.float32(recovered) == as32
    print(f"round trip exact : {exact}")


def main():
    if len(sys.argv) > 1:
        tour(float(sys.argv[1]))
        return
    for value in (3.14159274, -0.15625, 1e-20):
        tour(value)
        print("-" * 60)
    print("\nFigure 2 byte-layout table for representative values:\n")
    print(format_fig2_rows(run_fig2_layout()))


if __name__ == "__main__":
    main()
