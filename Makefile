# Convenience targets for the reproduction.

.PHONY: install test bench report examples all cache-stats

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	PYTHONPATH=src python benchmarks/perf_smoke.py

bench-full:
	pytest benchmarks/

report:
	python -m repro.experiments.report EXPERIMENTS.md

# Usage of the persistent compile-artifact cache (honours
# REPRO_CACHE_DIR; see docs/architecture.md §7).
cache-stats:
	PYTHONPATH=src python -m repro.cache stats

examples:
	for e in examples/*.py; do echo "== $$e"; python $$e || exit 1; done

all: test bench-full report
