"""CPU baseline implementations (the paper's comparison points)."""

from .cpu_kernels import (
    cpu_saxpy,
    cpu_sgemm,
    cpu_sum,
    saxpy_workload,
    sgemm_workload,
    sum_workload,
)

__all__ = [
    "cpu_sum",
    "cpu_sgemm",
    "cpu_saxpy",
    "sum_workload",
    "sgemm_workload",
    "saxpy_workload",
]
