"""CPU reference kernels and their ARM11 operation inventories.

Each benchmark has two pieces:

* a numerical reference (numpy) used to validate GPU results — the
  paper: "we validate the results with the CPU";
* an analytic :class:`~repro.perf.cpu_model.CpuWorkload` describing
  what the straightforward C loop the paper's baseline compiles to
  would execute per element, which the ARM11 model prices into time.

The inventories model the plain scalar loops of the era (no NEON —
ARM11 predates it; VFP for floats):

``sum`` (``for i: c[i] = a[i] + b[i]``)
    per element: 2 loads + 1 store, 1 add, ~2 loop-overhead ops
    (increment + branch), 12 bytes of compulsory DRAM traffic.

``sgemm`` (three nested loops, ``c = alpha*a@b + beta*c``)
    per inner iteration: 2 loads, 1 multiply + 1 add, ~2 overhead ops.
    DRAM traffic: A streams once per j-column (n^3 * 4 / 8 effective
    with 32-byte lines on row-major A), B misses on every access in
    the naive loop (column stride), amortised by line reuse across
    the j loop -> modeled as n^3 * 4 / line_reuse with reuse 8.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..perf.cpu_model import CpuWorkload

_BYTES = 4  # all paper formats are 4-byte in CPU memory (int32/float32)


# ----------------------------------------------------------------------
# sum
# ----------------------------------------------------------------------
def cpu_sum(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Reference result of the sum benchmark (elementwise add)."""
    return a + b


def sum_workload(n: int, is_float: bool) -> CpuWorkload:
    """ARM11 op inventory of the C sum loop over n elements."""
    return CpuWorkload(
        int_ops=0.0 if is_float else float(n),
        fp_ops=float(n) if is_float else 0.0,
        load_store_ops=3.0 * n,
        dram_bytes=3.0 * n * _BYTES,
        overhead_ops=2.0 * n,
    )


# ----------------------------------------------------------------------
# saxpy
# ----------------------------------------------------------------------
def cpu_saxpy(alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return alpha * x + y


def saxpy_workload(n: int) -> CpuWorkload:
    return CpuWorkload(
        fp_ops=2.0 * n,
        load_store_ops=3.0 * n,
        dram_bytes=3.0 * n * _BYTES,
        overhead_ops=2.0 * n,
    )


# ----------------------------------------------------------------------
# sgemm
# ----------------------------------------------------------------------
def cpu_sgemm(
    alpha: float,
    a: np.ndarray,
    b: np.ndarray,
    beta: float,
    c: np.ndarray,
    integer: bool = False,
) -> np.ndarray:
    """Reference sgemm: ``alpha * a @ b + beta * c``.

    With ``integer=True`` the accumulation happens in int64 and the
    result wraps to int32 (what the C int baseline computes).
    """
    if integer:
        acc = a.astype(np.int64) @ b.astype(np.int64)
        result = int(alpha) * acc + int(beta) * c.astype(np.int64)
        return result.astype(np.int32)
    return (alpha * (a.astype(np.float64) @ b.astype(np.float64))
            + beta * c.astype(np.float64)).astype(a.dtype)


def sgemm_workload(n: int, is_float: bool, line_reuse: float = 8.0) -> CpuWorkload:
    """ARM11 op inventory of the naive triple loop for n x n sgemm.

    The overhead term models what the compiler actually emits for
    ``c[i*n+j] += a[i*n+k] * b[k*n+j]``: two index multiplies, two
    adds, the k increment and the loop compare/branch — about 5-6
    integer ops per inner iteration on an in-order ARM11.
    """
    inner = float(n) ** 3
    arith = 2.0 * inner + 3.0 * n * n  # madd loop + alpha/beta epilogue
    return CpuWorkload(
        int_ops=0.0 if is_float else arith,
        fp_ops=arith if is_float else 0.0,
        load_store_ops=2.0 * inner + 2.0 * n * n,
        # A row reused along k (cached), B column-strided (one miss per
        # line_reuse accesses after blocking by the hardware line), C
        # streamed once.
        dram_bytes=(inner / line_reuse + inner / line_reuse + 3.0 * n * n) * _BYTES,
        overhead_ops=5.5 * inner,
    )


def random_matrices(
    n: int, dtype, seed: int = 2016, low: int = -1024, high: int = 1024
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The paper's "random-value elements" inputs, sized so integer
    sgemm accumulations stay within the fp32 24-bit envelope."""
    rng = np.random.default_rng(seed)
    dtype = np.dtype(dtype)
    if dtype.kind in "iu":
        # |sum_k a*b| <= n * low*high; keep within 2^23.
        bound = int(max(2, np.sqrt(2**22 / max(n, 1))))
        a = rng.integers(-bound, bound, (n, n)).astype(dtype)
        b = rng.integers(-bound, bound, (n, n)).astype(dtype)
        c = rng.integers(-bound, bound, (n, n)).astype(dtype)
    else:
        a = rng.standard_normal((n, n)).astype(dtype)
        b = rng.standard_normal((n, n)).astype(dtype)
        c = rng.standard_normal((n, n)).astype(dtype)
    return a, b, c
