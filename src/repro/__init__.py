"""repro — General-purpose computations on low-end mobile GPUs.

A full reproduction of Trompouki & Kosmidis, *"Towards General Purpose
Computations on Low-End Mobile GPUs"* (DATE 2016): a GPGPU programming
framework that runs arbitrary-format numeric kernels over the OpenGL
ES 2 graphics API, together with the complete substrate it needs —
a software OpenGL ES 2 implementation (:mod:`repro.gles2`), a GLSL ES
1.00 compiler front end and interpreter (:mod:`repro.glsl`), and a
VideoCore IV / ARM11 performance model (:mod:`repro.perf`) standing in
for the paper's Raspberry Pi.

Quick start::

    import numpy as np
    from repro import GpgpuDevice

    dev = GpgpuDevice()
    add = dev.kernel(
        "sum",
        inputs=[("a", "int32"), ("b", "int32")],
        output="int32",
        body="result = a + b;",
    )
    a = dev.array(np.arange(1024, dtype=np.int32))
    b = dev.array(np.ones(1024, dtype=np.int32))
    out = dev.empty(1024, "int32")
    add(out, {"a": a, "b": b})
    print(out.to_host()[:4])   # [1 2 3 4]
"""

from .core import (
    FORMATS,
    GpgpuDevice,
    GpgpuError,
    GpuArray,
    Kernel,
    MultiOutputKernel,
    NumericFormat,
    Pipeline,
    ShaderBuildError,
    get_format,
)

__version__ = "1.0.0"

__all__ = [
    "GpgpuDevice",
    "GpuArray",
    "Kernel",
    "MultiOutputKernel",
    "Pipeline",
    "GpgpuError",
    "ShaderBuildError",
    "FORMATS",
    "NumericFormat",
    "get_format",
    "__version__",
]
