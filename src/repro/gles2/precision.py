"""Shader float-precision models and ``glGetShaderPrecisionFormat``.

The paper (§IV-E and §V) leans on two facts about real low-end mobile
GPUs:

1. ``glGetShaderPrecisionFormat`` reports the device's exponent and
   mantissa widths; VideoCore IV, PowerVR SGX, Adreno 2XX and Mali-4XX
   all match IEEE 754 single precision (8-bit exponent, 23-bit
   mantissa).
2. The *platform* (hardware + compiler) still only delivers results
   "accurate within the 15 most significant bits of the mantissa" —
   non-IEEE rounding in the QPU pipeline and transcendental
   approximations degrade a computation chain, while the identical
   transformations executed on the CPU are bit-exact.

This module models both: every float operation executed by the GLSL
interpreter is filtered through a :class:`FloatModel` whose
``quantize`` hook can truncate results to an effective mantissa width.
Three models are provided:

``ExactModel``
    float64, no rounding — "the same transformations on the CPU are
    precise".
``Ieee32Model``
    strict IEEE 754 single precision (what an ideal fp32 GPU would do).
``VideoCoreModel``
    float32 with per-operation mantissa truncation, calibrated so a
    typical kernel's output agrees with the CPU fp32 reference in the
    15-16 most significant mantissa bits — the paper's observed band.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PrecisionFormat:
    """Result of glGetShaderPrecisionFormat: log2 ranges + precision."""

    range_min: int
    range_max: int
    precision: int


class FloatModel:
    """Base float model: subclasses set ``dtype`` and override
    ``quantize``."""

    name = "base"
    dtype = np.float64

    def quantize(self, data: np.ndarray, category: str = "alu") -> np.ndarray:
        return data

    def quantize_is_cast(self, category: str = "alu") -> bool:
        """True when ``quantize(x, category)`` equals
        ``np.asarray(x, self.dtype)`` bit-for-bit.  Compiled backends
        use this to elide the call entirely for arrays that are
        already in the model dtype.  Conservative default: False."""
        return False

    def precision_format(self, precision_enum_name: str) -> PrecisionFormat:
        """The glGetShaderPrecisionFormat response for this device."""
        table = {
            "highp_float": PrecisionFormat(127, 127, 23),
            "mediump_float": PrecisionFormat(127, 127, 23),
            "lowp_float": PrecisionFormat(127, 127, 23),
            # Integers are emulated in float on these GPUs: 2^24 range.
            "highp_int": PrecisionFormat(24, 24, 0),
            "mediump_int": PrecisionFormat(24, 24, 0),
            "lowp_int": PrecisionFormat(24, 24, 0),
        }
        return table[precision_enum_name]


class ExactModel(FloatModel):
    """Reference model: float64, bit-exact transformations."""

    name = "exact"
    dtype = np.float64

    def quantize_is_cast(self, category: str = "alu") -> bool:
        return True


class Ieee32Model(FloatModel):
    """Ideal IEEE 754 single-precision device."""

    name = "ieee32"
    dtype = np.float32

    def quantize(self, data: np.ndarray, category: str = "alu") -> np.ndarray:
        return np.asarray(data, dtype=np.float32)

    def quantize_is_cast(self, category: str = "alu") -> bool:
        return True


class VideoCoreModel(FloatModel):
    """VideoCore IV-like device arithmetic.

    Plain ALU ops (add/mul) behave as fp32 — the QPU datapath is
    single precision.  *Special-function* results (``exp2``, ``log2``,
    ``rsqrt``, ``recip`` and everything built on them) come from the
    QPU's SFU, a lookup-table + interpolation unit: the model truncates
    them to ``sfu_mantissa_bits`` and applies a small deterministic
    relative bias (the LUT approximation never rounds to nearest).

    The paper's §IV float transformations reconstruct and decompose
    values through ``exp2``/``log2``, so every float that crosses the
    pack/unpack boundary inherits the SFU's error — which is exactly
    why the paper observes results "accurate within the 15 most
    significant bits of the mantissa": better than fp16 (10 bits),
    between the fp24 of early desktop GPGPU and full fp32, while the
    identical transformations on the CPU are bit-exact.  The defaults
    land kernels in that band.
    """

    name = "videocore"
    dtype = np.float32

    def __init__(self, sfu_mantissa_bits: int = 16, sfu_relative_bias: float = 2.0**-18):
        if not 1 <= sfu_mantissa_bits <= 23:
            raise ValueError("sfu_mantissa_bits must be in [1, 23]")
        self.sfu_mantissa_bits = sfu_mantissa_bits
        self.sfu_relative_bias = sfu_relative_bias

    def quantize(self, data: np.ndarray, category: str = "alu") -> np.ndarray:
        data = np.asarray(data, dtype=np.float32)
        if category != "sfu":
            return data
        truncated = truncate_mantissa(data, self.sfu_mantissa_bits)
        perturbed = truncated * np.float32(1.0 + self.sfu_relative_bias)
        return np.where(np.isfinite(truncated), perturbed, truncated)

    def quantize_is_cast(self, category: str = "alu") -> bool:
        return category != "sfu"


def truncate_mantissa(data: np.ndarray, keep_bits: int) -> np.ndarray:
    """Truncate float32 values to ``keep_bits`` mantissa bits
    (round-toward-zero, the QPU's cheap rounding mode).

    Non-finite values pass through unchanged.
    """
    if keep_bits >= 23:
        return data
    drop = 23 - keep_bits
    raw = np.asarray(data, dtype=np.float32)
    bits = raw.view(np.uint32).copy()
    mask = np.uint32(0xFFFFFFFF) << np.uint32(drop)
    truncated = (bits & mask).view(np.float32)
    return np.where(np.isfinite(raw), truncated, raw)


def mantissa_agreement_bits(reference: np.ndarray, measured: np.ndarray) -> np.ndarray:
    """How many most-significant mantissa bits agree between two float32
    arrays — the metric behind the paper's precision claim.

    For each element the relative error ``|m - r| / |r|`` is converted
    to matched bits: ``-log2(rel_err) - 1`` clamped to [0, 23]; exact
    matches count as the full 23.
    """
    ref = np.asarray(reference, dtype=np.float64)
    mea = np.asarray(measured, dtype=np.float64)
    out = np.full(ref.shape, 23.0)
    nonzero = ref != 0
    rel = np.zeros_like(ref)
    rel[nonzero] = np.abs(mea[nonzero] - ref[nonzero]) / np.abs(ref[nonzero])
    inexact = rel > 0
    with np.errstate(divide="ignore"):
        bits = -np.log2(rel, where=inexact, out=np.full_like(rel, np.inf)) - 1.0
    out[inexact] = np.clip(bits[inexact], 0.0, 23.0)
    # Zero reference but nonzero measurement: no agreement.
    out[~nonzero & (mea != 0)] = 0.0
    return out


#: Registry used by GpgpuDevice / context configuration.
MODELS = {
    "exact": ExactModel,
    "ieee32": Ieee32Model,
    "videocore": VideoCoreModel,
}


def make_model(name: str, **kwargs) -> FloatModel:
    """Instantiate a float model by name ('exact', 'ieee32',
    'videocore')."""
    try:
        cls = MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown float model '{name}' (choose from {sorted(MODELS)})"
        )
    return cls(**kwargs)
