"""Draw-call execution: the programmable pipeline of Figure 1.

``execute_draw`` glues the stages together: attribute fetch → vertex
shader (vectorised over all vertices) → primitive assembly →
rasterisation → varying interpolation → fragment shader (vectorised
over all fragments) → per-fragment output conversion into the RGBA8
framebuffer.

The final conversion implements the paper's equation (2): fragment
colours are clamped to [0, 1] and quantised to unsigned bytes.  Two
quantisation modes are supported: ``"round"`` (what the GL ES spec
mandates: round to nearest) and ``"floor"`` (the floor form printed in
the paper).  The §IV transformations round-trip exactly under either,
because they quantise *in the shader* and emit exact multiples of
1/255.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..glsl.interp import Interpreter
from ..glsl.ir import IRExecutor
from ..glsl.values import Value
from ..perf import trace
from ..perf.counters import DrawStats, OpCounters
from . import enums, raster
from .errors import SimulatorLimitation

_ATTRIB_DTYPES = {
    enums.GL_FLOAT: np.dtype(np.float32),
    enums.GL_BYTE: np.dtype(np.int8),
    enums.GL_UNSIGNED_BYTE: np.dtype(np.uint8),
    enums.GL_SHORT: np.dtype(np.int16),
    enums.GL_UNSIGNED_SHORT: np.dtype(np.uint16),
}


# ----------------------------------------------------------------------
# Deterministic capture hook (differential conformance harness)
# ----------------------------------------------------------------------
@dataclass
class FragmentCapture:
    """Snapshot of the per-fragment state of one draw call, taken just
    before the framebuffer write.  Consumed by ``repro.testing`` to
    replay the exact same fragments through independent interpreters."""

    #: The fragment shader as compiled (CheckedShader).
    fragment_shader: object
    #: Global presets handed to the fragment interpreter (uniforms,
    #: interpolated varyings, gl_FragCoord, ...), batched per fragment.
    fs_presets: Dict[str, Value]
    #: Framebuffer coordinates of every rasterised fragment.
    px: np.ndarray
    py: np.ndarray
    #: Per-fragment discard mask (True = killed by ``discard``).
    discarded: np.ndarray
    #: Pre-quantisation colours (float64) and their eq. (2) bytes.
    colors: np.ndarray
    quantised: np.ndarray
    #: Quantisation mode used ("round" or "floor").
    quantization: str = "round"


_capture_hook = None


def set_capture_hook(hook) -> None:
    """Install a callable receiving a :class:`FragmentCapture` after
    every draw call.  Used by the differential test harness; pass the
    result to :func:`clear_capture_hook` semantics by installing None."""
    global _capture_hook
    _capture_hook = hook


def clear_capture_hook() -> None:
    global _capture_hook
    _capture_hook = None


@dataclass
class VertexAttribState:
    """State of one generic vertex attribute (glVertexAttribPointer +
    glEnableVertexAttribArray + glVertexAttrib4f)."""

    enabled: bool = False
    size: int = 4
    type: int = enums.GL_FLOAT
    normalized: bool = False
    stride: int = 0
    #: Client-side array (numpy) or byte offset into ``buffer``.
    pointer: object = None
    buffer: object = None  # BufferObject or None
    generic_value: np.ndarray = field(
        default_factory=lambda: np.array([0.0, 0.0, 0.0, 1.0])
    )


def fetch_attribute(state: VertexAttribState, max_index: int) -> np.ndarray:
    """Materialise one attribute as (max_index + 1, 4) float64 with GL
    default fill (0, 0, 0, 1)."""
    count = max_index + 1
    out = np.zeros((count, 4), dtype=np.float64)
    out[:, 3] = 1.0
    if not state.enabled:
        out[:] = state.generic_value
        return out

    if state.buffer is not None:
        data = _read_buffer_attribute(state, count)
    else:
        data = _read_client_attribute(state, count)
    data = _normalize_attribute(data, state)
    out[:, : state.size] = data[:, : state.size]
    return out


def _read_client_attribute(state: VertexAttribState, count: int) -> np.ndarray:
    array = np.asarray(state.pointer)
    if array.ndim == 1:
        array = array.reshape(-1, state.size)
    if array.shape[0] < count:
        raise SimulatorLimitation(
            f"client vertex array has {array.shape[0]} vertices, draw "
            f"needs {count}"
        )
    return array[:count].astype(np.float64, copy=False)


def _read_buffer_attribute(state: VertexAttribState, count: int) -> np.ndarray:
    dtype = _ATTRIB_DTYPES[state.type]
    offset = int(state.pointer or 0)
    stride = state.stride or state.size * dtype.itemsize
    raw = state.buffer.data
    needed = offset + (count - 1) * stride + state.size * dtype.itemsize
    if raw is None or raw.nbytes < needed:
        raise SimulatorLimitation("vertex buffer too small for draw call")
    view = np.lib.stride_tricks.as_strided(
        raw[offset:].view(np.uint8),
        shape=(count, state.size * dtype.itemsize),
        strides=(stride, 1),
    )
    flat = view.reshape(-1).tobytes()
    typed = np.frombuffer(flat, dtype=dtype).reshape(count, state.size)
    return typed.astype(np.float64)


def _normalize_attribute(data: np.ndarray, state: VertexAttribState) -> np.ndarray:
    if state.type == enums.GL_FLOAT or not state.normalized:
        return data
    if state.type in (enums.GL_BYTE, enums.GL_SHORT):
        # ES 2.0 §2.1.2: signed normalized maps c to (2c + 1) / (2^n - 1)
        # — symmetric around zero, hitting exactly ±1.0 at the extremes
        # with no clamp (unlike the desktop GL 4.x c / (2^(n-1) - 1)
        # rule this simulator previously applied).
        divisor = 255.0 if state.type == enums.GL_BYTE else 65535.0
        return (2.0 * data + 1.0) / divisor
    divisor = {
        enums.GL_UNSIGNED_BYTE: 255.0,
        enums.GL_UNSIGNED_SHORT: 65535.0,
    }[state.type]
    return data / divisor


# ----------------------------------------------------------------------
# Draw execution
# ----------------------------------------------------------------------
#: Default edge length of a fragment tile when tiling engages
#: automatically (shade_workers > 0 and the draw is large enough to
#: amortise the per-tile dispatch).  Chosen by the
#: ``benchmarks/perf_smoke.py --sweep-tile`` sweep.
DEFAULT_TILE_SIZE = 64

#: Automatic tiling only engages above this fragment count — smaller
#: draws are dispatch-bound, where splitting the batch only multiplies
#: the per-draw numpy-call overhead.
AUTO_TILE_MIN_FRAGMENTS = 2048


def execute_draw(
    program,
    attribs: Dict[int, VertexAttribState],
    index_stream: np.ndarray,
    mode: int,
    viewport: Tuple[int, int, int, int],
    color_buffer: np.ndarray,
    float_model,
    resolve_sampler,
    quantization: str = "round",
    max_loop_iterations: int = 65536,
    execution_backend: str = "ast",
    scissor: Optional[Tuple[int, int, int, int]] = None,
    tile_size: Optional[int] = None,
    shade_workers: int = 0,
) -> DrawStats:
    """Run the full pipeline for one draw call, writing into
    ``color_buffer`` (an (H, W, 4) uint8 array) in place.

    ``execution_backend`` selects how shaders run: ``"ast"`` walks the
    typed AST (the reference vectorised semantics), ``"ir"`` executes
    the compiled linear IR (bit-identical, cached per shader),
    ``"jit"`` runs generated straight-line numpy code (bit-identical,
    cached per shader; IR fallback outside the JIT subset).

    ``scissor`` is the (x, y, w, h) rectangle of an enabled
    GL_SCISSOR_TEST (None when disabled): fragments outside it are
    never generated.  ``tile_size`` splits fragment shading into
    framebuffer-aligned square tiles (None = automatic: tile only when
    ``shade_workers`` could use it and the draw is large); merged
    results are bit-identical to the monolithic path.  ``shade_workers``
    > 0 fans independent tiles across a process pool for the JIT
    backend (in-process tiled shading otherwise)."""
    if execution_backend == "ir":
        shader_executor = IRExecutor
    elif execution_backend == "jit":
        from ..glsl.jit import JitExecutor
        shader_executor = JitExecutor
    elif execution_backend == "ast":
        shader_executor = Interpreter
    else:
        raise ValueError(
            f"unknown execution backend '{execution_backend}' "
            "(expected 'ast', 'ir' or 'jit')"
        )
    stats = DrawStats()
    if index_stream.size == 0:
        return stats

    fb_height, fb_width = color_buffer.shape[0], color_buffer.shape[1]

    # ------------------------------------------------------------------
    # 1. Attribute fetch + vertex shading.  We shade the full range of
    # referenced vertices once (real hardware caches post-transform
    # vertices similarly).
    # ------------------------------------------------------------------
    max_index = int(index_stream.max())
    uniforms = program.build_uniform_values(resolve_sampler)
    _cast_uniform_floats(uniforms, float_model.dtype)

    vs_presets: Dict[str, Value] = dict(uniforms)
    from ..glsl.types import FLOAT, VEC2, VEC3, VEC4

    vec_types = {1: FLOAT, 2: VEC2, 3: VEC3, 4: VEC4}
    for symbol in program.vertex.active_attributes():
        location = program.attribute_locations[symbol.name]
        state = attribs.get(location, VertexAttribState())
        fetched = fetch_attribute(state, max_index)
        gtype = symbol.type
        comps = gtype.component_count()
        data = fetched[:, :comps].astype(float_model.dtype)
        if gtype.is_scalar():
            data = data[:, 0]
        vs_presets[symbol.name] = Value(gtype, data)

    vertex_count = max_index + 1
    vs_interp = shader_executor(
        program.vertex,
        float_model=float_model,
        counters=stats.vertex_ops,
        max_loop_iterations=max_loop_iterations,
    )
    with trace.span("draw.vertex", "draw", {"vertices": vertex_count}):
        vs_env = vs_interp.execute(vertex_count, vs_presets)
    stats.vertex_invocations = vertex_count

    position = vs_env.get("gl_Position")
    if position is None:
        raise SimulatorLimitation("vertex shader did not produce gl_Position")
    positions_clip = np.broadcast_to(
        position.data.astype(np.float64), (vertex_count, 4)
    )

    # ------------------------------------------------------------------
    # 2. Primitive assembly + rasterisation.
    # ------------------------------------------------------------------
    with trace.span("draw.raster", "draw") as sp:
        window, w_clip = raster.viewport_transform(positions_clip, viewport)
        if mode == enums.GL_POINTS:
            batch = raster.rasterize_points(
                window, w_clip, index_stream, fb_width, fb_height
            )
            if scissor is not None:
                batch = raster.apply_scissor(batch, scissor)
        elif mode in (enums.GL_LINES, enums.GL_LINE_STRIP, enums.GL_LINE_LOOP):
            segments = raster.assemble_lines(mode, index_stream)
            batch = raster.rasterize_lines(
                window, w_clip, segments, fb_width, fb_height
            )
            if scissor is not None:
                batch = raster.apply_scissor(batch, scissor)
        else:
            triangles = raster.assemble_triangles(mode, index_stream)
            batch = raster.rasterize_triangles(
                window, w_clip, triangles, fb_width, fb_height,
                scissor=scissor,
            )
        if sp is not None:
            sp.args["fragments"] = batch.count
    if batch.count == 0:
        return stats

    # ------------------------------------------------------------------
    # 3. Varying interpolation + fragment shading.
    # ------------------------------------------------------------------
    fs_presets: Dict[str, Value] = dict(uniforms)
    with trace.span(
        "draw.varyings", "draw",
        {"varyings": len(program.varying_types), "fragments": batch.count},
    ):
        for name, gtype in program.varying_types.items():
            per_vertex = vs_env[name].data
            if (per_vertex.shape[0] != vertex_count
                    or per_vertex.dtype != np.float64):
                # Uniform-width or reduced-precision vertex outputs
                # need a widen + float64 upcast; outputs already at
                # full vertex width in float64 (the exact-model GPGPU
                # case) are used as-is — the broadcast + astype copy
                # is pure per-launch overhead.
                per_vertex = np.broadcast_to(
                    per_vertex.astype(np.float64),
                    (vertex_count,) + per_vertex.shape[1:],
                )
            interpolated = raster.interpolate_varying(batch, per_vertex)
            fs_presets[name] = Value(
                gtype, interpolated.astype(float_model.dtype)
            )

    frag_coord = np.empty((batch.count, 4), dtype=float_model.dtype)
    frag_coord[:, 0] = batch.px + 0.5
    frag_coord[:, 1] = batch.py + 0.5
    frag_coord[:, 2] = batch.frag_z
    frag_coord[:, 3] = batch.frag_w
    from ..glsl.types import BOOL as _BOOL, VEC4 as _VEC4, VEC2 as _VEC2

    fs_presets["gl_FragCoord"] = Value(_VEC4, frag_coord)
    fs_presets["gl_FrontFacing"] = Value(_BOOL, batch.front)
    fs_presets["gl_PointCoord"] = Value(
        _VEC2, np.zeros((batch.count, 2), dtype=float_model.dtype)
    )

    fs_interp = shader_executor(
        program.fragment,
        float_model=float_model,
        counters=stats.fragment_ops,
        max_loop_iterations=max_loop_iterations,
    )
    stats.fragment_invocations = batch.count
    out_name = (
        "gl_FragData"
        if "gl_FragData" in program.fragment.written_builtins
        else "gl_FragColor"
    )

    tile_indices = None
    if tile_size is not None and tile_size > 0:
        ts = tile_size
    elif shade_workers > 0 and batch.count > AUTO_TILE_MIN_FRAGMENTS:
        ts = DEFAULT_TILE_SIZE
    else:
        ts = 0
    if ts:
        parts = raster.partition_tiles(batch, ts)
        if len(parts) > 1:
            tile_indices = parts

    with trace.span("draw.shade", "draw") as sp:
        if sp is not None:
            sp.args.update({
                "fragments": batch.count,
                "backend": execution_backend,
                "tiles": len(tile_indices) if tile_indices else 1,
                "workers": shade_workers,
            })
        if tile_indices is None:
            fs_env = fs_interp.execute(batch.count, fs_presets)
            color = _extract_color(fs_env, out_name, batch.count)
            color = color.astype(np.float64)
            discarded = fs_interp.discarded
        else:
            color, discarded = _shade_tiled(
                fs_interp, fs_presets, tile_indices, batch.count,
                out_name, execution_backend, shade_workers,
            )

    keep = ~discarded
    stats.discarded_fragments = int((~keep).sum())
    # Texture-gather tallies (JIT fast path; zero elsewhere).  Both
    # executors are draw-scoped, so their accumulated counts — across
    # tiles, and including worker contributions merged back by
    # parallel.shade_draw — are exactly this draw's totals.
    stats.texture_gathers = (
        getattr(vs_interp, "texture_gathers", 0)
        + getattr(fs_interp, "texture_gathers", 0)
    )
    stats.gather_fallbacks = (
        getattr(vs_interp, "gather_fallbacks", 0)
        + getattr(fs_interp, "gather_fallbacks", 0)
    )

    # ------------------------------------------------------------------
    # 4. Output selection and framebuffer write (paper eq. (2)).
    # ------------------------------------------------------------------
    with trace.span("draw.quantise", "draw", {"fragments": batch.count}):
        quantised = quantize_color(color, quantization)
    if _capture_hook is not None:
        _capture_hook(
            FragmentCapture(
                fragment_shader=program.fragment,
                fs_presets=fs_presets,
                px=batch.px.copy(),
                py=batch.py.copy(),
                discarded=discarded.copy(),
                colors=color.copy(),
                quantised=quantised.copy(),
                quantization=quantization,
            )
        )
    with trace.span("draw.write", "draw") as sp:
        px = batch.px[keep]
        py = batch.py[keep]
        color_buffer[py, px] = quantised[keep]
        if sp is not None:
            sp.args["writes"] = int(keep.sum())
    stats.framebuffer_writes = int(keep.sum())
    return stats


def _extract_color(fs_env, out_name: str, n: int) -> np.ndarray:
    """The written colour builtin as an (n, 4) array."""
    if out_name == "gl_FragData":
        color = fs_env["gl_FragData"].data
        return np.broadcast_to(color, (n, 1, 4))[:, 0, :]
    return np.broadcast_to(fs_env["gl_FragColor"].data, (n, 4))


def _slice_presets(presets: Dict[str, Value], idx: np.ndarray) -> Dict[str, Value]:
    """Per-tile view of the fragment presets: wide (per-fragment)
    values are sliced to the tile's fragments, uniform (width-1)
    values shared as-is.  Executors never mutate preset values (the
    no-in-place invariant), so sharing is safe."""
    sliced = {}
    for name, value in presets.items():
        if value.fields is None and value.data is not None and value.batch > 1:
            sliced[name] = Value(value.type, value.data[idx])
        else:
            sliced[name] = value
    return sliced


def _shade_tiled(
    fs_interp,
    fs_presets: Dict[str, Value],
    tile_indices,
    count: int,
    out_name: str,
    execution_backend: str,
    shade_workers: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Shade a partitioned fragment batch tile by tile, reassembling
    full-batch (count, 4) float64 colours and the (count,) discard
    mask in original fragment order.

    Bit-identity with the monolithic path holds because every
    fragment-stage computation is per-lane elementwise: running the
    shader on a slice of the interpolated presets produces exactly the
    slice of the monolithic results.  Tiles partition the fragments,
    so the scatter below is a permutation-free reassembly.

    When ``shade_workers`` > 0 and the backend is the JIT, tiles fan
    out across the worker pool (see :mod:`repro.gles2.parallel`);
    otherwise — and whenever the pool or the program cannot ship — the
    loop below shades in-process.  Global initializers are per-draw
    work, so only the first tile tallies them (``count_globals``).
    """
    color = np.empty((count, 4), dtype=np.float64)
    discarded = np.empty(count, dtype=bool)

    if shade_workers > 0 and execution_backend == "jit":
        from . import parallel

        results = parallel.shade_draw(
            fs_interp, count, fs_presets, tile_indices, shade_workers,
            out_name,
        )
        if results is not None:
            with trace.span(
                "draw.merge", "draw",
                {"chunks": len(results), "fragments": count},
            ):
                for idx, chunk_color, chunk_discarded in results:
                    cn = idx.shape[0]
                    if out_name == "gl_FragData":
                        chunk_color = np.broadcast_to(
                            chunk_color, (cn, 1, 4)
                        )[:, 0, :]
                    else:
                        chunk_color = np.broadcast_to(chunk_color, (cn, 4))
                    color[idx] = chunk_color.astype(np.float64)
                    if chunk_discarded is None:
                        discarded[idx] = False
                    elif chunk_discarded.shape[0] == cn:
                        discarded[idx] = chunk_discarded
                    else:
                        discarded[idx] = bool(chunk_discarded[0])
            return color, discarded

    for i, idx in enumerate(tile_indices):
        with trace.span(
            "draw.shade.tile", "draw",
            {"tile": i, "fragments": int(idx.shape[0])},
        ):
            tile_presets = _slice_presets(fs_presets, idx)
            fs_env = fs_interp.execute(
                idx.shape[0], tile_presets, count_globals=(i == 0)
            )
            tile_color = _extract_color(fs_env, out_name, idx.shape[0])
            color[idx] = tile_color.astype(np.float64)
            discarded[idx] = fs_interp.discarded
    return color, discarded


def quantize_color(color: np.ndarray, mode: str = "round") -> np.ndarray:
    """Clamp to [0,1] and convert to unsigned bytes.

    ``"round"`` follows the GL ES spec (§2.1.2: round to nearest);
    ``"floor"`` follows the paper's printed equation (2):
    ``i = floor(f * (2^8 - 1))``.
    """
    clamped = np.clip(color, 0.0, 1.0)
    if mode == "floor":
        return np.floor(clamped * 255.0).astype(np.uint8)
    if mode == "round":
        return np.floor(clamped * 255.0 + 0.5).astype(np.uint8)
    raise ValueError(f"unknown quantization mode '{mode}'")


def _cast_uniform_floats(uniforms: Dict[str, Value], dtype) -> None:
    """Cast float uniform data to the device float dtype in place."""
    for value in uniforms.values():
        _cast_value(value, dtype)


def _cast_value(value: Value, dtype) -> None:
    if value.fields is not None:
        for sub in value.fields.values():
            _cast_value(sub, dtype)
        return
    if value.data is not None and np.issubdtype(value.data.dtype, np.floating):
        value.data = value.data.astype(dtype)
