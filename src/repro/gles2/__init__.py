"""A software implementation of OpenGL ES 2.0.

This package is the hardware substitute for the paper's evaluation
platform (the Raspberry Pi's VideoCore IV GPU): a conformant-enough
ES 2 context whose API surface enforces every restriction the paper's
techniques were designed to work around, backed by the GLSL ES 1.00
front end in :mod:`repro.glsl`.

Typical use::

    from repro.gles2 import GLES2Context, enums as gl

    ctx = GLES2Context(width=256, height=256, float_model="videocore")
    vs = ctx.glCreateShader(gl.GL_VERTEX_SHADER)
    ...
"""

from . import enums
from .context import GLES2Context
from .errors import GLError, SimulatorLimitation
from .limits import VIDEOCORE_IV_LIMITS, DeviceLimits
from .precision import (
    ExactModel,
    FloatModel,
    Ieee32Model,
    VideoCoreModel,
    make_model,
    mantissa_agreement_bits,
    truncate_mantissa,
)

__all__ = [
    "GLES2Context",
    "GLError",
    "SimulatorLimitation",
    "DeviceLimits",
    "VIDEOCORE_IV_LIMITS",
    "FloatModel",
    "ExactModel",
    "Ieee32Model",
    "VideoCoreModel",
    "make_model",
    "mantissa_agreement_bits",
    "truncate_mantissa",
    "enums",
]
