"""Shader and program objects (ES 2 §2.10).

``Shader`` wraps the GLSL front end: ``glCompileShader`` runs the
preprocessor, parser and type checker and produces a driver-style info
log on failure.  Successful compiles are memoised in a module-level
front-end cache keyed by (stage, source hash): recompiling identical
source — e.g. relaunching the same GPGPU kernel — returns the cached
``CheckedShader`` without touching the front end, and because the IR
compile cache (:func:`repro.glsl.ir.get_compiled`) hangs off the
``CheckedShader`` object itself, the lowered program artifact is
shared too.  ``Program`` links a vertex + fragment pair: varyings
are matched by name and type, uniforms from both stages are merged and
flattened into locations (including struct members and arrays, with
``glGetUniformLocation("s.field[3]")`` syntax), and attribute
locations are assigned (respecting ``glBindAttribLocation``).
"""

from __future__ import annotations

import hashlib
import re
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..glsl import ast_nodes  # noqa: F401  (re-exported for tooling)
from ..glsl.errors import GlslError
from ..glsl.optimize import optimize
from ..glsl.parser import parse
from ..glsl.preprocessor import preprocess
from ..glsl.typecheck import CheckedShader, ShaderStage, check
from ..glsl.types import BaseType, GlslType, TypeKind
from ..glsl.values import INT_DTYPE, Value
from . import enums


#: (stage, sha1(source)) -> CheckedShader for successful compiles.
#: Failures are never cached so the info log is regenerated each time.
_FRONTEND_CACHE: Dict[Tuple[str, str], CheckedShader] = {}
_FRONTEND_CACHE_MAX = 256

#: Mutable hit/miss tally for the front-end cache, exposed for tests
#: and the perf harness.  ``disk_hits`` counts the in-memory misses
#: that the persistent artifact store (:mod:`repro.core.cache`) served
#: instead of a fresh parse/typecheck; they also count as ``misses``
#: (of this in-process cache), preserving the historical meaning.
frontend_cache_stats = {"hits": 0, "misses": 0, "disk_hits": 0}

#: Fusion-signature marker the map-chain composer embeds in fused
#: kernel sources (see repro.core.codegen.fuse.compose_chain); the
#: signature becomes a component of the disk-cache keys of every
#: artifact compiled from that source.
_FUSION_MARKER = re.compile(r"//\s*gpgpu-fusion:\s*([0-9a-f]+)")


def _attach_artifact_attrs(checked: CheckedShader, source_digest: str,
                           source: str) -> None:
    """Stamp the front-end artifact with the identity the disk-cache
    layers key on: the source digest and (for fused map chains) the
    fusion signature."""
    checked.source_digest = source_digest
    match = _FUSION_MARKER.search(source)
    checked.fusion_signature = match.group(1) if match else ""


def frontend_cache_key(stage: str, source: str) -> Tuple[str, str]:
    """The program-cache key: (stage, source hash).  The second half of
    the full key — the float/precision model — is applied downstream by
    :func:`repro.glsl.ir.get_compiled`, which memoises per model on the
    CheckedShader this cache returns."""
    return (stage, hashlib.sha1(source.encode("utf-8")).hexdigest())


def clear_frontend_cache() -> None:
    """Drop all cached front-end artifacts and reset the tally."""
    _FRONTEND_CACHE.clear()
    frontend_cache_stats["hits"] = 0
    frontend_cache_stats["misses"] = 0
    frontend_cache_stats["disk_hits"] = 0


class Shader:
    """One shader object."""

    def __init__(self, name: int, shader_type: int):
        self.name = name
        self.type = shader_type
        self.source = ""
        self.compiled = False
        self.info_log = ""
        self.checked: Optional[CheckedShader] = None
        self.deleted = False
        #: Whether the last successful compile was served by the
        #: persistent artifact store (no fresh parse/typecheck ran in
        #: this process for this source).  The context counts these as
        #: ``disk_warm_compiles`` for the wall-time model.
        self.loaded_from_disk = False

    @property
    def stage(self) -> str:
        if self.type == enums.GL_VERTEX_SHADER:
            return ShaderStage.VERTEX
        return ShaderStage.FRAGMENT

    def compile(self) -> None:
        """glCompileShader: run the full front end — or hit the
        in-process cache, or warm-start from the persistent artifact
        store (:mod:`repro.core.cache`)."""
        from ..core import cache as artifact_cache

        self.compiled = False
        self.checked = None
        self.info_log = ""
        self.loaded_from_disk = False
        key = frontend_cache_key(self.stage, self.source)
        cached = _FRONTEND_CACHE.get(key)
        if cached is not None:
            frontend_cache_stats["hits"] += 1
            self.checked = cached
            self.compiled = True
            return
        frontend_cache_stats["misses"] += 1
        disk_key = None
        if artifact_cache.enabled():
            disk_key = artifact_cache.artifact_key(
                "frontend", key[1], stage=self.stage
            )
            data = artifact_cache.get(disk_key)
            if data is not None:
                checked = artifact_cache.load_checked(data)
                if checked is not None and checked.stage == self.stage:
                    _attach_artifact_attrs(checked, key[1], self.source)
                    frontend_cache_stats["disk_hits"] += 1
                    self.checked = checked
                    self.compiled = True
                    self.loaded_from_disk = True
                    if len(_FRONTEND_CACHE) >= _FRONTEND_CACHE_MAX:
                        _FRONTEND_CACHE.clear()
                    _FRONTEND_CACHE[key] = checked
                    return
                # Undeserialisable payload or wrong stage under a
                # colliding key: drop the entry and recompile.
                artifact_cache.invalidate(disk_key)
        try:
            preprocessed = preprocess(self.source)
            unit = optimize(parse(preprocessed.source))
            self.checked = check(unit, self.stage)
            _attach_artifact_attrs(self.checked, key[1], self.source)
            self.compiled = True
            if len(_FRONTEND_CACHE) >= _FRONTEND_CACHE_MAX:
                _FRONTEND_CACHE.clear()
            _FRONTEND_CACHE[key] = self.checked
            if disk_key is not None:
                artifact_cache.put(
                    disk_key, artifact_cache.dump_checked(self.checked),
                    "frontend",
                )
        except GlslError as exc:
            self.info_log = exc.info_log_entry() + "\n"


class UniformLeaf:
    """One flattened uniform slot (a scalar/vector/matrix/sampler leaf,
    possibly an array of them)."""

    def __init__(self, full_name: str, gtype: GlslType, length: int, location: int):
        self.full_name = full_name
        self.type = gtype  # element type (never an array)
        self.length = length
        self.location = location
        self.storage = _allocate_storage(gtype, length)
        #: For samplers: the bound texture unit per element.
        self.units = np.zeros(length, dtype=np.int64) if gtype.is_sampler() else None


def _allocate_storage(gtype: GlslType, length: int) -> Optional[np.ndarray]:
    if gtype.is_sampler():
        return None
    if gtype.kind == TypeKind.SCALAR:
        shape: Tuple[int, ...] = (length,)
    elif gtype.kind == TypeKind.VECTOR:
        shape = (length, gtype.size)
    elif gtype.kind == TypeKind.MATRIX:
        shape = (length, gtype.size, gtype.size)
    else:
        raise ValueError(f"cannot allocate uniform storage for {gtype}")
    if gtype.base == BaseType.INT:
        return np.zeros(shape, dtype=INT_DTYPE)
    if gtype.base == BaseType.BOOL:
        return np.zeros(shape, dtype=bool)
    return np.zeros(shape, dtype=np.float64)


class Program:
    """One program object."""

    def __init__(self, name: int):
        self.name = name
        self.shaders: List[Shader] = []
        self.linked = False
        self.validated = False
        self.info_log = ""
        self.deleted = False
        self.vertex: Optional[CheckedShader] = None
        self.fragment: Optional[CheckedShader] = None
        #: leaf full name -> UniformLeaf
        self.uniform_leaves: Dict[str, UniformLeaf] = {}
        #: location -> (leaf, element offset)
        self.uniform_locations: Dict[int, Tuple[UniformLeaf, int]] = {}
        #: top-level uniform name -> GlslType (merged across stages)
        self.uniform_types: Dict[str, GlslType] = {}
        #: attribute name -> location
        self.attribute_locations: Dict[str, int] = {}
        self.bound_attributes: Dict[str, int] = {}
        #: varying name -> GlslType (the linked interface)
        self.varying_types: Dict[str, GlslType] = {}

    # ------------------------------------------------------------------
    def attach(self, shader: Shader) -> bool:
        if any(s.type == shader.type for s in self.shaders):
            return False
        self.shaders.append(shader)
        return True

    def detach(self, shader: Shader) -> bool:
        if shader in self.shaders:
            self.shaders.remove(shader)
            return True
        return False

    # ------------------------------------------------------------------
    def link(self, max_vertex_attribs: int = 8) -> None:
        """glLinkProgram."""
        self.linked = False
        self.info_log = ""
        self.uniform_leaves.clear()
        self.uniform_locations.clear()
        self.uniform_types.clear()
        self.attribute_locations.clear()
        self.varying_types.clear()

        vertex = next((s for s in self.shaders if s.type == enums.GL_VERTEX_SHADER), None)
        fragment = next((s for s in self.shaders if s.type == enums.GL_FRAGMENT_SHADER), None)
        if vertex is None or fragment is None:
            self.info_log = "ERROR: a program needs one vertex and one fragment shader\n"
            return
        if not (vertex.compiled and fragment.compiled):
            self.info_log = "ERROR: attached shaders are not compiled\n"
            return
        self.vertex = vertex.checked
        self.fragment = fragment.checked

        # --- varying interface ------------------------------------------------
        vs_varyings = {g.name: g.type for g in self.vertex.varyings()}
        for symbol in self.fragment.varyings():
            if symbol.name not in vs_varyings:
                self.info_log = (
                    f"ERROR: varying '{symbol.name}' read in the fragment "
                    "shader but never declared in the vertex shader\n"
                )
                return
            if vs_varyings[symbol.name] != symbol.type:
                self.info_log = (
                    f"ERROR: varying '{symbol.name}' declared as "
                    f"{vs_varyings[symbol.name]} in the vertex shader but "
                    f"{symbol.type} in the fragment shader\n"
                )
                return
        self.varying_types = dict(vs_varyings)

        # --- uniforms ---------------------------------------------------------
        merged: Dict[str, GlslType] = {}
        for checked in (self.vertex, self.fragment):
            for symbol in checked.active_uniforms():
                existing = merged.get(symbol.name)
                if existing is not None and existing != symbol.type:
                    self.info_log = (
                        f"ERROR: uniform '{symbol.name}' has conflicting "
                        f"types across stages ({existing} vs {symbol.type})\n"
                    )
                    return
                merged[symbol.name] = symbol.type
        self.uniform_types = merged
        next_location = 0
        for uname in sorted(merged):
            next_location = self._flatten_uniform(uname, merged[uname], next_location)

        # --- attributes -------------------------------------------------------
        taken = set(self.bound_attributes.values())
        next_attr = 0
        for symbol in sorted(self.vertex.active_attributes(), key=lambda s: s.name):
            if symbol.name in self.bound_attributes:
                self.attribute_locations[symbol.name] = self.bound_attributes[symbol.name]
                continue
            while next_attr in taken:
                next_attr += 1
            if next_attr >= max_vertex_attribs:
                self.info_log = "ERROR: too many attributes\n"
                return
            self.attribute_locations[symbol.name] = next_attr
            taken.add(next_attr)
        self.linked = True

    def _flatten_uniform(self, name: str, gtype: GlslType, location: int) -> int:
        if gtype.is_struct():
            for fname, ftype in gtype.fields:
                location = self._flatten_uniform(f"{name}.{fname}", ftype, location)
            return location
        if gtype.is_array():
            element = gtype.element
            if element.is_struct():
                for i in range(gtype.length):
                    location = self._flatten_uniform(f"{name}[{i}]", element, location)
                return location
            leaf = UniformLeaf(name, element, gtype.length, location)
            self._register_leaf(leaf)
            return location + gtype.length
        leaf = UniformLeaf(name, gtype, 1, location)
        self._register_leaf(leaf)
        return location + 1

    def _register_leaf(self, leaf: UniformLeaf) -> None:
        self.uniform_leaves[leaf.full_name] = leaf
        for i in range(leaf.length):
            self.uniform_locations[leaf.location + i] = (leaf, i)

    # ------------------------------------------------------------------
    def uniform_location(self, name: str) -> int:
        """glGetUniformLocation (supports 'a[3]' and 's.f' forms)."""
        if name in self.uniform_leaves:
            return self.uniform_leaves[name].location
        if name.endswith("]") and "[" in name:
            base, __, index_text = name.rpartition("[")
            try:
                index = int(index_text[:-1])
            except ValueError:
                return -1
            leaf = self.uniform_leaves.get(base)
            if leaf is not None and 0 <= index < leaf.length:
                return leaf.location + index
        # 'name[0]' also addresses plain leaves.
        return -1

    def attribute_location(self, name: str) -> int:
        return self.attribute_locations.get(name, -1)

    # ------------------------------------------------------------------
    # Uniform setters (shared validation for the glUniform* family)
    # ------------------------------------------------------------------
    def set_uniform_floats(self, location: int, components: int, values: np.ndarray,
                           count: int) -> Optional[str]:
        """glUniform{1..4}f[v].  Returns an error message or None."""
        entry = self.uniform_locations.get(location)
        if entry is None:
            return "no uniform at this location"
        leaf, offset = entry
        if leaf.type.is_sampler() or leaf.type.base == BaseType.INT:
            return "float setter on a non-float uniform"
        expected = 1 if leaf.type.is_scalar() else leaf.type.size
        if leaf.type.is_matrix():
            return "use glUniformMatrix*fv for matrices"
        if components != expected and leaf.type.base != BaseType.BOOL:
            return f"uniform expects {expected} components, got {components}"
        values = np.asarray(values, dtype=np.float64).reshape(count, components)
        end = min(offset + count, leaf.length)
        span = end - offset
        if leaf.type.base == BaseType.BOOL:
            data = values[:span] != 0
        else:
            data = values[:span]
        if leaf.type.is_scalar():
            leaf.storage[offset:end] = data[:, 0]
        else:
            leaf.storage[offset:end] = data
        return None

    def set_uniform_ints(self, location: int, components: int, values: np.ndarray,
                         count: int) -> Optional[str]:
        """glUniform{1..4}i[v]."""
        entry = self.uniform_locations.get(location)
        if entry is None:
            return "no uniform at this location"
        leaf, offset = entry
        values = np.asarray(values, dtype=np.int64).reshape(count, components)
        end = min(offset + count, leaf.length)
        span = end - offset
        if leaf.type.is_sampler():
            if components != 1:
                return "samplers take a single int"
            leaf.units[offset:end] = values[:span, 0]
            return None
        if leaf.type.base == BaseType.FLOAT:
            return "int setter on a float uniform"
        expected = 1 if leaf.type.is_scalar() else leaf.type.size
        if components != expected:
            return f"uniform expects {expected} components, got {components}"
        if leaf.type.base == BaseType.BOOL:
            data = values[:span] != 0
        else:
            data = values[:span].astype(INT_DTYPE)
        if leaf.type.is_scalar():
            leaf.storage[offset:end] = data[:, 0]
        else:
            leaf.storage[offset:end] = data
        return None

    def set_uniform_matrix(self, location: int, order: int, values: np.ndarray,
                           count: int, transpose: bool) -> Optional[str]:
        """glUniformMatrix{2,3,4}fv.  ES 2 requires transpose == False."""
        if transpose:
            return "transpose must be GL_FALSE in OpenGL ES 2"
        entry = self.uniform_locations.get(location)
        if entry is None:
            return "no uniform at this location"
        leaf, offset = entry
        if not (leaf.type.is_matrix() and leaf.type.size == order):
            return f"uniform is not a mat{order}"
        values = np.asarray(values, dtype=np.float64).reshape(count, order, order)
        end = min(offset + count, leaf.length)
        # Column-major input matches our (col, row) storage directly.
        leaf.storage[offset:end] = values[: end - offset]
        return None

    # ------------------------------------------------------------------
    # Draw-time uniform Value assembly
    # ------------------------------------------------------------------
    def build_uniform_values(self, resolve_sampler) -> Dict[str, Value]:
        """Build interpreter Values for all uniforms.

        ``resolve_sampler(unit, gtype)`` maps a texture unit to the
        sampler backend object (or None).
        """
        float_cache: Dict[str, Value] = {}
        for name, gtype in self.uniform_types.items():
            float_cache[name] = self._build_value(name, gtype, resolve_sampler)
        return float_cache

    def _build_value(self, name: str, gtype: GlslType, resolve_sampler) -> Value:
        if gtype.is_struct():
            fields = {
                fname: self._build_value(f"{name}.{fname}", ftype, resolve_sampler)
                for fname, ftype in gtype.fields
            }
            return Value(gtype, fields=fields)
        if gtype.is_array() and gtype.element.is_struct():
            fields = {
                str(i): self._build_value(f"{name}[{i}]", gtype.element, resolve_sampler)
                for i in range(gtype.length)
            }
            return Value(gtype, fields=fields)
        leaf = self.uniform_leaves[name]
        if gtype.is_sampler():
            backend = resolve_sampler(int(leaf.units[0]), gtype)
            return Value(gtype, sampler=backend)
        if gtype.is_array():
            data = leaf.storage[None, ...]  # (1, L, ...)
            return Value(gtype, np.array(data))
        data = leaf.storage[0][None, ...]  # (1, ...) single element
        return Value(gtype, np.array(data))
