"""The OpenGL ES 2 context: state machine and gl* entry points.

``GLES2Context`` exposes the C API's functions as methods with the
same names and argument conventions, so GPGPU code written against it
reads like real EGL/GLES client code.  The simulator enforces the ES 2
restrictions that motivate the paper (§II-B):

* textures and framebuffers are unsigned-byte only (limitations 5/6),
* quads do not exist; triangles must be used (limitation 2),
* there is no ``glGetTexImage`` — texture data returns to the CPU only
  through ``glReadPixels`` on a framebuffer the texture is attached to
  (limitation 7),
* one color attachment / draw buffer (limitation 8).

Construction parameters choose the device float model (``exact``,
``ieee32``, ``videocore`` — see :mod:`repro.gles2.precision`) and the
framebuffer quantisation mode (spec ``round`` vs paper-eq.(2)
``floor``).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..perf import trace
from ..perf.counters import ContextStats
from . import enums
from .buffer_objects import BufferObject
from .errors import ErrorState, SimulatorLimitation
from .framebuffer import DefaultFramebuffer, FramebufferObject
from .limits import VIDEOCORE_IV_LIMITS, DeviceLimits
from .pipeline import VertexAttribState, execute_draw
from .precision import FloatModel, make_model
from .shader import Program, Shader
from .texture import Texture

_INDEX_DTYPES = {
    enums.GL_UNSIGNED_BYTE: np.uint8,
    enums.GL_UNSIGNED_SHORT: np.uint16,
    enums.GL_UNSIGNED_INT: np.uint32,  # OES_element_index_uint
}


class GLES2Context:
    """A software OpenGL ES 2 rendering context."""

    def __init__(
        self,
        width: int = 64,
        height: int = 64,
        float_model: Union[str, FloatModel] = "ieee32",
        quantization: str = "round",
        limits: DeviceLimits = VIDEOCORE_IV_LIMITS,
        strict_errors: bool = True,
        max_loop_iterations: int = 65536,
        execution_backend: str = "ast",
        tile_size: Optional[int] = None,
        shade_workers: Optional[int] = None,
    ):
        if isinstance(float_model, str):
            float_model = make_model(float_model)
        if execution_backend not in ("ast", "ir", "jit"):
            raise ValueError(
                f"unknown execution backend '{execution_backend}' "
                "(expected 'ast', 'ir' or 'jit')"
            )
        self.float_model = float_model
        self.quantization = quantization
        self.limits = limits
        self.max_loop_iterations = max_loop_iterations
        #: How shaders run: "ast" walks the typed AST (reference
        #: semantics), "ir" executes the compiled linear IR, "jit"
        #: runs generated straight-line numpy code (IR fallback for
        #: constructs outside the JIT subset).
        self.execution_backend = execution_backend
        # Tiled / multiprocess fragment shading knobs.  Constructor
        # arguments left unset fall back to the environment
        # (REPRO_TILE_SIZE / REPRO_SHADE_WORKERS), so deployments can
        # turn on worker shading without touching call sites.
        # Validated centrally (repro.core.knobs): a malformed or
        # out-of-range knob falls back to its default with a single
        # warning instead of raising ValueError mid-draw.
        from ..core.knobs import int_knob

        if tile_size is None:
            tile_size = int_knob("REPRO_TILE_SIZE", None, minimum=1)
        if shade_workers is None:
            shade_workers = int_knob("REPRO_SHADE_WORKERS", 0, minimum=0)
        #: Fragment-tile edge in pixels (None = automatic policy, see
        #: pipeline.execute_draw).
        self.tile_size = tile_size
        #: Worker processes for fragment shading (0 = in-process).
        self.shade_workers = shade_workers
        self.error_state = ErrorState(strict=strict_errors)
        self.stats = ContextStats()
        # Baseline snapshots of the process-wide disk-cache and
        # fault-path counters: per-context stats report the deltas
        # accrued while this context was doing the compiling/drawing.
        from ..perf.counters import disk_cache_stats, fault_path_stats

        self._disk_stats_last = disk_cache_stats.snapshot()
        self._fault_stats_last = fault_path_stats.snapshot()
        trace.instant("device.context", "device", {
            "float_model": getattr(float_model, "name",
                                   type(float_model).__name__),
            "backend": execution_backend,
            "tile_size": tile_size,
            "shade_workers": shade_workers,
        })

        self._default_framebuffer = DefaultFramebuffer(width, height)
        self._textures: Dict[int, Texture] = {}
        self._buffers: Dict[int, BufferObject] = {}
        self._shaders: Dict[int, Shader] = {}
        self._programs: Dict[int, Program] = {}
        self._framebuffers: Dict[int, FramebufferObject] = {}
        self._next_name = {"texture": 1, "buffer": 1, "shader": 1,
                           "program": 1, "framebuffer": 1}

        self._bound_texture_2d: Dict[int, int] = {}  # unit -> texture name
        self._active_texture_unit = 0
        self._bound_array_buffer = 0
        self._bound_element_buffer = 0
        self._bound_framebuffer = 0
        self._current_program = 0
        self._attribs: Dict[int, VertexAttribState] = {}
        self._viewport = (0, 0, width, height)
        self._clear_color = (0.0, 0.0, 0.0, 0.0)
        #: glScissor box; takes effect only while GL_SCISSOR_TEST is
        #: enabled.  Initial box covers the window (ES 2 §4.1.2).
        self._scissor = (0, 0, width, height)
        self._capabilities: Dict[int, bool] = {}
        self._pixel_store: Dict[int, int] = {
            enums.GL_UNPACK_ALIGNMENT: 4,
            enums.GL_PACK_ALIGNMENT: 4,
        }

    # ==================================================================
    # Error handling
    # ==================================================================
    def glGetError(self) -> int:
        return self.error_state.fetch()

    def _error(self, code: int, message: str = "") -> None:
        self.error_state.record(code, message)

    # ==================================================================
    # State queries
    # ==================================================================
    def glGetString(self, name: int) -> str:
        table = {
            enums.GL_VENDOR: self.limits.vendor,
            enums.GL_RENDERER: self.limits.renderer,
            enums.GL_VERSION: self.limits.version,
            enums.GL_SHADING_LANGUAGE_VERSION: self.limits.shading_language_version,
            enums.GL_EXTENSIONS: " ".join(self.limits.extensions),
        }
        if name not in table:
            self._error(enums.GL_INVALID_ENUM, "glGetString")
            return ""
        return table[name]

    def glGetIntegerv(self, pname: int) -> int:
        table = {
            enums.GL_MAX_TEXTURE_SIZE: self.limits.max_texture_size,
            enums.GL_MAX_VERTEX_ATTRIBS: self.limits.max_vertex_attribs,
            enums.GL_MAX_VERTEX_UNIFORM_VECTORS: self.limits.max_vertex_uniform_vectors,
            enums.GL_MAX_FRAGMENT_UNIFORM_VECTORS: self.limits.max_fragment_uniform_vectors,
            enums.GL_MAX_VARYING_VECTORS: self.limits.max_varying_vectors,
            enums.GL_MAX_TEXTURE_IMAGE_UNITS: self.limits.max_texture_image_units,
            enums.GL_MAX_VERTEX_TEXTURE_IMAGE_UNITS: self.limits.max_vertex_texture_image_units,
            enums.GL_MAX_COMBINED_TEXTURE_IMAGE_UNITS: self.limits.max_combined_texture_image_units,
            enums.GL_MAX_RENDERBUFFER_SIZE: self.limits.max_renderbuffer_size,
            enums.GL_FRAMEBUFFER_BINDING: self._bound_framebuffer,
            enums.GL_ARRAY_BUFFER_BINDING: self._bound_array_buffer,
            enums.GL_ELEMENT_ARRAY_BUFFER_BINDING: self._bound_element_buffer,
            enums.GL_CURRENT_PROGRAM: self._current_program,
            enums.GL_ACTIVE_TEXTURE: enums.GL_TEXTURE0 + self._active_texture_unit,
        }
        if pname not in table:
            self._error(enums.GL_INVALID_ENUM, "glGetIntegerv")
            return 0
        return table[pname]

    def glGetShaderPrecisionFormat(self, shadertype: int, precisiontype: int):
        """Returns ((range_min, range_max), precision) — the call the
        paper's §IV-E uses to discover the device float format."""
        names = {
            enums.GL_LOW_FLOAT: "lowp_float",
            enums.GL_MEDIUM_FLOAT: "mediump_float",
            enums.GL_HIGH_FLOAT: "highp_float",
            enums.GL_LOW_INT: "lowp_int",
            enums.GL_MEDIUM_INT: "mediump_int",
            enums.GL_HIGH_INT: "highp_int",
        }
        if precisiontype not in names or shadertype not in (
            enums.GL_VERTEX_SHADER,
            enums.GL_FRAGMENT_SHADER,
        ):
            self._error(enums.GL_INVALID_ENUM, "glGetShaderPrecisionFormat")
            return (0, 0), 0
        fmt = self.float_model.precision_format(names[precisiontype])
        return (fmt.range_min, fmt.range_max), fmt.precision

    def glEnable(self, cap: int) -> None:
        self._capabilities[cap] = True

    def glDisable(self, cap: int) -> None:
        self._capabilities[cap] = False

    def glIsEnabled(self, cap: int) -> bool:
        return self._capabilities.get(cap, False)

    def glFinish(self) -> None:
        pass  # execution is synchronous in the simulator

    def glFlush(self) -> None:
        pass

    def glPixelStorei(self, pname: int, param: int) -> None:
        if pname not in (enums.GL_UNPACK_ALIGNMENT, enums.GL_PACK_ALIGNMENT):
            self._error(enums.GL_INVALID_ENUM, "glPixelStorei")
            return
        if param not in (1, 2, 4, 8):
            self._error(enums.GL_INVALID_VALUE, "glPixelStorei")
            return
        self._pixel_store[pname] = param

    # ------------------------------------------------------------------
    # Object predicates
    # ------------------------------------------------------------------
    def glIsTexture(self, name: int) -> bool:
        return name in self._textures and not self._textures[name].deleted

    def glIsBuffer(self, name: int) -> bool:
        return name in self._buffers and not self._buffers[name].deleted

    def glIsShader(self, name: int) -> bool:
        return name in self._shaders and not self._shaders[name].deleted

    def glIsProgram(self, name: int) -> bool:
        return name in self._programs and not self._programs[name].deleted

    def glIsFramebuffer(self, name: int) -> bool:
        return name in self._framebuffers and not self._framebuffers[name].deleted

    # ==================================================================
    # Textures
    # ==================================================================
    def glGenTextures(self, n: int) -> List[int]:
        names = []
        for __ in range(n):
            name = self._next_name["texture"]
            self._next_name["texture"] += 1
            self._textures[name] = Texture(name)
            names.append(name)
        return names

    def glDeleteTextures(self, names) -> None:
        for name in names:
            tex = self._textures.pop(name, None)
            if tex is not None:
                tex.deleted = True
        for unit, bound in list(self._bound_texture_2d.items()):
            if bound in names:
                del self._bound_texture_2d[unit]

    def glActiveTexture(self, texture: int) -> None:
        unit = texture - enums.GL_TEXTURE0
        if not 0 <= unit < self.limits.max_combined_texture_image_units:
            self._error(enums.GL_INVALID_ENUM, "glActiveTexture")
            return
        self._active_texture_unit = unit

    def glBindTexture(self, target: int, texture: int) -> None:
        if target != enums.GL_TEXTURE_2D:
            if target == enums.GL_TEXTURE_CUBE_MAP:
                raise SimulatorLimitation("cube maps are not simulated")
            self._error(enums.GL_INVALID_ENUM, "glBindTexture")
            return
        if texture != 0 and texture not in self._textures:
            # ES allows binding unused names (they spring into being).
            self._textures[texture] = Texture(texture)
        self._bound_texture_2d[self._active_texture_unit] = texture

    def _texture_at_unit(self, unit: int) -> Optional[Texture]:
        name = self._bound_texture_2d.get(unit, 0)
        return self._textures.get(name)

    def _current_texture(self) -> Optional[Texture]:
        return self._texture_at_unit(self._active_texture_unit)

    def glTexParameteri(self, target: int, pname: int, param: int) -> None:
        if target != enums.GL_TEXTURE_2D:
            self._error(enums.GL_INVALID_ENUM, "glTexParameteri target")
            return
        tex = self._current_texture()
        if tex is None:
            self._error(enums.GL_INVALID_OPERATION, "no texture bound")
            return
        if pname not in tex.params:
            self._error(enums.GL_INVALID_ENUM, "glTexParameteri pname")
            return
        tex.params[pname] = param

    def glGetTexParameteriv(self, target: int, pname: int) -> int:
        if target != enums.GL_TEXTURE_2D:
            self._error(enums.GL_INVALID_ENUM, "glGetTexParameteriv")
            return 0
        tex = self._current_texture()
        if tex is None:
            self._error(enums.GL_INVALID_OPERATION, "no texture bound")
            return 0
        if pname not in tex.params:
            self._error(enums.GL_INVALID_ENUM, "glGetTexParameteriv pname")
            return 0
        return tex.params[pname]

    def glGenerateMipmap(self, target: int) -> None:
        """Mark the bound texture's mipmap chain as generated.

        The simulator keeps no pyramid (minified samples read the base
        level), but completeness rules honour the flag — including the
        ES 2 rule that NPOT textures cannot have mipmaps.
        """
        if target != enums.GL_TEXTURE_2D:
            self._error(enums.GL_INVALID_ENUM, "glGenerateMipmap")
            return
        tex = self._current_texture()
        if tex is None or tex.data is None:
            self._error(enums.GL_INVALID_OPERATION, "glGenerateMipmap")
            return
        width, height = tex.width, tex.height
        if width & (width - 1) or height & (height - 1):
            self._error(
                enums.GL_INVALID_OPERATION,
                "glGenerateMipmap on a non-power-of-two texture "
                "(illegal in OpenGL ES 2)",
            )
            return
        tex.has_mipmaps = True

    def glTexImage2D(
        self,
        target: int,
        level: int,
        internalformat: int,
        width: int,
        height: int,
        border: int,
        fmt: int,
        type_: int,
        pixels,
    ) -> None:
        """Upload texel data.

        This is where the ES 2 restriction bites: ``type`` must be
        GL_UNSIGNED_BYTE (no GL_FLOAT — limitation 5).  Any numeric
        payload must already be packed into bytes by the paper's §IV
        transformations.
        """
        if target != enums.GL_TEXTURE_2D:
            self._error(enums.GL_INVALID_ENUM, "glTexImage2D target")
            return
        if type_ != enums.GL_UNSIGNED_BYTE:
            # GL_FLOAT textures are exactly what ES 2 does not have.
            self._error(
                enums.GL_INVALID_ENUM,
                "OpenGL ES 2 textures accept GL_UNSIGNED_BYTE data only "
                "(no float texture formats — see paper §II-B limitation 5)",
            )
            return
        if internalformat != fmt:
            self._error(
                enums.GL_INVALID_OPERATION,
                "internalformat must match format in OpenGL ES 2",
            )
            return
        if fmt not in enums.FORMAT_COMPONENTS:
            self._error(enums.GL_INVALID_ENUM, "glTexImage2D format")
            return
        if border != 0:
            self._error(enums.GL_INVALID_VALUE, "border must be 0")
            return
        if level != 0:
            raise SimulatorLimitation("mipmap levels are not simulated")
        if not (0 < width <= self.limits.max_texture_size
                and 0 < height <= self.limits.max_texture_size):
            self._error(enums.GL_INVALID_VALUE, "texture size")
            return
        tex = self._current_texture()
        if tex is None:
            self._error(enums.GL_INVALID_OPERATION, "no texture bound")
            return
        nbytes = width * height * enums.FORMAT_COMPONENTS[fmt]
        with trace.span("upload.texture", "upload", {"bytes": nbytes}):
            array = None
            if pixels is not None:
                array = np.asarray(pixels, dtype=np.uint8)
            tex.set_image(width, height, fmt, array)
        self.stats.texture_upload_bytes += nbytes

    def glCopyTexImage2D(self, target: int, level: int, internalformat: int,
                         x: int, y: int, width: int, height: int,
                         border: int) -> None:
        """Copy the current framebuffer into the bound texture — the
        GPU-side alternative to readback when data should *stay* on
        the device between passes."""
        if target != enums.GL_TEXTURE_2D or border != 0 or level != 0:
            self._error(enums.GL_INVALID_VALUE, "glCopyTexImage2D")
            return
        if internalformat not in (enums.GL_RGBA, enums.GL_RGB):
            self._error(enums.GL_INVALID_ENUM, "glCopyTexImage2D format")
            return
        fb = self._current_framebuffer()
        if fb.status() != enums.GL_FRAMEBUFFER_COMPLETE:
            self._error(enums.GL_INVALID_FRAMEBUFFER_OPERATION,
                        "glCopyTexImage2D")
            return
        tex = self._current_texture()
        if tex is None:
            self._error(enums.GL_INVALID_OPERATION, "no texture bound")
            return
        buffer = fb.color_buffer()
        fb_h, fb_w = buffer.shape[0], buffer.shape[1]
        pixels = np.zeros((height, width, 4), dtype=np.uint8)
        pixels[:, :, 3] = 255
        x0, x1 = max(x, 0), min(x + width, fb_w)
        y0, y1 = max(y, 0), min(y + height, fb_h)
        if x0 < x1 and y0 < y1:
            pixels[y0 - y : y1 - y, x0 - x : x1 - x] = buffer[y0:y1, x0:x1]
        components = enums.FORMAT_COMPONENTS[internalformat]
        tex.set_image(width, height, internalformat,
                      pixels[:, :, :components])

    def glTexSubImage2D(self, target, level, xoffset, yoffset, width, height,
                        fmt, type_, pixels) -> None:
        if type_ != enums.GL_UNSIGNED_BYTE:
            self._error(enums.GL_INVALID_ENUM, "GL_UNSIGNED_BYTE only")
            return
        tex = self._current_texture()
        if tex is None or tex.data is None:
            self._error(enums.GL_INVALID_OPERATION, "no texture storage")
            return
        with trace.span("upload.texture", "upload") as sp:
            array = np.asarray(pixels, dtype=np.uint8).reshape(
                height, width, enums.FORMAT_COMPONENTS[fmt]
            )
            tex.set_sub_image(xoffset, yoffset, array, fmt)
            if sp is not None:
                sp.args["bytes"] = array.nbytes
        self.stats.texture_upload_bytes += array.nbytes

    # ==================================================================
    # Buffers
    # ==================================================================
    def glGenBuffers(self, n: int) -> List[int]:
        names = []
        for __ in range(n):
            name = self._next_name["buffer"]
            self._next_name["buffer"] += 1
            self._buffers[name] = BufferObject(name)
            names.append(name)
        return names

    def glDeleteBuffers(self, names) -> None:
        for name in names:
            buf = self._buffers.pop(name, None)
            if buf is not None:
                buf.deleted = True
        if self._bound_array_buffer in names:
            self._bound_array_buffer = 0
        if self._bound_element_buffer in names:
            self._bound_element_buffer = 0

    def glBindBuffer(self, target: int, buffer: int) -> None:
        if buffer != 0 and buffer not in self._buffers:
            self._buffers[buffer] = BufferObject(buffer)
        if target == enums.GL_ARRAY_BUFFER:
            self._bound_array_buffer = buffer
        elif target == enums.GL_ELEMENT_ARRAY_BUFFER:
            self._bound_element_buffer = buffer
        else:
            self._error(enums.GL_INVALID_ENUM, "glBindBuffer")

    def _bound_buffer(self, target: int) -> Optional[BufferObject]:
        name = (
            self._bound_array_buffer
            if target == enums.GL_ARRAY_BUFFER
            else self._bound_element_buffer
        )
        return self._buffers.get(name)

    def glBufferData(self, target: int, size_or_data, usage: int,
                     data=None) -> None:
        """glBufferData(target, size, usage) or (target, data, usage).

        Mirrors the common Python binding convenience: pass bytes or an
        ndarray directly as the second argument.
        """
        buf = self._bound_buffer(target)
        if buf is None:
            self._error(enums.GL_INVALID_OPERATION, "no buffer bound")
            return
        if isinstance(size_or_data, (int, np.integer)):
            size = int(size_or_data)
        else:
            data = size_or_data
            size = np.asarray(data).nbytes if not isinstance(
                data, (bytes, bytearray, memoryview)
            ) else len(data)
        with trace.span("upload.buffer", "upload", {"bytes": size}):
            buf.set_data(data, size, usage)
        self.stats.buffer_upload_bytes += size

    def glGetBufferParameteriv(self, target: int, pname: int) -> int:
        buf = self._bound_buffer(target)
        if buf is None:
            self._error(enums.GL_INVALID_OPERATION, "no buffer bound")
            return 0
        if pname == enums.GL_BUFFER_SIZE:
            return buf.size
        if pname == enums.GL_BUFFER_USAGE:
            return buf.usage
        self._error(enums.GL_INVALID_ENUM, "glGetBufferParameteriv")
        return 0

    def glBufferSubData(self, target: int, offset: int, data) -> None:
        buf = self._bound_buffer(target)
        if buf is None or buf.data is None:
            self._error(enums.GL_INVALID_OPERATION, "no buffer storage")
            return
        buf.set_sub_data(offset, data)

    # ==================================================================
    # Shaders and programs
    # ==================================================================
    def glCreateShader(self, shader_type: int) -> int:
        if shader_type not in (enums.GL_VERTEX_SHADER, enums.GL_FRAGMENT_SHADER):
            self._error(enums.GL_INVALID_ENUM, "glCreateShader")
            return 0
        name = self._next_name["shader"]
        self._next_name["shader"] += 1
        self._shaders[name] = Shader(name, shader_type)
        return name

    def glDeleteShader(self, shader: int) -> None:
        obj = self._shaders.get(shader)
        if obj is not None:
            obj.deleted = True

    def glShaderSource(self, shader: int, source: str) -> None:
        obj = self._shaders.get(shader)
        if obj is None:
            self._error(enums.GL_INVALID_VALUE, "glShaderSource")
            return
        obj.source = source

    def glCompileShader(self, shader: int) -> None:
        obj = self._shaders.get(shader)
        if obj is None:
            self._error(enums.GL_INVALID_VALUE, "glCompileShader")
            return
        with trace.span("compile.shader", "compile") as sp:
            obj.compile()
            if sp is not None:
                sp.args["shader"] = shader
                sp.args["stage"] = (
                    "vertex" if obj.type == enums.GL_VERTEX_SHADER
                    else "fragment"
                )
                sp.args["from_disk"] = bool(
                    getattr(obj, "loaded_from_disk", False)
                )
        self.stats.shader_compiles += 1
        if getattr(obj, "loaded_from_disk", False):
            self.stats.disk_warm_compiles += 1
        self._sync_disk_cache_stats()

    def glGetShaderiv(self, shader: int, pname: int) -> int:
        obj = self._shaders.get(shader)
        if obj is None:
            self._error(enums.GL_INVALID_VALUE, "glGetShaderiv")
            return 0
        if pname == enums.GL_COMPILE_STATUS:
            return enums.GL_TRUE if obj.compiled else enums.GL_FALSE
        if pname == enums.GL_INFO_LOG_LENGTH:
            return len(obj.info_log)
        if pname == enums.GL_SHADER_TYPE:
            return obj.type
        if pname == enums.GL_DELETE_STATUS:
            return enums.GL_TRUE if obj.deleted else enums.GL_FALSE
        self._error(enums.GL_INVALID_ENUM, "glGetShaderiv")
        return 0

    def glGetShaderInfoLog(self, shader: int) -> str:
        obj = self._shaders.get(shader)
        return "" if obj is None else obj.info_log

    def glCreateProgram(self) -> int:
        name = self._next_name["program"]
        self._next_name["program"] += 1
        self._programs[name] = Program(name)
        return name

    def glDeleteProgram(self, program: int) -> None:
        obj = self._programs.get(program)
        if obj is not None:
            obj.deleted = True

    def glAttachShader(self, program: int, shader: int) -> None:
        prog = self._programs.get(program)
        sh = self._shaders.get(shader)
        if prog is None or sh is None:
            self._error(enums.GL_INVALID_VALUE, "glAttachShader")
            return
        if not prog.attach(sh):
            self._error(enums.GL_INVALID_OPERATION, "shader of this type "
                        "already attached")

    def glDetachShader(self, program: int, shader: int) -> None:
        prog = self._programs.get(program)
        sh = self._shaders.get(shader)
        if prog is None or sh is None or not prog.detach(sh):
            self._error(enums.GL_INVALID_VALUE, "glDetachShader")

    def glBindAttribLocation(self, program: int, index: int, name: str) -> None:
        prog = self._programs.get(program)
        if prog is None:
            self._error(enums.GL_INVALID_VALUE, "glBindAttribLocation")
            return
        if not 0 <= index < self.limits.max_vertex_attribs:
            self._error(enums.GL_INVALID_VALUE, "attrib index out of range")
            return
        prog.bound_attributes[name] = index

    def glLinkProgram(self, program: int) -> None:
        prog = self._programs.get(program)
        if prog is None:
            self._error(enums.GL_INVALID_VALUE, "glLinkProgram")
            return
        prog.link(max_vertex_attribs=self.limits.max_vertex_attribs)
        self.stats.program_links += 1

    def glGetProgramiv(self, program: int, pname: int) -> int:
        prog = self._programs.get(program)
        if prog is None:
            self._error(enums.GL_INVALID_VALUE, "glGetProgramiv")
            return 0
        if pname == enums.GL_LINK_STATUS:
            return enums.GL_TRUE if prog.linked else enums.GL_FALSE
        if pname == enums.GL_VALIDATE_STATUS:
            return enums.GL_TRUE if prog.validated else enums.GL_FALSE
        if pname == enums.GL_INFO_LOG_LENGTH:
            return len(prog.info_log)
        if pname == enums.GL_ATTACHED_SHADERS:
            return len(prog.shaders)
        if pname == enums.GL_ACTIVE_UNIFORMS:
            return len(prog.uniform_leaves)
        if pname == enums.GL_ACTIVE_ATTRIBUTES:
            return len(prog.attribute_locations)
        self._error(enums.GL_INVALID_ENUM, "glGetProgramiv")
        return 0

    def glGetProgramInfoLog(self, program: int) -> str:
        prog = self._programs.get(program)
        return "" if prog is None else prog.info_log

    def glUseProgram(self, program: int) -> None:
        if program != 0 and program not in self._programs:
            self._error(enums.GL_INVALID_VALUE, "glUseProgram")
            return
        self._current_program = program

    def glGetUniformLocation(self, program: int, name: str) -> int:
        prog = self._programs.get(program)
        if prog is None or not prog.linked:
            self._error(enums.GL_INVALID_OPERATION, "program not linked")
            return -1
        return prog.uniform_location(name)

    def glGetAttribLocation(self, program: int, name: str) -> int:
        prog = self._programs.get(program)
        if prog is None or not prog.linked:
            self._error(enums.GL_INVALID_OPERATION, "program not linked")
            return -1
        return prog.attribute_location(name)

    def glValidateProgram(self, program: int) -> None:
        prog = self._programs.get(program)
        if prog is None:
            self._error(enums.GL_INVALID_VALUE, "glValidateProgram")
            return
        prog.validated = prog.linked

    def glGetActiveUniform(self, program: int, index: int):
        """Returns (name, size, gl_type) of the index-th active
        uniform leaf, like the C API (size > 1 for arrays)."""
        prog = self._programs.get(program)
        if prog is None or not prog.linked:
            self._error(enums.GL_INVALID_OPERATION, "program not linked")
            return "", 0, 0
        leaves = sorted(prog.uniform_leaves.values(), key=lambda l: l.location)
        if not 0 <= index < len(leaves):
            self._error(enums.GL_INVALID_VALUE, "glGetActiveUniform index")
            return "", 0, 0
        leaf = leaves[index]
        name = leaf.full_name + ("[0]" if leaf.length > 1 else "")
        return name, leaf.length, _gl_type_of(leaf.type)

    def glGetActiveAttrib(self, program: int, index: int):
        """Returns (name, size, gl_type) of the index-th attribute."""
        prog = self._programs.get(program)
        if prog is None or not prog.linked:
            self._error(enums.GL_INVALID_OPERATION, "program not linked")
            return "", 0, 0
        names = sorted(prog.attribute_locations,
                       key=lambda n: prog.attribute_locations[n])
        if not 0 <= index < len(names):
            self._error(enums.GL_INVALID_VALUE, "glGetActiveAttrib index")
            return "", 0, 0
        name = names[index]
        symbol = next(
            s for s in prog.vertex.active_attributes() if s.name == name
        )
        return name, 1, _gl_type_of(symbol.type)

    def glGetUniformfv(self, program: int, location: int):
        """Read back a float uniform's current value (numpy array)."""
        prog = self._programs.get(program)
        if prog is None or not prog.linked:
            self._error(enums.GL_INVALID_OPERATION, "program not linked")
            return np.zeros(0)
        entry = prog.uniform_locations.get(location)
        if entry is None or entry[0].storage is None:
            self._error(enums.GL_INVALID_OPERATION, "glGetUniformfv")
            return np.zeros(0)
        leaf, offset = entry
        return np.array(leaf.storage[offset], dtype=np.float64).reshape(-1)

    # ------------------------------------------------------------------
    # glUniform* family
    # ------------------------------------------------------------------
    def _uniform_program(self) -> Optional[Program]:
        prog = self._programs.get(self._current_program)
        if prog is None or not prog.linked:
            self._error(enums.GL_INVALID_OPERATION, "no program in use")
            return None
        return prog

    def _set_uniform_f(self, location: int, components: int, values, count: int) -> None:
        prog = self._uniform_program()
        if prog is None:
            return
        if location == -1:
            return  # silently ignored, per spec
        message = prog.set_uniform_floats(location, components,
                                          np.asarray(values, dtype=np.float64),
                                          count)
        if message:
            self._error(enums.GL_INVALID_OPERATION, message)
        else:
            self.stats.uniform_updates += 1

    def _set_uniform_i(self, location: int, components: int, values, count: int) -> None:
        prog = self._uniform_program()
        if prog is None:
            return
        if location == -1:
            return
        message = prog.set_uniform_ints(location, components,
                                        np.asarray(values, dtype=np.int64),
                                        count)
        if message:
            self._error(enums.GL_INVALID_OPERATION, message)
        else:
            self.stats.uniform_updates += 1

    def glUniform1f(self, location, x):
        self._set_uniform_f(location, 1, [x], 1)

    def glUniform2f(self, location, x, y):
        self._set_uniform_f(location, 2, [x, y], 1)

    def glUniform3f(self, location, x, y, z):
        self._set_uniform_f(location, 3, [x, y, z], 1)

    def glUniform4f(self, location, x, y, z, w):
        self._set_uniform_f(location, 4, [x, y, z, w], 1)

    def glUniform1i(self, location, x):
        self._set_uniform_i(location, 1, [x], 1)

    def glUniform2i(self, location, x, y):
        self._set_uniform_i(location, 2, [x, y], 1)

    def glUniform3i(self, location, x, y, z):
        self._set_uniform_i(location, 3, [x, y, z], 1)

    def glUniform4i(self, location, x, y, z, w):
        self._set_uniform_i(location, 4, [x, y, z, w], 1)

    def glUniform1fv(self, location, count, values):
        self._set_uniform_f(location, 1, values, count)

    def glUniform2fv(self, location, count, values):
        self._set_uniform_f(location, 2, values, count)

    def glUniform3fv(self, location, count, values):
        self._set_uniform_f(location, 3, values, count)

    def glUniform4fv(self, location, count, values):
        self._set_uniform_f(location, 4, values, count)

    def glUniform1iv(self, location, count, values):
        self._set_uniform_i(location, 1, values, count)

    def glUniform2iv(self, location, count, values):
        self._set_uniform_i(location, 2, values, count)

    def glUniform3iv(self, location, count, values):
        self._set_uniform_i(location, 3, values, count)

    def glUniform4iv(self, location, count, values):
        self._set_uniform_i(location, 4, values, count)

    def _set_uniform_matrix(self, location, order, count, transpose, values):
        prog = self._uniform_program()
        if prog is None or location == -1:
            return
        message = prog.set_uniform_matrix(
            location, order, np.asarray(values, dtype=np.float64), count,
            bool(transpose),
        )
        if message:
            self._error(enums.GL_INVALID_OPERATION, message)
        else:
            self.stats.uniform_updates += 1

    def glUniformMatrix2fv(self, location, count, transpose, values):
        self._set_uniform_matrix(location, 2, count, transpose, values)

    def glUniformMatrix3fv(self, location, count, transpose, values):
        self._set_uniform_matrix(location, 3, count, transpose, values)

    def glUniformMatrix4fv(self, location, count, transpose, values):
        self._set_uniform_matrix(location, 4, count, transpose, values)

    # ==================================================================
    # Vertex attributes
    # ==================================================================
    def _attrib(self, index: int) -> Optional[VertexAttribState]:
        if not 0 <= index < self.limits.max_vertex_attribs:
            self._error(enums.GL_INVALID_VALUE, "attrib index out of range")
            return None
        return self._attribs.setdefault(index, VertexAttribState())

    def glEnableVertexAttribArray(self, index: int) -> None:
        state = self._attrib(index)
        if state is not None:
            state.enabled = True

    def glDisableVertexAttribArray(self, index: int) -> None:
        state = self._attrib(index)
        if state is not None:
            state.enabled = False

    def glVertexAttribPointer(self, index: int, size: int, type_: int,
                              normalized: bool, stride: int, pointer) -> None:
        state = self._attrib(index)
        if state is None:
            return
        if not 1 <= size <= 4:
            self._error(enums.GL_INVALID_VALUE, "attrib size")
            return
        if type_ not in (enums.GL_FLOAT, enums.GL_BYTE, enums.GL_UNSIGNED_BYTE,
                         enums.GL_SHORT, enums.GL_UNSIGNED_SHORT):
            self._error(enums.GL_INVALID_ENUM, "attrib type")
            return
        state.size = size
        state.type = type_
        state.normalized = bool(normalized)
        state.stride = stride
        state.pointer = pointer
        state.buffer = self._buffers.get(self._bound_array_buffer)

    def glVertexAttrib4f(self, index: int, x, y, z, w) -> None:
        state = self._attrib(index)
        if state is not None:
            state.generic_value = np.array([x, y, z, w], dtype=np.float64)

    def glGetAttachedShaders(self, program: int):
        prog = self._programs.get(program)
        if prog is None:
            self._error(enums.GL_INVALID_VALUE, "glGetAttachedShaders")
            return []
        return [shader.name for shader in prog.shaders]

    def glGetVertexAttribfv(self, index: int, pname: int):
        """Supports GL_CURRENT_VERTEX_ATTRIB (0x8626): the generic
        attribute value."""
        state = self._attrib(index)
        if state is None:
            return np.zeros(4)
        if pname == 0x8626:  # GL_CURRENT_VERTEX_ATTRIB
            return np.array(state.generic_value, dtype=np.float64)
        self._error(enums.GL_INVALID_ENUM, "glGetVertexAttribfv")
        return np.zeros(4)

    def glVertexAttrib1f(self, index: int, x) -> None:
        self.glVertexAttrib4f(index, x, 0.0, 0.0, 1.0)

    def glVertexAttrib2f(self, index: int, x, y) -> None:
        self.glVertexAttrib4f(index, x, y, 0.0, 1.0)

    def glVertexAttrib3f(self, index: int, x, y, z) -> None:
        self.glVertexAttrib4f(index, x, y, z, 1.0)

    # ==================================================================
    # Framebuffers
    # ==================================================================
    def glGenFramebuffers(self, n: int) -> List[int]:
        names = []
        for __ in range(n):
            name = self._next_name["framebuffer"]
            self._next_name["framebuffer"] += 1
            self._framebuffers[name] = FramebufferObject(name)
            names.append(name)
        return names

    def glDeleteFramebuffers(self, names) -> None:
        for name in names:
            fbo = self._framebuffers.pop(name, None)
            if fbo is not None:
                fbo.deleted = True
        if self._bound_framebuffer in names:
            self._bound_framebuffer = 0

    def glBindFramebuffer(self, target: int, framebuffer: int) -> None:
        if target != enums.GL_FRAMEBUFFER:
            self._error(enums.GL_INVALID_ENUM, "glBindFramebuffer")
            return
        if framebuffer != 0 and framebuffer not in self._framebuffers:
            self._framebuffers[framebuffer] = FramebufferObject(framebuffer)
        self._bound_framebuffer = framebuffer

    def glFramebufferTexture2D(self, target: int, attachment: int,
                               textarget: int, texture: int, level: int) -> None:
        if target != enums.GL_FRAMEBUFFER:
            self._error(enums.GL_INVALID_ENUM, "glFramebufferTexture2D")
            return
        if attachment != enums.GL_COLOR_ATTACHMENT0:
            # Limitation (8): one color attachment in ES 2.
            self._error(
                enums.GL_INVALID_ENUM,
                "OpenGL ES 2 has a single color attachment "
                "(GL_COLOR_ATTACHMENT0)",
            )
            return
        fbo = self._framebuffers.get(self._bound_framebuffer)
        if fbo is None:
            self._error(enums.GL_INVALID_OPERATION,
                        "the default framebuffer has no attachment points")
            return
        fbo.attach_color(self._textures.get(texture) if texture else None)

    def glCheckFramebufferStatus(self, target: int) -> int:
        fb = self._current_framebuffer()
        return fb.status()

    def _current_framebuffer(self):
        if self._bound_framebuffer == 0:
            return self._default_framebuffer
        return self._framebuffers[self._bound_framebuffer]

    # ==================================================================
    # Clearing and reading
    # ==================================================================
    def glViewport(self, x: int, y: int, width: int, height: int) -> None:
        if width < 0 or height < 0:
            self._error(enums.GL_INVALID_VALUE, "glViewport")
            return
        self._viewport = (x, y, width, height)

    def glClearColor(self, r, g, b, a) -> None:
        self._clear_color = (r, g, b, a)

    def glScissor(self, x: int, y: int, width: int, height: int) -> None:
        if width < 0 or height < 0:
            self._error(enums.GL_INVALID_VALUE, "glScissor")
            return
        self._scissor = (int(x), int(y), int(width), int(height))

    def _active_scissor(self) -> Optional[Tuple[int, int, int, int]]:
        """The scissor box when GL_SCISSOR_TEST is enabled, else None."""
        if not self._capabilities.get(enums.GL_SCISSOR_TEST, False):
            return None
        return self._scissor

    def glClear(self, mask: int) -> None:
        if mask & enums.GL_COLOR_BUFFER_BIT:
            fb = self._current_framebuffer()
            buffer = fb.color_buffer()
            if buffer is None:
                self._error(enums.GL_INVALID_FRAMEBUFFER_OPERATION, "glClear")
                return
            from .pipeline import quantize_color

            rgba = quantize_color(
                np.array([self._clear_color]), self.quantization
            )[0]
            scissor = self._active_scissor()
            if scissor is None:
                buffer[:, :] = rgba
            else:
                # ES 2 §4.2.3: clears honour the scissor test.
                sx, sy, sw, sh = scissor
                fb_h, fb_w = buffer.shape[0], buffer.shape[1]
                x0, x1 = max(sx, 0), min(sx + sw, fb_w)
                y0, y1 = max(sy, 0), min(sy + sh, fb_h)
                if x0 < x1 and y0 < y1:
                    buffer[y0:y1, x0:x1] = rgba

    def glReadPixels(self, x: int, y: int, width: int, height: int,
                     fmt: int, type_: int) -> np.ndarray:
        """Read back framebuffer contents — the *only* route from GPU
        to CPU memory in OpenGL ES 2 (limitation 7: no glGetTexImage).

        Returns an (height, width, components) uint8 array, bottom row
        first (GL convention).
        """
        if type_ != enums.GL_UNSIGNED_BYTE:
            self._error(enums.GL_INVALID_ENUM,
                        "glReadPixels supports GL_UNSIGNED_BYTE only")
            return np.zeros((0,), dtype=np.uint8)
        if fmt not in (enums.GL_RGBA, enums.GL_RGB):
            self._error(enums.GL_INVALID_ENUM, "glReadPixels format")
            return np.zeros((0,), dtype=np.uint8)
        fb = self._current_framebuffer()
        if fb.status() != enums.GL_FRAMEBUFFER_COMPLETE:
            self._error(enums.GL_INVALID_FRAMEBUFFER_OPERATION, "glReadPixels")
            return np.zeros((0,), dtype=np.uint8)
        with trace.span("readback.pixels", "readback") as sp:
            buffer = fb.color_buffer()
            fb_h, fb_w = buffer.shape[0], buffer.shape[1]
            out = np.zeros((height, width, 4), dtype=np.uint8)
            x0, x1 = max(x, 0), min(x + width, fb_w)
            y0, y1 = max(y, 0), min(y + height, fb_h)
            if x0 < x1 and y0 < y1:
                out[y0 - y : y1 - y, x0 - x : x1 - x] = buffer[y0:y1, x0:x1]
            components = 4 if fmt == enums.GL_RGBA else 3
            result = out[:, :, :components]
            if sp is not None:
                sp.args["bytes"] = result.nbytes
        self.stats.readback_bytes += result.nbytes
        return result

    # ==================================================================
    # Drawing
    # ==================================================================
    def glDrawArrays(self, mode: int, first: int, count: int) -> None:
        if count < 0 or first < 0:
            self._error(enums.GL_INVALID_VALUE, "glDrawArrays")
            return
        index_stream = np.arange(first, first + count, dtype=np.int64)
        self._draw(mode, index_stream)

    def glDrawElements(self, mode: int, count: int, type_: int, indices) -> None:
        if count < 0:
            self._error(enums.GL_INVALID_VALUE, "glDrawElements")
            return
        if type_ not in _INDEX_DTYPES:
            self._error(enums.GL_INVALID_ENUM, "glDrawElements type")
            return
        dtype = _INDEX_DTYPES[type_]
        element_buffer = self._buffers.get(self._bound_element_buffer)
        if element_buffer is not None and element_buffer.data is not None \
                and isinstance(indices, (int, np.integer)):
            offset = int(indices)
            raw = element_buffer.data[offset:]
            stream = np.frombuffer(raw.tobytes(), dtype=dtype)[:count]
        else:
            stream = np.asarray(indices, dtype=dtype).reshape(-1)[:count]
        self._draw(mode, stream.astype(np.int64))

    def _draw(self, mode: int, index_stream: np.ndarray) -> None:
        prog = self._programs.get(self._current_program)
        if prog is None or not prog.linked:
            self._error(enums.GL_INVALID_OPERATION, "no linked program in use")
            return
        fb = self._current_framebuffer()
        if fb.status() != enums.GL_FRAMEBUFFER_COMPLETE:
            self._error(enums.GL_INVALID_FRAMEBUFFER_OPERATION, "draw")
            return
        color_buffer = fb.color_buffer()

        def resolve_sampler(unit: int, gtype):
            return self._texture_at_unit(unit)

        with trace.span("draw", "draw") as sp:
            if sp is not None:
                from ..perf.counters import disk_cache_stats, fault_path_stats

                disk_before = disk_cache_stats.snapshot()
                fault_before = fault_path_stats.snapshot()
            stats = execute_draw(
                prog,
                self._attribs,
                index_stream,
                mode,
                self._viewport,
                color_buffer,
                self.float_model,
                resolve_sampler,
                quantization=self.quantization,
                max_loop_iterations=self.max_loop_iterations,
                execution_backend=self.execution_backend,
                scissor=self._active_scissor(),
                tile_size=self.tile_size,
                shade_workers=self.shade_workers,
            )
            if sp is not None:
                from ..perf.gpu_model import GpuModel

                disk_after = disk_cache_stats.snapshot()
                fault_after = fault_path_stats.snapshot()
                sp.args.update({
                    "draw_index": len(self.stats.draws),
                    "backend": self.execution_backend,
                    "vertex_invocations": stats.vertex_invocations,
                    "fragment_invocations": stats.fragment_invocations,
                    "framebuffer_writes": stats.framebuffer_writes,
                    "discarded_fragments": stats.discarded_fragments,
                    "texture_gathers": stats.texture_gathers,
                    "gather_fallbacks": stats.gather_fallbacks,
                    # Modeled VideoCore-IV cost next to the span's real
                    # elapsed time, so measured and predicted compare
                    # on the same event.
                    "modeled_seconds": GpuModel().draw_time(
                        stats
                    ).total_seconds,
                    "disk_cache_delta": {
                        key: disk_after[key] - disk_before[key]
                        for key in disk_after
                        if disk_after[key] != disk_before[key]
                    },
                    "fault_path_delta": {
                        key: fault_after[key] - fault_before[key]
                        for key in fault_after
                        if fault_after[key] != fault_before[key]
                    },
                })
        self.stats.draws.append(stats)
        # IR/JIT artifacts are pulled from the persistent store lazily
        # at first-draw time (not at glCompileShader), so fold the
        # counter deltas in here too.
        self._sync_disk_cache_stats()

    def _sync_disk_cache_stats(self) -> None:
        """Accumulate process-wide artifact-store and fault-path
        counter deltas since the last sync into this context's stats.
        Keeps per-context numbers meaningful when several contexts (or
        none — e.g. the maintenance CLI) touch the shared store in one
        process."""
        from ..perf.counters import disk_cache_stats, fault_path_stats

        current = disk_cache_stats.snapshot()
        last = self._disk_stats_last
        self.stats.disk_cache_hits += current["hits"] - last["hits"]
        self.stats.disk_cache_misses += (
            current["misses"] - last["misses"]
        )
        self.stats.disk_cache_evictions += (
            current["evictions"] - last["evictions"]
        )
        self.stats.disk_cache_corrupt += (
            current["corrupt"] - last["corrupt"]
        )
        self.stats.cache_write_failures += (
            current["write_failures"] - last["write_failures"]
        )
        self.stats.cache_orphans_removed += (
            current["orphans_removed"] - last["orphans_removed"]
        )
        self._disk_stats_last = current

        fcurrent = fault_path_stats.snapshot()
        flast = self._fault_stats_last
        self.stats.worker_retries += (
            fcurrent["worker_retries"] - flast["worker_retries"]
        )
        self.stats.pool_restarts += (
            fcurrent["pool_restarts"] - flast["pool_restarts"]
        )
        self.stats.fault_fallbacks += (
            fcurrent["fault_fallbacks"] - flast["fault_fallbacks"]
        )
        self._fault_stats_last = fcurrent


def _gl_type_of(gtype) -> int:
    """Map a GlslType to the GL uniform/attribute type enum."""
    from ..glsl.types import BaseType, TypeKind

    if gtype.kind == TypeKind.SCALAR:
        return {
            BaseType.FLOAT: enums.GL_FLOAT,
            BaseType.INT: enums.GL_INT,
            BaseType.BOOL: enums.GL_BOOL,
        }[gtype.base]
    if gtype.kind == TypeKind.VECTOR:
        table = {
            BaseType.FLOAT: [enums.GL_FLOAT_VEC2, enums.GL_FLOAT_VEC3,
                             enums.GL_FLOAT_VEC4],
            BaseType.INT: [enums.GL_INT_VEC2, enums.GL_INT_VEC3,
                           enums.GL_INT_VEC4],
            BaseType.BOOL: [enums.GL_BOOL_VEC2, enums.GL_BOOL_VEC3,
                            enums.GL_BOOL_VEC4],
        }
        return table[gtype.base][gtype.size - 2]
    if gtype.kind == TypeKind.MATRIX:
        return {2: enums.GL_FLOAT_MAT2, 3: enums.GL_FLOAT_MAT3,
                4: enums.GL_FLOAT_MAT4}[gtype.size]
    if gtype.kind == TypeKind.SAMPLER:
        if gtype.name == "samplerCube":
            return enums.GL_SAMPLER_CUBE
        return enums.GL_SAMPLER_2D
    return 0
