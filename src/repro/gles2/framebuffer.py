"""Framebuffer objects and the default framebuffer (ES 2 chapter 4).

Color storage is always RGBA8 — the paper's limitation (6): fragment
outputs are clamped to [0, 1] and quantised to unsigned bytes on the
way in, so any non-image data must go through the paper's §IV pack
transformations.

Render-to-texture (``glFramebufferTexture2D``) is the mechanism behind
limitation (7): ES 2 has no ``glGetTexImage``, so the only way data
comes back to the CPU is ``glReadPixels`` from the *currently bound*
framebuffer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import enums
from .texture import Texture


class DefaultFramebuffer:
    """The window-system-provided framebuffer (name 0)."""

    def __init__(self, width: int, height: int):
        self.width = width
        self.height = height
        #: (H, W, 4) uint8
        self.color = np.zeros((height, width, 4), dtype=np.uint8)

    def color_buffer(self) -> np.ndarray:
        return self.color

    def status(self) -> int:
        return enums.GL_FRAMEBUFFER_COMPLETE

    @property
    def size(self):
        return self.width, self.height


class FramebufferObject:
    """An application-created FBO."""

    def __init__(self, name: int):
        self.name = name
        self.color_texture: Optional[Texture] = None
        self.deleted = False

    def attach_color(self, texture: Optional[Texture]) -> None:
        self.color_texture = texture

    def status(self) -> int:
        if self.color_texture is None:
            return enums.GL_FRAMEBUFFER_INCOMPLETE_MISSING_ATTACHMENT
        if self.color_texture.data is None:
            return enums.GL_FRAMEBUFFER_INCOMPLETE_ATTACHMENT
        # Only RGB/RGBA textures are color-renderable in practice.
        if self.color_texture.format not in (enums.GL_RGBA, enums.GL_RGB):
            return enums.GL_FRAMEBUFFER_UNSUPPORTED
        return enums.GL_FRAMEBUFFER_COMPLETE

    def color_buffer(self) -> Optional[np.ndarray]:
        if self.color_texture is None:
            return None
        return self.color_texture.data

    @property
    def size(self):
        if self.color_texture is None or self.color_texture.data is None:
            return 0, 0
        return self.color_texture.width, self.color_texture.height
