"""Vertex buffer objects (GL_ARRAY_BUFFER / GL_ELEMENT_ARRAY_BUFFER).

ES 2 buffers are untyped byte stores; attribute pointers interpret
them at draw time.  The simulator stores bytes in a numpy uint8 array.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import enums


class BufferObject:
    """One buffer object name + data store."""

    def __init__(self, name: int):
        self.name = name
        self.data: Optional[np.ndarray] = None  # uint8
        self.usage = enums.GL_STATIC_DRAW
        self.deleted = False

    @property
    def size(self) -> int:
        return 0 if self.data is None else self.data.nbytes

    def set_data(self, data: Optional[bytes], size: int, usage: int) -> None:
        """glBufferData: allocate, optionally filling from ``data``."""
        self.usage = usage
        store = np.zeros(size, dtype=np.uint8)
        if data is not None:
            raw = np.frombuffer(_as_bytes(data), dtype=np.uint8)
            store[: raw.size] = raw[:size]
        self.data = store

    def set_sub_data(self, offset: int, data) -> None:
        """glBufferSubData."""
        raw = np.frombuffer(_as_bytes(data), dtype=np.uint8)
        self.data[offset : offset + raw.size] = raw


def _as_bytes(data) -> bytes:
    if isinstance(data, (bytes, bytearray, memoryview)):
        return bytes(data)
    return np.ascontiguousarray(data).tobytes()
