"""Implementation-defined limits of the simulated device.

Values follow the Broadcom VideoCore IV driver on the Raspberry Pi
(the paper's evaluation platform), which itself sits at or near the
OpenGL ES 2 minima.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class DeviceLimits:
    """Queryable limits (glGetIntegerv)."""

    max_texture_size: int = 2048
    max_vertex_attribs: int = 8
    max_vertex_uniform_vectors: int = 128
    max_fragment_uniform_vectors: int = 64
    max_varying_vectors: int = 8
    max_texture_image_units: int = 8
    max_vertex_texture_image_units: int = 0
    max_combined_texture_image_units: int = 8
    max_renderbuffer_size: int = 2048
    #: The paper's limitation (8): one draw buffer.
    max_draw_buffers: int = 1

    vendor: str = "repro"
    renderer: str = "Simulated VideoCore IV (software)"
    version: str = "OpenGL ES 2.0 (repro simulator)"
    shading_language_version: str = "OpenGL ES GLSL ES 1.00"
    #: No float-texture extensions: the exact situation the paper's
    #: numeric transformations exist to work around (limitations 5/6).
    extensions: Tuple[str, ...] = field(default=())


VIDEOCORE_IV_LIMITS = DeviceLimits()
