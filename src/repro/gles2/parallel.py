"""Optional multiprocess fragment shading for the JIT backend.

Tiled fragment shading (``raster.partition_tiles``) makes the tiles of
one draw independent: every fragment-stage quantity is per-lane, so
each tile can shade anywhere as long as its results scatter back into
the original fragment order.  This module fans those tiles across a
lazily-created :class:`~concurrent.futures.ProcessPoolExecutor`.

Only the JIT backend parallelises: its generated function is *numpy
source by construction*, so a draw ships as

* a per-draw **plan** — the generated source text, the codegen's
  captured namespace objects (constant arrays as-is; builtin
  implementations by their registry key, since the lambdas themselves
  do not pickle), the float model, and the width-1 register bindings
  (uniforms, global-initializer results, sampler Textures), and
* per-tile **jobs** — just the wide (per-fragment) register arrays,
  sliced for that tile.

A worker rebuilds the function once per plan (cached by content
digest) and then runs ``fn(regs, n, maxit)`` exactly as the in-process
:class:`~repro.glsl.jit.JitExecutor` would, returning the
output-colour register and the discard mask.  Tiles assigned to one
worker are *merged into a single invocation*: fragment-stage math is
per-lane, so concatenating tile slices and shading them in one batch
is bit-identical to shading each tile alone, while paying the
generated function's fixed per-invocation numpy-dispatch cost once
per worker instead of once per tile (on loop-heavy kernels that fixed
cost rivals the scaling work, and per-tile invocation erases the
entire parallel win).  Anything that cannot be shipped (program
outside the JIT subset, unknown captured object) or any pool failure
makes :func:`shade_draw` return ``None`` and the pipeline falls back
to in-process tiled shading — the AST/IR backends always take that
path.

Counter semantics: the leader charges the draw's op counters exactly
as a monolithic ``JitExecutor.execute`` would (dynamic global-init
tally plus the static per-invocation projection), but only after the
workers succeed; a failed dispatch leaves the counters untouched so
the in-process fallback can do its own accounting.

Failure policy (the paper's platform assumes flaky infrastructure, so
every pool failure mode has a typed, counted, bounded response — see
``docs/architecture.md`` §8):

* **Typed detection.**  Dispatch distinguishes shader semantics
  (:class:`~repro.glsl.errors.GlslLimitError` propagates), healthy-pool
  races (:class:`PlanCacheMiss` → immediate in-process fallback),
  malformed worker results (:class:`ChunkFormatError`), pool-transport
  death (``BrokenExecutor``/``OSError``/``EOFError``/pickling
  failures), and per-draw timeouts (``REPRO_POOL_TIMEOUT`` seconds per
  draw, 0 disables).  Nothing is caught bare.
* **Bounded retry.**  A transport death or timeout tears the pool down
  and rebuilds it (``pool_restarts``); the draw is re-dispatched at
  most once (``worker_retries``).  A draw that exhausts its attempts
  falls back to in-process tiled shading (``fault_fallbacks``) with
  untouched counters — bit-identical by construction.
* **Circuit breaker.**  ``_MAX_CONSECUTIVE_FAILURES`` failed draws in
  a row mark the pool broken for the process (every later draw shades
  in-process without paying restart latency); any successful dispatch
  resets the streak.

The counters live in :data:`repro.perf.counters.fault_path_stats` and
are folded per-context like the disk-cache tallies.  Deterministic
fault injection for every one of these paths is provided by
:mod:`repro.testing.faults` (``worker_crash`` / ``worker_hang`` /
``worker_garble`` sites; the leader ships the active plan inside each
worker payload so overrides reach forked workers).
"""

from __future__ import annotations

import hashlib
import pickle
import time
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..perf import trace
from ..perf.counters import OpCounters, fault_path_stats

#: Draws actually shaded out-of-process (observability for tests and
#: benchmarks — asserting the pool was exercised, not silently skipped).
parallel_draws = 0

#: Draws whose plan shipped only a disk-cache key — the generated
#: source and captured arrays stayed out of the pickle stream because
#: the shared artifact store (:mod:`repro.core.cache`) holds them.
plan_cache_refs = 0

#: Worker-side plan materialisations served by the disk cache (each
#: worker loads a given plan at most once; summed from chunk results).
worker_disk_loads = 0

_POOL = None
_POOL_WORKERS = 0
_POOL_BROKEN = False
#: Draw-level pool failures since the last successful dispatch; at
#: ``_MAX_CONSECUTIVE_FAILURES`` the pool is marked broken for the
#: process (circuit breaker — see the module docstring).
_CONSECUTIVE_FAILURES = 0
_MAX_CONSECUTIVE_FAILURES = 5
#: Dispatch attempts per draw (initial + retries over a rebuilt pool).
_MAX_ATTEMPTS = 2
#: Default per-draw pool timeout in seconds (``REPRO_POOL_TIMEOUT``;
#: 0 disables).  Generous: a healthy worker chunk runs in milliseconds
#: to seconds, so the timeout only trips on genuinely wedged workers.
_DEFAULT_POOL_TIMEOUT = 300.0

#: What a dying pool can legitimately raise at submit or result time:
#: executor death (``BrokenExecutor`` covers ``BrokenProcessPool``),
#: transport failure to/from the worker (``OSError``/``EOFError``),
#: and payloads that fail to pickle.  Anything else is a repro bug and
#: propagates.
_POOL_ERRORS = (BrokenExecutor, OSError, EOFError, pickle.PicklingError)


class PlanCacheMiss(Exception):
    """A worker was handed a key-only plan whose disk entry vanished
    (eviction race).  The leader falls back to in-process shading —
    the pool itself is healthy."""


class ChunkFormatError(Exception):
    """A worker returned a structurally invalid chunk result (wrong
    tuple arity, non-broadcastable colour array, bogus discard mask).
    The draw is retried once, then falls back in-process — garbage
    never reaches the framebuffer."""


def reset_stats() -> None:
    global parallel_draws, plan_cache_refs, worker_disk_loads
    global _CONSECUTIVE_FAILURES
    parallel_draws = 0
    plan_cache_refs = 0
    worker_disk_loads = 0
    _CONSECUTIVE_FAILURES = 0


def shutdown_pool() -> None:
    """Tear down the worker pool (test isolation / interpreter exit)."""
    global _POOL, _POOL_WORKERS, _POOL_BROKEN, _CONSECUTIVE_FAILURES
    if _POOL is not None:
        _POOL.shutdown(wait=True, cancel_futures=True)
    _POOL = None
    _POOL_WORKERS = 0
    _POOL_BROKEN = False
    _CONSECUTIVE_FAILURES = 0


def _get_pool(workers: int):
    """The shared pool, (re)created on first use or worker-count change.
    Returns None when process pools are unavailable on this platform
    or the circuit breaker has tripped."""
    global _POOL, _POOL_WORKERS, _POOL_BROKEN
    if workers <= 0 or _POOL_BROKEN:
        return None
    if _POOL is not None and _POOL_WORKERS == workers:
        return _POOL
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None
    try:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            ctx = multiprocessing.get_context("spawn")
        _POOL = ProcessPoolExecutor(max_workers=workers, mp_context=ctx)
        _POOL_WORKERS = workers
    except (ImportError, OSError, ValueError, RuntimeError) as exc:
        # Platform without usable process pools (no multiprocessing
        # primitives, fork refused, sandboxed).  Permanent for the
        # process: retrying pool *creation* cannot succeed later.
        from ..testing import faults

        faults.note_swallowed("pool_create", exc)
        _POOL_BROKEN = True
        _POOL = None
        return None
    return _POOL


def _restart_pool() -> None:
    """Tear the pool down after a transport failure or timeout so the
    next ``_get_pool`` builds a fresh one (counted by the caller in
    ``fault_path_stats.pool_restarts``).  Unlike pool-creation
    failure, this is *not* permanent — a crashed worker says nothing
    about the next pool.

    ``shutdown(wait=False)`` only abandons the executor: a worker
    wedged mid-chunk (the timeout case) stays alive, holding its CPU
    and — under fork — whatever memory the draw shipped, for the rest
    of the leader process's life.  Terminate the old pool's worker
    processes outright so the retry attempt starts on healthy workers
    with nothing competing for their cores."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        # _processes is ProcessPoolExecutor internals (pid → Process);
        # absent or reshaped on some platforms, hence the broad guard —
        # missing the kill only degrades to the old leak, never breaks
        # the restart.
        try:
            stale = list(getattr(_POOL, "_processes", {}).values())
        except (AttributeError, TypeError, RuntimeError):
            stale = []
        _POOL.shutdown(wait=False, cancel_futures=True)
        for proc in stale:
            try:
                if proc.is_alive():
                    proc.terminate()
            except (AttributeError, OSError, ValueError):
                pass
    _POOL = None
    _POOL_WORKERS = 0


def _note_draw_outcome(success: bool) -> None:
    """Feed the circuit breaker: repeated draw-level failures mark the
    pool broken for the process; one success resets the streak."""
    global _CONSECUTIVE_FAILURES, _POOL_BROKEN
    if success:
        _CONSECUTIVE_FAILURES = 0
        return
    _CONSECUTIVE_FAILURES += 1
    if _CONSECUTIVE_FAILURES >= _MAX_CONSECUTIVE_FAILURES:
        _POOL_BROKEN = True


# ----------------------------------------------------------------------
# Plan encoding (leader side)
# ----------------------------------------------------------------------
def _encode_captured(fn) -> Optional[Tuple[Dict, str]]:
    """Picklable form of the generated function's captured namespace,
    plus a content digest identifying (source, captured, model) for the
    worker-side function cache.  Returns None when some captured object
    has no shippable encoding."""
    cached = getattr(fn, "_parallel_encoding", None)
    if cached is not None:
        return cached if cached != "unsupported" else None
    from ..glsl.builtins import OVERLOADS_BY_KEY

    impl_keys = {
        id(overload.impl): key
        for key, overload in OVERLOADS_BY_KEY.items()
    }
    encoded: Dict[str, Tuple[str, object]] = {}
    digest = hashlib.sha1(fn._jit_source.encode())
    for name in sorted(fn._jit_captured):
        obj = fn._jit_captured[name]
        digest.update(name.encode())
        if isinstance(obj, np.ndarray):
            encoded[name] = ("array", obj)
            digest.update(str(obj.dtype).encode())
            digest.update(str(obj.shape).encode())
            digest.update(np.ascontiguousarray(obj).tobytes())
        else:
            key = impl_keys.get(id(obj))
            if key is None:
                fn._parallel_encoding = "unsupported"
                return None
            encoded[name] = ("builtin", key)
            digest.update(key.encode())
    result = (encoded, digest.hexdigest())
    fn._parallel_encoding = result
    return result


def shade_draw(
    fs_interp,
    n: int,
    presets: Dict[str, "object"],
    tile_indices: List[np.ndarray],
    workers: int,
    out_name: str,
) -> Optional[List[Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]]]:
    """Shade one tiled draw on the worker pool.

    ``fs_interp`` must be a :class:`~repro.glsl.jit.JitExecutor` for
    the fragment shader; ``presets`` the full-batch fragment presets;
    ``out_name`` the written colour builtin (``gl_FragColor`` or
    ``gl_FragData``).  Returns one ``(indices, color_data, discarded)``
    triple per worker chunk — ``indices`` the original-batch positions
    of the chunk's fragments (its tiles concatenated), the arrays
    possibly width-1 (the caller broadcasts) — or ``None`` when the
    draw cannot run out of process (caller falls back).

    :class:`~repro.glsl.errors.GlslLimitError` raised inside a worker
    (loop-cap overflow) propagates, matching in-process semantics.
    """
    global parallel_draws
    from ..glsl.errors import GlslLimitError
    from ..glsl.ir import get_compiled
    from ..glsl.jit import JitExecutor, _jit_function
    from ..glsl.values import Value, zeros_for

    if not isinstance(fs_interp, JitExecutor):
        return None
    pool = _get_pool(workers)
    if pool is None:
        return None

    program = fs_interp.program
    if program is None or program.checked is not fs_interp.checked:
        program = get_compiled(fs_interp.checked, fs_interp.fmodel)
        fs_interp.program = program
    wide = frozenset(
        name for name, value in presets.items() if value.batch > 1
    )
    fn = _jit_function(program, fs_interp.fmodel, wide)
    if fn is None:
        return None
    encoding = _encode_captured(fn)
    if encoding is None:
        return None
    captured, digest = encoding

    # ------------------------------------------------------------------
    # Bind the width-1 registers exactly as JitExecutor.execute does,
    # tallying global-initializer ops into a scratch sink that is only
    # merged on success (see module docstring).
    # ------------------------------------------------------------------
    scratch = OpCounters()
    saved_counters = fs_interp.counters
    fs_interp.counters = scratch
    fs_interp.n = n
    fs_interp.globals_env = {}
    fs_interp.consts = program.materialized_consts(fs_interp.fmodel)
    fs_interp.regs = [None] * program.nregs
    fs_interp.discarded = np.zeros(n, dtype=bool)
    fs_interp.exec_mask = np.ones(n, dtype=bool)
    fs_interp.frames = []
    out_reg = None
    base_regs: Dict[int, Tuple[str, object]] = {}
    wide_regs: Dict[int, np.ndarray] = {}
    try:
        simple_inits = program.simple_inits()
        for plan in program.globals_plan:
            if plan.name in presets:
                value = presets[plan.name]
            elif plan.is_sampler:
                value = Value(plan.type)
            elif plan.init_block is not None:
                idx = simple_inits.get(plan.name)
                if idx is not None:
                    gtype, data = fs_interp.consts[idx]
                    value = Value(gtype, data)
                else:
                    value = fs_interp._run_global_init(program, plan)
            else:
                value = zeros_for(plan.type, 1, fs_interp.fmodel.dtype)
            fs_interp.regs[plan.reg] = value
            if plan.name == out_name:
                out_reg = plan.reg
            if plan.is_sampler:
                base_regs[plan.reg] = ("sampler", value.sampler)
            elif plan.name in wide:
                wide_regs[plan.reg] = value.data
            else:
                base_regs[plan.reg] = ("data", value.data)
    finally:
        fs_interp.counters = saved_counters
    if out_reg is None:
        return None

    plan_payload = {
        "uid": digest,
        "fmodel": fs_interp.fmodel,
        "nregs": program.nregs,
        "base": base_regs,
        "out_reg": out_reg,
        "maxit": fs_interp.max_loop_iterations,
    }
    # Ship a disk-cache reference instead of the generated source when
    # the shared artifact store holds this function: workers then load
    # the artifact by key (once per plan per worker) and the pickle
    # stream carries only the key string.  The source payload remains
    # the fallback whenever no entry exists (cache disabled, capture
    # unsupported for storage, entry evicted).
    from ..core import cache as artifact_cache

    global plan_cache_refs
    cache_key = getattr(fn, "_jit_disk_key", None)
    shipped_by_ref = cache_key is not None and artifact_cache.contains(cache_key)
    if shipped_by_ref:
        plan_payload["cache_key"] = cache_key
    else:
        plan_payload["source"] = fn._jit_source
        plan_payload["captured"] = captured
    # Ship the active fault-injection plan (if any) with the payload:
    # forked workers inherited the environment of pool-creation time,
    # so the leader's *current* view — including test-scoped overrides
    # and suppression — must travel by value.
    from ..testing import faults

    plan_payload["faults"] = faults.encode_active()
    # Tracing travels the same way: workers record their spans locally
    # and ship them back inside the chunk-result tuple (the leader's
    # recorder object itself never crosses the pool boundary).
    plan_payload["trace"] = trace.enabled()
    # One job of contiguous tiles per worker, the tiles *merged* into a
    # single fragment batch (see module docstring): ships the plan (and
    # its textures) workers times per draw, and pays the generated
    # function's fixed invocation cost workers times, not tiles times.
    nchunks = min(workers, len(tile_indices))
    bounds = np.linspace(0, len(tile_indices), nchunks + 1).astype(int)
    chunk_indices = [
        np.concatenate(tile_indices[lo:hi])
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if lo != hi
    ]
    from ..core.knobs import float_knob

    timeout = float_knob(
        "REPRO_POOL_TIMEOUT", _DEFAULT_POOL_TIMEOUT, minimum=0.0
    )
    dispatched = None
    for attempt in range(_MAX_ATTEMPTS):
        if attempt:
            fault_path_stats.worker_retries += 1
            pool = _get_pool(workers)
            if pool is None:
                break
        try:
            dispatched = _dispatch_chunks(
                pool, plan_payload, wide_regs, chunk_indices, timeout,
                out_name,
            )
            break
        except GlslLimitError:
            # Shader semantics, not infrastructure: surface it like the
            # in-process executors do (the pool itself is still
            # healthy, but the counters charged below never happen —
            # matching a monolithic run, which raises before its
            # static accounting).
            raise
        except PlanCacheMiss:
            # The shared entry vanished between the leader's existence
            # check and the worker's load (eviction/clear race), or
            # the plan would not materialise worker-side.  The pool is
            # healthy; shade this draw in-process and let the next
            # draw re-ship (the leader will republish or fall back to
            # source).
            return None
        except (NameError, UnboundLocalError):
            # The generated function hit an unbound cross-region
            # CSE'd local on this draw's control-flow shape — the same
            # condition JitExecutor.execute handles in-process.  The
            # pool is healthy; this draw just needs the IR executor.
            fault_path_stats.fault_fallbacks += 1
            return None
        except ChunkFormatError as exc:
            # Garbage result from one worker.  The pool transport is
            # intact, so retry on the same pool; a second helping of
            # garbage falls through to the in-process path.
            faults.note_swallowed("pool_dispatch", exc)
            trace.instant("pool.retry", "pool", {"reason": "chunk_format"})
        except (_FuturesTimeout, *_POOL_ERRORS) as exc:
            # Worker death, wedged worker past the per-draw deadline,
            # or broken transport: this pool is unusable.  Tear it
            # down and retry once on a fresh one.
            faults.note_swallowed("pool_dispatch", exc)
            _restart_pool()
            fault_path_stats.pool_restarts += 1
            trace.instant("pool.restart", "pool",
                          {"reason": type(exc).__name__})
    if dispatched is None:
        # Retry budget exhausted (or the pool could not be rebuilt):
        # degrade to in-process tiled shading with untouched counters.
        fault_path_stats.fault_fallbacks += 1
        _note_draw_outcome(success=False)
        trace.instant("pool.fallback", "pool", {"reason": "exhausted"})
        return None
    _note_draw_outcome(success=True)
    results, gathers, fallbacks, disk_loads, worker_spans = dispatched
    recorder = trace.active()
    if recorder is not None and worker_spans:
        recorder.ingest(worker_spans)

    if saved_counters is not None:
        saved_counters.merge(scratch)
        fs_interp.counters = saved_counters
        fs_interp._charge_static(program, n, count_globals=True)
    # Workers ran the same generated function the leader would have:
    # fold their gather tallies back onto the draw's executor so
    # DrawStats is identical to an in-process tiled run.
    fs_interp.texture_gathers += gathers
    fs_interp.gather_fallbacks += fallbacks
    parallel_draws += 1
    if shipped_by_ref:
        plan_cache_refs += 1
    global worker_disk_loads
    worker_disk_loads += disk_loads
    return results


def _dispatch_chunks(
    pool, plan_payload, wide_regs, chunk_indices, timeout, out_name
):
    """Submit every chunk and gather validated results.

    Returns ``(results, gathers, fallbacks, disk_loads, spans)`` —
    ``spans`` the worker-recorded trace events of every chunk (empty
    while tracing is off); raises the typed failure taxonomy the
    caller's retry loop dispatches on.  The per-draw timeout is a
    shared deadline across the chunk futures — the draw as a whole
    gets ``timeout`` seconds, not each chunk.
    """
    futures = []
    with trace.span("pool.submit", "pool",
                    {"chunks": len(chunk_indices)}):
        for idx in chunk_indices:
            job = {reg: data[idx] for reg, data in wide_regs.items()}
            futures.append(pool.submit(
                _shade_chunk, plan_payload, job, idx.shape[0]
            ))
    deadline = (time.monotonic() + timeout) if timeout else None
    results: List[Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]] = []
    gathers = fallbacks = 0
    disk_loads = 0
    spans: List[dict] = []
    try:
        for chunk_no, (idx, future) in enumerate(
            zip(chunk_indices, futures)
        ):
            with trace.span(
                "pool.chunk", "pool",
                {"chunk": chunk_no, "fragments": int(idx.shape[0])},
            ):
                if deadline is None:
                    raw = future.result()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise _FuturesTimeout(
                            "per-draw pool timeout exhausted"
                        )
                    raw = future.result(timeout=remaining)
                color, discarded, delta, from_disk, chunk_spans = (
                    _validate_chunk(raw, idx.shape[0], out_name)
                )
            gathers += delta[0]
            fallbacks += delta[1]
            disk_loads += from_disk
            spans.extend(chunk_spans)
            results.append((idx, color, discarded))
    finally:
        # Whatever the outcome, never leave stragglers queued: a
        # failed draw's pending chunks would otherwise burn workers
        # shading a framebuffer nobody will assemble.
        for future in futures:
            future.cancel()
    return results, gathers, fallbacks, disk_loads, spans


def _validate_chunk(raw, count: int, out_name: str):
    """Structural validation of one worker result — the leader's
    defence against a sick worker returning garbage.  Raises
    :class:`ChunkFormatError`; returns the normalised tuple."""
    try:
        (color, discarded, (chunk_gathers, chunk_fallbacks), from_disk,
         chunk_spans) = raw
    except (TypeError, ValueError) as exc:
        raise ChunkFormatError(f"malformed chunk tuple: {exc}") from None
    if not isinstance(color, np.ndarray) or not np.issubdtype(
        color.dtype, np.floating
    ):
        raise ChunkFormatError(
            f"chunk colour is {type(color).__name__}, not a float array"
        )
    target = (count, 1, 4) if out_name == "gl_FragData" else (count, 4)
    try:
        np.broadcast_to(color, target)
    except ValueError:
        raise ChunkFormatError(
            f"chunk colour shape {color.shape} does not broadcast "
            f"to {target}"
        ) from None
    if discarded is not None:
        if (
            not isinstance(discarded, np.ndarray)
            or discarded.dtype != np.bool_
            or discarded.ndim != 1
            or discarded.shape[0] not in (1, count)
        ):
            raise ChunkFormatError("chunk discard mask is malformed")
    try:
        chunk_gathers = int(chunk_gathers)
        chunk_fallbacks = int(chunk_fallbacks)
        from_disk = int(from_disk)
    except (TypeError, ValueError) as exc:
        raise ChunkFormatError(f"malformed chunk counters: {exc}") from None
    if not isinstance(chunk_spans, (list, tuple)):
        raise ChunkFormatError("chunk trace spans are not a sequence")
    # Individual span dicts are validated (and bad ones dropped) by
    # TraceRecorder.ingest — observability must never fail the draw.
    return (color, discarded, (chunk_gathers, chunk_fallbacks), from_disk,
            chunk_spans)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _Reg:
    """Minimal stand-in for :class:`~repro.glsl.values.Value`: the
    generated function touches only ``.data`` and ``.sampler``."""

    __slots__ = ("data", "sampler")

    def __init__(self, data=None, sampler=None):
        self.data = data
        self.sampler = sampler


_WORKER_FNS: Dict[str, object] = {}


def _materialize(plan) -> Tuple[object, int]:
    """Build (or reuse) the worker-side function for one plan; returns
    ``(fn, from_disk)`` where ``from_disk`` is 1 when this call loaded
    the artifact from the shared disk cache."""
    fn = _WORKER_FNS.get(plan["uid"])
    if fn is not None:
        return fn, 0
    from_disk = 0
    # Any failure to turn the plan into a callable — a stale builtin
    # key, a source that no longer execs against this worker's helper
    # registry — is reported as the typed PlanCacheMiss so the leader
    # shades the draw in-process instead of seeing an arbitrary
    # exception cross the pool boundary.
    try:
        if "source" in plan:
            from ..glsl.builtins import OVERLOADS_BY_KEY
            from ..glsl.jit.codegen import make_helpers

            ns = make_helpers(plan["fmodel"])
            for name, (kind, payload) in plan["captured"].items():
                ns[name] = (
                    payload if kind == "array"
                    else OVERLOADS_BY_KEY[payload].impl
                )
            exec(compile(plan["source"], "<jit:worker>", "exec"), ns)
            fn = ns["_jit_main"]
        else:
            # Key-only plan: the generated source lives in the shared
            # artifact store; load it by digest instead of receiving
            # it through the pickle stream.
            from ..core import cache as artifact_cache
            from ..glsl import jit as jit_mod

            payload = artifact_cache.get(plan["cache_key"])
            entry = (artifact_cache.load_jit_entry(payload)
                     if payload is not None else None)
            if entry is None or "unsupported" in entry:
                raise PlanCacheMiss(plan["cache_key"])
            fn = jit_mod.materialize(
                entry["source"],
                artifact_cache.decode_captured(entry["captured"]),
                plan["fmodel"],
            )
            from_disk = 1
    except PlanCacheMiss:
        raise
    except (SyntaxError, KeyError, NameError, TypeError, ValueError,
            AttributeError) as exc:
        raise PlanCacheMiss(f"plan not materialisable: {exc!r}")
    _WORKER_FNS[plan["uid"]] = fn
    return fn, from_disk


def _shade_chunk(plan, wide_regs, count):
    """Shade one worker's merged tile chunk in a single invocation;
    returns ``(color_data, discarded, (gathers, fallbacks), from_disk,
    spans)`` — the gather element is the chunk's texture-gather delta,
    ``from_disk`` flags a plan materialised from the shared disk
    cache (the leader folds both back into its counters), and
    ``spans`` carries this worker's trace events (empty unless the
    leader shipped ``plan["trace"]``; the leader ingests them so a
    multiprocess draw renders as one timeline).

    Fault-injection hooks run first, under the leader-shipped plan:
    ``worker_crash`` hard-kills this process (``os._exit``, so the
    leader sees ``BrokenProcessPool`` exactly as a segfaulting driver
    would present), ``worker_hang`` sleeps past the leader's per-draw
    deadline, and ``worker_garble`` swaps the colour result for
    garbage to exercise the leader's chunk validation."""
    from ..testing import faults

    faults.install_encoded(plan.get("faults"))
    if faults.fire("worker_crash"):
        import os as _os

        _os._exit(3)
    if faults.fire("worker_hang"):
        time.sleep(faults.hang_seconds())
    garble = faults.fire("worker_garble")
    traced = bool(plan.get("trace"))
    t0 = time.perf_counter() if traced else 0.0
    fn, from_disk = _materialize(plan)
    t1 = time.perf_counter() if traced else 0.0
    regs: List[Optional[_Reg]] = [None] * plan["nregs"]
    for reg, (kind, payload) in plan["base"].items():
        if kind == "sampler":
            regs[reg] = _Reg(sampler=payload)
        else:
            regs[reg] = _Reg(data=payload)
    for reg, data in wide_regs.items():
        regs[reg] = _Reg(data=data)
    gst = fn.__globals__.get("_gst")
    before = tuple(gst) if gst is not None else (0, 0)
    t2 = time.perf_counter() if traced else 0.0
    discarded = fn(regs, count, plan["maxit"])
    delta = ((gst[0] - before[0], gst[1] - before[1])
             if gst is not None else (0, 0))
    spans = ()
    if traced:
        t3 = time.perf_counter()
        spans = [
            trace.raw_event("worker.materialize", "pool", t0, t1,
                            {"from_disk": from_disk}),
            trace.raw_event("worker.shade", "pool", t2, t3,
                            {"fragments": int(count)}),
        ]
    if garble:
        return np.full(3, np.nan), discarded, delta, from_disk, spans
    return regs[plan["out_reg"]].data, discarded, delta, from_disk, spans
