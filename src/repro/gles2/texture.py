"""Texture objects and sampling.

OpenGL ES 2 textures in this simulator enforce the restriction at the
heart of the paper: **texel storage is unsigned bytes only** (the API
offers no float texture formats — limitation 5 in §II-B).  Texels are
handed to the shader as floats in [0, 1] following spec equation (1):
``f = c / (2^8 - 1)``.

Sampling implements NEAREST and LINEAR filtering with REPEAT,
MIRRORED_REPEAT and CLAMP_TO_EDGE wrap modes, vectorised over all
fragments.  ES 2's non-power-of-two rule is enforced: NPOT textures
may only use CLAMP_TO_EDGE wrapping and NEAREST/LINEAR (no mipmap)
filtering, otherwise the texture is *incomplete* and samples return
opaque black — exactly the silent failure mode every Raspberry Pi
GPGPU programmer meets once.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from . import enums

_WRAP_MODES = (enums.GL_REPEAT, enums.GL_CLAMP_TO_EDGE, enums.GL_MIRRORED_REPEAT)
_MIN_FILTERS = (
    enums.GL_NEAREST,
    enums.GL_LINEAR,
    enums.GL_NEAREST_MIPMAP_NEAREST,
    enums.GL_LINEAR_MIPMAP_NEAREST,
    enums.GL_NEAREST_MIPMAP_LINEAR,
    enums.GL_LINEAR_MIPMAP_LINEAR,
)
_MAG_FILTERS = (enums.GL_NEAREST, enums.GL_LINEAR)


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


class Texture:
    """One texture object (name + storage + sampler state)."""

    def __init__(self, name: int):
        self.name = name
        #: (height, width, 4) uint8, RGBA expanded, or None before
        #: glTexImage2D.
        self.data: Optional[np.ndarray] = None
        self.width = 0
        self.height = 0
        self.format = enums.GL_RGBA
        self.params: Dict[int, int] = {
            enums.GL_TEXTURE_MIN_FILTER: enums.GL_NEAREST_MIPMAP_LINEAR,
            enums.GL_TEXTURE_MAG_FILTER: enums.GL_LINEAR,
            enums.GL_TEXTURE_WRAP_S: enums.GL_REPEAT,
            enums.GL_TEXTURE_WRAP_T: enums.GL_REPEAT,
        }
        self.deleted = False
        #: Set by glGenerateMipmap.  The simulator keeps no actual
        #: chain — minification samples the base level — but the
        #: completeness rules honour the flag.
        self.has_mipmaps = False

    # ------------------------------------------------------------------
    def set_image(self, width: int, height: int, fmt: int, pixels: Optional[np.ndarray]) -> None:
        """glTexImage2D body: store as RGBA8.

        ``pixels`` is a (height, width, components) uint8 array or
        None (texture allocated but undefined — zeros here).
        """
        components = enums.FORMAT_COMPONENTS[fmt]
        rgba = np.zeros((height, width, 4), dtype=np.uint8)
        rgba[:, :, 3] = 255
        if pixels is not None:
            pixels = np.asarray(pixels, dtype=np.uint8).reshape(height, width, components)
            if fmt == enums.GL_RGBA:
                rgba[:] = pixels
            elif fmt == enums.GL_RGB:
                rgba[:, :, :3] = pixels
            elif fmt == enums.GL_LUMINANCE:
                rgba[:, :, 0] = rgba[:, :, 1] = rgba[:, :, 2] = pixels[:, :, 0]
            elif fmt == enums.GL_LUMINANCE_ALPHA:
                rgba[:, :, 0] = rgba[:, :, 1] = rgba[:, :, 2] = pixels[:, :, 0]
                rgba[:, :, 3] = pixels[:, :, 1]
            elif fmt == enums.GL_ALPHA:
                rgba[:, :, :3] = 0
                rgba[:, :, 3] = pixels[:, :, 0]
        self.data = rgba
        self.width = width
        self.height = height
        self.format = fmt

    def set_sub_image(self, x: int, y: int, pixels: np.ndarray, fmt: int) -> None:
        """glTexSubImage2D body (same format as the existing image)."""
        components = enums.FORMAT_COMPONENTS[fmt]
        pixels = np.asarray(pixels, dtype=np.uint8)
        h, w = pixels.shape[0], pixels.shape[1]
        region = self.data[y : y + h, x : x + w]
        if fmt == enums.GL_RGBA:
            region[:] = pixels.reshape(h, w, components)
        elif fmt == enums.GL_RGB:
            region[:, :, :3] = pixels.reshape(h, w, components)
        elif fmt == enums.GL_LUMINANCE:
            lum = pixels.reshape(h, w)
            region[:, :, 0] = region[:, :, 1] = region[:, :, 2] = lum
        elif fmt == enums.GL_ALPHA:
            region[:, :, 3] = pixels.reshape(h, w)

    # ------------------------------------------------------------------
    def is_complete(self) -> bool:
        """ES 2 §3.8.2 completeness, including the NPOT restrictions."""
        if self.data is None:
            return False
        min_filter = self.params[enums.GL_TEXTURE_MIN_FILTER]
        uses_mipmaps = min_filter not in (enums.GL_NEAREST, enums.GL_LINEAR)
        if uses_mipmaps and not self.has_mipmaps:
            # Mipmap filtering without a generated chain leaves the
            # texture incomplete — the classic black-texture pitfall.
            return False
        if uses_mipmaps and not (_is_pow2(self.width) and _is_pow2(self.height)):
            return False  # ES 2: NPOT textures cannot have mipmaps
        if not (_is_pow2(self.width) and _is_pow2(self.height)):
            wrap_s = self.params[enums.GL_TEXTURE_WRAP_S]
            wrap_t = self.params[enums.GL_TEXTURE_WRAP_T]
            if wrap_s != enums.GL_CLAMP_TO_EDGE or wrap_t != enums.GL_CLAMP_TO_EDGE:
                return False
        return True

    # ------------------------------------------------------------------
    def gather_info(self, width: float, height: float) -> Optional[np.ndarray]:
        """Texel storage for the JIT's direct-gather fast path, or None.

        The gather replaces the whole :meth:`sample` pipeline with
        ``data[y, x]``, which is only equivalent to nearest sampling
        of texel-centre coordinates when every stage it skips is the
        identity: the texture must be complete (else samples are
        constant black), magnified with NEAREST (no bilinear blend),
        wrapped CLAMP_TO_EDGE on both axes (identity on in-range
        indices), and its dimensions must equal the kernel's size
        uniform (``width``/``height``, floats from the shader) so the
        in-range proof carried by the IR annotation applies to *this*
        storage.  Dimensions are capped at 2^20 so the float32
        texel-centre round-trip ``floor(((x+0.5)/W)*W) == x`` is exact
        (see :mod:`repro.glsl.ir.gather`).
        """
        if (self.data is None
                or float(self.width) != width
                or float(self.height) != height
                or self.width > 1 << 20 or self.height > 1 << 20
                or self.params[enums.GL_TEXTURE_MAG_FILTER] != enums.GL_NEAREST
                or self.params[enums.GL_TEXTURE_WRAP_S] != enums.GL_CLAMP_TO_EDGE
                or self.params[enums.GL_TEXTURE_WRAP_T] != enums.GL_CLAMP_TO_EDGE
                or not self.is_complete()):
            return None
        return self.data

    # ------------------------------------------------------------------
    # Sampling (vectorised over fragments)
    # ------------------------------------------------------------------
    def sample(self, s: np.ndarray, t: np.ndarray) -> np.ndarray:
        """texture2D: normalised coordinates -> (N, 4) floats in [0,1].

        Spec equation (1): each byte c is seen as c / 255.
        """
        n = max(s.shape[0], t.shape[0])
        if not self.is_complete():
            # Incomplete textures sample as (0, 0, 0, 1).
            out = np.zeros((n, 4), dtype=np.float64)
            out[:, 3] = 1.0
            return out
        mag = self.params[enums.GL_TEXTURE_MAG_FILTER]
        # Without mipmaps and with a full-screen quad, the mag filter
        # applies; GPGPU kernels use NEAREST.
        if mag == enums.GL_NEAREST:
            # uint8 / float divides in float64 directly (every uint8
            # is exact in float64) — same bits as astype-then-divide
            # without the intermediate copy.
            return self._sample_nearest(s, t) / 255.0
        return self._sample_linear(s, t) / 255.0

    def _wrap(self, coord: np.ndarray, mode: int, size: int) -> np.ndarray:
        """Map texel indices through the wrap mode onto [0, size)."""
        if mode == enums.GL_REPEAT:
            return np.mod(coord, size)
        if mode == enums.GL_MIRRORED_REPEAT:
            period = np.mod(coord, 2 * size)
            return np.where(period < size, period, 2 * size - 1 - period)
        # Same result as np.clip for integer indices, without the
        # method-dispatch detour (this is the hot clamp-to-edge path).
        return np.minimum(np.maximum(coord, 0), size - 1)

    def _sample_nearest(self, s: np.ndarray, t: np.ndarray) -> np.ndarray:
        i = np.floor(s * self.width).astype(np.int64)
        j = np.floor(t * self.height).astype(np.int64)
        i = self._wrap(i, self.params[enums.GL_TEXTURE_WRAP_S], self.width)
        j = self._wrap(j, self.params[enums.GL_TEXTURE_WRAP_T], self.height)
        n = max(i.shape[0], j.shape[0])
        if i.shape[0] != n:
            i = np.broadcast_to(i, (n,))
        if j.shape[0] != n:
            j = np.broadcast_to(j, (n,))
        return self.data[j, i]

    def _sample_linear(self, s: np.ndarray, t: np.ndarray) -> np.ndarray:
        x = s * self.width - 0.5
        y = t * self.height - 0.5
        x0 = np.floor(x).astype(np.int64)
        y0 = np.floor(y).astype(np.int64)
        fx = (x - x0)[:, None]
        fy = (y - y0)[:, None]
        wrap_s = self.params[enums.GL_TEXTURE_WRAP_S]
        wrap_t = self.params[enums.GL_TEXTURE_WRAP_T]
        x0w = self._wrap(x0, wrap_s, self.width)
        x1w = self._wrap(x0 + 1, wrap_s, self.width)
        y0w = self._wrap(y0, wrap_t, self.height)
        y1w = self._wrap(y0 + 1, wrap_t, self.height)
        c00 = self.data[y0w, x0w].astype(np.float64)
        c10 = self.data[y0w, x1w].astype(np.float64)
        c01 = self.data[y1w, x0w].astype(np.float64)
        c11 = self.data[y1w, x1w].astype(np.float64)
        top = c00 * (1.0 - fx) + c10 * fx
        bottom = c01 * (1.0 - fx) + c11 * fx
        return top * (1.0 - fy) + bottom * fy

    def sample_cube(self, coords: np.ndarray) -> np.ndarray:
        """textureCube placeholder: the simulator stores no cube faces;
        GPGPU never uses them.  Returns opaque black."""
        out = np.zeros((coords.shape[0], 4), dtype=np.float64)
        out[:, 3] = 1.0
        return out
