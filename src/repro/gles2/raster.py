"""Triangle rasterisation with perspective-correct interpolation.

Implements the fixed-function middle of the pipeline in Figure 1 of
the paper: primitive assembly (triangles only — limitation 2: ES 2
offers no quads, so the paper's technique renders a fullscreen quad as
two triangles) and rasterisation at pixel centers with a top-left fill
rule, so the two triangles of a quad cover every pixel exactly once —
crucial for GPGPU, where double-shading a pixel means computing (and
paying for) a kernel invocation twice.

Coordinates follow the GL convention: window origin at the bottom
left, pixel centers at half-integer coordinates.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from . import enums
from .errors import SimulatorLimitation


def assemble_triangles(mode: int, indices: np.ndarray) -> np.ndarray:
    """Group a vertex index stream into (T, 3) triangles.

    ``indices`` is the element stream (for glDrawArrays it is simply
    arange(count)).
    """
    count = indices.shape[0]
    if mode == enums.GL_TRIANGLES:
        t = count // 3
        return indices[: t * 3].reshape(t, 3)
    if mode == enums.GL_TRIANGLE_STRIP:
        if count < 3:
            return np.zeros((0, 3), dtype=indices.dtype)
        i = np.arange(count - 2)
        even = (i % 2) == 0
        # Odd triangles swap their first two vertices to preserve
        # winding.
        first = np.where(even, indices[i], indices[i + 1])
        second = np.where(even, indices[i + 1], indices[i])
        return np.stack([first, second, indices[i + 2]], axis=1)
    if mode == enums.GL_TRIANGLE_FAN:
        if count < 3:
            return np.zeros((0, 3), dtype=indices.dtype)
        return np.stack(
            [
                np.broadcast_to(indices[0], (count - 2,)),
                indices[1:-1],
                indices[2:],
            ],
            axis=1,
        )
    raise SimulatorLimitation(
        f"primitive mode {hex(mode)} is not rasterised by this simulator "
        "(use GL_TRIANGLES / GL_TRIANGLE_STRIP / GL_TRIANGLE_FAN / GL_POINTS)"
    )


@dataclass
class FragmentBatch:
    """All fragments produced by one draw call.

    ``vertex_ids[f]`` are the three vertex indices of the fragment's
    triangle, ``bary[f]`` the window-space barycentric weights, and
    ``persp[f]`` the perspective-corrected weights (equal to ``bary``
    when all w == 1, the GPGPU case).
    """

    px: np.ndarray  # (F,) int64 pixel x
    py: np.ndarray  # (F,) int64 pixel y
    vertex_ids: np.ndarray  # (F, 3)
    bary: np.ndarray  # (F, 3) float64
    persp: np.ndarray  # (F, 3) float64, sums to 1
    frag_z: np.ndarray  # (F,) window-space depth in [0, 1]
    frag_w: np.ndarray  # (F,) 1 / w_clip interpolated
    #: (F,) bool — gl_FrontFacing per fragment.  Triangles derive it
    #: from the sign of the window-space area (GL_CCW front faces);
    #: points and lines are always front-facing (GL ES 2 §3.5.1).
    front: np.ndarray = None

    def __post_init__(self):
        if self.front is None:
            self.front = np.ones(self.px.shape[0], dtype=bool)

    @property
    def count(self) -> int:
        return self.px.shape[0]

    def select(self, indices: np.ndarray) -> "FragmentBatch":
        """A sub-batch holding the fragments at ``indices`` (fancy
        indexing, so the sub-batch owns fresh arrays)."""
        return FragmentBatch(
            px=self.px[indices],
            py=self.py[indices],
            vertex_ids=self.vertex_ids[indices],
            bary=self.bary[indices],
            persp=self.persp[indices],
            frag_z=self.frag_z[indices],
            frag_w=self.frag_w[indices],
            front=self.front[indices],
        )


def partition_tiles(batch: FragmentBatch, tile_size: int) -> List[np.ndarray]:
    """Split a fragment batch into framebuffer-aligned square tiles.

    Returns one int64 index array per non-empty ``tile_size`` ×
    ``tile_size`` pixel tile, in row-major tile order.  Each index
    array selects that tile's fragments *in their original batch
    order*, so per-tile processing followed by a scatter through the
    returned indices reassembles every per-fragment quantity — and,
    because tiles partition by pixel position, all fragments competing
    for one pixel stay in the same tile with their relative order
    intact (last-writer-wins framebuffer semantics are preserved).
    """
    if tile_size <= 0 or batch.count == 0:
        return [np.arange(batch.count, dtype=np.int64)]
    tx = batch.px // tile_size
    ty = batch.py // tile_size
    width_tiles = int(tx.max()) + 1 if tx.size else 1
    tile_id = ty * width_tiles + tx
    order = np.argsort(tile_id, kind="stable")
    sorted_ids = tile_id[order]
    boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
    return [
        chunk.astype(np.int64, copy=False)
        for chunk in np.split(order, boundaries)
    ]


def apply_scissor(
    batch: FragmentBatch, scissor: Tuple[int, int, int, int]
) -> FragmentBatch:
    """Discard fragments outside the scissor rectangle (used for the
    point/line paths; the triangle rasteriser clips its bounding boxes
    against the scissor directly)."""
    sx, sy, sw, sh = scissor
    keep = (
        (batch.px >= sx) & (batch.px < sx + sw)
        & (batch.py >= sy) & (batch.py < sy + sh)
    )
    if keep.all():
        return batch
    return batch.select(np.flatnonzero(keep))


def viewport_transform(
    positions_clip: np.ndarray, viewport: Tuple[int, int, int, int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Clip space -> window space.

    Returns (window (N,3): x, y, z) and the clip-space w (N,).
    No frustum clipping is performed: the GPGPU geometry is a quad at
    exactly the NDC boundary, which needs none.
    """
    vx, vy, vw, vh = viewport
    w_clip = positions_clip[:, 3]
    safe_w = np.where(w_clip == 0.0, 1.0, w_clip)
    ndc = positions_clip[:, :3] / safe_w[:, None]
    window = np.empty_like(ndc)
    window[:, 0] = (ndc[:, 0] * 0.5 + 0.5) * vw + vx
    window[:, 1] = (ndc[:, 1] * 0.5 + 0.5) * vh + vy
    window[:, 2] = ndc[:, 2] * 0.5 + 0.5
    return window, w_clip


# Fragment-batch memo for the GPGPU steady state: kernel relaunches
# redraw a byte-identical quad into the same framebuffer, so the
# fixed-function rasterisation work repeats verbatim every launch.
# The key is the exact byte content of every input, which makes a hit
# bit-identical by construction; consumers never mutate a
# FragmentBatch (fancy indexing copies), so sharing the arrays is
# safe.  Oversized batches are not memoised to bound memory.
_RASTER_MEMO: "OrderedDict[tuple, FragmentBatch]" = OrderedDict()
_RASTER_MEMO_CAPACITY = 16
_RASTER_MEMO_MAX_FRAGMENTS = 1 << 16


def raster_memo_clear() -> None:
    """Drop all memoised fragment batches (test isolation hook)."""
    _RASTER_MEMO.clear()


def rasterize_triangles(
    window: np.ndarray,
    w_clip: np.ndarray,
    triangles: np.ndarray,
    fb_width: int,
    fb_height: int,
    scissor: Optional[Tuple[int, int, int, int]] = None,
) -> FragmentBatch:
    """Rasterise triangles given window-space vertices.

    Applies the top-left fill rule so shared edges shade exactly once.
    Results are memoised on the full input content (see
    ``_RASTER_MEMO``): relaunching the same GPGPU quad skips the
    per-triangle scan entirely.
    """
    key = (
        np.ascontiguousarray(window).tobytes(),
        np.ascontiguousarray(w_clip).tobytes(),
        np.ascontiguousarray(triangles).tobytes(),
        triangles.shape[0],
        str(triangles.dtype),
        fb_width,
        fb_height,
        scissor,
    )
    hit = _RASTER_MEMO.get(key)
    if hit is not None:
        _RASTER_MEMO.move_to_end(key)
        return hit
    batch = _rasterize_triangles(
        window, w_clip, triangles, fb_width, fb_height, scissor
    )
    if batch.count <= _RASTER_MEMO_MAX_FRAGMENTS:
        _RASTER_MEMO[key] = batch
        while len(_RASTER_MEMO) > _RASTER_MEMO_CAPACITY:
            _RASTER_MEMO.popitem(last=False)
    return batch


def _rasterize_triangles(
    window: np.ndarray,
    w_clip: np.ndarray,
    triangles: np.ndarray,
    fb_width: int,
    fb_height: int,
    scissor: Optional[Tuple[int, int, int, int]] = None,
) -> FragmentBatch:
    all_px: List[np.ndarray] = []
    all_py: List[np.ndarray] = []
    all_ids: List[np.ndarray] = []
    all_bary: List[np.ndarray] = []
    all_persp: List[np.ndarray] = []
    all_z: List[np.ndarray] = []
    all_w: List[np.ndarray] = []
    all_front: List[np.ndarray] = []

    min_x, min_y = 0, 0
    max_x, max_y = fb_width, fb_height
    if scissor is not None:
        sx, sy, sw, sh = scissor
        min_x, min_y = max(min_x, sx), max(min_y, sy)
        max_x, max_y = min(max_x, sx + sw), min(max_y, sy + sh)

    for tri in triangles:
        # Scalar edge setup in native floats (IEEE double, identical
        # arithmetic to the former numpy-scalar version, far cheaper
        # per triangle).
        v0x, v0y = float(window[tri[0], 0]), float(window[tri[0], 1])
        v1x, v1y = float(window[tri[1], 0]), float(window[tri[1], 1])
        v2x, v2y = float(window[tri[2], 0]), float(window[tri[2], 1])
        area = (v1x - v0x) * (v2y - v0y) - (v1y - v0y) * (v2x - v0x)
        if area == 0.0:
            continue
        orient = 1.0 if area > 0 else -1.0

        x_lo = max(int(np.floor(min(v0x, v1x, v2x))), min_x)
        x_hi = min(int(np.ceil(max(v0x, v1x, v2x))), max_x)
        y_lo = max(int(np.floor(min(v0y, v1y, v2y))), min_y)
        y_hi = min(int(np.ceil(max(v0y, v1y, v2y))), max_y)
        if x_lo >= x_hi or y_lo >= y_hi:
            continue

        # Row/column vectors broadcast to the (H, W) bbox lazily —
        # same elementwise values as an explicit meshgrid without
        # materialising the coordinate planes.
        xs = np.arange(x_lo, x_hi, dtype=np.float64)[None, :] + 0.5
        ys = np.arange(y_lo, y_hi, dtype=np.float64)[:, None] + 0.5

        inside = None
        edge_values = []
        for ax, ay, bx, by in (
            (v1x, v1y, v2x, v2y),
            (v2x, v2y, v0x, v0y),
            (v0x, v0y, v1x, v1y),
        ):
            dx = (bx - ax) * orient
            dy = (by - ay) * orient
            e = dx * (ys - ay) - dy * (xs - ax)
            top_left = dy > 0.0 or (dy == 0.0 and dx < 0.0)
            hit = e >= 0.0 if top_left else e > 0.0
            inside = hit if inside is None else (inside & hit)
            edge_values.append(e)
        if not inside.any():
            continue
        iy, ix = np.nonzero(inside)

        e0, e1, e2 = (e[iy, ix] for e in edge_values)
        total = e0 + e1 + e2
        bary = np.stack([e0, e1, e2], axis=1) / total[:, None]

        ws = w_clip[tri]
        if ws[0] == 1.0 and ws[1] == 1.0 and ws[2] == 1.0:
            # GPGPU quad fast path: with every clip w == 1 the
            # perspective weights equal the window-space barycentrics
            # exactly (the reciprocal/normalise round trip divides
            # each weight by their sum twice — pure overhead and a
            # rounding detour on every kernel launch).
            persp = bary
            frag_inv_w = np.ones(bary.shape[0], dtype=np.float64)
        else:
            inv_w = np.where(ws == 0.0, 1.0, 1.0 / ws)
            persp_num = bary * inv_w[None, :]
            frag_inv_w = persp_num.sum(axis=1)
            persp = persp_num / frag_inv_w[:, None]

        zs = window[tri, 2]
        frag_z = bary @ zs

        all_px.append(x_lo + ix)
        all_py.append(y_lo + iy)
        all_ids.append(np.broadcast_to(tri, (ix.shape[0], 3)).copy())
        all_bary.append(bary)
        all_persp.append(persp)
        all_z.append(frag_z)
        all_w.append(frag_inv_w)
        # Positive signed area means the projected winding is CCW —
        # the default front face (glFrontFace(GL_CCW)).
        all_front.append(np.full(ix.shape[0], area > 0.0, dtype=bool))

    if not all_px:
        empty_f = np.zeros((0,), dtype=np.float64)
        return FragmentBatch(
            px=np.zeros((0,), dtype=np.int64),
            py=np.zeros((0,), dtype=np.int64),
            vertex_ids=np.zeros((0, 3), dtype=np.int64),
            bary=np.zeros((0, 3)),
            persp=np.zeros((0, 3)),
            frag_z=empty_f,
            frag_w=empty_f,
        )
    return FragmentBatch(
        px=np.concatenate(all_px),
        py=np.concatenate(all_py),
        vertex_ids=np.concatenate(all_ids).astype(np.int64),
        bary=np.concatenate(all_bary),
        persp=np.concatenate(all_persp),
        frag_z=np.concatenate(all_z),
        frag_w=np.concatenate(all_w),
        front=np.concatenate(all_front),
    )


def assemble_lines(mode: int, indices: np.ndarray) -> np.ndarray:
    """Group a vertex index stream into (L, 2) line segments."""
    count = indices.shape[0]
    if mode == enums.GL_LINES:
        pairs = count // 2
        return indices[: pairs * 2].reshape(pairs, 2)
    if mode == enums.GL_LINE_STRIP:
        if count < 2:
            return np.zeros((0, 2), dtype=indices.dtype)
        return np.stack([indices[:-1], indices[1:]], axis=1)
    if mode == enums.GL_LINE_LOOP:
        if count < 2:
            return np.zeros((0, 2), dtype=indices.dtype)
        nxt = np.concatenate([indices[1:], indices[:1]])
        return np.stack([indices, nxt], axis=1)
    raise SimulatorLimitation(f"mode {hex(mode)} is not a line mode")


def rasterize_lines(
    window: np.ndarray,
    w_clip: np.ndarray,
    segments: np.ndarray,
    fb_width: int,
    fb_height: int,
) -> FragmentBatch:
    """Width-1 line rasterisation (DDA along the major axis, the GL
    diamond-exit rule approximated by sampling one fragment per major
    step)."""
    all_px, all_py, all_ids, all_t = [], [], [], []
    for seg in segments:
        a, b = window[seg[0]], window[seg[1]]
        dx, dy = b[0] - a[0], b[1] - a[1]
        steps = int(np.ceil(max(abs(dx), abs(dy))))
        if steps == 0:
            ts = np.array([0.0])
        else:
            ts = (np.arange(steps) + 0.5) / steps
        xs = a[0] + dx * ts
        ys = a[1] + dy * ts
        px = np.floor(xs).astype(np.int64)
        py = np.floor(ys).astype(np.int64)
        keep = (px >= 0) & (px < fb_width) & (py >= 0) & (py < fb_height)
        if not keep.any():
            continue
        all_px.append(px[keep])
        all_py.append(py[keep])
        all_t.append(ts[keep])
        all_ids.append(
            np.broadcast_to(
                np.array([seg[0], seg[1], seg[1]]), (int(keep.sum()), 3)
            ).copy()
        )
    if not all_px:
        empty_f = np.zeros((0,), dtype=np.float64)
        return FragmentBatch(
            px=np.zeros((0,), dtype=np.int64),
            py=np.zeros((0,), dtype=np.int64),
            vertex_ids=np.zeros((0, 3), dtype=np.int64),
            bary=np.zeros((0, 3)),
            persp=np.zeros((0, 3)),
            frag_z=empty_f,
            frag_w=empty_f,
        )
    px = np.concatenate(all_px)
    py = np.concatenate(all_py)
    ids = np.concatenate(all_ids).astype(np.int64)
    ts = np.concatenate(all_t)
    bary = np.zeros((px.shape[0], 3))
    bary[:, 0] = 1.0 - ts
    bary[:, 1] = ts
    w_a = w_clip[ids[:, 0]]
    w_b = w_clip[ids[:, 1]]
    inv_a = np.where(w_a == 0.0, 1.0, 1.0 / w_a)
    inv_b = np.where(w_b == 0.0, 1.0, 1.0 / w_b)
    persp_num = np.zeros_like(bary)
    persp_num[:, 0] = bary[:, 0] * inv_a
    persp_num[:, 1] = bary[:, 1] * inv_b
    frag_inv_w = persp_num[:, 0] + persp_num[:, 1]
    persp = persp_num / frag_inv_w[:, None]
    za = window[ids[:, 0], 2]
    zb = window[ids[:, 1], 2]
    frag_z = bary[:, 0] * za + bary[:, 1] * zb
    return FragmentBatch(
        px=px, py=py, vertex_ids=ids, bary=bary, persp=persp,
        frag_z=frag_z, frag_w=frag_inv_w,
    )


def rasterize_points(
    window: np.ndarray,
    w_clip: np.ndarray,
    indices: np.ndarray,
    fb_width: int,
    fb_height: int,
) -> FragmentBatch:
    """GL_POINTS with point size 1: one fragment per on-screen vertex."""
    px = np.floor(window[indices, 0]).astype(np.int64)
    py = np.floor(window[indices, 1]).astype(np.int64)
    keep = (px >= 0) & (px < fb_width) & (py >= 0) & (py < fb_height)
    idx = indices[keep]
    count = idx.shape[0]
    bary = np.zeros((count, 3))
    bary[:, 0] = 1.0
    ws = w_clip[idx]
    inv_w = np.where(ws == 0.0, 1.0, 1.0 / ws)
    return FragmentBatch(
        px=px[keep],
        py=py[keep],
        vertex_ids=np.stack([idx, idx, idx], axis=1).astype(np.int64),
        bary=bary,
        persp=bary.copy(),
        frag_z=window[idx, 2],
        frag_w=inv_w,
    )


def interpolate_varying(batch: FragmentBatch, per_vertex: np.ndarray) -> np.ndarray:
    """Perspective-correct interpolation of per-vertex data.

    ``per_vertex`` has shape (num_vertices, ...); the result has shape
    (F, ...).
    """
    v = per_vertex[batch.vertex_ids]  # (F, 3, ...)
    weights = batch.persp
    weights = weights.reshape(weights.shape + (1,) * (v.ndim - 2))
    return (v * weights).sum(axis=1)
