"""A minimal EGL shim — the context-creation path of the paper's
platform.

On the Raspberry Pi there is no window system: applications reach the
GPU through EGL over dispmanx, and every VideoCore GPGPU program
begins with the same boilerplate (get display → initialize → choose a
config → create a context and a pbuffer surface → make current).  This
module reproduces that boot sequence faithfully enough that code
written against it reads like real Pi code, while producing a
:class:`~repro.gles2.context.GLES2Context` underneath.

Only the constants and calls the GPGPU path touches are implemented.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .context import GLES2Context

# EGL constants (from egl.h)
EGL_DEFAULT_DISPLAY = 0
EGL_NO_CONTEXT = 0
EGL_NO_SURFACE = 0
EGL_FALSE = 0
EGL_TRUE = 1

EGL_SUCCESS = 0x3000
EGL_NOT_INITIALIZED = 0x3001
EGL_BAD_CONFIG = 0x3005
EGL_BAD_DISPLAY = 0x3008
EGL_BAD_PARAMETER = 0x300C

EGL_ALPHA_SIZE = 0x3021
EGL_BLUE_SIZE = 0x3022
EGL_GREEN_SIZE = 0x3023
EGL_RED_SIZE = 0x3024
EGL_DEPTH_SIZE = 0x3025
EGL_SURFACE_TYPE = 0x3033
EGL_NONE = 0x3038
EGL_RENDERABLE_TYPE = 0x3040
EGL_HEIGHT = 0x3056
EGL_WIDTH = 0x3057
EGL_PBUFFER_BIT = 0x0001
EGL_WINDOW_BIT = 0x0004
EGL_OPENGL_ES2_BIT = 0x0004
EGL_CONTEXT_CLIENT_VERSION = 0x3098


@dataclass
class EglConfig:
    """One framebuffer configuration."""

    config_id: int
    red_size: int = 8
    green_size: int = 8
    blue_size: int = 8
    alpha_size: int = 8
    depth_size: int = 0
    surface_type: int = EGL_PBUFFER_BIT | EGL_WINDOW_BIT
    renderable_type: int = EGL_OPENGL_ES2_BIT

    def matches(self, attributes: Dict[int, int]) -> bool:
        checks = {
            EGL_RED_SIZE: self.red_size,
            EGL_GREEN_SIZE: self.green_size,
            EGL_BLUE_SIZE: self.blue_size,
            EGL_ALPHA_SIZE: self.alpha_size,
            EGL_DEPTH_SIZE: self.depth_size,
        }
        for key, wanted in attributes.items():
            if key in checks and checks[key] < wanted:
                return False
            if key == EGL_SURFACE_TYPE and not (self.surface_type & wanted):
                return False
            if key == EGL_RENDERABLE_TYPE and not (
                self.renderable_type & wanted
            ):
                return False
        return True


@dataclass
class EglSurface:
    width: int
    height: int
    config: EglConfig


@dataclass
class EglContext:
    config: EglConfig
    client_version: int
    #: Filled at eglMakeCurrent.
    gl: Optional[GLES2Context] = None


@dataclass
class EglDisplay:
    """The single (dispmanx-backed) display."""

    initialized: bool = False
    configs: List[EglConfig] = field(default_factory=lambda: [
        EglConfig(config_id=1),
        EglConfig(config_id=2, alpha_size=0),
    ])


class Egl:
    """The EGL entry points, bound to one simulated device.

    A fresh instance models one process's EGL state (matching how the
    Pi's libEGL behaves)."""

    def __init__(self, **context_kwargs):
        self._display = EglDisplay()
        self._error = EGL_SUCCESS
        self._current: Optional[Tuple[EglContext, EglSurface]] = None
        self._context_kwargs = context_kwargs

    # ------------------------------------------------------------------
    def eglGetError(self) -> int:
        error, self._error = self._error, EGL_SUCCESS
        return error

    def _fail(self, code: int):
        self._error = code
        return EGL_FALSE

    # ------------------------------------------------------------------
    def eglGetDisplay(self, native_display: int = EGL_DEFAULT_DISPLAY):
        if native_display != EGL_DEFAULT_DISPLAY:
            self._error = EGL_BAD_DISPLAY
            return None
        return self._display

    def eglInitialize(self, display: EglDisplay):
        """Returns (EGL_TRUE, major, minor)."""
        if not isinstance(display, EglDisplay):
            return self._fail(EGL_BAD_DISPLAY), 0, 0
        display.initialized = True
        return EGL_TRUE, 1, 4

    def eglTerminate(self, display: EglDisplay):
        display.initialized = False
        self._current = None
        return EGL_TRUE

    # ------------------------------------------------------------------
    def eglChooseConfig(
        self, display: EglDisplay, attrib_list: Sequence[int]
    ) -> List[EglConfig]:
        """Returns the matching configs (the C out-parameter style is
        flattened into a return value)."""
        if not display.initialized:
            self._error = EGL_NOT_INITIALIZED
            return []
        attributes = _parse_attribs(attrib_list)
        return [c for c in display.configs if c.matches(attributes)]

    def eglCreateContext(
        self,
        display: EglDisplay,
        config: EglConfig,
        share_context=EGL_NO_CONTEXT,
        attrib_list: Sequence[int] = (),
    ):
        if not display.initialized:
            self._error = EGL_NOT_INITIALIZED
            return EGL_NO_CONTEXT
        if config not in display.configs:
            self._error = EGL_BAD_CONFIG
            return EGL_NO_CONTEXT
        attributes = _parse_attribs(attrib_list)
        version = attributes.get(EGL_CONTEXT_CLIENT_VERSION, 1)
        if version != 2:
            # The paper's platform is ES 2 only.
            self._error = EGL_BAD_PARAMETER
            return EGL_NO_CONTEXT
        return EglContext(config=config, client_version=2)

    def eglCreatePbufferSurface(
        self, display: EglDisplay, config: EglConfig,
        attrib_list: Sequence[int] = (),
    ):
        if not display.initialized:
            self._error = EGL_NOT_INITIALIZED
            return EGL_NO_SURFACE
        attributes = _parse_attribs(attrib_list)
        width = attributes.get(EGL_WIDTH, 1)
        height = attributes.get(EGL_HEIGHT, 1)
        if width <= 0 or height <= 0:
            self._error = EGL_BAD_PARAMETER
            return EGL_NO_SURFACE
        return EglSurface(width=width, height=height, config=config)

    def eglMakeCurrent(
        self, display: EglDisplay, draw: EglSurface, read: EglSurface,
        context: EglContext,
    ):
        if not isinstance(context, EglContext) or not isinstance(
            draw, EglSurface
        ):
            return self._fail(EGL_BAD_PARAMETER)
        if context.gl is None:
            context.gl = GLES2Context(
                width=draw.width, height=draw.height, **self._context_kwargs
            )
        self._current = (context, draw)
        return EGL_TRUE

    def eglGetCurrentContext(self):
        return self._current[0] if self._current else EGL_NO_CONTEXT

    def eglSwapBuffers(self, display: EglDisplay, surface: EglSurface):
        # Pbuffers have no back buffer; this is a fence, like glFinish.
        if self._current is None:
            return self._fail(EGL_BAD_PARAMETER)
        self._current[0].gl.glFinish()
        return EGL_TRUE

    # ------------------------------------------------------------------
    def current_gl(self) -> GLES2Context:
        """Convenience: the GLES2Context of the current EGL context."""
        if self._current is None or self._current[0].gl is None:
            raise RuntimeError("no EGL context is current")
        return self._current[0].gl


def _parse_attribs(attrib_list: Sequence[int]) -> Dict[int, int]:
    """EGL attribute lists are flat (key, value, ..., EGL_NONE)."""
    attributes: Dict[int, int] = {}
    items = list(attrib_list)
    i = 0
    while i < len(items):
        if items[i] == EGL_NONE:
            break
        if i + 1 >= len(items):
            break
        attributes[items[i]] = items[i + 1]
        i += 2
    return attributes


def create_es2_context(width: int, height: int, **context_kwargs) -> GLES2Context:
    """The whole Pi boot dance in one call (what every VideoCore GPGPU
    program's first 30 lines do), returning a ready GLES2Context."""
    egl = Egl(**context_kwargs)
    display = egl.eglGetDisplay(EGL_DEFAULT_DISPLAY)
    ok, __, __ = egl.eglInitialize(display)
    assert ok == EGL_TRUE
    configs = egl.eglChooseConfig(display, [
        EGL_RED_SIZE, 8, EGL_GREEN_SIZE, 8, EGL_BLUE_SIZE, 8,
        EGL_ALPHA_SIZE, 8, EGL_SURFACE_TYPE, EGL_PBUFFER_BIT,
        EGL_RENDERABLE_TYPE, EGL_OPENGL_ES2_BIT, EGL_NONE,
    ])
    context = egl.eglCreateContext(
        display, configs[0],
        attrib_list=[EGL_CONTEXT_CLIENT_VERSION, 2, EGL_NONE],
    )
    surface = egl.eglCreatePbufferSurface(
        display, configs[0], [EGL_WIDTH, width, EGL_HEIGHT, height, EGL_NONE]
    )
    egl.eglMakeCurrent(display, surface, surface, context)
    return egl.current_gl()
