"""GL error handling.

Real OpenGL reports errors through a sticky error flag read with
``glGetError``.  The simulator follows the same model (so code ported
from C behaves identically), but can optionally *also* raise a Python
exception at the call site — far friendlier while developing kernels.
"""

from __future__ import annotations

from . import enums

_ERROR_NAMES = {
    enums.GL_NO_ERROR: "GL_NO_ERROR",
    enums.GL_INVALID_ENUM: "GL_INVALID_ENUM",
    enums.GL_INVALID_VALUE: "GL_INVALID_VALUE",
    enums.GL_INVALID_OPERATION: "GL_INVALID_OPERATION",
    enums.GL_OUT_OF_MEMORY: "GL_OUT_OF_MEMORY",
    enums.GL_INVALID_FRAMEBUFFER_OPERATION: "GL_INVALID_FRAMEBUFFER_OPERATION",
}


def error_name(code: int) -> str:
    return _ERROR_NAMES.get(code, hex(code))


class GLError(Exception):
    """Raised (in strict mode) when a GL call records an error."""

    def __init__(self, code: int, message: str = ""):
        self.code = code
        detail = f"{error_name(code)}"
        if message:
            detail += f": {message}"
        super().__init__(detail)


class SimulatorLimitation(Exception):
    """Raised when the simulator does not implement a legal-but-unused
    corner of the API (e.g. line primitives).  Distinct from GLError so
    callers can tell a simulator gap from a genuine API misuse."""


class ErrorState:
    """The context's sticky error flag."""

    def __init__(self, strict: bool = True):
        self.code = enums.GL_NO_ERROR
        #: When True, recording an error raises GLError immediately.
        self.strict = strict

    def record(self, code: int, message: str = "") -> None:
        if self.code == enums.GL_NO_ERROR:
            self.code = code
        if self.strict:
            raise GLError(code, message)

    def fetch(self) -> int:
        """glGetError semantics: return and clear."""
        code = self.code
        self.code = enums.GL_NO_ERROR
        return code
