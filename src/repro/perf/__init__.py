"""Performance modelling for the simulated platform.

The paper reports *wall-clock speedups* measured on a Raspberry Pi
(VideoCore IV GPU vs ARM11 CPU), including data transfers and shader
compilation.  We have no Pi, so this package substitutes an
instruction-counting performance model:

* :mod:`repro.perf.counters` — dynamic op counts collected while the
  GLES2 simulator executes (shader ALU/SFU/texture ops, fragment and
  vertex invocations, bus transfers, compilations);
* :mod:`repro.perf.machines` — machine parameter sets for the
  VideoCore IV QPU array and the ARM11 CPU;
* :mod:`repro.perf.cpu_model` / :mod:`repro.perf.gpu_model` — convert
  counts into execution time on each device;
* :mod:`repro.perf.wallclock` — assemble end-to-end application wall
  time (compile + upload + execute + readback), the quantity the
  paper's Section V compares.
"""

from .counters import ContextStats, DrawStats, OpCounters
from .cpu_model import CpuModel, CpuWorkload
from .gpu_model import GpuModel
from .roofline import RooflinePoint, analyze_context, analyze_draw, format_roofline, ridge_intensity
from .machines import ARM11_CPU, VIDEOCORE_IV_GPU, CpuParameters, GpuParameters
from .wallclock import GpuTimeline, gpu_wall_time

__all__ = [
    "ContextStats",
    "DrawStats",
    "OpCounters",
    "CpuModel",
    "CpuWorkload",
    "GpuModel",
    "ARM11_CPU",
    "VIDEOCORE_IV_GPU",
    "CpuParameters",
    "GpuParameters",
    "GpuTimeline",
    "gpu_wall_time",
    "RooflinePoint",
    "analyze_draw",
    "analyze_context",
    "ridge_intensity",
    "format_roofline",
]
