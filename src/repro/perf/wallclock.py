"""End-to-end application wall-time assembly.

The paper's §V compares *application wall times, including time spent
in data transfers and kernel compilations*.  This module assembles the
full GPU-side wall time from a context's lifetime counters:

    wall = compile + upload + execute + readback

and packages the decomposition for reporting, so benches can show
where the time goes (the paper's discussion of the "extra burden of
packing and unpacking" is directly visible in the execute component).
"""

from __future__ import annotations

from dataclasses import dataclass

from .counters import ContextStats
from .gpu_model import GpuModel
from .machines import VIDEOCORE_IV_GPU, GpuParameters


@dataclass
class GpuTimeline:
    """Decomposed GPU application wall time (seconds)."""

    compile_seconds: float
    upload_seconds: float
    execute_seconds: float
    readback_seconds: float
    #: Transfer time the launch-graph fusion *avoided*: the priced
    #: write+re-read traffic of intermediates that never touched a
    #: framebuffer (ContextStats.elided_intermediate_bytes).  Not part
    #: of ``total_seconds`` — it is time saved, reported so benches can
    #: show the graph path's elided-transfer component explicitly.
    elided_transfer_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return (
            self.compile_seconds
            + self.upload_seconds
            + self.execute_seconds
            + self.readback_seconds
        )

    def breakdown(self) -> str:
        """Human-readable component table."""
        rows = [
            ("compile", self.compile_seconds),
            ("upload", self.upload_seconds),
            ("execute", self.execute_seconds),
            ("readback", self.readback_seconds),
            ("total", self.total_seconds),
        ]
        if self.elided_transfer_seconds:
            rows.append(("(elided)", self.elided_transfer_seconds))
        return "\n".join(f"{name:>9}: {seconds * 1e3:10.3f} ms" for name, seconds in rows)


def gpu_wall_time(
    stats: ContextStats, params: GpuParameters = VIDEOCORE_IV_GPU
) -> GpuTimeline:
    """Assemble the wall time of everything a context did."""
    model = GpuModel(params)
    elided_bytes = getattr(stats, "elided_intermediate_bytes", 0)
    # The counter prices both legs of each skipped intermediate — the
    # framebuffer write (upload-rate leg) *and* the texture re-read by
    # the consumer (readback-rate leg) — in equal byte halves.
    elided_half = elided_bytes / 2
    return GpuTimeline(
        compile_seconds=model.compile_seconds(stats),
        upload_seconds=model.upload_seconds(stats),
        execute_seconds=model.execute_seconds(stats),
        readback_seconds=model.readback_seconds(stats),
        elided_transfer_seconds=(
            elided_half / params.upload_bytes_per_second
            + elided_half / params.readback_bytes_per_second
        ),
    )
