"""Machine parameter sets for the paper's evaluation platform.

The Raspberry Pi (first generation, the paper's platform) pairs a
700 MHz ARM11 (ARM1176JZF-S) CPU with the Broadcom VideoCore IV GPU.
The GPU's 12 QPUs, each a 4-wide SIMD unit issuing one multiply and
one add per cycle at 250 MHz, give the 24 GFlops the paper quotes
(12 x 4 x 2 x 250e6 = 24e9).

Parameter values are engineering estimates assembled from public
VideoCore IV documentation and ARM11 TRM timings; the benchmark
harness checks the *shape* of results against the paper (who wins, by
roughly what factor), not absolute times, as required when the real
board is unavailable.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuParameters:
    """Throughput/latency parameters of a mobile GPU."""

    name: str = "VideoCore IV"
    clock_hz: float = 250e6
    qpu_count: int = 12
    simd_width: int = 4
    #: Peak ALU throughput in scalar float ops per second.  The QPU
    #: issues an add and a multiply per lane per cycle:
    #: 12 QPUs x 4 lanes x 2 ops x 250 MHz = 24 GFlops (paper §I/§V).
    alu_ops_per_second: float = 24e9
    #: Special function unit (recip/rsqrt/exp2/log2).  The SFU result
    #: takes 4 cycles but the QPU pipelines other work over the
    #: latency, so the sustained rate is ~2 results per QPU per cycle
    #: pair: 12 x 250 MHz x 2 = 6e9/s effective.
    sfu_ops_per_second: float = 6e9
    #: TMU texture fetch throughput (texels/second, all QPUs).
    tex_fetches_per_second: float = 1.5e9
    #: Fixed rasteriser/varying cost per fragment (cycles).  The tile
    #: architecture amortises setup; half a QPU cycle per fragment.
    fragment_overhead_cycles: float = 0.5
    #: Vertex processing fixed cost (cycles per vertex).
    vertex_overhead_cycles: float = 80.0
    #: Host->GPU copy bandwidth (bytes/s).  On the Pi the GPU shares
    #: SDRAM with the CPU and uploads go through the DMA engine.
    upload_bytes_per_second: float = 3.0e9
    #: GPU->host readback bandwidth (glReadPixels).
    readback_bytes_per_second: float = 1.5e9
    #: Driver cost of one shader compilation (seconds).  The paper's
    #: wall times include kernel compilation.
    shader_compile_seconds: float = 1.0e-3
    program_link_seconds: float = 0.5e-3
    #: Driver cost of a compilation served from a warm on-disk binary
    #: cache (seconds).  ``None`` prices every compile at the cold
    #: rate, which keeps the model deterministic regardless of cache
    #: state; set it to model binary-program-cache warm starts
    #: (cf. ARM_mali_cache_file / the GL OES_get_program_binary path).
    warm_shader_compile_seconds: "float | None" = None
    #: Per-draw-call driver/setup overhead (seconds).
    draw_overhead_seconds: float = 150e-6

    @property
    def peak_gflops(self) -> float:
        return self.alu_ops_per_second / 1e9


@dataclass(frozen=True)
class CpuParameters:
    """Timing parameters of a scalar in-order CPU."""

    name: str = "ARM1176JZF-S (ARM11)"
    clock_hz: float = 700e6
    #: Average cycles per simple integer ALU op (issue + hazards).
    int_op_cycles: float = 1.2
    #: Average cycles per VFP11 single-precision op (dependent-chain
    #: stalls on the partially-pipelined VFP11; the paper notes
    #: integer is faster than floating point on this CPU).
    fp_op_cycles: float = 3.0
    #: Average cycles per load/store hitting L1.
    ls_op_cycles: float = 1.5
    #: Sustainable DRAM streaming bandwidth (bytes/s) for naive
    #: compiled loops.  On the BCM2835 the 128 KB L2 is dedicated to
    #: the GPU, so the ARM11 reads DRAM nearly uncached — measured
    #: figures for unoptimised C sit around 100 MB/s.
    dram_bytes_per_second: float = 0.0975e9
    #: Cache line size for the bandwidth model.
    cache_line_bytes: int = 32


VIDEOCORE_IV_GPU = GpuParameters()
ARM11_CPU = CpuParameters()
