"""CPU baseline timing model.

The paper's baselines are plain C loops on the ARM11.  The model takes
an explicit operation inventory (:class:`CpuWorkload`) — integer ops,
float ops, loads/stores, bytes streamed — and converts it to time with
a simple in-order-core model: the core is either compute-bound
(cycles / clock) or memory-bound (bytes / DRAM bandwidth), whichever
is larger, which matches streaming kernels on a cacheless-L2 ARM11
well.

Baselines in :mod:`repro.baselines` build their workload inventories
analytically (ops per element x elements), so the model is exact with
respect to the C code the paper would have compiled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .machines import ARM11_CPU, CpuParameters


@dataclass
class CpuWorkload:
    """Operation inventory of one CPU kernel execution."""

    int_ops: float = 0.0
    fp_ops: float = 0.0
    load_store_ops: float = 0.0
    #: Distinct bytes streamed through DRAM (compulsory traffic).
    dram_bytes: float = 0.0
    #: Loop/bookkeeping overhead ops (counted as integer ops).
    overhead_ops: float = 0.0

    def scaled(self, factor: float) -> "CpuWorkload":
        return CpuWorkload(
            int_ops=self.int_ops * factor,
            fp_ops=self.fp_ops * factor,
            load_store_ops=self.load_store_ops * factor,
            dram_bytes=self.dram_bytes * factor,
            overhead_ops=self.overhead_ops * factor,
        )

    def merged(self, other: "CpuWorkload") -> "CpuWorkload":
        return CpuWorkload(
            int_ops=self.int_ops + other.int_ops,
            fp_ops=self.fp_ops + other.fp_ops,
            load_store_ops=self.load_store_ops + other.load_store_ops,
            dram_bytes=self.dram_bytes + other.dram_bytes,
            overhead_ops=self.overhead_ops + other.overhead_ops,
        )


@dataclass
class CpuTimeline:
    """Decomposed CPU execution time (seconds)."""

    compute_seconds: float = 0.0
    memory_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        # In-order core with blocking misses: compute and memory do
        # not overlap much, but a streaming loop prefetches enough
        # that the bound is the max of the two, softened by a small
        # overlap factor.
        return max(self.compute_seconds, self.memory_seconds) + 0.3 * min(
            self.compute_seconds, self.memory_seconds
        )


class CpuModel:
    """Turns a :class:`CpuWorkload` into seconds."""

    def __init__(self, params: CpuParameters = ARM11_CPU):
        self.params = params

    def time(self, workload: CpuWorkload) -> CpuTimeline:
        p = self.params
        cycles = (
            (workload.int_ops + workload.overhead_ops) * p.int_op_cycles
            + workload.fp_ops * p.fp_op_cycles
            + workload.load_store_ops * p.ls_op_cycles
        )
        return CpuTimeline(
            compute_seconds=cycles / p.clock_hz,
            memory_seconds=workload.dram_bytes / p.dram_bytes_per_second,
        )

    def seconds(self, workload: CpuWorkload) -> float:
        return self.time(workload).total_seconds
