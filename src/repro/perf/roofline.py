"""Roofline analysis of simulated kernels.

Classifies each draw call as compute-bound or fetch-bound under the
VideoCore IV machine model — the analysis a performance engineer would
run before optimising one of the paper's kernels.  Arithmetic
intensity here is ALU ops per TMU fetch (the QPU overlaps the two, so
the lower roof wins), and the attainable throughput follows the
classic roofline:

    attainable = min(peak_alu, intensity * peak_tex)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .counters import ContextStats, DrawStats
from .machines import VIDEOCORE_IV_GPU, GpuParameters


@dataclass
class RooflinePoint:
    """One draw call placed on the roofline."""

    label: str
    alu_ops: float
    sfu_ops: float
    tex_fetches: float
    #: ALU ops per texture fetch (inf for fetch-free kernels).
    intensity: float
    #: Attainable ALU throughput (ops/s) under the roofline.
    attainable_ops_per_second: float
    #: Which roof binds: 'compute' or 'fetch'.
    bound_by: str

    @property
    def attainable_gflops(self) -> float:
        return self.attainable_ops_per_second / 1e9


def analyze_draw(
    draw: DrawStats, label: str = "", params: GpuParameters = VIDEOCORE_IV_GPU
) -> RooflinePoint:
    """Place one draw call on the device roofline."""
    ops = draw.fragment_ops
    alu = float(ops.alu)
    tex = float(ops.tex)
    intensity = alu / tex if tex else float("inf")
    fetch_roof = intensity * params.tex_fetches_per_second
    attainable = min(params.alu_ops_per_second, fetch_roof)
    bound_by = "fetch" if fetch_roof < params.alu_ops_per_second else "compute"
    return RooflinePoint(
        label=label,
        alu_ops=alu,
        sfu_ops=float(ops.sfu),
        tex_fetches=tex,
        intensity=intensity,
        attainable_ops_per_second=attainable,
        bound_by=bound_by,
    )


def analyze_context(
    stats: ContextStats, params: GpuParameters = VIDEOCORE_IV_GPU
) -> List[RooflinePoint]:
    """Roofline points for every draw a context executed."""
    return [
        analyze_draw(draw, label=f"draw{i}", params=params)
        for i, draw in enumerate(stats.draws)
    ]


def ridge_intensity(params: GpuParameters = VIDEOCORE_IV_GPU) -> float:
    """The ridge point: the intensity above which kernels are
    compute-bound (ALU peak / TMU peak)."""
    return params.alu_ops_per_second / params.tex_fetches_per_second


def format_roofline(points: List[RooflinePoint],
                    params: GpuParameters = VIDEOCORE_IV_GPU) -> str:
    """A text table of roofline placements."""
    header = (
        f"{'kernel':>10} {'ALU/fetch':>10} {'attainable':>11} {'bound':>8}"
    )
    lines = [
        f"ridge point: {ridge_intensity(params):.1f} ALU ops per fetch",
        header,
        "-" * len(header),
    ]
    for point in points:
        intensity = (
            f"{point.intensity:10.1f}" if point.intensity != float("inf")
            else f"{'inf':>10}"
        )
        lines.append(
            f"{point.label:>10} {intensity} "
            f"{point.attainable_gflops:9.1f} G {point.bound_by:>8}"
        )
    return "\n".join(lines)
