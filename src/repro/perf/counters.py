"""Dynamic operation counters — and their static IR projection.

The GLSL interpreter reports every executed operation (per active
lane) to an :class:`OpCounters` sink; the GLES2 context aggregates
them per draw call (:class:`DrawStats`) and per context lifetime
(:class:`ContextStats`).  The performance models in this package turn
these counts into simulated wall time.

:func:`static_shader_ops` is the static counterpart: it projects the
same counter totals from the *compiled IR artifact*
(:mod:`repro.glsl.ir`) without running the shader at all — op table ×
invocation count.  For straight-line shaders (the paper's E1 kernels
after select-conversion) the projection is exact; divergent control
flow degrades it to an estimate and clears the ``exact`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class DiskCacheStats:
    """Process-lifetime tallies of the on-disk compile-artifact cache
    (:mod:`repro.core.cache`).

    ``hits``/``misses`` count entry lookups; ``evictions`` counts
    entries removed by the LRU size bound; ``corrupt`` counts entries
    that failed validation (bad magic/header/checksum or an
    undeserialisable payload) and were dropped — each corrupt entry
    also registers as a miss, because the caller recompiles.

    The failure-path tallies: ``write_failures`` counts publishes that
    failed (``ENOSPC``, permissions, a vanished directory — the
    compile proceeds uncached), ``orphans_removed`` counts stale
    ``.tmp-*`` files left by writers killed mid-publish and swept by
    the LRU trim, ``load_failures`` counts payloads whose envelope
    checksum passed but whose deserialisation raised (also counted
    under ``corrupt`` when the entry is invalidated), and
    ``lock_skips`` counts trims abandoned because another process held
    the eviction lock.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    corrupt: int = 0
    write_failures: int = 0
    orphans_removed: int = 0
    load_failures: int = 0
    lock_skips: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corrupt = 0
        self.write_failures = 0
        self.orphans_removed = 0
        self.load_failures = 0
        self.lock_skips = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "write_failures": self.write_failures,
            "orphans_removed": self.orphans_removed,
            "load_failures": self.load_failures,
            "lock_skips": self.lock_skips,
        }


#: The process-global sink :mod:`repro.core.cache` reports into.  GL
#: contexts mirror deltas of these into their own
#: :class:`ContextStats` fields (see ``disk_cache_hits`` & friends).
disk_cache_stats = DiskCacheStats()


@dataclass
class FaultPathStats:
    """Process-lifetime tallies of the runtime's degraded paths — how
    often a fallback actually ran, injected or organic.

    ``worker_retries`` counts pool draw dispatches re-attempted after
    a recoverable pool failure (broken pool, timeout, malformed chunk
    result); ``pool_restarts`` counts worker pools torn down and
    rebuilt after such a failure; ``fault_fallbacks`` counts
    degraded-path activations — a pool draw abandoned to in-process
    shading after its retry budget, a fused chain replayed eagerly
    because composition/build raised, a JIT compile failure falling
    back to the IR executor.  Every one of these paths is
    bit-identical to the healthy one by construction (asserted in
    ``tests/test_faults.py``); the counters exist so degradation is
    *visible*, never silent.
    """

    worker_retries: int = 0
    pool_restarts: int = 0
    fault_fallbacks: int = 0

    def reset(self) -> None:
        self.worker_retries = 0
        self.pool_restarts = 0
        self.fault_fallbacks = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "worker_retries": self.worker_retries,
            "pool_restarts": self.pool_restarts,
            "fault_fallbacks": self.fault_fallbacks,
        }


#: The process-global sink the hardened fallback paths report into
#: (:mod:`repro.gles2.parallel`, :mod:`repro.core.api.graph`,
#: :mod:`repro.glsl.jit`).  GL contexts mirror deltas into
#: :class:`ContextStats` like the disk-cache tallies.
fault_path_stats = FaultPathStats()


class OpCounters:
    """Counts of dynamic shader operations by category.

    Categories: ``alu`` (adds/muls/compares/moves), ``sfu``
    (transcendentals: the QPU services these through lookup +
    iteration, several cycles each), ``tex`` (texture fetches through
    the TMU).
    """

    __slots__ = ("counts",)

    def __init__(self):
        self.counts: Dict[str, int] = {"alu": 0, "sfu": 0, "tex": 0}

    def add(self, category: str, count: int) -> None:
        self.counts[category] = self.counts.get(category, 0) + count

    def merge(self, other: "OpCounters") -> None:
        for key, value in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + value

    @property
    def alu(self) -> int:
        return self.counts.get("alu", 0)

    @property
    def sfu(self) -> int:
        return self.counts.get("sfu", 0)

    @property
    def tex(self) -> int:
        return self.counts.get("tex", 0)

    def total(self) -> int:
        return sum(self.counts.values())

    def snapshot(self) -> Dict[str, int]:
        return dict(self.counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OpCounters({self.counts})"


def static_shader_ops(checked, float_model=None, invocations=1):
    """Static IR-cost mode: project the dynamic counter totals of one
    shader stage from its compiled IR artifact.

    Returns ``(OpCounters, exact)`` — the projected counts for a draw
    shading ``invocations`` lanes, and whether the projection is
    guaranteed to equal the runtime tally (no data-dependent control
    flow survives compilation).  Lazy-imports the IR layer so the
    counter module stays dependency-free for plain dynamic use.
    """
    from ..glsl.ir import get_compiled, static_cost

    program = get_compiled(checked, float_model)
    cost = static_cost(program)
    counters = OpCounters()
    for category, count in cost.totals(invocations).items():
        counters.add(category, count)
    return counters, cost.exact


@dataclass
class DrawStats:
    """Everything one draw call did."""

    vertex_invocations: int = 0
    fragment_invocations: int = 0
    discarded_fragments: int = 0
    vertex_ops: OpCounters = field(default_factory=OpCounters)
    fragment_ops: OpCounters = field(default_factory=OpCounters)
    framebuffer_writes: int = 0  # pixels written
    #: JIT texture-gather fast path (see repro.glsl.ir.gather): how
    #: many annotated texture2D site executions gathered texel storage
    #: directly, and how many reached an annotated site but failed the
    #: runtime qualification (sampler state, non-integral or
    #: out-of-range indices) and took the ordinary sampler instead.
    #: Both stay 0 on non-JIT backends and on unannotated programs;
    #: they tally site *executions*, a subset of the ``tex`` op count.
    texture_gathers: int = 0
    gather_fallbacks: int = 0


@dataclass
class ContextStats:
    """Lifetime counters for one GL context — the raw material for the
    wall-time model."""

    draws: List[DrawStats] = field(default_factory=list)
    shader_compiles: int = 0
    program_links: int = 0
    texture_upload_bytes: int = 0
    buffer_upload_bytes: int = 0
    readback_bytes: int = 0
    uniform_updates: int = 0
    #: Launch-graph scheduler accounting (repro.core.api.graph).
    #: ``fused_draws`` counts draws that executed a fused map chain;
    #: ``elided_draws`` counts recorded launches folded into another
    #: stage's fused draw (each fused draw of an n-stage chain elides
    #: n-1 draws); ``dead_launches`` counts recorded launches dropped
    #: because nothing observed their output.  ``scratch_allocs`` /
    #: ``scratch_reuses`` tally the scratch pool's backing-array
    #: allocations vs. recycles.  ``elided_intermediate_bytes`` is the
    #: texel traffic fusion kept on-chip — the written-then-re-read
    #: bytes of every elided intermediate — priced by perf.wallclock
    #: as the transfer time the graph path avoided.
    fused_draws: int = 0
    elided_draws: int = 0
    dead_launches: int = 0
    scratch_allocs: int = 0
    scratch_reuses: int = 0
    elided_intermediate_bytes: int = 0
    #: On-disk compile-artifact cache activity attributed to this
    #: context (deltas of :data:`disk_cache_stats` folded in by the
    #: context around compiles and draws).  ``disk_warm_compiles``
    #: counts glCompileShader calls whose front-end artifact came from
    #: the disk cache instead of a fresh parse/typecheck — the
    #: wall-time model can price those at the warm compile cost
    #: (see :class:`repro.perf.machines.GpuParameters`).
    disk_cache_hits: int = 0
    disk_cache_misses: int = 0
    disk_cache_evictions: int = 0
    disk_cache_corrupt: int = 0
    disk_warm_compiles: int = 0
    #: Failure-path activity attributed to this context (deltas of
    #: :data:`fault_path_stats` and the disk store's failure tallies,
    #: folded in alongside the disk-cache counters).  Non-zero values
    #: mean a degraded-but-bit-identical path ran: a pool dispatch was
    #: retried (``worker_retries``) over a rebuilt pool
    #: (``pool_restarts``), a draw/fusion/JIT fell back to its slower
    #: twin (``fault_fallbacks``), a cache publish failed
    #: (``cache_write_failures``), or the trim swept stale temp files
    #: (``cache_orphans_removed``).
    worker_retries: int = 0
    pool_restarts: int = 0
    fault_fallbacks: int = 0
    cache_write_failures: int = 0
    cache_orphans_removed: int = 0

    def total_fragments(self) -> int:
        return sum(d.fragment_invocations for d in self.draws)

    def total_vertices(self) -> int:
        return sum(d.vertex_invocations for d in self.draws)

    def total_ops(self) -> OpCounters:
        acc = OpCounters()
        for draw in self.draws:
            acc.merge(draw.vertex_ops)
            acc.merge(draw.fragment_ops)
        return acc

    def reset(self) -> None:
        self.draws.clear()
        self.shader_compiles = 0
        self.program_links = 0
        self.texture_upload_bytes = 0
        self.buffer_upload_bytes = 0
        self.readback_bytes = 0
        self.uniform_updates = 0
        self.fused_draws = 0
        self.elided_draws = 0
        self.dead_launches = 0
        self.scratch_allocs = 0
        self.scratch_reuses = 0
        self.elided_intermediate_bytes = 0
        self.disk_cache_hits = 0
        self.disk_cache_misses = 0
        self.disk_cache_evictions = 0
        self.disk_cache_corrupt = 0
        self.disk_warm_compiles = 0
        self.worker_retries = 0
        self.pool_restarts = 0
        self.fault_fallbacks = 0
        self.cache_write_failures = 0
        self.cache_orphans_removed = 0
