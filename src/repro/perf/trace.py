"""``repro.perf.trace`` — structured span/event tracing for the stack.

The paper's §V claims are about *where application wall time goes*
(compile, transfer, pack/unpack, shade).  The counters answer that in
aggregate; this module answers it per event: a low-overhead recorder
that the whole stack threads spans through — context lifecycle,
``execute_draw`` phases, pool dispatch, artifact-cache traffic, and
launch-graph replay — and that exports Chrome trace-event JSON
loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

Design rules:

* **Disabled is free.**  No recorder installed → :func:`span` returns
  a shared no-op context manager and :func:`instant` returns after one
  global read.  Nothing is timed, nothing allocates per call beyond
  the argument tuple.  ``perf_smoke`` holds the regression under 2 %.
* **One global recorder.**  Tracing is process-wide observability, not
  per-context state: ``REPRO_TRACE=path.json`` installs a recorder at
  import (written atexit), ``device.trace()`` installs one for a
  scope, tests use :func:`start`/:func:`stop` directly.
* **Fork-safe.**  The atexit writer checks the owner pid, so forked
  pool workers inheriting the recorder never clobber the leader's
  file.  Workers do not write at all — their spans travel back to the
  leader inside the chunk-result tuple (see
  :mod:`repro.gles2.parallel`) and are ingested with the worker's pid,
  so a multiprocess draw renders as one timeline with one track per
  process.
* **Bounded.**  ``REPRO_TRACE_MAX_EVENTS`` (default 200000) caps the
  in-memory buffer; overflow is counted in ``otherData.dropped_events``
  rather than silently truncated.

Timestamps are ``time.perf_counter()`` microseconds.  On Linux that is
CLOCK_MONOTONIC, which forked workers share, so leader and worker
spans land on one consistent axis (spawned workers get their own
epoch — their spans remain valid events on separate tracks).

Span taxonomy (``cat`` / ``name``):

=========  =====================================================
category   names
=========  =====================================================
device     device.context (instant)
compile    compile.shader, compile.ir, compile.jit
upload     upload.texture, upload.buffer
readback   readback.pixels
draw       draw, draw.vertex, draw.raster, draw.varyings,
           draw.shade, draw.shade.tile, draw.quantise, draw.write
pool       pool.submit, pool.chunk, worker.materialize,
           worker.shade; instants pool.retry, pool.restart,
           pool.fallback
cache      instants cache.hit, cache.miss, cache.corrupt,
           cache.publish
graph      graph.replay; instants graph.fuse, graph.fallback
=========  =====================================================

The ``draw`` span carries the draw's :class:`DrawStats` numbers, the
process-global ``DiskCacheStats``/``FaultPathStats`` deltas accrued
during the draw, and the modeled :class:`~repro.perf.gpu_model.GpuModel`
cost next to the real elapsed time, so one span shows measured wall
time and the VideoCore-IV prediction side by side.
"""

from __future__ import annotations

import atexit
import json
import os
import time
from typing import Dict, List, Optional

__all__ = [
    "TraceRecorder",
    "active",
    "configure_from_env",
    "enabled",
    "instant",
    "raw_event",
    "session",
    "span",
    "start",
    "stop",
]

_DEFAULT_MAX_EVENTS = 200_000

#: The process-wide recorder, or None when tracing is disabled.
_recorder: Optional["TraceRecorder"] = None


class _NullSpan:
    """Shared no-op context manager handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: times its ``with`` block and emits one complete
    ("X") event on exit.  ``args`` may be filled in (or replaced)
    inside the block — counter deltas are usually known only at the
    end."""

    __slots__ = ("_recorder", "name", "cat", "args", "_t0")

    def __init__(self, recorder, name, cat, args):
        self._recorder = recorder
        self.name = name
        self.cat = cat
        self.args = args if args is not None else {}

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._recorder.complete(
            self.name, self.cat, self._t0, time.perf_counter(), self.args
        )
        return False


def raw_event(
    name: str,
    cat: str,
    t0: float,
    t1: float,
    args: Optional[Dict] = None,
    pid: Optional[int] = None,
) -> Dict:
    """A complete event dict from explicit ``perf_counter`` readings —
    the form pool workers build locally and ship back to the leader."""
    event = {
        "ph": "X",
        "name": name,
        "cat": cat,
        "ts": t0 * 1e6,
        "dur": max(t1 - t0, 0.0) * 1e6,
        "pid": pid if pid is not None else os.getpid(),
        "tid": 0,
    }
    if args:
        event["args"] = args
    return event


class TraceRecorder:
    """In-memory Chrome trace-event buffer with bounded growth."""

    def __init__(self, path: Optional[str] = None,
                 max_events: Optional[int] = None):
        if max_events is None:
            from ..core.knobs import int_knob

            max_events = int_knob(
                "REPRO_TRACE_MAX_EVENTS", _DEFAULT_MAX_EVENTS, minimum=1
            )
        self.path = path
        self.max_events = max_events
        self.pid = os.getpid()
        self.events: List[Dict] = []
        self.dropped = 0

    # -- recording -----------------------------------------------------
    def _append(self, event: Dict) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def complete(self, name: str, cat: str, t0: float, t1: float,
                 args: Optional[Dict] = None) -> None:
        self._append(raw_event(name, cat, t0, t1, args, pid=self.pid))

    def instant(self, name: str, cat: str,
                args: Optional[Dict] = None) -> None:
        event = {
            "ph": "i",
            "name": name,
            "cat": cat,
            "ts": time.perf_counter() * 1e6,
            "pid": self.pid,
            "tid": 0,
            "s": "p",
        }
        if args:
            event["args"] = args
        self._append(event)

    def ingest(self, events) -> int:
        """Fold worker-shipped event dicts into this buffer.  Events
        that fail the structural check (a sick worker can garble
        anything) are dropped, not raised — tracing must never take a
        draw down.  Returns the number accepted."""
        accepted = 0
        for event in events:
            if not isinstance(event, dict):
                continue
            if not isinstance(event.get("name"), str):
                continue
            if not isinstance(event.get("ts"), (int, float)):
                continue
            if event.get("ph") == "X" and not isinstance(
                event.get("dur"), (int, float)
            ):
                continue
            self._append(dict(event))
            accepted += 1
        return accepted

    # -- export --------------------------------------------------------
    def to_chrome_trace(self) -> Dict:
        """The exported document: Chrome trace-event JSON object form."""
        return {
            "traceEvents": sorted(self.events, key=lambda e: e["ts"]),
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.perf.trace",
                "clock": "perf_counter_us",
                "dropped_events": self.dropped,
            },
        }

    def export(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle)


# ----------------------------------------------------------------------
# Module-level API (what instrumented code calls)
# ----------------------------------------------------------------------
def active() -> Optional[TraceRecorder]:
    """The installed recorder, or None when tracing is disabled."""
    return _recorder


def enabled() -> bool:
    return _recorder is not None


def span(name: str, cat: str = "", args: Optional[Dict] = None):
    """A context manager timing its block into one complete event —
    or the shared no-op when tracing is off (the disabled fast path:
    one global read, zero allocation beyond the call itself)."""
    recorder = _recorder
    if recorder is None:
        return _NULL_SPAN
    return _Span(recorder, name, cat, args)


def instant(name: str, cat: str = "", args: Optional[Dict] = None) -> None:
    """Record a point event (no duration); no-op when disabled."""
    recorder = _recorder
    if recorder is not None:
        recorder.instant(name, cat, args)


def start(path: Optional[str] = None,
          max_events: Optional[int] = None) -> TraceRecorder:
    """Install a fresh process-wide recorder (replacing any current
    one) and return it."""
    global _recorder
    _recorder = TraceRecorder(path=path, max_events=max_events)
    return _recorder


def stop(write: bool = True) -> Optional[TraceRecorder]:
    """Uninstall the recorder; write its file when it has a path.
    Returns the recorder (for inspection) or None if none was active."""
    global _recorder
    recorder = _recorder
    _recorder = None
    if recorder is not None and write and recorder.path:
        recorder.export(recorder.path)
    return recorder


class session:
    """``with trace.session("out.json"):`` — scoped tracing.  When a
    recorder is already installed (e.g. via ``REPRO_TRACE``) the
    session joins it instead of replacing it, so nesting
    ``device.trace()`` under an environment-wide trace composes."""

    def __init__(self, path: Optional[str] = None,
                 max_events: Optional[int] = None):
        self.path = path
        self.max_events = max_events
        self._owned = False

    def __enter__(self) -> TraceRecorder:
        if _recorder is not None:
            return _recorder
        self._owned = True
        return start(self.path, self.max_events)

    def __exit__(self, *exc) -> bool:
        if self._owned:
            stop(write=True)
        return False


def _atexit_flush() -> None:
    # Guarded by owner pid: forked pool workers inherit the module
    # state (including this registered hook) but must never write the
    # leader's file.
    recorder = _recorder
    if (
        recorder is not None
        and recorder.path
        and recorder.pid == os.getpid()
    ):
        try:
            recorder.export(recorder.path)
        except OSError:
            pass


def configure_from_env() -> Optional[TraceRecorder]:
    """Honour ``REPRO_TRACE=path.json``: install a recorder whose
    buffer is flushed to that path at interpreter exit.  Called once
    at import; exposed for tests that mutate the environment."""
    path = os.environ.get("REPRO_TRACE")
    if not path:
        return None
    recorder = start(path)
    return recorder


atexit.register(_atexit_flush)
configure_from_env()
