"""Exact polynomial scaling of measured counters to paper-size inputs.

The simulator executes every shader invocation faithfully, which makes
large problem sizes (the paper's 1024x1024 sgemm is 2^30 multiply-adds)
impractical to *simulate* directly — but the dynamic op counts of
these kernels are exact polynomials in the problem size (a map kernel
is affine in N; sgemm is a polynomial in n with terms 1, n^2, n^3).
Measuring the counters at a few small sizes therefore determines the
counts at any size exactly, and the timing model can price the
full-size run.

``fit_counts`` solves the Vandermonde system for given exponents;
``project_stats`` applies it to every field of a ContextStats.  Tests
verify the projection reproduces a directly-measured larger size.

One caveat: structural counters (fragments, bytes, fetches) are exact
polynomials, but ALU counts carry a small data-dependent term — the
divergent ternaries in the §IV pack code execute different op counts
per lane sign, so with random inputs the fit is accurate to ~0.01%
rather than bit-exact.  That is far below the fidelity of any timing
model.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence

import numpy as np

from .counters import ContextStats, DrawStats, OpCounters


def fit_counts(
    sizes: Sequence[float], values: Sequence[float], exponents: Sequence[int]
) -> np.ndarray:
    """Solve for coefficients c_j with value(s) = sum c_j * s^e_j.

    Requires len(sizes) == len(exponents); the fit is exact (a linear
    solve, not least squares).
    """
    if len(sizes) != len(exponents):
        raise ValueError(
            f"need exactly {len(exponents)} measurement sizes for "
            f"exponents {tuple(exponents)}, got {len(sizes)}"
        )
    matrix = np.array(
        [[float(s) ** e for e in exponents] for s in sizes], dtype=np.float64
    )
    return np.linalg.solve(matrix, np.asarray(values, dtype=np.float64))


def predict(coeffs: np.ndarray, exponents: Sequence[int], size: float) -> float:
    """Evaluate a fitted polynomial at ``size``."""
    return float(
        sum(c * float(size) ** e for c, e in zip(coeffs, exponents))
    )


_CONTEXT_FIELDS = (
    "shader_compiles",
    "program_links",
    "texture_upload_bytes",
    "buffer_upload_bytes",
    "readback_bytes",
    "uniform_updates",
)


def _flatten(stats: ContextStats) -> Dict[str, float]:
    flat = {name: float(getattr(stats, name)) for name in _CONTEXT_FIELDS}
    flat["vertex_invocations"] = float(
        sum(d.vertex_invocations for d in stats.draws)
    )
    flat["fragment_invocations"] = float(
        sum(d.fragment_invocations for d in stats.draws)
    )
    flat["draw_calls"] = float(len(stats.draws))
    vertex_ops = OpCounters()
    fragment_ops = OpCounters()
    for draw in stats.draws:
        vertex_ops.merge(draw.vertex_ops)
        fragment_ops.merge(draw.fragment_ops)
    for category in ("alu", "sfu", "tex"):
        flat[f"vertex_{category}"] = float(vertex_ops.counts.get(category, 0))
        flat[f"fragment_{category}"] = float(fragment_ops.counts.get(category, 0))
    return flat


def _inflate(flat: Dict[str, float]) -> ContextStats:
    stats = ContextStats()
    for name in _CONTEXT_FIELDS:
        setattr(stats, name, max(0.0, flat[name]))
    draw = DrawStats(
        vertex_invocations=int(round(max(0.0, flat["vertex_invocations"]))),
        fragment_invocations=int(round(max(0.0, flat["fragment_invocations"]))),
    )
    for category in ("alu", "sfu", "tex"):
        draw.vertex_ops.counts[category] = max(0.0, flat[f"vertex_{category}"])
        draw.fragment_ops.counts[category] = max(0.0, flat[f"fragment_{category}"])
    stats.draws.append(draw)
    # Per-draw fixed overheads must survive the merge into one draw:
    # carry the true draw-call count in a dedicated field.
    stats.projected_draw_calls = max(1.0, flat["draw_calls"])
    return stats


def project_stats(
    measure: Callable[[int], ContextStats],
    sizes: Sequence[int],
    exponents: Sequence[int],
    target: int,
) -> ContextStats:
    """Measure a benchmark at small ``sizes`` and project its counters
    to ``target`` via an exact polynomial fit in the size.

    ``measure(size)`` runs the benchmark in a fresh device and returns
    its ContextStats.
    """
    flats: List[Dict[str, float]] = [_flatten(measure(s)) for s in sizes]
    projected: Dict[str, float] = {}
    for key in flats[0]:
        values = [flat[key] for flat in flats]
        coeffs = fit_counts(sizes, values, exponents)
        projected[key] = predict(coeffs, exponents, target)
    return _inflate(projected)
