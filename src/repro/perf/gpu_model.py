"""GPU timing model driven by simulator-collected counters.

Unlike the CPU model (which receives an analytic op inventory), the
GPU side is measured: the GLES2 simulator counts every dynamic shader
operation the kernel actually executed — including the unpack/pack
arithmetic the paper's transformations add — plus texture fetches,
fragment/vertex invocations, uploads and readbacks.  This model prices
those counts with VideoCore IV throughput parameters.

Within a draw call the QPU overlaps ALU work with TMU fetches, so the
shader time is ``max(alu+sfu, tex)`` rather than their sum; fixed
per-fragment rasteriser cost and per-draw driver overhead are added on
top.
"""

from __future__ import annotations

from dataclasses import dataclass

from .counters import ContextStats, DrawStats
from .machines import VIDEOCORE_IV_GPU, GpuParameters


@dataclass
class DrawTime:
    """Time decomposition of one draw call (seconds)."""

    shader_seconds: float
    overhead_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.shader_seconds + self.overhead_seconds


class GpuModel:
    """Prices simulator counters into VideoCore IV seconds."""

    def __init__(self, params: GpuParameters = VIDEOCORE_IV_GPU):
        self.params = params

    # ------------------------------------------------------------------
    def draw_time(self, draw: DrawStats) -> DrawTime:
        p = self.params
        ops = draw.fragment_ops
        alu_seconds = ops.alu / p.alu_ops_per_second
        sfu_seconds = ops.sfu / p.sfu_ops_per_second
        tex_seconds = ops.tex / p.tex_fetches_per_second
        shader = max(alu_seconds + sfu_seconds, tex_seconds)

        vs_ops = draw.vertex_ops
        shader += vs_ops.alu / p.alu_ops_per_second
        shader += vs_ops.sfu / p.sfu_ops_per_second

        fixed_cycles = (
            draw.fragment_invocations * p.fragment_overhead_cycles
            + draw.vertex_invocations * p.vertex_overhead_cycles
        )
        overhead = fixed_cycles / p.clock_hz + p.draw_overhead_seconds
        return DrawTime(shader_seconds=shader, overhead_seconds=overhead)

    def execute_seconds(self, stats: ContextStats) -> float:
        total = sum(self.draw_time(d).total_seconds for d in stats.draws)
        # Projected stats (perf.extrapolate) merge many draws into one
        # record but carry the true draw-call count for the per-draw
        # driver overhead.
        projected_calls = getattr(stats, "projected_draw_calls", None)
        if projected_calls is not None:
            total += (projected_calls - len(stats.draws)) * self.params.draw_overhead_seconds
        return total

    def compile_seconds(self, stats: ContextStats) -> float:
        warm = min(
            getattr(stats, "disk_warm_compiles", 0), stats.shader_compiles
        )
        cold = stats.shader_compiles - warm
        warm_cost = self.params.warm_shader_compile_seconds
        if warm_cost is None:
            warm_cost = self.params.shader_compile_seconds
        return (
            cold * self.params.shader_compile_seconds
            + warm * warm_cost
            + stats.program_links * self.params.program_link_seconds
        )

    def upload_seconds(self, stats: ContextStats) -> float:
        total_bytes = stats.texture_upload_bytes + stats.buffer_upload_bytes
        return total_bytes / self.params.upload_bytes_per_second

    def readback_seconds(self, stats: ContextStats) -> float:
        return stats.readback_bytes / self.params.readback_bytes_per_second
