"""CLI for trace files produced by :mod:`repro.perf.trace`::

    python -m repro.trace view out.json            # validate + summarise
    python -m repro.trace export out.json -o p.json  # normalise for Perfetto

``view`` validates the Chrome trace-event schema (non-zero exit on an
invalid or empty trace — the CI tracing leg relies on this) and prints
a per-category summary.  ``export`` rewrites the file with events
sorted by timestamp — the canonical form Perfetto and
``chrome://tracing`` load directly.  Both accept ``--json`` for
machine-readable output.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple


def load_trace(path: str) -> Tuple[Optional[Dict], List[str]]:
    """Read and structurally validate one trace file.  Returns
    ``(document, problems)``; ``document`` is None when the file could
    not be read or parsed at all."""
    problems: List[str] = []
    try:
        with open(path) as handle:
            document = json.load(handle)
    except OSError as exc:
        return None, [f"cannot read {path}: {exc}"]
    except json.JSONDecodeError as exc:
        return None, [f"{path} is not valid JSON: {exc}"]
    if not isinstance(document, dict):
        return None, [f"{path}: top level must be a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        problems.append("missing or non-list 'traceEvents'")
        return document, problems
    if not events:
        problems.append("'traceEvents' is empty")
    for i, event in enumerate(events):
        label = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{label}: not an object")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{label}: missing string 'name'")
        if not isinstance(event.get("ph"), str):
            problems.append(f"{label}: missing string 'ph'")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{label}: missing non-negative 'ts'")
        if event.get("ph") == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"{label}: complete event missing non-negative 'dur'"
                )
        if len(problems) >= 20:
            problems.append("... (further problems suppressed)")
            break
    return document, problems


def summarize(document: Dict) -> Dict:
    events = document.get("traceEvents", [])
    by_category: Dict[str, Dict[str, float]] = {}
    pids = set()
    ts_min = ts_max = None
    for event in events:
        if not isinstance(event, dict):
            continue
        cat = event.get("cat") or "(none)"
        bucket = by_category.setdefault(
            cat, {"events": 0, "spans": 0, "span_us": 0.0}
        )
        bucket["events"] += 1
        if event.get("ph") == "X":
            bucket["spans"] += 1
            bucket["span_us"] += float(event.get("dur", 0))
        pids.add(event.get("pid"))
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            ts_min = ts if ts_min is None else min(ts_min, ts)
            end = ts + float(event.get("dur", 0) or 0)
            ts_max = end if ts_max is None else max(ts_max, end)
    return {
        "events": len(events),
        "processes": len(pids),
        "wall_us": (ts_max - ts_min) if events and ts_min is not None else 0.0,
        "dropped_events": document.get("otherData", {}).get(
            "dropped_events", 0
        ),
        "categories": by_category,
    }


def _cmd_view(path: str, as_json: bool) -> int:
    document, problems = load_trace(path)
    if document is None or problems:
        for problem in problems:
            print(f"invalid trace: {problem}", file=sys.stderr)
        return 1
    info = summarize(document)
    if as_json:
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    print(
        f"{path}: {info['events']} events across "
        f"{info['processes']} process(es), "
        f"{info['wall_us'] / 1e3:.3f} ms of timeline"
    )
    if info["dropped_events"]:
        print(f"  dropped (buffer cap): {info['dropped_events']}")
    for cat, bucket in sorted(info["categories"].items()):
        print(
            f"  {cat:>10}: {bucket['events']:6d} events, "
            f"{bucket['spans']:6d} spans, "
            f"{bucket['span_us'] / 1e3:10.3f} ms in spans"
        )
    print("load in Perfetto: https://ui.perfetto.dev → Open trace file")
    return 0


def _cmd_export(path: str, out: str, as_json: bool) -> int:
    document, problems = load_trace(path)
    if document is None or problems:
        for problem in problems:
            print(f"invalid trace: {problem}", file=sys.stderr)
        return 1
    document["traceEvents"] = sorted(
        document["traceEvents"], key=lambda e: e.get("ts", 0)
    )
    document.setdefault("displayTimeUnit", "ms")
    with open(out, "w") as handle:
        json.dump(document, handle)
    if as_json:
        print(json.dumps({"written": out,
                          "events": len(document["traceEvents"])}))
    else:
        print(f"wrote {len(document['traceEvents'])} events to {out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Validate, summarise and normalise Chrome trace-"
        "event files recorded via REPRO_TRACE / device.trace().",
    )
    parser.add_argument(
        "command", choices=("view", "export"),
        help="view: validate and summarise; export: validate, sort by "
        "timestamp and rewrite for Perfetto",
    )
    parser.add_argument("file", help="trace JSON file to read")
    parser.add_argument(
        "-o", "--out", help="output path for export (default: in place)"
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    args = parser.parse_args(argv)
    if args.command == "view":
        return _cmd_view(args.file, args.json)
    return _cmd_export(args.file, args.out or args.file, args.json)


if __name__ == "__main__":
    sys.exit(main())
