"""CPU-vs-GPU result comparison.

Implements the paper's validation methodology: integer results must
match the CPU exactly; floating-point results are scored by how many
most-significant mantissa bits agree with the CPU fp32 reference
("accurate ... within the 15 most significant bits of the mantissa",
§V).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gles2.precision import mantissa_agreement_bits


def validate_exact(reference: np.ndarray, measured: np.ndarray) -> bool:
    """Exact elementwise equality (integer formats)."""
    return bool(np.array_equal(np.asarray(reference), np.asarray(measured)))


@dataclass
class PrecisionReport:
    """Summary of mantissa-bit agreement between GPU and CPU results."""

    min_bits: float
    mean_bits: float
    median_bits: float
    #: Fraction of elements agreeing in >= 15 mantissa bits (the
    #: paper's reported band).
    fraction_ge_15: float
    count: int

    def meets_paper_band(self) -> bool:
        """True when results sit in the paper's precision band: the
        typical element agrees in >= 15 mantissa bits (better than
        fp16's 10-bit mantissa, below full fp32).  The median is used
        because catastrophic cancellation makes the worst element's
        *relative* agreement unbounded for any finite-precision device.
        """
        return self.median_bits >= 15.0 and self.fraction_ge_15 >= 0.5

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"mantissa agreement over {self.count} elements: "
            f"min {self.min_bits:.1f}, mean {self.mean_bits:.1f}, "
            f"median {self.median_bits:.1f} bits; "
            f">=15 bits: {self.fraction_ge_15 * 100:.1f}%"
        )


def precision_report(reference: np.ndarray, measured: np.ndarray) -> PrecisionReport:
    """Score float results against a reference."""
    bits = mantissa_agreement_bits(
        np.asarray(reference, dtype=np.float64).reshape(-1),
        np.asarray(measured, dtype=np.float64).reshape(-1),
    )
    return PrecisionReport(
        min_bits=float(bits.min()),
        mean_bits=float(bits.mean()),
        median_bits=float(np.median(bits)),
        fraction_ge_15=float((bits >= 15.0).mean()),
        count=int(bits.size),
    )


def mantissa_histogram(reference: np.ndarray, measured: np.ndarray, bins=None):
    """Histogram of matched-mantissa-bit counts (for the E2 bench)."""
    bits = mantissa_agreement_bits(
        np.asarray(reference, dtype=np.float64).reshape(-1),
        np.asarray(measured, dtype=np.float64).reshape(-1),
    )
    if bins is None:
        bins = np.arange(0, 25)
    counts, edges = np.histogram(bits, bins=bins)
    return counts, edges
