"""Result validation utilities (paper §V methodology)."""

from .compare import (
    PrecisionReport,
    mantissa_histogram,
    precision_report,
    validate_exact,
)

__all__ = [
    "PrecisionReport",
    "precision_report",
    "mantissa_histogram",
    "validate_exact",
]
