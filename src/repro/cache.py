"""Maintenance CLI for the persistent compile-artifact store.

Thin command wrapper around :mod:`repro.core.cache`::

    python -m repro.cache stats    # entry count / bytes / budget / location
    python -m repro.cache clear    # drop every entry
    python -m repro.cache verify   # re-validate entries, drop corrupt ones

All subcommands accept ``--json`` for machine-readable output and
honour ``REPRO_CACHE_DIR`` / ``REPRO_CACHE_MAX_BYTES`` the same way the
runtime does, so pointing the CLI at a CI cache directory inspects
exactly what the test run used (``make cache-stats`` wraps the first
form).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from .core import cache as store


def _collect_stats() -> Dict[str, object]:
    entries, total = store.usage()
    kinds: Dict[str, int] = {}
    for path in store.iter_entries():
        try:
            unpacked = store._unpack(path.read_bytes())
        except OSError:
            continue
        if unpacked is None:
            kinds["corrupt"] = kinds.get("corrupt", 0) + 1
            continue
        kind = unpacked[0].get("kind", "unknown")
        kinds[kind] = kinds.get(kind, 0) + 1
    return {
        "cache_dir": str(store.cache_dir()),
        "schema_version": store.SCHEMA_VERSION,
        "enabled": store.enabled(),
        "entries": entries,
        "bytes": total,
        "max_bytes": store.max_bytes(),
        "kinds": kinds,
    }


def _cmd_stats(as_json: bool) -> int:
    info = _collect_stats()
    if as_json:
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    print(f"cache dir:  {info['cache_dir']} (schema v{info['schema_version']})")
    print(f"enabled:    {'yes' if info['enabled'] else 'no (REPRO_CACHE=0)'}")
    print(
        f"entries:    {info['entries']} "
        f"({info['bytes'] / 1024.0:.1f} KiB of "
        f"{info['max_bytes'] / (1024.0 * 1024.0):.0f} MiB budget)"
    )
    kinds = info["kinds"]
    if kinds:
        breakdown = ", ".join(
            f"{kind}={count}" for kind, count in sorted(kinds.items())
        )
        print(f"by kind:    {breakdown}")
    return 0


def _cmd_clear(as_json: bool) -> int:
    removed = store.clear()
    if as_json:
        print(json.dumps({"removed": removed}))
    else:
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'}")
    return 0


def _cmd_verify(as_json: bool) -> int:
    report = store.verify()
    if as_json:
        print(json.dumps(report, sort_keys=True))
    else:
        print(
            f"kept {report['kept']} entr"
            f"{'y' if report['kept'] == 1 else 'ies'}, "
            f"dropped {report['dropped']} corrupt"
        )
    # Non-zero exit when corruption was found makes the CI step loud.
    return 1 if report["dropped"] else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cache",
        description="Inspect and maintain the on-disk compile-artifact "
        "cache (location: REPRO_CACHE_DIR, default ~/.cache/repro).",
    )
    parser.add_argument(
        "command", choices=("stats", "clear", "verify"),
        help="stats: show usage; clear: drop all entries; "
        "verify: re-validate entries and drop corrupt ones",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    args = parser.parse_args(argv)
    if args.command == "stats":
        return _cmd_stats(args.json)
    if args.command == "clear":
        return _cmd_clear(args.json)
    return _cmd_verify(args.json)


if __name__ == "__main__":
    sys.exit(main())
