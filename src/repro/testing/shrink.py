"""Greedy AST-level shrinking of failing shader programs.

Given a fragment shader whose differential run diverges, reduce it to
a minimal reproducer: repeatedly propose simplified candidate ASTs,
print them back to source with :mod:`repro.glsl.printer`, and keep a
candidate whenever the caller's predicate says it *still fails*.
Candidates that no longer compile are rejected by construction (the
predicate must treat compile errors as "does not fail").

Reduction passes, applied to a fixed point:

1. drop whole top-level declarations (functions, globals),
2. delete statements from any block (including nested ones),
3. collapse control flow (``if`` -> branch, loop -> body),
4. replace expressions with literals or their own subexpressions.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterator, List, Optional

from ..glsl import ast_nodes as ast
from ..glsl.parser import parse
from ..glsl.preprocessor import preprocess
from ..glsl.printer import print_unit

#: Bound on accepted reductions; each acceptance strictly shrinks the
#: tree, so this is a safety net rather than a tuning knob.
MAX_ACCEPTED_REDUCTIONS = 500


def shrink_source(
    source: str,
    still_fails: Callable[[str], bool],
    max_reductions: int = MAX_ACCEPTED_REDUCTIONS,
) -> str:
    """Greedily shrink ``source`` while ``still_fails`` holds.

    Returns printed source of the smallest failing program found.  The
    input itself must fail, otherwise it is returned unchanged.
    """
    if not still_fails(source):
        return source
    unit = parse(preprocess(source).source)
    best = print_unit(unit)
    accepted = 0
    progress = True
    while progress and accepted < max_reductions:
        progress = False
        for candidate in _candidates(unit):
            printed = print_unit(candidate)
            if len(printed) >= len(best):
                continue
            if still_fails(printed):
                unit = candidate
                best = printed
                accepted += 1
                progress = True
                break
    return best


# ----------------------------------------------------------------------
# Candidate enumeration
# ----------------------------------------------------------------------
def _candidates(unit: ast.TranslationUnit) -> Iterator[ast.TranslationUnit]:
    """Yield simplified deep copies of ``unit``, most aggressive first."""
    # 1. Drop top-level declarations (never main()).
    for i, decl in enumerate(unit.declarations):
        if isinstance(decl, ast.FunctionDef) and decl.name == "main":
            continue
        clone = copy.deepcopy(unit)
        del clone.declarations[i]
        yield clone

    # 2./3. Statement-level reductions inside each function body.
    for fi, decl in enumerate(unit.declarations):
        if not isinstance(decl, ast.FunctionDef) or decl.body is None:
            continue
        for edit_index in range(_count_stmt_edits(decl.body)):
            clone = copy.deepcopy(unit)
            body = clone.declarations[fi].body
            _apply_stmt_edit(body, [edit_index])
            yield clone

    # 4. Expression-level reductions.
    for fi, decl in enumerate(unit.declarations):
        if not isinstance(decl, ast.FunctionDef) or decl.body is None:
            continue
        n_sites = _count_expr_sites(decl.body)
        for site in range(n_sites):
            for replacement_index in range(_MAX_REPLACEMENTS):
                clone = copy.deepcopy(unit)
                body = clone.declarations[fi].body
                if not _apply_expr_edit(body, [site], replacement_index):
                    break
                yield clone


# ----------------------------------------------------------------------
# Statement edits.  Edits are indexed by a pre-order walk; the walk is
# re-run on each deep copy so indices stay valid.
# ----------------------------------------------------------------------
def _stmt_lists(stmt: ast.Stmt) -> List[List[ast.Stmt]]:
    """All statement lists directly inside ``stmt``."""
    if isinstance(stmt, ast.CompoundStmt):
        return [stmt.statements]
    return []


def _count_stmt_edits(body: ast.CompoundStmt) -> int:
    return len(_collect_stmt_edits(body))


def _apply_stmt_edit(body: ast.CompoundStmt, cursor: List[int]) -> None:
    edits = _collect_stmt_edits(body)
    edits[cursor[0]]()


def _collect_stmt_edits(body: ast.CompoundStmt) -> List[Callable[[], None]]:
    """Closures that each perform one in-place reduction on the tree."""
    edits: List[Callable[[], None]] = []

    def visit_block(block: ast.CompoundStmt) -> None:
        for i, stmt in enumerate(block.statements):
            edits.append(
                lambda b=block, j=i: b.statements.__delitem__(j)
            )
            visit_stmt(stmt, lambda repl, b=block, j=i:
                       b.statements.__setitem__(j, repl))

    def visit_stmt(stmt: ast.Stmt, replace) -> None:
        if isinstance(stmt, ast.CompoundStmt):
            visit_block(stmt)
        elif isinstance(stmt, ast.IfStmt):
            edits.append(lambda: replace(stmt.then_branch))
            if stmt.else_branch is not None:
                edits.append(lambda: replace(stmt.else_branch))
                edits.append(lambda: setattr(stmt, "else_branch", None))
            visit_stmt(stmt.then_branch, lambda r: setattr(stmt, "then_branch", r))
            if stmt.else_branch is not None:
                visit_stmt(stmt.else_branch, lambda r: setattr(stmt, "else_branch", r))
        elif isinstance(stmt, (ast.ForStmt, ast.WhileStmt, ast.DoWhileStmt)):
            edits.append(lambda: replace(stmt.body))
            visit_stmt(stmt.body, lambda r: setattr(stmt, "body", r))

    visit_block(body)
    return edits


# ----------------------------------------------------------------------
# Expression edits
# ----------------------------------------------------------------------
_MAX_REPLACEMENTS = 6


def _replacements(expr: ast.Expr) -> List[Optional[ast.Expr]]:
    """Candidate replacements for one expression site, simplest first.
    ``None`` entries pad the list; enumeration stops at the first None."""
    out: List[ast.Expr] = []
    if not isinstance(expr, (ast.IntLiteral, ast.FloatLiteral, ast.BoolLiteral)):
        # Try plain literals: the parser/typechecker will reject the
        # ill-typed ones via the still-fails predicate.
        out.append(ast.FloatLiteral(value=1.0))
        out.append(ast.FloatLiteral(value=0.0))
        out.append(ast.IntLiteral(value=0))
        out.append(ast.BoolLiteral(value=True))
    if isinstance(expr, ast.BinaryOp):
        out.extend([expr.left, expr.right])
    elif isinstance(expr, ast.UnaryOp):
        out.append(expr.operand)
    elif isinstance(expr, ast.Conditional):
        out.extend([expr.if_true, expr.if_false])
    elif isinstance(expr, ast.Call) and len(expr.args) == 1:
        out.append(expr.args[0])
    elif isinstance(expr, (ast.FieldAccess, ast.IndexAccess)):
        out.append(expr.base)
    return out[:_MAX_REPLACEMENTS]


def _expr_slots(node) -> List:
    """(owner, attribute, current expr) triples for each direct child
    expression of an AST node, excluding assignment targets (rewriting
    those rarely keeps programs well-formed)."""
    slots = []

    def add(owner, attr):
        child = getattr(owner, attr, None)
        if isinstance(child, ast.Expr):
            slots.append((owner, attr))

    if isinstance(node, ast.ExprStmt):
        add(node, "expr")
    elif isinstance(node, ast.DeclStmt):
        for declarator in node.declarators:
            add(declarator, "initializer")
    elif isinstance(node, ast.IfStmt):
        add(node, "condition")
    elif isinstance(node, ast.ForStmt):
        add(node, "condition")
        add(node, "update")
    elif isinstance(node, (ast.WhileStmt, ast.DoWhileStmt)):
        add(node, "condition")
    elif isinstance(node, ast.ReturnStmt):
        add(node, "value")
    elif isinstance(node, ast.Assignment):
        add(node, "value")
    elif isinstance(node, ast.BinaryOp):
        add(node, "left")
        add(node, "right")
    elif isinstance(node, ast.UnaryOp):
        add(node, "operand")
    elif isinstance(node, (ast.PrefixIncDec, ast.PostfixIncDec)):
        pass  # operand must stay an l-value
    elif isinstance(node, ast.Conditional):
        add(node, "condition")
        add(node, "if_true")
        add(node, "if_false")
    elif isinstance(node, ast.Call):
        for i in range(len(node.args)):
            slots.append((node.args, i))
    elif isinstance(node, (ast.FieldAccess, ast.IndexAccess)):
        add(node, "base")
        if isinstance(node, ast.IndexAccess):
            add(node, "index")
    elif isinstance(node, ast.CommaExpr):
        add(node, "left")
        add(node, "right")
    return slots


def _get_slot(owner, key):
    if isinstance(key, int):
        return owner[key]
    return getattr(owner, key)


def _set_slot(owner, key, value):
    if isinstance(key, int):
        owner[key] = value
    else:
        setattr(owner, key, value)


def _walk_expr_sites(body: ast.CompoundStmt):
    """Yield (owner, key) for every expression slot, in pre-order,
    recursing into sub-expressions and nested statements."""

    def visit_expr_children(expr: ast.Expr):
        for owner, key in _expr_slots(expr):
            yield (owner, key)
            yield from visit_expr_children(_get_slot(owner, key))

    def visit_stmt(stmt: ast.Stmt):
        for owner, key in _expr_slots(stmt):
            yield (owner, key)
            yield from visit_expr_children(_get_slot(owner, key))
        if isinstance(stmt, ast.CompoundStmt):
            for inner in stmt.statements:
                yield from visit_stmt(inner)
        elif isinstance(stmt, ast.IfStmt):
            yield from visit_stmt(stmt.then_branch)
            if stmt.else_branch is not None:
                yield from visit_stmt(stmt.else_branch)
        elif isinstance(stmt, (ast.ForStmt, ast.WhileStmt, ast.DoWhileStmt)):
            if isinstance(stmt, ast.ForStmt) and stmt.init is not None:
                yield from visit_stmt(stmt.init)
            yield from visit_stmt(stmt.body)

    yield from visit_stmt(body)


def _count_expr_sites(body: ast.CompoundStmt) -> int:
    return sum(1 for __ in _walk_expr_sites(body))


def _apply_expr_edit(
    body: ast.CompoundStmt, cursor: List[int], replacement_index: int
) -> bool:
    """Apply the Nth replacement at the site-th expression slot.
    Returns False when the site has fewer replacement options."""
    for i, (owner, key) in enumerate(_walk_expr_sites(body)):
        if i == cursor[0]:
            options = _replacements(_get_slot(owner, key))
            if replacement_index >= len(options):
                return False
            replacement = options[replacement_index]
            if replacement is None:
                return False
            _set_slot(owner, key, copy.deepcopy(replacement))
            return True
    return False
