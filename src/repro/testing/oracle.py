"""The differential oracle: five independent ways to render a shader.

For one fragment shader the oracle produces up to five results and
demands they agree bit-for-bit:

A. **pipeline** — the full ``gles2`` raster path: vertex shading,
   rasterisation, varying interpolation, the vectorised fragment
   interpreter, and the pipeline's own eq. (2) quantiser.
B. **vectorised replay** — the captured per-fragment presets replayed
   through a *fresh* vectorised AST interpreter, quantised by this
   module's independent :func:`reference_quantize`.
C. **scalar reference** — every fragment individually evaluated by
   :class:`repro.glsl.scalar_ref.ScalarInterpreter` (plain Python
   recursion, no numpy vectorisation), quantised by
   :func:`reference_quantize`.
D. **compiled IR replay** — the same captured presets replayed through
   :class:`repro.glsl.ir.IRExecutor`: lower → fold → select-convert →
   CSE → DCE → flat instruction loop.  Selected with
   ``backend="ir"`` / ``"both"`` / ``"all"`` on
   :func:`run_differential`.
E. **JIT replay** — the presets replayed through
   :class:`repro.glsl.jit.JitExecutor`: the generated straight-line
   numpy function (or its IRExecutor fallback for programs outside the
   JIT subset).  Selected with ``backend="jit"`` / ``"all"``.

A≠B catches framebuffer plumbing and quantisation bugs (this is what
flags the deliberately injected eq. (2) off-by-one); B≠C catches
divergence between the two interpreter implementations — masking,
broadcasting, l-value or builtin semantics; D≠B catches any place the
IR compile pipeline (lowering or an optimisation pass) changes
observable semantics; E≠B catches JIT codegen bugs — mask-blend
lowering, uniform-lane width inference, quantisation elision.  The
rasteriser itself is checked by asserting the fullscreen quad covers
every pixel exactly once (top-left fill rule conformance).
"""

from __future__ import annotations

import contextlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..gles2 import GLES2Context, enums as gl
from ..gles2 import pipeline as gles2_pipeline
from ..glsl.interp import Interpreter
from ..glsl.scalar_ref import ScalarInterpreter, python_value
from ..glsl.values import Value

#: Vertex shader used for all differential runs: fullscreen quad with
#: a [0,1]^2 ``v_uv`` varying (same shape as the paper's challenge-(1)
#: pass-through shader).
STANDARD_VERTEX_SHADER = """
attribute vec2 a_position;
varying vec2 v_uv;
void main() {
    v_uv = a_position * 0.5 + 0.5;
    gl_Position = vec4(a_position, 0.0, 1.0);
}
"""

_QUAD = np.array(
    [[-1, -1], [1, -1], [1, 1], [-1, -1], [1, 1], [-1, 1]], dtype=np.float32
)

#: Deterministic values for the generator's standard uniforms.
STANDARD_UNIFORM_VALUES: Dict[str, object] = {
    "u_f0": 0.37,
    "u_f1": -1.25,
    "u_v2": (0.81, 0.13),
    "u_v3": (0.29, -0.64, 1.07),
    "u_v4": (0.52, 0.91, -0.33, 0.18),
}

_CLEAR_COLOR = (0.0, 0.0, 0.0, 0.0)


@dataclass(frozen=True)
class TextureSpec:
    """One sampler binding for the oracle: an RGBA8 image plus the
    texture parameters to set before the draw.

    A parameter of ``None`` means *leave the GL default* (min filter
    ``GL_NEAREST_MIPMAP_LINEAR``, mag ``GL_LINEAR``, wraps
    ``GL_REPEAT``) — that is how the mipmap-incomplete corpus entries
    get the spec-mandated opaque-black sampling without uploading
    mipmaps.  The defaults here mirror what :func:`draw_for_capture`
    historically hardcoded, so a plain ndarray (wrapped via
    :meth:`of`) behaves exactly as before.
    """

    data: np.ndarray
    min_filter: Optional[int] = gl.GL_NEAREST
    mag_filter: Optional[int] = gl.GL_NEAREST
    wrap_s: Optional[int] = gl.GL_CLAMP_TO_EDGE
    wrap_t: Optional[int] = gl.GL_CLAMP_TO_EDGE

    @classmethod
    def of(cls, value) -> "TextureSpec":
        if isinstance(value, cls):
            return value
        return cls(data=np.asarray(value, dtype=np.uint8))


def _standard_texture(name: str, width: int, height: int) -> np.ndarray:
    """Deterministic RGBA8 image for a standard sampler."""
    rng = random.Random(f"oracle-texture:{name}")
    flat = [rng.randrange(256) for __ in range(width * height * 4)]
    return np.array(flat, dtype=np.uint8).reshape(height, width, 4)


#: Deterministic texture bindings for the generator's standard samplers
#: (:data:`repro.testing.generator.STANDARD_SAMPLERS`).  The set spans
#: the sampling-path matrix: square NEAREST/CLAMP, non-square
#: power-of-two LINEAR with REPEAT/MIRRORED_REPEAT wraps, a degenerate
#: 1x1 image, and an NPOT shape (complete because its wraps are CLAMP
#: and its min filter is non-mipmap).
STANDARD_TEXTURE_VALUES: Dict[str, TextureSpec] = {
    "u_tex0": TextureSpec(data=_standard_texture("u_tex0", 4, 4)),
    "u_tex1": TextureSpec(
        data=_standard_texture("u_tex1", 8, 4),
        min_filter=gl.GL_LINEAR,
        mag_filter=gl.GL_LINEAR,
        wrap_s=gl.GL_REPEAT,
        wrap_t=gl.GL_MIRRORED_REPEAT,
    ),
    "u_tex2": TextureSpec(data=_standard_texture("u_tex2", 1, 1)),
    "u_tex3": TextureSpec(data=_standard_texture("u_tex3", 5, 3)),
}


def reference_quantize(component: float, mode: str = "round") -> int:
    """Independent scalar implementation of the paper's eq. (2): clamp
    one colour component to [0, 1] and quantise to an unsigned byte.

    Deliberately *not* implemented via
    :func:`repro.gles2.pipeline.quantize_color` so that bugs injected
    there are visible to the oracle.
    """
    c = float(component)
    c = 0.0 if c < 0.0 else (1.0 if c > 1.0 else c)
    if mode == "floor":
        return int(np.floor(np.float64(c) * 255.0))
    return int(np.floor(np.float64(c) * 255.0 + 0.5))


@dataclass
class DifferentialResult:
    """Outcome of one differential run."""

    ok: bool
    source: str
    #: "" when ok; otherwise which comparison failed
    #: ("coverage", "discard", "color", "ir-discard", "ir-color",
    #: "jit-discard", "jit-color", "pipeline-vs-reference").
    stage: str = ""
    message: str = ""
    framebuffer: Optional[np.ndarray] = None
    mismatches: List[str] = field(default_factory=list)

    def describe(self) -> str:
        if self.ok:
            return "ok"
        lines = [f"divergence at stage '{self.stage}': {self.message}"]
        lines += self.mismatches[:8]
        return "\n".join(lines)


@contextlib.contextmanager
def inject_eq2_off_by_one():
    """Deliberately corrupt the pipeline's eq. (2) quantiser: scale by
    2^8 - 2 instead of 2^8 - 1 (the classic off-by-one in the paper's
    quantisation formula).  Used to validate that the differential
    harness actually catches pipeline bugs."""
    original = gles2_pipeline.quantize_color

    def broken_quantize(color: np.ndarray, mode: str = "round") -> np.ndarray:
        clamped = np.clip(color, 0.0, 1.0)
        if mode == "floor":
            return np.floor(clamped * 254.0).astype(np.uint8)
        return np.floor(clamped * 254.0 + 0.5).astype(np.uint8)

    gles2_pipeline.quantize_color = broken_quantize
    try:
        yield
    finally:
        gles2_pipeline.quantize_color = original


@contextlib.contextmanager
def _capture():
    captures: List[gles2_pipeline.FragmentCapture] = []
    gles2_pipeline.set_capture_hook(captures.append)
    try:
        yield captures
    finally:
        gles2_pipeline.clear_capture_hook()


def _clone_presets(presets: Dict[str, Value]) -> Dict[str, Value]:
    return {name: value.clone() for name, value in presets.items()}


def _set_uniform(ctx, prog, name: str, value) -> None:
    loc = ctx.glGetUniformLocation(prog, name)
    if loc < 0:
        return
    if isinstance(value, bool) or isinstance(value, int):
        ctx.glUniform1i(loc, int(value))
    elif isinstance(value, float):
        ctx.glUniform1f(loc, value)
    else:
        values = tuple(float(v) for v in value)
        {
            2: ctx.glUniform2f,
            3: ctx.glUniform3f,
            4: ctx.glUniform4f,
        }[len(values)](loc, *values)


def draw_for_capture(
    fragment_source: str,
    *,
    size: int = 4,
    quantization: str = "round",
    uniforms: Optional[Dict[str, object]] = None,
    textures: Optional[Dict[str, np.ndarray]] = None,
    vertex_source: str = STANDARD_VERTEX_SHADER,
    execution_backend: str = "ast",
    tile_size: Optional[int] = None,
    shade_workers: Optional[int] = None,
):
    """Draw a fullscreen quad with ``fragment_source`` and capture the
    per-fragment state.  Returns ``(framebuffer, capture)``.

    ``uniforms`` maps uniform names to floats/ints/tuples; ``textures``
    maps sampler uniform names to (H, W, 4) uint8 arrays or
    :class:`TextureSpec` instances (which also carry filter/wrap
    parameters).  The standard samplers of
    :data:`STANDARD_TEXTURE_VALUES` are bound automatically whenever
    the program declares them, mirroring how
    :data:`STANDARD_UNIFORM_VALUES` is always merged in.
    ``vertex_source`` may replace the standard quad shader (e.g. the
    codegen pass-through shader, whose varying is ``v_coord``).
    ``execution_backend`` selects how the pipeline itself runs the
    shaders ("ast", "ir" or "jit"); ``tile_size`` / ``shade_workers``
    select tiled and multiprocess fragment shading (the tiled-vs-
    monolithic bit-identity tests drive these).
    """
    ctx = GLES2Context(
        width=size, height=size, float_model="exact",
        quantization=quantization, execution_backend=execution_backend,
        tile_size=tile_size, shade_workers=shade_workers,
    )
    vs = ctx.glCreateShader(gl.GL_VERTEX_SHADER)
    ctx.glShaderSource(vs, vertex_source)
    ctx.glCompileShader(vs)
    fs = ctx.glCreateShader(gl.GL_FRAGMENT_SHADER)
    ctx.glShaderSource(fs, fragment_source)
    ctx.glCompileShader(fs)
    if not ctx.glGetShaderiv(fs, gl.GL_COMPILE_STATUS):
        raise ValueError(
            "fragment shader failed to compile:\n"
            + ctx.glGetShaderInfoLog(fs)
        )
    prog = ctx.glCreateProgram()
    ctx.glAttachShader(prog, vs)
    ctx.glAttachShader(prog, fs)
    ctx.glLinkProgram(prog)
    if not ctx.glGetProgramiv(prog, gl.GL_LINK_STATUS):
        raise ValueError("link failed: " + ctx.glGetProgramInfoLog(prog))
    ctx.glUseProgram(prog)

    merged = dict(STANDARD_UNIFORM_VALUES)
    merged.update(uniforms or {})
    for name, value in merged.items():
        _set_uniform(ctx, prog, name, value)

    # Standard samplers bind only when the program declares them, so a
    # program with its own (deliberately unbound) sampler still sees
    # the incomplete-texture black of texture object 0 on unit 0.
    merged_textures: Dict[str, TextureSpec] = {
        name: spec
        for name, spec in STANDARD_TEXTURE_VALUES.items()
        if ctx.glGetUniformLocation(prog, name) >= 0
    }
    for name, value in (textures or {}).items():
        merged_textures[name] = TextureSpec.of(value)
    for unit, (name, spec) in enumerate(merged_textures.items()):
        tex = ctx.glGenTextures(1)[0]
        ctx.glActiveTexture(gl.GL_TEXTURE0 + unit)
        ctx.glBindTexture(gl.GL_TEXTURE_2D, tex)
        # Default spec: mipmap-free completeness — without a non-mipmap
        # min filter the default GL_NEAREST_MIPMAP_LINEAR makes the
        # texture incomplete and every sample returns opaque black (a
        # spec passing None for a parameter opts into exactly that).
        for pname, pvalue in (
            (gl.GL_TEXTURE_MIN_FILTER, spec.min_filter),
            (gl.GL_TEXTURE_MAG_FILTER, spec.mag_filter),
            (gl.GL_TEXTURE_WRAP_S, spec.wrap_s),
            (gl.GL_TEXTURE_WRAP_T, spec.wrap_t),
        ):
            if pvalue is not None:
                ctx.glTexParameteri(gl.GL_TEXTURE_2D, pname, pvalue)
        image = np.ascontiguousarray(spec.data, dtype=np.uint8)
        ctx.glTexImage2D(
            gl.GL_TEXTURE_2D, 0, gl.GL_RGBA, image.shape[1], image.shape[0],
            0, gl.GL_RGBA, gl.GL_UNSIGNED_BYTE, image,
        )
        loc = ctx.glGetUniformLocation(prog, name)
        if loc >= 0:
            ctx.glUniform1i(loc, unit)

    loc = ctx.glGetAttribLocation(prog, "a_position")
    ctx.glEnableVertexAttribArray(loc)
    ctx.glVertexAttribPointer(loc, 2, gl.GL_FLOAT, False, 0, _QUAD)
    ctx.glViewport(0, 0, size, size)
    ctx.glClearColor(*_CLEAR_COLOR)
    ctx.glClear(gl.GL_COLOR_BUFFER_BIT)
    with _capture() as captures:
        ctx.glDrawArrays(gl.GL_TRIANGLES, 0, 6)
    framebuffer = ctx.glReadPixels(
        0, 0, size, size, gl.GL_RGBA, gl.GL_UNSIGNED_BYTE
    )
    if len(captures) != 1:
        raise RuntimeError(f"expected 1 draw capture, got {len(captures)}")
    return framebuffer, captures[0]


def run_differential(
    fragment_source: str,
    *,
    size: int = 4,
    quantization: str = "round",
    uniforms: Optional[Dict[str, object]] = None,
    textures: Optional[Dict[str, np.ndarray]] = None,
    vertex_source: str = STANDARD_VERTEX_SHADER,
    backend: str = "both",
) -> DifferentialResult:
    """Render ``fragment_source`` through the independent paths and
    compare the results bit-exactly.

    ``backend`` selects the execution backends under test: ``"ast"``
    runs the legacy three-way oracle (paths A/B/C), ``"ir"`` drives the
    raster pipeline itself with the IR executor and adds the path-D
    replay, ``"jit"`` drives the pipeline with the JIT backend and adds
    the path-E replay, ``"both"`` (default) keeps the pipeline on the
    reference AST backend and cross-checks paths A/B/C/D, and ``"all"``
    cross-checks all five paths."""
    if backend not in ("ast", "ir", "jit", "both", "all"):
        raise ValueError(f"unknown backend '{backend}'")
    framebuffer, capture = draw_for_capture(
        fragment_source,
        size=size,
        quantization=quantization,
        uniforms=uniforms,
        textures=textures,
        vertex_source=vertex_source,
        execution_backend=backend if backend in ("ir", "jit") else "ast",
    )

    def fail(stage: str, message: str, mismatches=()) -> DifferentialResult:
        return DifferentialResult(
            ok=False,
            source=fragment_source,
            stage=stage,
            message=message,
            framebuffer=framebuffer,
            mismatches=list(mismatches),
        )

    # ------------------------------------------------------------------
    # Rasteriser conformance: the quad must cover each pixel once.
    # ------------------------------------------------------------------
    n = capture.px.shape[0]
    if n != size * size:
        return fail(
            "coverage",
            f"quad rasterised {n} fragments for {size}x{size} pixels",
        )
    linear = capture.py.astype(np.int64) * size + capture.px.astype(np.int64)
    if np.unique(linear).size != n:
        return fail("coverage", "a pixel was covered more than once")

    # ------------------------------------------------------------------
    # Path B: vectorised replay on the captured presets.
    # ------------------------------------------------------------------
    checked = capture.fragment_shader
    replay = Interpreter(checked)
    env = replay.execute(n, _clone_presets(capture.fs_presets))
    if "gl_FragData" in checked.written_builtins:
        frag_value = env["gl_FragData"].fields["0"]
    else:
        frag_value = env["gl_FragColor"]
    colors_b = np.broadcast_to(
        frag_value.data.astype(np.float64), (n, 4)
    )
    discard_b = replay.discarded

    # ------------------------------------------------------------------
    # Path D: compiled-IR replay on the same captured presets.
    # ------------------------------------------------------------------
    if backend in ("ir", "both", "all"):
        from ..glsl.ir import IRExecutor

        ir_replay = IRExecutor(checked)
        ir_env = ir_replay.execute(n, _clone_presets(capture.fs_presets))
        if "gl_FragData" in checked.written_builtins:
            ir_value = ir_env["gl_FragData"].fields["0"]
        else:
            ir_value = ir_env["gl_FragColor"]
        colors_d = np.broadcast_to(ir_value.data.astype(np.float64), (n, 4))
        discard_d = ir_replay.discarded
        if not np.array_equal(discard_b, discard_d):
            lanes = np.nonzero(discard_b != discard_d)[0][:4]
            return fail(
                "ir-discard",
                "AST interpreter and IR executor disagree on discard",
                [
                    f"  fragment ({capture.px[i]},{capture.py[i]}): "
                    f"ast={bool(discard_b[i])} ir={bool(discard_d[i])}"
                    for i in lanes
                ],
            )
        live_d = ~discard_b
        if not np.array_equal(colors_d[live_d], colors_b[live_d]):
            diff = np.any(colors_d != colors_b, axis=1) & live_d
            lanes = np.nonzero(diff)[0][:4]
            return fail(
                "ir-color",
                "AST interpreter and IR executor disagree on gl_FragColor",
                [
                    f"  fragment ({capture.px[i]},{capture.py[i]}): "
                    f"ast={colors_b[i].tolist()} ir={colors_d[i].tolist()}"
                    for i in lanes
                ],
            )

    # ------------------------------------------------------------------
    # Path E: JIT replay on the same captured presets.  The JitExecutor
    # itself falls back to the IRExecutor for programs outside the JIT
    # subset, so this path always yields a comparable result.
    # ------------------------------------------------------------------
    if backend in ("jit", "all"):
        from ..glsl.jit import JitExecutor

        jit_replay = JitExecutor(checked)
        jit_env = jit_replay.execute(n, _clone_presets(capture.fs_presets))
        if "gl_FragData" in checked.written_builtins:
            jit_value = jit_env["gl_FragData"].fields["0"]
        else:
            jit_value = jit_env["gl_FragColor"]
        colors_e = np.broadcast_to(jit_value.data.astype(np.float64), (n, 4))
        discard_e = jit_replay.discarded
        if not np.array_equal(discard_b, discard_e):
            lanes = np.nonzero(discard_b != discard_e)[0][:4]
            return fail(
                "jit-discard",
                "AST interpreter and JIT backend disagree on discard",
                [
                    f"  fragment ({capture.px[i]},{capture.py[i]}): "
                    f"ast={bool(discard_b[i])} jit={bool(discard_e[i])}"
                    for i in lanes
                ],
            )
        live_e = ~discard_b
        if not np.array_equal(colors_e[live_e], colors_b[live_e]):
            diff = np.any(colors_e != colors_b, axis=1) & live_e
            lanes = np.nonzero(diff)[0][:4]
            return fail(
                "jit-color",
                "AST interpreter and JIT backend disagree on gl_FragColor",
                [
                    f"  fragment ({capture.px[i]},{capture.py[i]}): "
                    f"ast={colors_b[i].tolist()} jit={colors_e[i].tolist()}"
                    for i in lanes
                ],
            )

    # ------------------------------------------------------------------
    # Path C: scalar reference, one fragment at a time.
    # ------------------------------------------------------------------
    colors_c = np.zeros((n, 4), dtype=np.float64)
    discard_c = np.zeros(n, dtype=bool)
    preset_names = list(capture.fs_presets)
    for lane in range(n):
        lane_presets = {
            name: python_value(capture.fs_presets[name], lane)
            for name in preset_names
        }
        scalar = ScalarInterpreter(checked)
        scalar_env = scalar.run(lane_presets)
        discard_c[lane] = scalar.discarded
        if scalar.discarded:
            continue
        if "gl_FragData" in checked.written_builtins:
            rgba = scalar_env["gl_FragData"][0]
        else:
            rgba = scalar_env["gl_FragColor"]
        colors_c[lane] = rgba

    # ------------------------------------------------------------------
    # Compare interpreter outputs (pre-quantisation, bit-exact floats).
    # ------------------------------------------------------------------
    if not np.array_equal(discard_b, discard_c):
        lanes = np.nonzero(discard_b != discard_c)[0][:4]
        return fail(
            "discard",
            "vectorised and scalar interpreters disagree on discard",
            [
                f"  fragment ({capture.px[i]},{capture.py[i]}): "
                f"vectorised={bool(discard_b[i])} scalar={bool(discard_c[i])}"
                for i in lanes
            ],
        )
    live = ~discard_b
    if not np.array_equal(colors_b[live], colors_c[live]):
        diff = np.any(colors_b != colors_c, axis=1) & live
        lanes = np.nonzero(diff)[0][:4]
        return fail(
            "color",
            "vectorised and scalar interpreters disagree on gl_FragColor",
            [
                f"  fragment ({capture.px[i]},{capture.py[i]}): "
                f"vectorised={colors_b[i].tolist()} "
                f"scalar={colors_c[i].tolist()}"
                for i in lanes
            ],
        )

    # ------------------------------------------------------------------
    # Compose the reference framebuffer with the independent quantiser
    # and compare against the pipeline's output.
    # ------------------------------------------------------------------
    clear_bytes = [
        reference_quantize(c, quantization) for c in _CLEAR_COLOR
    ]
    reference = np.empty((size, size, 4), dtype=np.uint8)
    reference[:, :] = clear_bytes
    for lane in range(n):
        if discard_c[lane]:
            continue
        x = int(capture.px[lane])
        y = int(capture.py[lane])
        reference[y, x] = [
            reference_quantize(colors_c[lane][ch], quantization)
            for ch in range(4)
        ]
    if not np.array_equal(framebuffer, reference):
        diff = np.nonzero(np.any(framebuffer != reference, axis=2))
        mismatches = [
            f"  pixel ({x},{y}): pipeline={framebuffer[y, x].tolist()} "
            f"reference={reference[y, x].tolist()}"
            for y, x in list(zip(diff[0], diff[1]))[:4]
        ]
        return fail(
            "pipeline-vs-reference",
            "pipeline framebuffer does not match the independently "
            "quantised oracle (eq. (2) path)",
            mismatches,
        )

    return DifferentialResult(
        ok=True, source=fragment_source, framebuffer=framebuffer
    )
