"""Random type-correct GLSL ES 1.00 fragment shader generator.

Emits programs that are guaranteed to compile under the repo's own
front end (no implicit conversions, relational operators on scalars
only, Appendix-A style constant-bound ``for`` loops) and — by
construction — to stay away from NaN/Inf-producing operations, so
that a bit-exact three-way differential comparison (vectorised
interpreter vs scalar reference vs raster pipeline) is meaningful.

The generator is driven by a caller-supplied ``random.Random``; the
same seed always yields the same program.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Uniforms every generated program may reference.  The oracle binds
#: deterministic values for exactly these names.
STANDARD_UNIFORMS: Tuple[Tuple[str, str], ...] = (
    ("u_f0", "float"),
    ("u_f1", "float"),
    ("u_v2", "vec2"),
    ("u_v3", "vec3"),
    ("u_v4", "vec4"),
)

#: Samplers every generated program may reference.  The oracle binds a
#: deterministic RGBA8 image to each (see
#: :data:`repro.testing.oracle.STANDARD_TEXTURE_VALUES`); the set spans
#: square/non-square, power-of-two/NPOT and 1x1 shapes plus NEAREST and
#: LINEAR filtering, so generated ``texture2D`` calls exercise the full
#: sampling path of every backend.
STANDARD_SAMPLERS: Tuple[str, ...] = ("u_tex0", "u_tex1", "u_tex2", "u_tex3")

_PREAMBLE = (
    "precision highp float;\n"
    "varying vec2 v_uv;\n"
    + "".join(f"uniform {t} {n};\n" for n, t in STANDARD_UNIFORMS)
    + "".join(f"uniform sampler2D {n};\n" for n in STANDARD_SAMPLERS)
)

_VEC_SIZES = {"vec2": 2, "vec3": 3, "vec4": 4}
_MAT_SIZES = {"mat2": 2, "mat3": 3, "mat4": 4}
_SWIZZLE = "xyzw"


@dataclass
class GeneratorConfig:
    """Knobs for program shape; defaults give compact but varied
    programs (~15-40 lines)."""

    max_expr_depth: int = 4
    max_block_stmts: int = 5
    max_loop_nesting: int = 2
    max_helpers: int = 2
    p_discard: float = 0.08
    p_loop: float = 0.45
    p_if: float = 0.5
    p_array: float = 0.35
    #: Chance that any vec4 expression node becomes a ``texture2D``
    #: sample of one of the standard samplers.
    p_texture: float = 0.15


class _Scope:
    def __init__(self):
        #: name -> (glsl type, writable)
        self.vars: Dict[str, Tuple[str, bool]] = {}
        #: name -> declared length (float arrays)
        self.arrays: Dict[str, int] = {}


class _ProgramGenerator:
    def __init__(self, rng: random.Random, config: GeneratorConfig):
        self.rng = rng
        self.config = config
        self.counter = 0
        self.scopes: List[_Scope] = []
        #: name -> (return type, [(direction, type), ...])
        self.helpers: Dict[str, Tuple[str, List[Tuple[str, str]]]] = {}
        self.loop_depth = 0
        #: Write-only scratch floats for ``out`` arguments.  GLSL ES
        #: 1.00 leaves the interaction between an ``out`` copy-back and
        #: other reads of the same variable *within one expression*
        #: undefined, so generated calls only ever write into these
        #: dedicated variables; they are read back exclusively through
        #: a statement-level "harvest" production.
        self.out_scratch: List[str] = []

    # -- small utilities ------------------------------------------------
    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def chance(self, p: float) -> bool:
        return self.rng.random() < p

    def pick(self, seq):
        return seq[self.rng.randrange(len(seq))]

    def flit(self, lo: float = -2.0, hi: float = 2.0) -> str:
        return f"{self.rng.uniform(lo, hi):.4f}"

    def vars_of(self, gtype: str, writable: bool = False) -> List[str]:
        found = []
        for scope in self.scopes:
            for name, (t, w) in scope.vars.items():
                if t == gtype and (w or not writable):
                    found.append(name)
        return found

    def arrays_in_scope(self) -> List[Tuple[str, int]]:
        return [
            (name, length)
            for scope in self.scopes
            for name, length in scope.arrays.items()
        ]

    # ==================================================================
    # Expressions
    # ==================================================================
    def expr(self, gtype: str, depth: int) -> str:
        if gtype == "float":
            return self.float_expr(depth)
        if gtype == "int":
            return self.int_expr(depth)
        if gtype == "bool":
            return self.bool_expr(depth)
        if gtype in _VEC_SIZES:
            return self.vec_expr(gtype, depth)
        return self.mat_expr(gtype, depth)

    # -- float ----------------------------------------------------------
    def float_leaf(self) -> str:
        options = [self.flit(), self.flit(), "u_f0", "u_f1",
                   "v_uv.x", "v_uv.y"]
        options += self.vars_of("float")
        for vt, size in _VEC_SIZES.items():
            for name in self.vars_of(vt):
                options.append(f"{name}.{_SWIZZLE[self.rng.randrange(size)]}")
        return self.pick(options)

    def float_expr(self, depth: int) -> str:
        if depth <= 0:
            return self.float_leaf()
        d = depth - 1
        roll = self.rng.random()
        if roll < 0.22:
            op = self.pick(["+", "-", "*"])
            return f"({self.float_expr(d)} {op} {self.float_expr(d)})"
        if roll < 0.28:  # guarded division: denominator >= 1
            return (f"({self.float_expr(d)} / "
                    f"(abs({self.float_expr(d)}) + 1.0))")
        if roll < 0.48:
            return self.float_builtin(d)
        if roll < 0.56:
            vt = self.pick(list(_VEC_SIZES))
            a, b = self.vec_expr(vt, d - 1), self.vec_expr(vt, d - 1)
            return self.pick([
                f"dot({a}, {b})",
                f"length({a})",
                f"distance({a}, {b})",
            ])
        if roll < 0.62:
            return (f"({self.bool_expr(d)} ? {self.float_expr(d)} : "
                    f"{self.float_expr(d)})")
        if roll < 0.68:
            return f"float({self.int_expr(d)})"
        if roll < 0.74:
            arrays = self.arrays_in_scope()
            if arrays:
                name, __ = self.pick(arrays)
                return f"{name}[{self.int_expr(d)}]"
        if roll < 0.82:
            call = self.helper_call("float", d)
            if call is not None:
                return call
        if roll < 0.9:
            return f"(-({self.float_expr(d)}))"
        return self.float_leaf()

    def float_builtin(self, d: int) -> str:
        x = self.float_expr(d)
        y = self.float_expr(d)
        lo = self.rng.uniform(-1.5, 0.0)
        hi = self.rng.uniform(0.1, 1.5)
        return self.pick([
            f"sin({x})", f"cos({x})", f"floor({x})", f"ceil({x})",
            f"fract({x})", f"abs({x})", f"sign({x})",
            f"sqrt(abs({x}))",
            f"log(abs({x}) + 1.0)",
            f"exp(clamp({x}, -8.0, 8.0))",
            f"inversesqrt(abs({x}) + 1.0)",
            f"min({x}, {y})", f"max({x}, {y})",
            f"mod({x}, (abs({y}) + 1.0))",
            f"step({x}, {y})",
            f"atan({x}, (abs({y}) + 0.5))",
            f"pow(abs({x}) + 0.5, {self.flit(0.0, 2.0)})",
            f"clamp({x}, {lo:.4f}, {hi:.4f})",
            f"mix({x}, {y}, fract({self.float_expr(d)}))",
            f"smoothstep({lo:.4f}, {hi:.4f}, {x})",
            f"radians({x})", f"degrees(fract({x}))",
            f"asin(clamp({x}, -1.0, 1.0))",
        ])

    # -- int ------------------------------------------------------------
    def int_expr(self, depth: int) -> str:
        leaves = [str(self.rng.randrange(0, 8))]
        leaves += self.vars_of("int")
        if depth <= 0:
            return self.pick(leaves)
        d = depth - 1
        roll = self.rng.random()
        if roll < 0.3:
            op = self.pick(["+", "-", "*"])
            return f"({self.int_expr(d)} {op} {self.int_expr(d)})"
        if roll < 0.4:
            return f"({self.int_expr(d)} / {self.rng.randrange(1, 5)})"
        if roll < 0.55:
            return f"int(mod({self.float_expr(d)}, 8.0))"
        return self.pick(leaves)

    # -- bool -----------------------------------------------------------
    def bool_expr(self, depth: int) -> str:
        if depth <= 0:
            options = ["true", "false"] + self.vars_of("bool")
            return self.pick(options)
        d = depth - 1
        roll = self.rng.random()
        if roll < 0.45:
            op = self.pick(["<", ">", "<=", ">="])
            return f"({self.float_expr(d)} {op} {self.float_expr(d)})"
        if roll < 0.55:
            op = self.pick(["==", "!=", "<", ">"])
            return f"({self.int_expr(d)} {op} {self.int_expr(d)})"
        if roll < 0.75:
            op = self.pick(["&&", "||", "^^"])
            return f"({self.bool_expr(d)} {op} {self.bool_expr(d)})"
        if roll < 0.85:
            return f"(!{self.bool_expr(d)})"
        vt = self.pick(list(_VEC_SIZES))
        fn = self.pick(["lessThan", "greaterThanEqual", "notEqual"])
        agg = self.pick(["any", "all"])
        return f"{agg}({fn}({self.vec_expr(vt, d - 1)}, {self.vec_expr(vt, d - 1)}))"

    # -- vectors --------------------------------------------------------
    def vec_leaf(self, gtype: str) -> str:
        size = _VEC_SIZES[gtype]
        options = [f"u_v{size}"] + self.vars_of(gtype)
        options.append(
            f"{gtype}({', '.join(self.flit() for _ in range(size))})"
        )
        # Swizzle another vector variable down/up to this size.
        for src_type, src_size in _VEC_SIZES.items():
            for name in self.vars_of(src_type):
                sw = "".join(
                    _SWIZZLE[self.rng.randrange(src_size)] for _ in range(size)
                )
                options.append(f"{name}.{sw}")
        if size == 2:
            options.append("v_uv")
        return self.pick(options)

    def texture_expr(self, d: int) -> str:
        """A ``texture2D`` sample of a standard sampler (vec4-typed).

        Coordinates are biased towards the interpolated ``v_uv`` (the
        well-behaved in-range case) but also include fract-wrapped and
        fully unconstrained vec2 expressions, so REPEAT/MIRRORED_REPEAT
        wrap arithmetic and out-of-range clamping get exercised too.
        """
        sampler = self.pick(STANDARD_SAMPLERS)
        roll = self.rng.random()
        if roll < 0.4:
            coord = "v_uv"
        elif roll < 0.7:
            coord = f"fract({self.vec_expr('vec2', d)})"
        else:
            coord = self.vec_expr("vec2", d)
        return f"texture2D({sampler}, {coord})"

    def vec_expr(self, gtype: str, depth: int) -> str:
        if depth <= 0:
            return self.vec_leaf(gtype)
        size = _VEC_SIZES[gtype]
        d = depth - 1
        if gtype == "vec4" and self.chance(self.config.p_texture):
            return self.texture_expr(d)
        roll = self.rng.random()
        if roll < 0.18:
            comps = ", ".join(self.float_expr(d) for _ in range(size))
            return f"{gtype}({comps})"
        if roll < 0.24 and size > 2:
            smaller = f"vec{size - 1}"
            return f"{gtype}({self.vec_expr(smaller, d)}, {self.float_expr(d)})"
        if roll < 0.42:
            op = self.pick(["+", "-", "*"])
            return f"({self.vec_expr(gtype, d)} {op} {self.vec_expr(gtype, d)})"
        if roll < 0.5:
            return f"({self.vec_expr(gtype, d)} * {self.float_expr(d)})"
        if roll < 0.58:
            mt = f"mat{size}"
            if self.chance(0.5):
                return f"({self.mat_expr(mt, d - 1)} * {self.vec_expr(gtype, d)})"
            return f"({self.vec_expr(gtype, d)} * {self.mat_expr(mt, d - 1)})"
        if roll < 0.78:
            return self.vec_builtin(gtype, d)
        if roll < 0.84:
            call = self.helper_call(gtype, d)
            if call is not None:
                return call
        if roll < 0.9:
            return (f"({self.vec_expr(gtype, d)} / "
                    f"(abs({self.vec_expr(gtype, d)}) + {gtype}(1.0)))")
        return self.vec_leaf(gtype)

    def vec_builtin(self, gtype: str, d: int) -> str:
        a = self.vec_expr(gtype, d)
        b = self.vec_expr(gtype, d)
        options = [
            f"abs({a})", f"floor({a})", f"fract({a})", f"sin({a})",
            f"clamp({a}, 0.0, 1.0)",
            f"min({a}, {b})", f"max({a}, {b})",
            f"mix({a}, {b}, fract({self.float_expr(d)}))",
            f"normalize(abs({a}) + {gtype}(0.1))",
            f"reflect({a}, {b})",
            f"faceforward({a}, {b}, {self.vec_expr(gtype, d)})",
            f"step({a}, {b})",
            f"mod({a}, (abs({b}) + {gtype}(1.0)))",
        ]
        if gtype == "vec3":
            options.append(f"cross({a}, {b})")
        return self.pick(options)

    # -- matrices -------------------------------------------------------
    def mat_expr(self, gtype: str, depth: int) -> str:
        size = _MAT_SIZES[gtype]
        existing = self.vars_of(gtype)
        if depth <= 0:
            if existing and self.chance(0.5):
                return self.pick(existing)
            return f"{gtype}({self.flit(0.2, 2.0)})"
        d = depth - 1
        roll = self.rng.random()
        if roll < 0.25:
            cols = ", ".join(
                self.vec_expr(f"vec{size}", d - 1) for _ in range(size)
            )
            return f"{gtype}({cols})"
        if roll < 0.45:
            op = self.pick(["+", "-"])
            return f"({self.mat_expr(gtype, d)} {op} {self.mat_expr(gtype, d)})"
        if roll < 0.65:
            return f"({self.mat_expr(gtype, d)} * {self.mat_expr(gtype, d)})"
        if roll < 0.8:
            return f"({self.mat_expr(gtype, d)} * {self.float_expr(d)})"
        if roll < 0.9:
            return (f"matrixCompMult({self.mat_expr(gtype, d)}, "
                    f"{self.mat_expr(gtype, d)})")
        return f"{gtype}({self.flit(0.2, 2.0)})"

    # -- helper calls ---------------------------------------------------
    def helper_call(self, ret_type: str, depth: int) -> Optional[str]:
        matching = [
            (name, params)
            for name, (ret, params) in self.helpers.items()
            if ret == ret_type
        ]
        if not matching:
            return None
        name, params = self.pick(matching)
        args = []
        for direction, ptype in params:
            if direction in ("out", "inout"):
                if ptype != "float" or not self.out_scratch:
                    return None
                args.append(self.pick(self.out_scratch))
            else:
                args.append(self.expr(ptype, depth - 1))
        return f"{name}({', '.join(args)})"

    # ==================================================================
    # Statements
    # ==================================================================
    def gen_block(self, indent: str, budget: int) -> List[str]:
        self.scopes.append(_Scope())
        lines: List[str] = []
        for __ in range(self.rng.randrange(1, budget + 1)):
            lines.extend(self.gen_stmt(indent))
        self.scopes.pop()
        return lines

    def gen_stmt(self, indent: str) -> List[str]:
        cfg = self.config
        roll = self.rng.random()
        depth = self.rng.randrange(1, cfg.max_expr_depth + 1)

        if roll < 0.3:  # declaration
            gtype = self.pick(
                ["float", "float", "vec2", "vec3", "vec4", "int",
                 "bool", "mat2", "mat3"]
            )
            name = self.fresh({"float": "f", "int": "i", "bool": "b"}.get(
                gtype, "m" if gtype in _MAT_SIZES else "v"))
            init = self.expr(gtype, depth)
            self.scopes[-1].vars[name] = (gtype, True)
            return [f"{indent}{gtype} {name} = {init};"]

        if roll < 0.55:  # assignment / compound assignment
            stmt = self.gen_assignment(indent, depth)
            if stmt is not None:
                return stmt
            roll = 0.99  # fall through to a declaration-free fallback

        if roll < 0.55 + cfg.p_if * 0.25 and roll >= 0.55:
            cond = self.bool_expr(depth)
            body = self.gen_block(indent + "    ", 2)
            out = [f"{indent}if ({cond}) {{", *body, f"{indent}}}"]
            if self.chance(0.5):
                else_body = self.gen_block(indent + "    ", 2)
                out[-1] = f"{indent}}} else {{"
                out += [*else_body, f"{indent}}}"]
            return out

        if (roll < 0.85 and self.loop_depth < cfg.max_loop_nesting
                and self.chance(cfg.p_loop)):
            return self.gen_loop(indent)

        if roll < 0.92 and self.chance(cfg.p_array):
            return self.gen_array(indent)

        # Harvest an out-scratch variable: the only place such a
        # variable is ever read, and always as a whole statement so the
        # preceding copy-back has sequenced before the read.
        if roll < 0.96 and self.out_scratch and self.chance(0.5):
            name = self.fresh("f")
            src = self.pick(self.out_scratch)
            self.scopes[-1].vars[name] = ("float", True)
            return [f"{indent}float {name} = {src};"]

        # Fallback: effect-free expression statement via a declaration.
        name = self.fresh("f")
        init = self.float_expr(depth)
        self.scopes[-1].vars[name] = ("float", True)
        return [f"{indent}float {name} = {init};"]

    def gen_assignment(self, indent: str, depth: int) -> Optional[List[str]]:
        candidates = []
        for scope in self.scopes:
            for name, (gtype, writable) in scope.vars.items():
                if writable:
                    candidates.append((name, gtype))
        if not candidates:
            return None
        name, gtype = self.pick(candidates)
        roll = self.rng.random()
        if gtype in _VEC_SIZES and roll < 0.35:
            size = _VEC_SIZES[gtype]
            # Swizzle-store with distinct components.
            count = self.rng.randrange(1, size + 1)
            chans = self.rng.sample(range(size), count)
            sw = "".join(_SWIZZLE[c] for c in chans)
            rhs_type = "float" if count == 1 else f"vec{count}"
            return [f"{indent}{name}.{sw} = {self.expr(rhs_type, depth)};"]
        if gtype in _MAT_SIZES and roll < 0.4:
            size = _MAT_SIZES[gtype]
            col = self.rng.randrange(size)
            return [f"{indent}{name}[{col}] = "
                    f"{self.vec_expr(f'vec{size}', depth)};"]
        if gtype in ("float", "int") and roll < 0.6:
            op = self.pick(["+=", "-=", "*="])
            return [f"{indent}{name} {op} {self.expr(gtype, depth)};"]
        if gtype in _VEC_SIZES and roll < 0.6:
            op = self.pick(["+=", "-=", "*="])
            rhs = (self.float_expr(depth) if self.chance(0.4)
                   else self.vec_expr(gtype, depth))
            return [f"{indent}{name} {op} {rhs};"]
        if gtype in ("float", "int") and roll < 0.7:
            return [f"{indent}{name}{self.pick(['++', '--'])};"]
        return [f"{indent}{name} = {self.expr(gtype, depth)};"]

    def gen_loop(self, indent: str) -> List[str]:
        # Appendix-A shape: constant bounds, ++ update, int index.
        var = self.fresh("li")
        bound = self.rng.randrange(2, 6)
        self.loop_depth += 1
        self.scopes.append(_Scope())
        self.scopes[-1].vars[var] = ("int", False)
        body = []
        for __ in range(self.rng.randrange(1, 3)):
            body.extend(self.gen_stmt(indent + "    "))
        if self.chance(0.35):
            kind = self.pick(["break", "continue"])
            cond = self.bool_expr(2)
            body.append(f"{indent}    if ({cond}) {{ {kind}; }}")
        self.scopes.pop()
        self.loop_depth -= 1
        return [
            f"{indent}for (int {var} = 0; {var} < {bound}; {var}++) {{",
            *body,
            f"{indent}}}",
        ]

    def gen_array(self, indent: str) -> List[str]:
        name = self.fresh("a")
        length = self.rng.randrange(2, 5)
        var = self.fresh("li")
        lines = [
            f"{indent}float {name}[{length}];",
            f"{indent}for (int {var} = 0; {var} < {length}; {var}++) {{",
        ]
        self.scopes.append(_Scope())
        self.scopes[-1].vars[var] = ("int", False)
        lines.append(
            f"{indent}    {name}[{var}] = "
            f"float({var}) * {self.flit(0.1, 0.5)} + {self.float_expr(2)};"
        )
        self.scopes.pop()
        lines.append(f"{indent}}}")
        self.scopes[-1].arrays[name] = length
        return lines

    # ==================================================================
    # Top level
    # ==================================================================
    def gen_helper(self) -> List[str]:
        name = self.fresh("fn")
        ret = self.pick(["float", "float", "vec2", "vec3"])
        params: List[Tuple[str, str]] = [
            ("in", self.pick(["float", "vec2", "vec3", "int"]))
            for __ in range(self.rng.randrange(1, 3))
        ]
        if self.chance(0.35):
            params.append(("out", "float"))
        decls = []
        self.scopes.append(_Scope())
        for i, (direction, ptype) in enumerate(params):
            pname = f"p{i}"
            decls.append(f"{direction} {ptype} {pname}"
                         if direction != "in" else f"{ptype} {pname}")
            self.scopes[-1].vars[pname] = (ptype, True)
        saved_scratch = self.out_scratch
        scratch = self.fresh("o")
        self.out_scratch = [scratch]
        body: List[str] = [f"    float {scratch} = 0.0;"]
        for __ in range(self.rng.randrange(1, 3)):
            body.extend(self.gen_stmt("    "))
        body.append(f"    return {self.expr(ret, 2)};")
        self.out_scratch = saved_scratch
        self.scopes.pop()
        self.helpers[name] = (ret, params)
        return [f"{ret} {name}({', '.join(decls)}) {{", *body, "}", ""]

    def generate(self) -> str:
        lines = [_PREAMBLE]
        for __ in range(self.rng.randrange(0, self.config.max_helpers + 1)):
            lines.extend(self.gen_helper())

        lines.append("void main() {")
        self.scopes.append(_Scope())
        scratch = self.fresh("o")
        self.out_scratch = [scratch]
        lines.append(f"    float {scratch} = 0.0;")
        for __ in range(self.rng.randrange(2, self.config.max_block_stmts + 1)):
            lines.extend(self.gen_stmt("    "))
        if self.chance(self.config.p_discard):
            lines.append(
                f"    if ({self.bool_expr(2)}) {{ discard; }}"
            )
        final = self.vec_expr("vec4", self.config.max_expr_depth)
        lines.append(f"    gl_FragColor = clamp({final}, 0.0, 1.0);")
        self.scopes.pop()
        lines.append("}")
        return "\n".join(lines) + "\n"


def generate_program(
    rng: random.Random, config: Optional[GeneratorConfig] = None
) -> str:
    """Generate one random fragment shader (deterministic in ``rng``)."""
    return _ProgramGenerator(rng, config or GeneratorConfig()).generate()
