"""Differential fuzz runner (CLI).

Generates random GLSL ES 1.00 fragment shaders and pushes each one
through the differential oracle (raster pipeline / vectorised AST
interpreter / compiled IR executor / scalar reference interpreter),
comparing outputs bit-exactly.  On divergence the failing program is
shrunk to a minimal reproducer.

``--backend`` picks the execution backends under test: ``ast`` is the
legacy three-way oracle, ``ir`` drives the raster pipeline with the
compiled-IR executor, ``jit`` drives it with the NumPy-source JIT
backend, ``both`` (default) cross-checks paths A-D, and ``all``
cross-checks all five paths (AST pipeline + AST/IR/JIT replays +
scalar reference).

Usage::

    python -m repro.testing.fuzz --n 500 --seed 0 --backend all
    python -m repro.testing.fuzz --n 200 --seed 0 --backend jit
    python -m repro.testing.fuzz --n 50 --seed 3 --inject eq2   # must fail

Exit status 0 means zero divergences (or, with ``--inject``, that the
injected bug *was* caught and shrunk); 1 otherwise.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Optional

from ..glsl.errors import GlslError
from .generator import GeneratorConfig, generate_program
from .oracle import DifferentialResult, inject_eq2_off_by_one, run_differential
from .shrink import shrink_source


def program_rng(seed: int, index: int) -> random.Random:
    """The per-program RNG: deterministic in (seed, index) so any
    failing index can be replayed in isolation."""
    return random.Random(f"{seed}:{index}")


def run_one(
    source: str, *, size: int = 4, quantization: str = "round",
    backend: str = "both",
) -> DifferentialResult:
    return run_differential(
        source, size=size, quantization=quantization, backend=backend
    )


def _still_fails(size: int, quantization: str, backend: str = "both"):
    """Shrink predicate: a candidate 'still fails' when it compiles
    and its differential run diverges."""

    def predicate(candidate: str) -> bool:
        try:
            result = run_one(candidate, size=size,
                             quantization=quantization, backend=backend)
        except (GlslError, ValueError, RuntimeError):
            return False
        return not result.ok

    return predicate


def shrink_failure(
    source: str, *, size: int = 4, quantization: str = "round",
    backend: str = "both",
) -> str:
    return shrink_source(source, _still_fails(size, quantization, backend))


def fuzz(
    n: int,
    seed: int,
    *,
    size: int = 4,
    quantization: str = "round",
    backend: str = "both",
    keep_going: bool = False,
    do_shrink: bool = True,
    progress_every: int = 50,
    p_texture: Optional[float] = None,
    out=sys.stdout,
) -> int:
    """Run ``n`` generated programs; returns the divergence count.

    ``p_texture`` overrides the generator's texture2D emission
    probability (None keeps the GeneratorConfig default)."""
    config = GeneratorConfig()
    if p_texture is not None:
        config.p_texture = p_texture
    divergences = 0
    for i in range(n):
        source = generate_program(program_rng(seed, i), config)
        try:
            result = run_one(source, size=size,
                             quantization=quantization, backend=backend)
        except GlslError as exc:
            # A generated program must always compile and execute: a
            # front-end rejection is itself a harness bug.
            print(f"[{i}] generator produced invalid program: {exc}",
                  file=out)
            print(source, file=out)
            divergences += 1
            if not keep_going:
                return divergences
            continue
        if not result.ok:
            divergences += 1
            print(f"[{i}] DIVERGENCE (seed={seed})", file=out)
            print(result.describe(), file=out)
            if do_shrink:
                reduced = shrink_failure(
                    source, size=size, quantization=quantization,
                    backend=backend,
                )
                lines = reduced.count("\n") + 1
                print(f"--- shrunk reproducer ({lines} lines) ---", file=out)
                print(reduced, file=out)
            else:
                print("--- failing program ---", file=out)
                print(source, file=out)
            if not keep_going:
                return divergences
        if progress_every and (i + 1) % progress_every == 0:
            print(f"  {i + 1}/{n} programs, {divergences} divergences",
                  file=out)
    return divergences


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.fuzz",
        description="Differential conformance fuzzer for the software GPU.",
    )
    parser.add_argument("--n", type=int, default=200,
                        help="number of programs to generate")
    parser.add_argument("--seed", type=int, default=0,
                        help="base RNG seed")
    parser.add_argument("--size", type=int, default=4,
                        help="framebuffer side length in pixels")
    parser.add_argument("--quantization", choices=("round", "floor"),
                        default="round", help="eq. (2) quantisation mode")
    parser.add_argument("--backend",
                        choices=("ast", "ir", "jit", "both", "all"),
                        default="both",
                        help="execution backends under test: 'ast' = "
                             "legacy three-way oracle, 'ir' = pipeline "
                             "driven by the compiled-IR executor, "
                             "'jit' = pipeline driven by the NumPy-source "
                             "JIT backend, 'both' = paths A-D, "
                             "'all' = all five paths cross-checked")
    parser.add_argument("--p-texture", type=float, default=None,
                        help="probability that a vec4 expression node "
                             "becomes a texture2D sample of a standard "
                             "sampler (default: the GeneratorConfig "
                             "value; 0 disables texture generation)")
    parser.add_argument("--inject", choices=("eq2",), default=None,
                        help="deliberately inject a pipeline bug; the "
                             "run then must diverge (self-test)")
    parser.add_argument("--keep-going", action="store_true",
                        help="continue after the first divergence")
    parser.add_argument("--no-shrink", action="store_true",
                        help="print failing programs without shrinking")
    args = parser.parse_args(argv)

    kwargs = dict(
        size=args.size,
        quantization=args.quantization,
        backend=args.backend,
        keep_going=args.keep_going,
        do_shrink=not args.no_shrink,
        p_texture=args.p_texture,
    )
    if args.inject == "eq2":
        with inject_eq2_off_by_one():
            divergences = fuzz(args.n, args.seed, **kwargs)
        if divergences == 0:
            print("FAIL: injected eq. (2) off-by-one was NOT detected")
            return 1
        print(f"ok: injected bug detected ({divergences} divergence(s))")
        return 0

    divergences = fuzz(args.n, args.seed, **kwargs)
    if divergences:
        print(f"FAIL: {divergences} divergence(s) in {args.n} programs")
        return 1
    print(f"ok: {args.n} programs, zero divergences "
          f"(seed={args.seed}, size={args.size}x{args.size})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
