"""Golden shader corpus: known programs with pinned framebuffers.

The fuzzer explores random programs; the corpus pins down the *real*
shaders the project ships — the challenge-(7) copy shader, the §IV
hand-written packing shader from ``examples/raw_gl_sum.py``,
generated GPGPU kernels (identity in every §IV format, saxpy, int
scaling), and a texture-sampling matrix covering the filter/wrap/
completeness legs of ``Texture.sample`` (NEAREST vs LINEAR
magnification, REPEAT/MIRRORED_REPEAT/CLAMP_TO_EDGE wrap, NPOT- and
mipmap-incomplete samplers, the LINEAR weight-0.5 texel-boundary
tie).  Each entry is rendered through the full three-way
differential oracle and, additionally, compared bit-exactly against a
framebuffer stored in ``tests/corpus/``; a change in any of the
lexer, parser, interpreter, rasteriser or quantiser that alters the
output of a known-good program is caught even when the three paths
drift together.

Golden files::

    tests/corpus/<name>.glsl       fragment shader source
    tests/corpus/<name>.expected   "W H" header + one row of RGBA8
                                   hex texels per framebuffer row
    tests/corpus/<name>.ir         optimised linear-IR dump of the
                                   fragment shader (exact float model)

The ``.ir`` dumps pin the *compiler*, not just the end result: an
unintended change anywhere in lowering or the pass pipeline (constant
folding, select conversion, frame elision, CSE, DCE) shows up as a
textual diff against the golden dump even when the rendered output
happens to stay the same.

Regenerate after an intentional behaviour change with::

    python -m repro.testing.corpus --regen
"""

from __future__ import annotations

import argparse
import random
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.codegen.templates import (
    COPY_FRAGMENT_SHADER,
    PASSTHROUGH_VERTEX_SHADER,
    generate_kernel_source,
)
from ..gles2 import enums as gl
from .oracle import (
    STANDARD_VERTEX_SHADER,
    TextureSpec,
    draw_for_capture,
    run_differential,
)

#: All §IV numeric formats a kernel can consume or produce.
KERNEL_FORMATS = (
    "uint8", "int8", "uint16", "int16",
    "uint32", "int32", "float16", "float32",
)

_REPO_ROOT = Path(__file__).resolve().parents[3]
DEFAULT_CORPUS_DIR = _REPO_ROOT / "tests" / "corpus"


@dataclass
class CorpusEntry:
    """One pinned shader plus everything needed to render it."""

    name: str
    fragment: str
    vertex: str = STANDARD_VERTEX_SHADER
    uniforms: Dict[str, object] = field(default_factory=dict)
    #: sampler uniform -> (H, W, 4) uint8 array or TextureSpec
    textures: Dict[str, object] = field(default_factory=dict)
    size: int = 4
    quantization: str = "round"


def _texture(
    name: str, size: int = 4, lo: int = 0, hi: int = 255,
    height: Optional[int] = None,
) -> np.ndarray:
    """Deterministic RGBA8 texture derived from the entry name.

    ``size`` is the width; ``height`` defaults to ``size`` (square)."""
    h = size if height is None else height
    rng = random.Random(f"corpus:{name}")
    data = [rng.randrange(lo, hi + 1) for __ in range(size * h * 4)]
    return np.array(data, dtype=np.uint8).reshape(h, size, 4)


def _tex_matrix_fragment(coord_expr: str) -> str:
    """Minimal sampling shader for the filter/wrap matrix entries."""
    return (
        "precision highp float;\n"
        "varying vec2 v_uv;\n"
        "uniform sampler2D u_t;\n"
        "void main() {\n"
        f"    gl_FragColor = texture2D(u_t, {coord_expr});\n"
        "}\n"
    )


def _example_fragment(filename: str) -> Optional[str]:
    """Extract ``FRAGMENT_SHADER`` from an example script's source.

    Returns None when the examples directory is unavailable (e.g. an
    installed package); the corresponding entry is then skipped."""
    path = _REPO_ROOT / "examples" / filename
    if not path.is_file():
        return None
    match = re.search(
        r'^FRAGMENT_SHADER = """(.*?)"""',
        path.read_text(),
        re.MULTILINE | re.DOTALL,
    )
    return match.group(1) if match else None


def _kernel_entry(
    name: str,
    inputs: List[Tuple[str, str]],
    output_format: str,
    body: str,
    uniforms: List[Tuple[str, str]] = (),
    uniform_values: Optional[Dict[str, object]] = None,
    size: int = 4,
) -> CorpusEntry:
    source = generate_kernel_source(
        name, inputs, output_format, body, uniforms=list(uniforms)
    )
    values: Dict[str, object] = {"u_out_size": (float(size), float(size))}
    textures: Dict[str, np.ndarray] = {}
    for iname in source.input_names:
        values[source.size_uniforms[iname]] = (float(size), float(size))
        textures[source.sampler_uniforms[iname]] = _texture(
            f"{name}:{iname}", size
        )
    values.update(uniform_values or {})
    return CorpusEntry(
        name=name,
        fragment=source.fragment,
        vertex=source.vertex,
        uniforms=values,
        textures=textures,
        size=size,
    )


def build_entries() -> List[CorpusEntry]:
    """Assemble the corpus.  Deterministic: same entries every call."""
    entries: List[CorpusEntry] = []

    # Challenge (7) readback path: texture -> framebuffer copy.
    entries.append(
        CorpusEntry(
            name="copy",
            fragment=COPY_FRAGMENT_SHADER,
            vertex=PASSTHROUGH_VERTEX_SHADER,
            textures={"u_source": _texture("copy:u_source")},
        )
    )

    # The hand-written §IV int32 packing shader from the raw-GL example.
    # Texel bytes are kept small so a+b stays far from int32 overflow.
    raw_sum = _example_fragment("raw_gl_sum.py")
    if raw_sum is not None:
        entries.append(
            CorpusEntry(
                name="raw_gl_sum",
                fragment=raw_sum,
                vertex=PASSTHROUGH_VERTEX_SHADER,
                textures={
                    "u_a": _texture("raw_gl_sum:u_a", hi=100),
                    "u_b": _texture("raw_gl_sum:u_b", hi=100),
                },
            )
        )

    # Identity kernel in every §IV format: unpack(pack) round-trips
    # through the full generated fetch/pack machinery.
    for fmt in KERNEL_FORMATS:
        entries.append(
            _kernel_entry(
                f"identity_{fmt}", [("x", fmt)], fmt, "result = x;"
            )
        )

    # Two small arithmetic kernels.
    entries.append(
        _kernel_entry(
            "saxpy",
            [("x", "float32"), ("y", "float32")],
            "float32",
            "result = u_alpha * x + y;",
            uniforms=[("u_alpha", "float")],
            uniform_values={"u_alpha": 1.5},
        )
    )
    entries.append(
        _kernel_entry(
            "scale_int32", [("x", "int32")], "int32", "result = x * 3.0;"
        )
    )

    # ------------------------------------------------------------------
    # Texture-sampling matrix: filter x wrap x completeness.  Each entry
    # pins one leg of the Texture.sample decision tree — the same code
    # all five oracle paths (and the JIT's gather-disqualification
    # fallback) funnel through.
    # ------------------------------------------------------------------
    # NEAREST mag + CLAMP_TO_EDGE on coordinates straddling [0,1]: the
    # exact configuration the JIT gather fast path requires.
    entries.append(
        CorpusEntry(
            name="tex_nearest_clamp",
            fragment=_tex_matrix_fragment("v_uv * 2.0 - 0.5"),
            textures={
                "u_t": TextureSpec(data=_texture("tex_nearest_clamp:u_t")),
            },
        )
    )
    # LINEAR magnification: bilinear blend of a 2x2 footprint.
    entries.append(
        CorpusEntry(
            name="tex_linear_mag",
            fragment=_tex_matrix_fragment("v_uv"),
            textures={
                "u_t": TextureSpec(
                    data=_texture("tex_linear_mag:u_t"),
                    min_filter=gl.GL_LINEAR,
                    mag_filter=gl.GL_LINEAR,
                ),
            },
        )
    )
    # LINEAR at an exact texel boundary: fx == fy == 0.5, the blend
    # weights tie and all four texels contribute a quarter each.
    entries.append(
        CorpusEntry(
            name="tex_linear_boundary",
            fragment=_tex_matrix_fragment("vec2(0.5, 0.5)"),
            textures={
                "u_t": TextureSpec(
                    data=_texture("tex_linear_boundary:u_t"),
                    min_filter=gl.GL_LINEAR,
                    mag_filter=gl.GL_LINEAR,
                ),
            },
        )
    )
    # REPEAT and MIRRORED_REPEAT wrap arithmetic on out-of-range
    # coordinates (v_uv * 3 - 1 spans [-0.625, 1.625] at 4x4).
    entries.append(
        CorpusEntry(
            name="tex_wrap_repeat",
            fragment=_tex_matrix_fragment("v_uv * 3.0 - 1.0"),
            textures={
                "u_t": TextureSpec(
                    data=_texture("tex_wrap_repeat:u_t"),
                    wrap_s=gl.GL_REPEAT,
                    wrap_t=gl.GL_REPEAT,
                ),
            },
        )
    )
    entries.append(
        CorpusEntry(
            name="tex_wrap_mirror",
            fragment=_tex_matrix_fragment("v_uv * 3.0 - 1.0"),
            textures={
                "u_t": TextureSpec(
                    data=_texture("tex_wrap_mirror:u_t"),
                    wrap_s=gl.GL_MIRRORED_REPEAT,
                    wrap_t=gl.GL_MIRRORED_REPEAT,
                ),
            },
        )
    )
    # Incompleteness legs: both must sample as opaque black (0,0,0,1).
    # NPOT dimensions with a non-CLAMP wrap (ES 2 §3.8.2)...
    entries.append(
        CorpusEntry(
            name="tex_npot_incomplete",
            fragment=_tex_matrix_fragment("v_uv"),
            textures={
                "u_t": TextureSpec(
                    data=_texture("tex_npot_incomplete:u_t", size=5, height=3),
                    wrap_s=gl.GL_REPEAT,
                    wrap_t=gl.GL_REPEAT,
                ),
            },
        )
    )
    # ...and the default GL_NEAREST_MIPMAP_LINEAR min filter with no
    # mipmap chain uploaded (min_filter=None keeps the GL default).
    entries.append(
        CorpusEntry(
            name="tex_mipmap_incomplete",
            fragment=_tex_matrix_fragment("v_uv"),
            textures={
                "u_t": TextureSpec(
                    data=_texture("tex_mipmap_incomplete:u_t"),
                    min_filter=None,
                ),
            },
        )
    )
    return entries


# ----------------------------------------------------------------------
# Golden-file serialisation
# ----------------------------------------------------------------------
def format_framebuffer(framebuffer: np.ndarray) -> str:
    """Text form: 'W H' header, then one row of hex RGBA8 per line
    (row 0 first, i.e. the bottom scanline in GL convention)."""
    h, w, __ = framebuffer.shape
    lines = [f"{w} {h}"]
    for y in range(h):
        lines.append(
            " ".join(
                "".join(f"{int(b):02x}" for b in framebuffer[y, x])
                for x in range(w)
            )
        )
    return "\n".join(lines) + "\n"


def parse_framebuffer(text: str) -> np.ndarray:
    lines = [ln for ln in text.strip().splitlines() if ln.strip()]
    w, h = (int(tok) for tok in lines[0].split())
    out = np.zeros((h, w, 4), dtype=np.uint8)
    for y, line in enumerate(lines[1 : 1 + h]):
        for x, texel in enumerate(line.split()):
            out[y, x] = [int(texel[i : i + 2], 16) for i in (0, 2, 4, 6)]
    return out


def render_entry(entry: CorpusEntry) -> np.ndarray:
    """Render one entry through the pipeline and return its RGBA8
    framebuffer."""
    framebuffer, __ = draw_for_capture(
        entry.fragment,
        size=entry.size,
        quantization=entry.quantization,
        uniforms=entry.uniforms,
        textures=entry.textures,
        vertex_source=entry.vertex,
    )
    return framebuffer


def ir_dump_text(entry: CorpusEntry) -> str:
    """Compile the entry's fragment shader to optimised linear IR and
    return the deterministic textual dump (exact float model, the
    compile default, so dumps are independent of device precision)."""
    from ..glsl.interp import compile_shader
    from ..glsl.ir import compile_ir, dump_ir

    checked = compile_shader(entry.fragment, "fragment")
    return dump_ir(compile_ir(checked))


def check_entry(entry: CorpusEntry):
    """Run one entry through the three-way differential oracle."""
    return run_differential(
        entry.fragment,
        size=entry.size,
        quantization=entry.quantization,
        uniforms=entry.uniforms,
        textures=entry.textures,
        vertex_source=entry.vertex,
    )


def regenerate(corpus_dir: Path = DEFAULT_CORPUS_DIR) -> List[str]:
    """(Re)write all golden files.  Returns the entry names written."""
    corpus_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for entry in build_entries():
        (corpus_dir / f"{entry.name}.glsl").write_text(entry.fragment)
        (corpus_dir / f"{entry.name}.expected").write_text(
            format_framebuffer(render_entry(entry))
        )
        (corpus_dir / f"{entry.name}.ir").write_text(ir_dump_text(entry))
        written.append(entry.name)
    return written


def verify(corpus_dir: Path = DEFAULT_CORPUS_DIR) -> List[str]:
    """Compare every entry against its golden files; returns a list of
    human-readable failure descriptions (empty = all good)."""
    failures: List[str] = []
    for entry in build_entries():
        glsl_path = corpus_dir / f"{entry.name}.glsl"
        expected_path = corpus_dir / f"{entry.name}.expected"
        if not glsl_path.is_file() or not expected_path.is_file():
            failures.append(f"{entry.name}: golden files missing "
                            f"(run --regen)")
            continue
        if glsl_path.read_text() != entry.fragment:
            failures.append(
                f"{entry.name}: stored source differs from the entry "
                f"builder (run --regen if intentional)"
            )
            continue
        ir_path = corpus_dir / f"{entry.name}.ir"
        if not ir_path.is_file():
            failures.append(f"{entry.name}: golden IR dump missing "
                            f"(run --regen)")
            continue
        if ir_path.read_text() != ir_dump_text(entry):
            failures.append(
                f"{entry.name}: compiled IR differs from golden dump "
                f"(run --regen if intentional)"
            )
            continue
        result = check_entry(entry)
        if not result.ok:
            failures.append(f"{entry.name}: differential oracle failed:\n"
                            + result.describe())
            continue
        expected = parse_framebuffer(expected_path.read_text())
        if not np.array_equal(result.framebuffer, expected):
            failures.append(
                f"{entry.name}: framebuffer differs from golden "
                f"(run --regen if intentional)"
            )
    return failures


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.corpus",
        description="Verify or regenerate the golden shader corpus.",
    )
    parser.add_argument("--regen", action="store_true",
                        help="rewrite tests/corpus/ golden files")
    parser.add_argument("--dir", type=Path, default=DEFAULT_CORPUS_DIR,
                        help="corpus directory")
    args = parser.parse_args(argv)
    if args.regen:
        for name in regenerate(args.dir):
            print(f"wrote {name}")
        return 0
    failures = verify(args.dir)
    for failure in failures:
        print(failure)
    if failures:
        print(f"FAIL: {len(failures)} corpus entr"
              f"{'y' if len(failures) == 1 else 'ies'} diverged")
        return 1
    print(f"ok: {len(build_entries())} corpus entries verified")
    return 0


if __name__ == "__main__":
    sys.exit(main())
