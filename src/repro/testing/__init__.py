"""Differential conformance harness for the software GPU.

The correctness net behind every refactor of ``repro.glsl`` /
``repro.gles2``:

* :mod:`repro.testing.generator` — random, type-correct GLSL ES 1.00
  fragment shaders (arithmetic, swizzles, matrices, control flow under
  the Appendix-A loop restrictions, the builtin library).
* :mod:`repro.testing.oracle` — runs one shader through the full
  raster pipeline, the vectorised interpreter, and the independent
  scalar reference interpreter, comparing RGBA8 outputs bit-exactly.
* :mod:`repro.testing.shrink` — greedy AST-level reduction of failing
  programs to minimal reproducers (via ``glsl.printer``).
* :mod:`repro.testing.fuzz` — the CLI differential runner
  (``python -m repro.testing.fuzz --n 500 --seed 0``).
* :mod:`repro.testing.corpus` — golden corpus management for
  ``tests/corpus/*.glsl`` + expected framebuffers.
* :mod:`repro.testing.faults` — deterministic fault injection
  (``REPRO_FAULTS`` / :func:`~repro.testing.faults.inject_faults`)
  for the runtime's degraded paths.
"""

__all__ = [
    "GeneratorConfig",
    "generate_program",
    "DifferentialResult",
    "run_differential",
    "reference_quantize",
    "inject_eq2_off_by_one",
    "shrink_source",
    "CorpusEntry",
    "build_entries",
    "inject_faults",
]

#: Public name -> defining submodule, resolved lazily.  Lazy for two
#: reasons: importing .corpus eagerly would make ``python -m
#: repro.testing.corpus`` warn about the module already being in
#: sys.modules before runpy executes it, and the *runtime* modules
#: (core.cache, gles2.parallel, glsl.jit) import
#: ``repro.testing.faults`` — a stdlib-only leaf — which must not drag
#: the whole fuzzing harness into every cold start and pool worker.
_LAZY = {
    "GeneratorConfig": "generator",
    "generate_program": "generator",
    "DifferentialResult": "oracle",
    "run_differential": "oracle",
    "reference_quantize": "oracle",
    "inject_eq2_off_by_one": "oracle",
    "shrink_source": "shrink",
    "CorpusEntry": "corpus",
    "build_entries": "corpus",
    "inject_faults": "faults",
}


def __getattr__(name):
    modname = _LAZY.get(name)
    if modname is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(f".{modname}", __name__), name)
