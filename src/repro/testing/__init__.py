"""Differential conformance harness for the software GPU.

The correctness net behind every refactor of ``repro.glsl`` /
``repro.gles2``:

* :mod:`repro.testing.generator` — random, type-correct GLSL ES 1.00
  fragment shaders (arithmetic, swizzles, matrices, control flow under
  the Appendix-A loop restrictions, the builtin library).
* :mod:`repro.testing.oracle` — runs one shader through the full
  raster pipeline, the vectorised interpreter, and the independent
  scalar reference interpreter, comparing RGBA8 outputs bit-exactly.
* :mod:`repro.testing.shrink` — greedy AST-level reduction of failing
  programs to minimal reproducers (via ``glsl.printer``).
* :mod:`repro.testing.fuzz` — the CLI differential runner
  (``python -m repro.testing.fuzz --n 500 --seed 0``).
* :mod:`repro.testing.corpus` — golden corpus management for
  ``tests/corpus/*.glsl`` + expected framebuffers.
"""

from .generator import GeneratorConfig, generate_program
from .oracle import (
    DifferentialResult,
    inject_eq2_off_by_one,
    reference_quantize,
    run_differential,
)
from .shrink import shrink_source

__all__ = [
    "GeneratorConfig",
    "generate_program",
    "DifferentialResult",
    "run_differential",
    "reference_quantize",
    "inject_eq2_off_by_one",
    "shrink_source",
    "CorpusEntry",
    "build_entries",
]


def __getattr__(name):
    # Lazy: importing .corpus here eagerly would make
    # ``python -m repro.testing.corpus`` warn about the module already
    # being in sys.modules before runpy executes it.
    if name in ("CorpusEntry", "build_entries"):
        from . import corpus

        return getattr(corpus, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
