"""``repro.testing.faults`` — deterministic fault injection for the
degraded paths.

The paper's platform is a *flaky* one: mobile drivers crash, compiles
fail, storage fills up and slows down.  The repro's answer to each of
those is a fallback path — pool death falls back to in-process
shading, a corrupt disk-cache entry recompiles, a failed fusion
replays eagerly — and those paths must be exercised, counted, and
bit-identical to the healthy ones, not merely believed to work.  This
module is the lever that forces them to run.

A **fault site** is a named point in the runtime that asks
:func:`fire` whether to misbehave right now.  The registered sites:

===================  ==================================================
``worker_crash``     a :mod:`repro.gles2.parallel` worker process dies
                     mid-chunk (``os._exit`` → ``BrokenProcessPool``)
``worker_hang``      a worker sleeps past the per-draw pool timeout
``worker_garble``    a worker returns a malformed chunk result
``cache_corrupt``    a :mod:`repro.core.cache` entry reads back as
                     garbage (validation fails, entry dropped)
``cache_enospc``     a cache publish fails with ``ENOSPC``
``cache_lock``       the LRU trim's advisory lock is contended
``fuse_fail``        :func:`repro.core.codegen.fuse.compose_chain_cached`
                     raises (graph replay falls back to eager)
``jit_error``        JIT codegen fails (draw falls back to the IR
                     executor)
===================  ==================================================

Firing is **deterministic**: site *i*'s *n*-th query fires iff
``sha256(seed:site:n)`` maps below the site's rate.  Same seed, same
query sequence → same faults, so a failing fault run reproduces
exactly.  Two front ends share the machinery:

* the ``REPRO_FAULTS`` environment knob —
  ``REPRO_FAULTS="worker_crash:0.1,cache_corrupt:0.1"`` with
  ``REPRO_FAULTS_SEED=<int>`` (CI runs whole suites this way); an
  optional ``@N`` suffix (``site:1@2``) caps a site at N total fires;
* the :func:`inject_faults` context manager for tests —
  ``with inject_faults(worker_crash=1.0):`` — which overrides any
  environment plan for the dynamic extent of the block.

:func:`suppress` masks both for tests that pin healthy-path behaviour
(exact cache-hit counts, pool-usage assertions) so they stay valid
inside a fault-injected CI run.

The module is dependency-free (stdlib only) and safe to import from
any layer; runtime call sites import it lazily so the engine stays out
of cold-start paths.  ``REPRO_DEBUG_FAULTS=1`` additionally makes the
hardened ``except`` blocks report (to stderr) every exception they
swallow, via :func:`note_swallowed`.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import sys
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "SITES",
    "FaultPlan",
    "active_plan",
    "encode_active",
    "fire",
    "hang_seconds",
    "inject_faults",
    "install_encoded",
    "note_swallowed",
    "parse_spec",
    "reset_stats",
    "snapshot",
    "suppress",
]

#: Every fault site the runtime consults.  Unknown names are a
#: ``ValueError`` from :func:`inject_faults` (typo protection) and a
#: one-shot warning when they come from the environment.
SITES = frozenset({
    "worker_crash",
    "worker_hang",
    "worker_garble",
    "cache_corrupt",
    "cache_enospc",
    "cache_lock",
    "fuse_fail",
    "jit_error",
})

#: Sites evaluated inside pool worker processes.  The leader ships the
#: active plan in every worker plan payload so overrides made after the
#: pool forked (and :func:`suppress` blocks) still govern the workers.
WORKER_SITES = frozenset({"worker_crash", "worker_hang", "worker_garble"})

#: Process-lifetime tally of fires per site (queries that returned
#: True).  CI's fault leg asserts these are non-zero; tests read them
#: through :func:`snapshot`.
fault_fires: Dict[str, int] = {}

#: Process-lifetime tally of queries per site (fired or not) — proves
#: a site is actually wired into the runtime.
fault_queries: Dict[str, int] = {}


def reset_stats() -> None:
    fault_fires.clear()
    fault_queries.clear()


def snapshot() -> Dict[str, Dict[str, int]]:
    return {"fires": dict(fault_fires), "queries": dict(fault_queries)}


def _u01(seed: int, site: str, n: int) -> float:
    """The deterministic uniform variate for one site query."""
    digest = hashlib.sha256(f"{seed}:{site}:{n}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class FaultPlan:
    """One resolved injection configuration: per-site rates (with
    optional total-fire caps), a seed, and the per-site query counters
    that make firing deterministic within a process."""

    __slots__ = ("specs", "seed", "hang_seconds", "_counts", "fired")

    def __init__(
        self,
        specs: Dict[str, Tuple[float, Optional[int]]],
        seed: int = 0,
        hang_seconds: float = 2.0,
    ):
        self.specs = dict(specs)
        self.seed = int(seed)
        self.hang_seconds = float(hang_seconds)
        self._counts: Dict[str, int] = {}
        self.fired: Dict[str, int] = {}

    def should_fire(self, site: str) -> bool:
        fault_queries[site] = fault_queries.get(site, 0) + 1
        spec = self.specs.get(site)
        if spec is None:
            return False
        rate, max_fires = spec
        if rate <= 0.0:
            return False
        if max_fires is not None and self.fired.get(site, 0) >= max_fires:
            return False
        n = self._counts.get(site, 0)
        self._counts[site] = n + 1
        if _u01(self.seed, site, n) >= rate:
            return False
        self.fired[site] = self.fired.get(site, 0) + 1
        fault_fires[site] = fault_fires.get(site, 0) + 1
        if os.environ.get("REPRO_DEBUG_FAULTS") == "1":
            print(
                f"[repro.faults] injecting {site} "
                f"(query {n}, seed {self.seed})",
                file=sys.stderr,
            )
        return True

    def encode(self) -> Dict[str, object]:
        """Picklable form for shipping to pool workers (only the
        worker-evaluated sites ride along)."""
        return {
            "specs": sorted(
                (site, rate, max_fires)
                for site, (rate, max_fires) in self.specs.items()
                if site in WORKER_SITES
            ),
            "seed": self.seed,
            "hang_seconds": self.hang_seconds,
        }


def parse_spec(text: str) -> Dict[str, Tuple[float, Optional[int]]]:
    """Parse ``"site:rate[@max],site:rate"`` into a spec dict.
    Raises ``ValueError`` on malformed entries or unknown sites."""
    specs: Dict[str, Tuple[float, Optional[int]]] = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        site, sep, rest = item.partition(":")
        site = site.strip()
        if site not in SITES:
            raise ValueError(
                f"unknown fault site '{site}' "
                f"(known: {', '.join(sorted(SITES))})"
            )
        rate_text, at, max_text = rest.partition("@")
        rate = float(rate_text) if sep and rate_text.strip() else 1.0
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate for '{site}' must be in [0, 1]")
        max_fires = int(max_text) if at else None
        specs[site] = (rate, max_fires)
    return specs


# ----------------------------------------------------------------------
# Plan resolution: context-manager override > environment > nothing.
# ----------------------------------------------------------------------
_OVERRIDE: Optional[FaultPlan] = None
_SUPPRESSED = False
#: Environment plan memo, keyed on the raw knob strings so tests that
#: monkeypatch the environment get a fresh plan while steady state
#: keeps its query counters across calls.
_ENV_PLAN: Tuple[Optional[Tuple[str, str]], Optional[FaultPlan]] = (None, None)
_ENV_WARNED: set = set()


def _env_plan() -> Optional[FaultPlan]:
    global _ENV_PLAN
    text = os.environ.get("REPRO_FAULTS", "")
    if not text:
        return None
    seed_text = os.environ.get("REPRO_FAULTS_SEED", "0")
    key = (text, seed_text)
    cached_key, cached_plan = _ENV_PLAN
    if cached_key == key:
        return cached_plan
    try:
        specs = parse_spec(text)
        seed = int(seed_text)
    except ValueError as exc:
        if key not in _ENV_WARNED:
            _ENV_WARNED.add(key)
            print(
                f"[repro.faults] ignoring REPRO_FAULTS={text!r}: {exc}",
                file=sys.stderr,
            )
        _ENV_PLAN = (key, None)
        return None
    plan = FaultPlan(specs, seed=seed) if specs else None
    _ENV_PLAN = (key, plan)
    return plan


def active_plan() -> Optional[FaultPlan]:
    """The plan governing this process right now, or None."""
    if _SUPPRESSED:
        return None
    if _OVERRIDE is not None:
        return _OVERRIDE
    return _env_plan()


def fire(site: str) -> bool:
    """Should the named site misbehave on this query?  The single
    entry point the runtime calls; a no-plan process answers False in
    two dict lookups."""
    plan = active_plan()
    if plan is None:
        return False
    return plan.should_fire(site)


def hang_seconds() -> float:
    """How long an injected ``worker_hang`` sleeps (bounded so stray
    workers exit promptly after the leader times out and moves on)."""
    plan = active_plan()
    return plan.hang_seconds if plan is not None else 2.0


@contextlib.contextmanager
def inject_faults(
    spec: Optional[str] = None,
    *,
    seed: int = 0,
    hang_seconds: float = 2.0,
    **rates: float,
) -> Iterator[FaultPlan]:
    """Install a fault plan for the dynamic extent of the block.

    ``spec`` is the same mini-language as ``REPRO_FAULTS``; keyword
    arguments name sites directly (``inject_faults(worker_crash=1.0)``)
    and may carry ``(rate, max_fires)`` tuples.  Yields the plan so
    tests can read ``plan.fired``.
    """
    specs = parse_spec(spec) if spec else {}
    for site, value in rates.items():
        if site not in SITES:
            raise ValueError(f"unknown fault site '{site}'")
        if isinstance(value, tuple):
            rate, max_fires = value
        else:
            rate, max_fires = float(value), None
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate for '{site}' must be in [0, 1]")
        specs[site] = (rate, max_fires)
    plan = FaultPlan(specs, seed=seed, hang_seconds=hang_seconds)
    global _OVERRIDE
    previous = _OVERRIDE
    _OVERRIDE = plan
    try:
        yield plan
    finally:
        _OVERRIDE = previous


@contextlib.contextmanager
def suppress() -> Iterator[None]:
    """Mask every fault source (override *and* environment) — for
    tests that pin exact healthy-path behaviour and must stay valid
    inside a fault-injected CI run."""
    global _SUPPRESSED
    previous = _SUPPRESSED
    _SUPPRESSED = True
    try:
        yield
    finally:
        _SUPPRESSED = previous


# ----------------------------------------------------------------------
# Worker-side installation (repro.gles2.parallel ships plans by value)
# ----------------------------------------------------------------------
#: The encoded plans this worker has installed, keyed on their
#: canonical encoding so counter state survives across chunks of the
#: same plan (re-installing per chunk would restart the deterministic
#: sequence every dispatch).
_INSTALLED: Dict[Tuple, FaultPlan] = {}


def encode_active() -> Optional[Dict[str, object]]:
    """The active plan's worker-shippable encoding — None when no plan
    is active or it touches no worker site (workers then inject
    nothing, even if their inherited environment says otherwise: the
    leader's view wins)."""
    plan = active_plan()
    if plan is None:
        return None
    encoded = plan.encode()
    return encoded if encoded["specs"] else None


def install_encoded(encoded: Optional[Dict[str, object]]) -> None:
    """Adopt a leader-shipped plan in a worker process (None masks all
    injection, mirroring the leader's :func:`suppress`)."""
    global _OVERRIDE, _SUPPRESSED
    if encoded is None:
        _OVERRIDE = None
        _SUPPRESSED = True
        return
    _SUPPRESSED = False
    key = (
        tuple(tuple(s) for s in encoded["specs"]),
        encoded["seed"],
        encoded["hang_seconds"],
    )
    plan = _INSTALLED.get(key)
    if plan is None:
        specs = {
            site: (rate, max_fires)
            for site, rate, max_fires in encoded["specs"]
        }
        plan = FaultPlan(
            specs,
            seed=int(encoded["seed"]),
            hang_seconds=float(encoded["hang_seconds"]),
        )
        _INSTALLED[key] = plan
    _OVERRIDE = plan


def note_swallowed(site: str, exc: BaseException) -> None:
    """Report an exception a hardened fallback path absorbed.  Silent
    unless ``REPRO_DEBUG_FAULTS=1`` — degraded paths must not spam —
    but always available, so 'what did that bare except hide?' has a
    one-knob answer."""
    if os.environ.get("REPRO_DEBUG_FAULTS") == "1":
        print(
            f"[repro.faults] {site}: absorbed "
            f"{type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
