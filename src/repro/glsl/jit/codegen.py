"""NumPy-source code generator for compiled shader IR.

:func:`generate` walks a :class:`~repro.glsl.ir.nodes.CompiledProgram`
(the *optimised* structured IR) and emits the source of one Python
function that executes the whole shader body as straight-line
vectorised numpy code — no per-instruction dispatch, no Value
wrappers, no mask bookkeeping for code that never diverges.  The
source is materialised with ``compile()``/``exec`` and cached per
(program, wide-global set), so steady-state kernel relaunches run zero
interpreter instructions.

Exactness contract
------------------
The generated code must be **bit-identical** to the interpreter /
IR-executor pair for every observable effect (global stores, discard
mask, raised limit errors).  Three structural facts make this
tractable:

* Pure value ops compute full-width results regardless of the
  execution mask — masks only gate *stores* and control skips.  A
  divergent ``if`` can therefore be lowered to both branches executed
  unconditionally with mask-blended stores, with no value change.
* Batch-width differences are unobservable: a width-1 (uniform) array
  and its n-lane broadcast are interchangeable under numpy
  broadcasting, and every consumer (stores, blends, the pipeline's
  framebuffer write) broadcasts.  The generator exploits this by never
  widening uniform registers — that is the uniform-lane optimisation.
* The no-in-place invariant (stores rebind ``Value.data``, arrays are
  never mutated) makes aliasing free: ``move``/``copy``/full-mask
  stores become plain Python rebinds.

Lowering decisions (ast/ir/jit decision table lives in
docs/architecture.md):

===============  ====================================================
construct        lowering
===============  ====================================================
if, uniform cond  native ``if bool(c[0]):`` (no mask traffic)
if, varying       both branches under split masks, masked stores
loop, uniform     native ``while`` (requires full-mask context and a
                  kill-free body) — the sgemm hot path
loop, divergent   masked ``while`` with per-lane break/continue/exit
                  channels and an active-lane early exit
?: / && / ||      mask-blended straight-line ``np.where`` / boolean
                  algebra (the interpreter's exact combine formulas)
function region   inlined (only when it contains no ``return``)
===============  ====================================================

Anything outside this subset — user functions with ``return``, struct
values, multi-step or struct-field l-value paths — raises
:class:`JitUnsupported`; the executor then falls back to the
:class:`~repro.glsl.ir.executor.IRExecutor` and counts the event in
``repro.glsl.jit.jit_fallbacks``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Set

import numpy as np

from ..errors import GlslLimitError
from ..types import BaseType, GlslType, TypeKind
from ..values import INT_DTYPE, masked_blend, zeros_for
from ..ir.nodes import (
    Block,
    CompiledProgram,
    CondRegion,
    FuncRegion,
    IfRegion,
    Instr,
    LoopRegion,
    ScRegion,
)
from .uniform import (
    UniformInfo,
    _block_has_op,
    block_has_kill,
    block_has_return,
    infer_uniform,
)


class JitUnsupported(Exception):
    """The program uses a construct outside the JIT subset."""


_COMPARE_SYMBOL = {"<": "<", ">": ">", "<=": "<=", ">=": ">="}

#: texture dispatch codes for the _tex helper
_TEX_KIND = {"texture2DProj3": 1, "texture2DProj4": 2, "textureCube": 3}

#: Texture-gather fast path master switch.  On by default; the
#: REPRO_TEXTURE_GATHER env var ("0" disables) sets the process
#: default and set_gather_enabled flips it at runtime (tests, A/B
#: benchmarking).  The flag is read at *generation* time: flipping it
#: produces a distinct cached function (see _jit_function's cache
#: key), and worker processes inherit whatever the leader generated
#: because they receive the already-emitted source.
_GATHER_ENABLED = os.environ.get("REPRO_TEXTURE_GATHER", "1") != "0"


def gather_enabled() -> bool:
    return _GATHER_ENABLED


def set_gather_enabled(enabled: bool) -> bool:
    """Set the gather flag; returns the previous value."""
    global _GATHER_ENABLED
    previous = _GATHER_ENABLED
    _GATHER_ENABLED = bool(enabled)
    return previous


def _ndim(gtype: GlslType) -> int:
    """Static ndim of a value's batched data array."""
    if gtype.kind == TypeKind.SCALAR:
        return 1
    if gtype.kind == TypeKind.VECTOR:
        return 2
    if gtype.kind == TypeKind.MATRIX:
        return 3
    if gtype.kind == TypeKind.ARRAY:
        return 1 + _ndim(gtype.element)
    raise JitUnsupported(f"no array layout for {gtype}")


def _has_struct(gtype: GlslType) -> bool:
    if gtype.is_struct():
        return True
    if gtype.kind == TypeKind.ARRAY:
        return _has_struct(gtype.element)
    return False


def _frame_return_count(block) -> int:
    """Count `return` instrs belonging to *this* activation frame —
    recursing into control regions but not nested function frames."""
    if block is None:
        return 0
    count = 0
    for item in block.items:
        if isinstance(item, Instr):
            count += item.op == "return"
        elif isinstance(item, IfRegion):
            count += _frame_return_count(item.then_block)
            count += _frame_return_count(item.else_block)
        elif isinstance(item, LoopRegion):
            count += _frame_return_count(item.cond_block)
            count += _frame_return_count(item.body_block)
            count += _frame_return_count(item.update_block)
        elif isinstance(item, CondRegion):
            count += _frame_return_count(item.true_block)
            count += _frame_return_count(item.false_block)
        elif isinstance(item, ScRegion):
            count += _frame_return_count(item.rhs_block)
    return count


# ======================================================================
# Runtime helpers (closed over the float model)
# ======================================================================
def make_helpers(fmodel) -> Dict[str, object]:
    """Small runtime support functions shared by all generated code for
    one float model.  Each replicates the data-level semantics of the
    matching interpreter path exactly (see interp.py)."""
    DT = fmodel.dtype
    quantize = fmodel.quantize

    def _index(data, idx):
        # Interpreter._index_value, non-struct path.
        n = max(data.shape[0], idx.shape[0])
        if data.shape[0] != n:
            data = np.broadcast_to(data, (n,) + data.shape[1:])
        if idx.shape[0] != n:
            idx = np.broadcast_to(idx, (n,))
        idx = np.minimum(np.maximum(idx, 0), data.shape[1] - 1)
        if np.all(idx == idx.flat[0]):
            return data[:, int(idx.flat[0])].copy()
        expand = idx.reshape((n,) + (1,) * (data.ndim - 1))
        expand = np.broadcast_to(expand, (n, 1) + data.shape[2:])
        return np.take_along_axis(data, expand, axis=1)[:, 0]

    def _st(old, new, mask):
        # values.assign_masked, data level.
        out = masked_blend(old, new, mask)
        if out.dtype != old.dtype:
            out = out.astype(old.dtype)
        return out

    def _swz_store(base, indices, value, mask):
        # _SwizzleRef.write: widen, copy, per-component where.
        n = max(base.shape[0], value.shape[0],
                1 if mask is None else mask.shape[0])
        if base.shape[0] != n:
            base = np.broadcast_to(base, (n,) + base.shape[1:])
        data = base.copy()
        inc = value
        if inc.shape[0] != n:
            inc = np.broadcast_to(inc, (n,) + inc.shape[1:])
        if mask is None:
            # Full-mask store: straight column assignment, no blend.
            if len(indices) == 1:
                data[:, indices[0]] = inc
            else:
                for slot, component in enumerate(indices):
                    data[:, component] = inc[:, slot]
            return data
        if len(indices) == 1:
            col = data[:, indices[0]]
            data[:, indices[0]] = np.where(mask, inc, col)
        else:
            for slot, component in enumerate(indices):
                col = data[:, component]
                data[:, component] = np.where(mask, inc[:, slot], col)
        return data

    def _swz_put(base, indices, value):
        # In-place variant of the full-mask _swz_store for arrays the
        # generated code exclusively owns (fresh unaliased copies).
        if value.shape[0] > base.shape[0]:
            return _swz_store(base, indices, value, None)
        if len(indices) == 1:
            base[:, indices[0]] = value
        else:
            for slot, component in enumerate(indices):
                base[:, component] = value[:, slot]
        return base

    def _idx_store(base, idx, value, mask):
        # _IndexRef.write, non-struct path.
        if mask is None:
            mask = np.ones(1, dtype=bool)
        n = max(base.shape[0], value.shape[0], mask.shape[0], idx.shape[0])
        if base.shape[0] != n:
            base = np.broadcast_to(base, (n,) + base.shape[1:])
        data = base.copy()
        if idx.shape[0] != n:
            idx = np.broadcast_to(idx, (n,))
        idx = np.minimum(np.maximum(idx, 0), data.shape[1] - 1)
        inc = value
        if inc.shape[0] != n:
            inc = np.broadcast_to(inc, (n,) + inc.shape[1:])
        if np.all(idx == idx.flat[0]):
            slot = int(idx.flat[0])
            data[:, slot] = masked_blend(data[:, slot], inc, mask)
        else:
            expand = idx.reshape((n, 1) + (1,) * (data.ndim - 2))
            expand = np.broadcast_to(expand, (n, 1) + data.shape[2:])
            current = np.take_along_axis(data, expand, axis=1)[:, 0]
            blended = masked_blend(current, inc, mask)
            np.put_along_axis(data, expand, blended[:, None], axis=1)
        return data

    def _flat(parts):
        # values.flatten_components, data level.
        n = 1
        for p in parts:
            if p.shape[0] != 1:
                n = p.shape[0]
        cols = []
        for p in parts:
            if p.shape[0] != n:
                p = np.broadcast_to(p, (n,) + p.shape[1:])
            cols.append(p.reshape(n, -1))
        return np.concatenate(cols, axis=1)

    def _mdiag(diag, k):
        # matN(scalar): zeros with the converted scalar on the diagonal.
        data = np.zeros((diag.shape[0], k, k), dtype=DT)
        for i in range(k):
            data[:, i, i] = diag
        return data

    # When the model's "tex" quantize is a pure cast, asarray(.., DT)
    # reproduces quantize(astype(DT)) bit-for-bit with one conversion.
    tex_cast_only = fmodel.quantize_is_cast("tex")

    def _tex(sampler, coords, kind):
        # Interpreter._eval_texture, data level.
        if coords.dtype != np.float64:
            coords = coords.astype(np.float64)
        if sampler is None:
            texels = np.zeros((coords.shape[0], 4), dtype=DT)
            texels[:, 3] = 1.0
            return texels
        if kind == 1:
            coords = coords[:, :2] / coords[:, 2:3]
        elif kind == 2:
            coords = coords[:, :2] / coords[:, 3:4]
        elif kind == 3:
            texels = sampler.sample_cube(coords)
        else:
            texels = sampler.sample(coords[:, 0], coords[:, 1])
        if tex_cast_only:
            return np.asarray(texels, DT)
        return quantize(texels.astype(DT), "tex")

    # Per-function gather tally: [direct gathers, runtime fallbacks],
    # counted per _gather call site execution.  The executor snapshots
    # it around each run and accumulates the delta into DrawStats.
    _gst = [0, 0]

    def _gather(sampler, x, y, coords, size):
        # Direct texel gather for IR-annotated fetch-pattern samples
        # (see glsl.ir.gather).  The static half of the proof — the
        # coordinate is (vec2(x, y) + 0.5) / size — is established by
        # the annotation; everything checked here is the runtime half:
        # the sampler qualifies (complete, NEAREST, CLAMP_TO_EDGE,
        # storage matching `size`) and the indices are integral and
        # in-range.  Any miss falls back to the ordinary sampler,
        # which is bit-identical by construction.
        gi = getattr(sampler, "gather_info", None)
        data = None
        if gi is not None and size.shape[0] == 1:
            data = gi(float(size[0, 0]), float(size[0, 1]))
        if data is not None:
            ix = x.astype(np.int64)
            iy = y.astype(np.int64)
            if (ix.size > 0 and iy.size > 0
                    and ix.min() >= 0 and iy.min() >= 0
                    and ix.max() < data.shape[1]
                    and iy.max() < data.shape[0]
                    and np.array_equal(ix, x) and np.array_equal(iy, y)):
                _gst[0] += 1
                # Same arithmetic as Texture.sample's NEAREST path:
                # uint8 storage divided to [0, 1] in float64, then the
                # model's "tex" quantize (or its cast elision).
                texels = data[iy, ix] / 255.0
                if tex_cast_only:
                    return np.asarray(texels, DT)
                return quantize(texels.astype(DT), "tex")
        _gst[1] += 1
        return _tex(sampler, coords, 0)

    return {
        "np": np,
        "DT": DT,
        "I32": INT_DTYPE,
        "Q": quantize,
        "GlslLimitError": GlslLimitError,
        "_index": _index,
        "_st": _st,
        "_swz_store": _swz_store,
        "_swz_put": _swz_put,
        "_idx_store": _idx_store,
        "_flat": _flat,
        "_mdiag": _mdiag,
        "_tex": _tex,
        "_gather": _gather,
        "_gst": _gst,
    }


# ======================================================================
# The generator
# ======================================================================
class CodeGen:
    def __init__(self, program: CompiledProgram, fmodel,
                 wide_globals: Set[str], gather: Optional[bool] = None):
        self.program = program
        self.fmodel = fmodel
        self.exact = fmodel.name == "exact"
        self.gather = _GATHER_ENABLED if gather is None else gather
        self.uinfo: UniformInfo = infer_uniform(program, set(wide_globals))
        self.lines: List[str] = []
        self.level = 1
        self.ntmp = 0
        self.ns: Dict[str, object] = {}
        self.types: Dict[int, GlslType] = {}
        self.samplers: Dict[int, str] = {}
        self.store_roots: Set[int] = set()
        self.global_regs: Set[int] = set()
        #: one live-term scope per (inlined) activation frame: a list of
        #: (brk, cont, exit) mask-var triples for that frame's loops.
        self.scopes: List[List[tuple]] = [[]]
        self.has_discard = _block_has_op(program.body, ("discard",))
        self._zeros_cache: Dict[str, str] = {}
        #: registers whose bound array is a fresh unaliased copy (see
        #: gen_instr) — eligible for in-place component stores.
        self.owned: Set[int] = set()
        self._own_root: Optional[int] = None

    # -- plumbing -------------------------------------------------------
    def w(self, line: str) -> None:
        self.lines.append("    " * self.level + line)

    def name(self, prefix: str) -> str:
        self.ntmp += 1
        return f"{prefix}{self.ntmp}"

    def capture(self, obj, prefix: str) -> str:
        for key, existing in self.ns.items():
            if existing is obj and key.startswith(prefix):
                return key
        key = f"{prefix}{len(self.ns)}"
        self.ns[key] = obj
        return key

    def zeros_template(self, gtype: GlslType) -> str:
        """Shared width-1 zero array for decls (safe: no-in-place)."""
        if _has_struct(gtype) or gtype.is_sampler():
            raise JitUnsupported(f"cannot declare {gtype}")
        key = f"{gtype}|{np.dtype(self.fmodel.dtype).str}"
        var = self._zeros_cache.get(key)
        if var is None:
            template = zeros_for(gtype, 1, self.fmodel.dtype).data
            var = self.capture(template, "_zv")
            self._zeros_cache[key] = var
        return var

    def type_of(self, reg: int) -> GlslType:
        gtype = self.types.get(reg)
        if gtype is None:
            raise JitUnsupported(f"untyped register r{reg}")
        return gtype

    def q(self, expr: str, category: str = "alu") -> str:
        """Wrap ``expr`` in the model's quantize call.

        When the model declares quantize a pure cast for this category
        (``quantize_is_cast``) the call is elided entirely: every
        float-producing expression the codegen quantizes is already in
        the model dtype (operands are DT, numpy float ops preserve
        dtype), so the cast is a no-op and the interpreter's result is
        reproduced bit-for-bit without the per-op Python call.
        """
        if self.exact or self.fmodel.quantize_is_cast(category):
            return expr
        if category == "alu":
            return f"Q({expr})"
        return f"Q({expr}, {category!r})"

    # -- masks ----------------------------------------------------------
    def live_terms(self) -> List[str]:
        terms = ["~_dc"] if self.has_discard else []
        for bk, ct, ex in self.scopes[-1]:
            terms.extend((f"~{bk}", f"~{ct}", f"~{ex}"))
        return terms

    def combine(self, *parts: Optional[str]) -> Optional[str]:
        real = [p for p in parts if p is not None]
        if not real:
            return None
        return " & ".join(f"({p})" if " " in p else p for p in real)

    def newmask(self, expr: Optional[str]) -> Optional[str]:
        if expr is None:
            return None
        var = self.name("_m")
        self.w(f"{var} = {expr}")
        return var

    def region_exit_mask(self, entry: Optional[str]) -> Optional[str]:
        """Recompute ``entry & live`` after kills inside a region."""
        return self.newmask(self.combine(entry, *self.live_terms()))

    # ==================================================================
    # Top level
    # ==================================================================
    def generate(self) -> str:
        program = self.program
        self.w("r_ = regs")
        for plan in program.globals_plan:
            self.global_regs.add(plan.reg)
            if plan.is_sampler:
                self.samplers[plan.reg] = f"_s{plan.reg}"
                self.w(f"_s{plan.reg} = regs[{plan.reg}].sampler")
                self.types[plan.reg] = plan.type
                continue
            if _has_struct(plan.type):
                raise JitUnsupported(f"struct global '{plan.name}'")
            self.types[plan.reg] = plan.type
            self.w(f"r{plan.reg} = regs[{plan.reg}].data")
        self.w("_z = np.zeros(n, dtype=np.bool_)")
        if self.has_discard:
            self.w("_dc = _z")
        self.w("with np.errstate(divide='ignore', over='ignore', "
               "invalid='ignore'):")
        self.level += 1
        self.gen_block(program.body, None)
        self.level -= 1
        for reg in sorted(self.store_roots & self.global_regs):
            self.w(f"regs[{reg}].data = r{reg}")
        if self.has_discard:
            self.w("return _dc")
        else:
            self.w("return None")
        body = "\n".join(self.lines)
        return f"def _jit_main(regs, n, maxit):\n{body}\n"

    # ==================================================================
    # Blocks and regions
    # ==================================================================
    def gen_block(self, block: Block, m: Optional[str]) -> Optional[str]:
        return self.gen_items(block.items, m)

    def gen_items(self, items, m: Optional[str]) -> Optional[str]:
        if not items:
            self.w("pass")
            return m
        for item in items:
            if isinstance(item, Instr):
                m = self.gen_instr(item, m)
                continue
            # Regions introduce conditional control flow and recursive
            # bodies — conservatively forget array ownership on both
            # sides of the boundary.
            self.owned.clear()
            if isinstance(item, IfRegion):
                m = self.gen_if(item, m)
            elif isinstance(item, LoopRegion):
                m = self.gen_loop(item, m)
            elif isinstance(item, CondRegion):
                m = self.gen_cond(item, m)
            elif isinstance(item, ScRegion):
                m = self.gen_sc(item, m)
            elif isinstance(item, FuncRegion):
                m = self.gen_func(item, m)
            else:  # pragma: no cover - structural invariant
                raise JitUnsupported(f"unknown node {type(item).__name__}")
            self.owned.clear()
        return m

    def gen_if(self, item: IfRegion, m: Optional[str]) -> Optional[str]:
        kills = block_has_kill(item.then_block) or \
            block_has_kill(item.else_block)
        if self.uinfo.is_uniform(item.cond):
            # Uniform condition: a native Python branch.  Effects on
            # the not-taken side would all be empty-masked, so skipping
            # them entirely is value-identical; mask variables mutated
            # inside persist (function scope), so the exit recompute
            # below sees them.
            self.w(f"if bool(r{item.cond}[0]):")
            self.level += 1
            self.gen_block(item.then_block, m)
            self.level -= 1
            if item.else_block is not None:
                self.w("else:")
                self.level += 1
                self.gen_block(item.else_block, m)
                self.level -= 1
            return self.region_exit_mask(m) if kills else m
        # Varying condition: run both branches under split masks.
        # then = entry & cond; else = entry & ~cond (kills on the then
        # side only remove cond-true lanes, so the else mask needs no
        # live recompute — matching the flat executor).
        mt = self.newmask(self.combine(m, f"r{item.cond}"))
        self.gen_block(item.then_block, mt)
        if item.else_block is not None:
            mf = self.newmask(self.combine(m, f"~r{item.cond}"))
            self.gen_block(item.else_block, mf)
        return self.region_exit_mask(m) if kills else m

    def gen_loop(self, item: LoopRegion, m: Optional[str]) -> Optional[str]:
        kills = (block_has_kill(item.body_block)
                 or block_has_kill(item.cond_block)
                 or block_has_kill(item.update_block))
        uniform_cond = item.cond is None or self.uinfo.is_uniform(item.cond)
        if m is None and uniform_cond and not kills:
            return self.gen_python_loop(item, m)
        return self.gen_masked_loop(item, m)

    def gen_python_loop(self, item: LoopRegion,
                        m: Optional[str]) -> Optional[str]:
        """Uniform loop under a full mask: a native ``while`` with zero
        mask traffic — the sgemm inner-loop fast path."""
        it = self.name("_i")
        self.w(f"{it} = 0")
        self.w("while True:")
        self.level += 1
        if item.cond_block is not None:
            guard = not item.pretest
            if guard:
                self.w(f"if {it} > 0:")
                self.level += 1
            self.gen_block(item.cond_block, m)
            self.w(f"if not bool(r{item.cond}[0]): break")
            if guard:
                self.level -= 1
        self.gen_block(item.body_block, m)
        if item.update_block is not None:
            self.gen_block(item.update_block, m)
        self.w(f"{it} += 1")
        self.w(f"if {it} > maxit: raise GlslLimitError("
               f"'loop exceeded %d iterations' % maxit)")
        self.level -= 1
        return m

    def gen_masked_loop(self, item: LoopRegion,
                        m: Optional[str]) -> Optional[str]:
        entry = m
        k = self.ntmp = self.ntmp + 1
        bk, ct, ex = f"_bk{k}", f"_ct{k}", f"_ex{k}"
        it = f"_i{k}"
        self.w(f"{bk} = _z")
        self.w(f"{ct} = _z")
        self.w(f"{ex} = _z")
        self.w(f"{it} = 0")
        self.scopes[-1].append((bk, ct, ex))
        self.w("while True:")
        self.level += 1
        top = self.newmask(self.combine(entry, *self.live_terms()))
        self.w(f"if not {top}.any(): break")
        cur = top
        if item.cond_block is not None:
            guard = not item.pretest
            if guard:
                self.w(f"if {it} > 0:")
                self.level += 1
            after_cond = self.gen_block(item.cond_block, cur)
            self.w(f"{ex} = {ex} | ({after_cond} & ~r{item.cond})")
            if guard:
                self.level -= 1
            # entry & live now equals (mask-after-cond & cond): the
            # lanes whose condition went false just joined `exited`.
            cur = self.newmask(self.combine(entry, *self.live_terms()))
            self.w(f"if not {cur}.any(): break")
        self.gen_block(item.body_block, cur)
        self.w(f"{ct} = _z")
        rejoin = self.newmask(self.combine(entry, *self.live_terms()))
        if item.update_block is not None:
            self.w(f"if {rejoin}.any():")
            self.level += 1
            self.gen_block(item.update_block, rejoin)
            self.level -= 1
        self.w(f"{it} += 1")
        self.w(f"if {it} > maxit: raise GlslLimitError("
               f"'loop exceeded %d iterations' % maxit)")
        self.level -= 1
        self.scopes[-1].pop()
        return self.region_exit_mask(entry)

    def gen_cond(self, item: CondRegion, m: Optional[str]) -> Optional[str]:
        if _has_struct(item.type):
            raise JitUnsupported("struct-typed conditional")
        if block_has_kill(item.true_block) or block_has_kill(item.false_block):
            raise JitUnsupported("kill op inside conditional arm")
        self.types[item.out] = item.type
        if m is None and self.uinfo.is_uniform(item.cond):
            # Full mask + uniform condition: the interpreter's runtime
            # uniform fast path always fires, so a native branch with an
            # arm alias is exact.
            self.w(f"if bool(r{item.cond}[0]):")
            self.level += 1
            self.gen_block(item.true_block, m)
            self.w(f"r{item.out} = r{item.true_reg}")
            self.level -= 1
            self.w("else:")
            self.level += 1
            self.gen_block(item.false_block, m)
            self.w(f"r{item.out} = r{item.false_reg}")
            self.level -= 1
            return m
        mt = self.newmask(self.combine(m, f"r{item.cond}"))
        self.gen_block(item.true_block, mt)
        mf = self.newmask(self.combine(m, f"~r{item.cond}"))
        self.gen_block(item.false_block, mf)
        cond = self.expand_mask(f"r{item.cond}", _ndim(item.type))
        self.w(f"r{item.out} = np.where({cond}, "
               f"r{item.true_reg}, r{item.false_reg})")
        return m

    def gen_sc(self, item: ScRegion, m: Optional[str]) -> Optional[str]:
        if block_has_kill(item.rhs_block):
            raise JitUnsupported("kill op inside short-circuit rhs")
        self.types[item.out] = self.type_of(item.left)
        guard = f"r{item.left}" if item.op == "&&" else f"~r{item.left}"
        rm = self.newmask(self.combine(m, guard))
        self.gen_block(item.rhs_block, rm)
        # The interpreter's exact combine formulas; both are correct
        # even when the rhs mask is empty (result degrades to lhs).
        if item.op == "&&":
            self.w(f"r{item.out} = r{item.left} & (r{item.right} | ~{rm})")
        else:
            self.w(f"r{item.out} = r{item.left} | (r{item.right} & {rm})")
        # SCEND restores the saved mask without a live recompute.
        return m

    def gen_func(self, item: FuncRegion, m: Optional[str]) -> Optional[str]:
        # Frame elision (passes.py) already removed frames for loop-free
        # single-tail-return bodies; a frame that survives with returns
        # is supported only in the one remaining benign shape — exactly
        # one `return` as the final top-level item (a loop-containing
        # function with an unconditional result).  Anything else means
        # lanes retire mid-body, which needs the frame's `returned`
        # channel: fall back.
        items = item.body_block.items
        tail = None
        if items and isinstance(items[-1], Instr) and items[-1].op == "return":
            tail = items[-1]
        if _frame_return_count(item.body_block) > (1 if tail is not None else 0):
            raise JitUnsupported(f"function '{item.name}' returns "
                                 "under divergence")
        self.scopes.append([])
        try:
            mb = self.gen_items(items[:-1] if tail is not None else items, m)
        finally:
            self.scopes.pop()
        if item.out is not None and not item.ret_type.is_void():
            self.types[item.out] = item.ret_type
            if tail is not None and tail.args:
                # The frame's return-value blend: zeros(1) lanes stay
                # zero outside the mask (assign_masked semantics).
                if mb is None:
                    self.w(f"r{item.out} = r{tail.args[0]}")
                else:
                    zv = self.zeros_template(item.ret_type)
                    cexpr = self.expand_mask(mb, _ndim(item.ret_type))
                    self.w(f"r{item.out} = np.where({cexpr}, "
                           f"r{tail.args[0]}, {zv})")
            else:
                # No-return frame: the return-value slot stays zeros.
                self.w(f"r{item.out} = {self.zeros_template(item.ret_type)}")
        if self.has_discard and _block_has_op(item.body_block, ("discard",)):
            return self.region_exit_mask(m)
        return m

    # ==================================================================
    # Instructions
    # ==================================================================
    def gen_instr(self, ins: Instr, m: Optional[str]) -> Optional[str]:
        op = ins.op
        if ins.out is not None and ins.out in self.global_regs:
            raise JitUnsupported("instruction rebinds a global register")
        method = getattr(self, f"_g_{op}", None)
        if method is None:
            raise JitUnsupported(f"op '{op}'")
        self._own_root = None
        result = method(ins, m)
        # Single-owner tracking for in-place component stores: reading
        # a register may hand out an alias or view of its array, and
        # rebinding the name drops ownership of the old array.  A
        # full-mask swizzle store re-establishes ownership (its result
        # is a fresh, never-aliased copy) via ``_own_root``.
        self.owned.difference_update(ins.args)
        if ins.out is not None:
            self.owned.discard(ins.out)
        if self._own_root is not None:
            self.owned.add(self._own_root)
            self._own_root = None
        return result

    # -- kills ----------------------------------------------------------
    def _g_discard(self, ins: Instr, m: Optional[str]) -> Optional[str]:
        self.w(f"_dc = _dc | {m if m is not None else 'True'}")
        return self.newmask(self.combine(m, "~_dc"))

    def _kill_channel(self, slot: int, m: Optional[str]) -> Optional[str]:
        if not self.scopes[-1]:
            raise JitUnsupported("break/continue outside a loop")
        var = self.scopes[-1][-1][slot]
        self.w(f"{var} = {var} | {m if m is not None else 'True'}")
        return self.newmask(self.combine(m, f"~{var}"))

    def _g_break(self, ins: Instr, m: Optional[str]) -> Optional[str]:
        return self._kill_channel(0, m)

    def _g_continue(self, ins: Instr, m: Optional[str]) -> Optional[str]:
        return self._kill_channel(1, m)

    def _g_return(self, ins: Instr, m: Optional[str]) -> Optional[str]:
        raise JitUnsupported("return instruction")

    # -- value ops -------------------------------------------------------
    def _g_const(self, ins: Instr, m):
        gtype, data = self.program.materialized_consts(self.fmodel)[ins.imm]
        self.types[ins.out] = gtype
        self.w(f"r{ins.out} = {self.capture(data, '_c')}")
        return m

    def _g_move(self, ins: Instr, m):
        src = ins.args[0]
        if src in self.samplers:
            self.samplers[ins.out] = self.samplers[src]
            self.types[ins.out] = self.type_of(src)
            return m
        self.types[ins.out] = ins.type or self.type_of(src)
        self.w(f"r{ins.out} = r{src}")
        return m

    _g_copy = _g_move

    def _g_decl(self, ins: Instr, m):
        if ins.type.is_sampler():
            self.samplers[ins.out] = "None"
            self.types[ins.out] = ins.type
            return m
        self.types[ins.out] = ins.type
        self.w(f"r{ins.out} = {self.zeros_template(ins.type)}")
        return m

    def _g_unary(self, ins: Instr, m):
        src = ins.args[0]
        stype = self.type_of(src)
        if ins.imm == "-":
            expr = f"-r{src}"
            if stype.is_float_based():
                expr = self.q(expr)
            self.types[ins.out] = stype
        else:  # "!"
            expr = f"~r{src}"
            self.types[ins.out] = ins.type or stype
        self.w(f"r{ins.out} = {expr}")
        return m

    def _g_compare(self, ins: Instr, m):
        a, b = ins.args
        self.types[ins.out] = ins.type
        self.w(f"r{ins.out} = r{a} {_COMPARE_SYMBOL[ins.imm]} r{b}")
        return m

    def _g_equal(self, ins: Instr, m):
        a, b = ins.args
        ltype = self.type_of(a)
        if _has_struct(ltype):
            raise JitUnsupported("struct equality")
        nd = _ndim(ltype)
        expr = f"r{a} == r{b}"
        if nd == 2:
            expr = f"np.all({expr}, axis=1)"
        elif nd > 2:
            axes = tuple(range(1, nd))
            expr = f"np.all({expr}, axis={axes})"
        if ins.imm[0] == "!=":
            expr = f"~({expr})"
        self.types[ins.out] = ins.type
        self.w(f"r{ins.out} = {expr}")
        return m

    def _g_xor(self, ins: Instr, m):
        a, b = ins.args
        self.types[ins.out] = ins.type
        self.w(f"r{ins.out} = r{a} ^ r{b}")
        return m

    def _g_swizzle(self, ins: Instr, m):
        src = ins.args[0]
        self.types[ins.out] = ins.type
        self.w(f"r{ins.out} = {self._swizzle_expr(f'r{src}', ins.imm)}")
        return m

    @staticmethod
    def _swizzle_expr(base: str, indices) -> str:
        if len(indices) == 1:
            return f"{base}[:, {indices[0]}]"
        return f"{base}[:, {list(indices)!r}]"

    def _g_field(self, ins: Instr, m):
        raise JitUnsupported("struct field access")

    def _g_index(self, ins: Instr, m):
        base, idx = ins.args
        self.types[ins.out] = ins.type
        self.w(f"r{ins.out} = _index(r{base}, r{idx})")
        return m

    def _g_select(self, ins: Instr, m):
        cond, t, f = ins.args
        rt = ins.type or self.type_of(t)
        self.types[ins.out] = rt
        cexpr = self.expand_mask(f"r{cond}", _ndim(rt))
        self.w(f"r{ins.out} = np.where({cexpr}, r{t}, r{f})")
        return m

    def _g_sc_combine(self, ins: Instr, m):
        left, right = ins.args
        self.types[ins.out] = ins.type or self.type_of(left)
        guard = f"r{left}" if ins.imm == "&&" else f"~r{left}"
        rm = self.combine(m, guard)
        tmp = self.name("_t")
        self.w(f"{tmp} = {rm}")
        if ins.imm == "&&":
            self.w(f"r{ins.out} = r{left} & (r{right} | ~{tmp})")
        else:
            self.w(f"r{ins.out} = r{left} | (r{right} & {tmp})")
        return m

    @staticmethod
    def expand_mask(expr: str, ndim: int) -> str:
        if ndim <= 1:
            return expr
        return f"{expr}[:, {', '.join('None' for _ in range(ndim - 1))}]"

    # -- arithmetic ------------------------------------------------------
    def _g_arith(self, ins: Instr, m):
        op = ins.imm[0]
        a, b = ins.args
        ltype, rtype = self.type_of(a), self.type_of(b)
        rt = ins.type
        self.types[ins.out] = rt
        out = f"r{ins.out}"
        if op == "*" and ltype.is_matrix() and rtype.is_matrix():
            k = ltype.size
            self.w(f"{out} = r{a}[:, 0, :][:, None, :] * "
                   f"r{b}[:, :, 0][:, :, None]")
            for i in range(1, k):
                self.w(f"{out} = {out} + r{a}[:, {i}, :][:, None, :] * "
                       f"r{b}[:, :, {i}][:, :, None]")
        elif op == "*" and ltype.is_matrix() and rtype.is_vector():
            k = ltype.size
            self.w(f"{out} = r{a}[:, 0, :] * r{b}[:, 0][:, None]")
            for c in range(1, k):
                self.w(f"{out} = {out} + r{a}[:, {c}, :] * "
                       f"r{b}[:, {c}][:, None]")
        elif op == "*" and ltype.is_vector() and rtype.is_matrix():
            k = rtype.size
            self.w(f"{out} = r{a}[:, 0][:, None] * r{b}[:, :, 0]")
            for r in range(1, k):
                self.w(f"{out} = {out} + r{a}[:, {r}][:, None] * "
                       f"r{b}[:, :, {r}]")
        else:
            ea = self._aligned(f"r{a}", _ndim(ltype), _ndim(rtype))
            eb = self._aligned(f"r{b}", _ndim(rtype), _ndim(ltype))
            if op == "/":
                if rt.is_int_based():
                    # C-style trunc toward zero, x/0 == 0 (astype
                    # included: the quotient is computed in float).
                    self.w(f"{out} = np.trunc(np.where({eb} != 0, "
                           f"{ea} / np.where({eb} == 0, 1, {eb}), 0.0))"
                           f".astype(I32)")
                    return m
                self.w(f"{out} = {self.q(f'{ea} / {eb}')}")
                return m
            expr = f"{ea} {op} {eb}"
            if rt.is_float_based():
                expr = self.q(expr)
            self.w(f"{out} = {expr}")
            return m
        # matrix-product tail: quantize (always float-based)
        if rt.is_float_based():
            qed = self.q(out)
            if qed != out:
                self.w(f"{out} = {qed}")
        return m

    @staticmethod
    def _aligned(expr: str, own: int, other: int) -> str:
        if own >= other:
            return expr
        pad = ", ".join("None" for _ in range(other - own))
        prefix = ", ".join(":" for _ in range(own))
        return f"{expr}[{prefix}, {pad}]"

    # -- builtins / textures ---------------------------------------------
    def _g_builtin(self, ins: Instr, m):
        overload = ins.imm[1]
        rt = ins.type
        self.types[ins.out] = rt
        impl = self.capture(overload.impl, "_b")
        call = f"{impl}({', '.join(f'r{a}' for a in ins.args)})"
        if rt.is_float_based():
            # asarray with an explicit dtype is the same cast as
            # astype but skips the copy when the impl already returns
            # DT — safe, generated code never mutates arrays in place.
            expr = self.q(f"np.asarray({call}, DT)", overload.category)
        elif rt.is_int_based():
            expr = f"np.asarray({call}, I32)"
        else:
            expr = f"np.asarray({call}, np.bool_)"
        self.w(f"r{ins.out} = {expr}")
        return m

    def _g_texture(self, ins: Instr, m):
        overload = ins.imm[1]
        sampler = self.samplers.get(ins.args[0])
        if sampler is None:
            raise JitUnsupported("sampler register not traceable")
        kind = _TEX_KIND.get(overload.impl, 0)
        self.types[ins.out] = ins.type
        gather = getattr(ins, "gather", None)
        # Gather fast path: only for plain texture2D sites the IR
        # annotation proved to be fetch-pattern samples, only when the
        # float model's ALU quantize is a pure cast (the texel-centre
        # round-trip proof assumes IEEE arithmetic on the stored
        # dtype), and only for width-1 size registers (the helper
        # reads scalar dimensions out of them).
        if (gather is not None and kind == 0 and self.gather
                and sampler != "None"
                and (self.exact or self.fmodel.quantize_is_cast("alu"))
                and self.uinfo.is_uniform(gather[0])):
            size_reg, x_reg, y_reg = gather
            self.w(f"r{ins.out} = _gather({sampler}, r{x_reg}, r{y_reg}, "
                   f"r{ins.args[1]}, r{size_reg})")
            return m
        self.w(f"r{ins.out} = _tex({sampler}, r{ins.args[1]}, {kind})")
        return m

    # -- constructors ----------------------------------------------------
    def _g_construct(self, ins: Instr, m):
        target = ins.type
        if target.is_struct():
            raise JitUnsupported("struct constructor")
        self.types[ins.out] = target
        args = ins.args
        out = f"r{ins.out}"
        if target.is_scalar():
            src = args[0]
            stype = self.type_of(src)
            expr = f"r{src}"
            if not stype.is_scalar():
                expr = f"{expr}.reshape({expr}.shape[0], -1)[:, 0]"
            self.w(f"{out} = {self._cvt(expr, [stype], target.base)}")
            return m
        if target.is_vector():
            if len(args) == 1 and self.type_of(args[0]).is_scalar():
                cvt = self._cvt(f"r{args[0]}", [self.type_of(args[0])],
                                target.base)
                self.w(f"{out} = np.repeat(({cvt})[:, None], "
                       f"{target.size}, axis=1)")
                return m
            parts = ", ".join(f"r{a}" for a in args)
            flat = f"_flat([{parts}])[:, :{target.size}]"
            stypes = [self.type_of(a) for a in args]
            self.w(f"{out} = {self._cvt(flat, stypes, target.base)}")
            return m
        if target.is_matrix():
            k = target.size
            if len(args) == 1 and self.type_of(args[0]).is_scalar():
                cvt = self._cvt(f"r{args[0]}", [self.type_of(args[0])],
                                BaseType.FLOAT)
                self.w(f"{out} = _mdiag({cvt}, {k})")
                return m
            parts = ", ".join(f"r{a}" for a in args)
            stypes = [self.type_of(a) for a in args]
            flat = self._cvt(f"_flat([{parts}])", stypes, BaseType.FLOAT)
            self.w(f"{out} = {flat}")
            self.w(f"{out} = {out}.reshape({out}.shape[0], {k}, {k})")
            return m
        raise JitUnsupported(f"constructor for {target}")

    @staticmethod
    def _src_category(stypes) -> str:
        """Static dtype category of (possibly concatenated) sources:
        numpy promotion makes any float part float, else any int part
        int, else bool — mirroring what flatten_components produces."""
        if any(t.is_float_based() for t in stypes):
            return "float"
        if any(t.is_int_based() for t in stypes):
            return "int"
        return "bool"

    def _cvt(self, expr: str, stypes, base: str) -> str:
        cat = self._src_category(stypes)
        # asarray(.., dtype) is the same cast as astype but skips the
        # copy when the dtype already matches (a concat of DT parts is
        # DT) — alias-safe, generated code never mutates in place.
        if base == BaseType.FLOAT:
            if cat == "float" and len(stypes) == 1:
                return expr  # already the model dtype; rebind-safe alias
            return f"np.asarray({expr}, DT)"
        if base == BaseType.INT:
            if cat == "float":
                return f"np.trunc({expr}).astype(I32)"
            if cat == "int" and len(stypes) == 1:
                return expr
            return f"np.asarray({expr}, I32)"
        if cat == "bool" and len(stypes) == 1:
            return expr
        return f"(({expr}) != 0)"

    # -- l-value traffic -------------------------------------------------
    def _path_read(self, root_expr: str, path, idx_regs) -> str:
        expr = root_expr
        used = 0
        for step in path:
            kind = step[0]
            if kind == "f":
                raise JitUnsupported("struct field path")
            tmp = self.name("_t")
            if kind == "s":
                self.w(f"{tmp} = {self._swizzle_expr(expr, step[1])}")
            else:
                self.w(f"{tmp} = _index({expr}, r{idx_regs[used]})")
                used += 1
            expr = tmp
        return expr

    def _g_load(self, ins: Instr, m):
        path = ins.imm
        root = ins.args[0]
        self.types[ins.out] = ins.type
        if path == ():
            if root in self.samplers:
                self.samplers[ins.out] = self.samplers[root]
                return m
            self.w(f"r{ins.out} = r{root}")
            return m
        expr = self._path_read(f"r{root}", path, ins.args[1:])
        self.w(f"r{ins.out} = {expr}")
        return m

    def _emit_path_store(self, root: int, path, idx_regs,
                         value_expr: str, m: Optional[str]) -> None:
        """Store through an l-value path (empty or single-step)."""
        self.store_roots.add(root)
        if path == ():
            if m is None:
                # Full-mask store: plain rebind (no-in-place invariant
                # makes aliasing safe; dtype is type-invariant).
                self.w(f"r{root} = {value_expr}")
            else:
                self.w(f"r{root} = _st(r{root}, {value_expr}, {m})")
            return
        if len(path) != 1:
            raise JitUnsupported("multi-step l-value path")
        step = path[0]
        mask = m if m is not None else "None"
        if step[0] == "s":
            if m is None and root in self.owned:
                # This code generator owns the array bound to the root
                # (fresh copy from a previous full-mask swizzle store,
                # no intervening reads): mutate it in place instead of
                # copying the whole vector again.
                self.w(f"r{root} = _swz_put(r{root}, {tuple(step[1])!r}, "
                       f"{value_expr})")
            else:
                self.w(f"r{root} = _swz_store(r{root}, {tuple(step[1])!r}, "
                       f"{value_expr}, {mask})")
            if m is None:
                self._own_root = root
        elif step[0] == "i":
            self.w(f"r{root} = _idx_store(r{root}, r{idx_regs[0]}, "
                   f"{value_expr}, {mask})")
        else:
            raise JitUnsupported("struct field store")

    def _g_store(self, ins: Instr, m):
        root = ins.args[0]
        if root in self.samplers:
            raise JitUnsupported("sampler store")
        self._emit_path_store(root, ins.imm, ins.args[2:], f"r{ins.args[1]}", m)
        return m

    def _g_incdec(self, ins: Instr, m):
        path, op, prefix = ins.imm
        root = ins.args[0]
        # The old-value temp may be a view of the root's array — an
        # in-place store would corrupt the postfix result.
        self.owned.discard(root)
        idx_regs = ins.args[1:]
        if path == ():
            old_expr = f"r{root}"
            vtype = self.type_of(root)
        else:
            old_expr = self._path_read(f"r{root}", path, idx_regs)
            vtype = ins.type
        old = self.name("_t")
        self.w(f"{old} = {old_expr}")
        delta = "1" if op == "++" else "-1"
        new_expr = f"{old} + np.asarray({delta}, {old}.dtype)"
        if vtype.is_float_based():
            new_expr = self.q(new_expr)
        new = self.name("_t")
        self.w(f"{new} = {new_expr}")
        self._emit_path_store(root, path, idx_regs, new, m)
        self.types[ins.out] = vtype
        self.w(f"r{ins.out} = {new if prefix else old}")
        return m


def generate(program: CompiledProgram, fmodel, wide_globals: Set[str],
             gather: Optional[bool] = None):
    """Generate and compile the JIT function for one program under one
    wide-global set.  Returns the callable ``fn(regs, n, maxit)``;
    raises :class:`JitUnsupported` for programs outside the subset.

    ``gather`` overrides the module gather flag for this function
    (None = use the flag)."""
    gen = CodeGen(program, fmodel, wide_globals, gather=gather)
    source = gen.generate()
    ns = make_helpers(fmodel)
    ns.update(gen.ns)
    shader_name = getattr(program.checked, "stage", "shader")
    code = compile(source, f"<jit:{shader_name}>", "exec")
    exec(code, ns)
    fn = ns["_jit_main"]
    fn._jit_source = source
    # Captured objects only (the `make_helpers` closures are rebuilt
    # from the float model at the destination): together with the
    # source this is everything a worker process needs to rematerialise
    # the function — see repro.gles2.parallel.
    fn._jit_captured = dict(gen.ns)
    # The live gather tally for this function's helper namespace —
    # [gathers, fallbacks]; executors snapshot/delta it per run.
    fn._jit_gather_stats = ns["_gst"]
    return fn
