"""Uniform-lane inference over the structured register IR.

A register is **uniform** when its value provably does not depend on
any per-lane (full-fragment-width) input: it is computed exclusively
from constants, uniforms and other uniform registers, and every store
into it happens under a uniform mask context.  Uniform registers stay
batch-1 ndarrays in the JIT-generated NumPy code — the paper's per-draw
quantities (sizes, scales, sampler parameters) are computed once per
launch instead of once per fragment, and numpy broadcasting widens
them lazily at their first varying use.

The analysis is an optimistic fixpoint: every register starts as
uniform, *varying* facts are seeded from the wide (batch > 1) global
presets, and the block walk demotes registers until nothing changes.
Demotion is monotonic, so the loop terminates; the result is sound
(conservative) for exactly the property the code generator relies on:
a register classified uniform is width-1 at runtime and carries the
same value on every lane.

Mask contexts matter because masked stores widen their target: a store
under a varying mask produces a lane-dependent value even when the
stored data is uniform.  The walk therefore tracks whether the current
execution-mask context is itself uniform (an ``if`` on a varying
condition, the body of a lane-divergent loop, or an ``Sc`` rhs guarded
by a varying left operand all make it varying).
"""

from __future__ import annotations

from typing import Optional, Set

from ..ir.nodes import (
    Block,
    CompiledProgram,
    CondRegion,
    FuncRegion,
    IfRegion,
    Instr,
    KILL_OPS,
    LoopRegion,
    ScRegion,
)


def _block_has_op(block: Optional[Block], ops) -> bool:
    if block is None:
        return False
    for item in block.items:
        if isinstance(item, Instr):
            if item.op in ops:
                return True
        elif isinstance(item, IfRegion):
            if _block_has_op(item.then_block, ops) or \
                    _block_has_op(item.else_block, ops):
                return True
        elif isinstance(item, LoopRegion):
            if _block_has_op(item.cond_block, ops) or \
                    _block_has_op(item.body_block, ops) or \
                    _block_has_op(item.update_block, ops):
                return True
        elif isinstance(item, CondRegion):
            if _block_has_op(item.true_block, ops) or \
                    _block_has_op(item.false_block, ops):
                return True
        elif isinstance(item, ScRegion):
            if _block_has_op(item.rhs_block, ops):
                return True
        elif isinstance(item, FuncRegion):
            if _block_has_op(item.body_block, ops):
                return True
    return False


def block_has_kill(block: Optional[Block]) -> bool:
    """Whether any divergence kill op (return/break/continue/discard)
    appears anywhere inside the block."""
    return _block_has_op(block, KILL_OPS)


def block_has_return(block: Optional[Block]) -> bool:
    return _block_has_op(block, ("return",))


class UniformInfo:
    """Result of the inference: ``is_uniform(reg)`` queries."""

    __slots__ = ("varying",)

    def __init__(self, varying: Set[int]):
        self.varying = varying

    def is_uniform(self, reg: int) -> bool:
        return reg not in self.varying


class _Inference:
    def __init__(self, program: CompiledProgram, wide_globals: Set[str]):
        self.program = program
        self.wide = wide_globals
        self.varying: Set[int] = set()
        self.changed = False

    # ------------------------------------------------------------------
    def run(self) -> UniformInfo:
        for plan in self.program.globals_plan:
            if plan.name in self.wide:
                self.varying.add(plan.reg)
        while True:
            self.changed = False
            self._walk_block(self.program.body, mask_uniform=True)
            if not self.changed:
                break
        return UniformInfo(self.varying)

    # ------------------------------------------------------------------
    def _demote(self, reg: Optional[int]) -> None:
        if reg is not None and reg not in self.varying:
            self.varying.add(reg)
            self.changed = True

    def _u(self, reg: int) -> bool:
        return reg not in self.varying

    def _all_u(self, regs) -> bool:
        return all(self._u(r) for r in regs)

    # ------------------------------------------------------------------
    def _walk_instr(self, ins: Instr, mask_uniform: bool) -> None:
        op = ins.op
        if op in KILL_OPS:
            return
        if op == "store":
            # args = (root, value, *index_regs); a store widens its root
            # unless the stored value, every index and the current mask
            # context are all uniform.
            if not (mask_uniform and self._all_u(ins.args)):
                self._demote(ins.args[0])
            return
        if op == "incdec":
            # args = (root, *index_regs)
            if not (mask_uniform and self._all_u(ins.args)):
                self._demote(ins.args[0])
            if not (self._all_u(ins.args) and self._u(ins.args[0])):
                self._demote(ins.out)
            return
        if op in ("const", "decl"):
            return  # batch-1 by construction
        if op == "sc_combine":
            # Combines through the *runtime execution mask*: varying
            # mask contexts make the blend lane-dependent.
            if not (mask_uniform and self._all_u(ins.args)):
                self._demote(ins.out)
            return
        # Every remaining value op (move/copy/load/swizzle/arith/
        # builtin/texture/select/...) is a pure function of its
        # argument registers.
        if not self._all_u(ins.args):
            self._demote(ins.out)

    def _walk_block(self, block: Optional[Block], mask_uniform: bool) -> None:
        if block is None:
            return
        for item in block.items:
            if isinstance(item, Instr):
                self._walk_instr(item, mask_uniform)
            elif isinstance(item, IfRegion):
                inner = mask_uniform and self._u(item.cond)
                self._walk_block(item.then_block, inner)
                self._walk_block(item.else_block, inner)
            elif isinstance(item, LoopRegion):
                # A loop body diverges whenever the condition varies or
                # any kill op can retire lanes mid-loop.
                inner = (mask_uniform
                         and (item.cond is None or self._u(item.cond))
                         and not block_has_kill(item.body_block))
                self._walk_block(item.cond_block, inner)
                self._walk_block(item.body_block, inner)
                self._walk_block(item.update_block, inner)
            elif isinstance(item, CondRegion):
                inner = mask_uniform and self._u(item.cond)
                self._walk_block(item.true_block, inner)
                self._walk_block(item.false_block, inner)
                if not (inner and self._u(item.true_reg)
                        and self._u(item.false_reg)):
                    self._demote(item.out)
            elif isinstance(item, ScRegion):
                inner = mask_uniform and self._u(item.left)
                self._walk_block(item.rhs_block, inner)
                if not (inner and self._u(item.right)):
                    self._demote(item.out)
            elif isinstance(item, FuncRegion):
                self._walk_block(item.body_block, mask_uniform)
                # No-return frames yield a fresh zero value (uniform);
                # frames containing returns are outside the JIT subset
                # anyway, so classify their out conservatively.
                if block_has_return(item.body_block):
                    self._demote(item.out)


def infer_uniform(program: CompiledProgram,
                  wide_globals: Set[str]) -> UniformInfo:
    """Classify every register of ``program`` as uniform or varying.

    ``wide_globals`` is the set of global names whose preset values are
    wider than batch 1 for the draw being compiled (attributes,
    varyings, gl_FragCoord, ...); the JIT keys its code cache on this
    set, so each (program, wide-set) pair is analysed once.
    """
    return _Inference(program, wide_globals).run()
