"""``repro.glsl.jit`` — NumPy-source JIT backend for compiled shaders.

The third execution backend (after the AST tree walker and the linear
IR executor): :mod:`.codegen` walks the optimised IR once per
(program, wide-global set) and emits a single straight-line vectorised
Python function, materialised with ``compile()``/``exec``.  Steady-state
kernel relaunches then run **zero interpreter instructions** — one
function call per shader stage per draw, all the work inside numpy.

:mod:`.uniform` supplies the uniform-lane inference that keeps
registers depending only on uniforms/constants at batch width 1, so
per-draw quantities are computed once instead of once per fragment.

:class:`JitExecutor` is the drop-in `execute(n, presets)` engine.  It
shares the IR executor's whole setup path (program cache, global
plans, preset binding) and differs only in how the body runs.
Programs using constructs outside the JIT subset (divergent returns,
structs, multi-step l-values — see :class:`~.codegen.JitUnsupported`)
fall back to the :class:`~repro.glsl.ir.executor.IRExecutor` at whole-
program granularity; each fallback *draw* increments the module-level
``jit_fallbacks`` counter.

Because the generated code does not tally ops dynamically, callers
that need :class:`~repro.perf.counters.OpCounters` totals get the
static IR-cost projection (:func:`repro.glsl.ir.static_cost`) instead,
applied once per draw.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

import numpy as np

import contextlib

from ..values import Value, zeros_for
from ..ir import get_compiled, static_cost
from ..ir.executor import IRExecutor
from .codegen import (
    JitUnsupported,
    gather_enabled,
    generate,
    set_gather_enabled,
)
from .uniform import UniformInfo, infer_uniform

__all__ = [
    "JitExecutor",
    "JitUnsupported",
    "UniformInfo",
    "codegen_events",
    "gather_enabled",
    "infer_uniform",
    "jit_fallbacks",
    "materialize",
    "reset_codegen_events",
    "reset_fallbacks",
    "set_gather_enabled",
    "texture_gather",
]

#: Number of draws that fell back to the IRExecutor because the
#: program (or this draw's runtime shape) is outside the JIT subset.
jit_fallbacks = 0

#: How generated functions were obtained this process: ``fresh``
#: (codegen ran, disk entry written), ``disk`` (rematerialised from
#: the persistent artifact store — exec of cached source only),
#: ``uncached`` (no source digest or cache disabled).  The warm-CI leg
#: asserts ``fresh`` stays zero on a second run against a shared
#: ``REPRO_CACHE_DIR``.
codegen_events = {"fresh": 0, "disk": 0, "uncached": 0}


def reset_codegen_events() -> None:
    for key in codegen_events:
        codegen_events[key] = 0


def reset_fallbacks() -> None:
    global jit_fallbacks
    jit_fallbacks = 0


def _bump_fallbacks() -> None:
    global jit_fallbacks
    jit_fallbacks += 1


@contextlib.contextmanager
def texture_gather(enabled: bool):
    """Scoped override of the texture-gather fast path (tests, A/B
    comparison).  Generation-time flag: functions generated inside the
    scope carry the override for their lifetime; functions cached
    earlier are untouched (the cache is keyed on the flag)."""
    previous = set_gather_enabled(enabled)
    try:
        yield
    finally:
        set_gather_enabled(previous)


def materialize(source: str, captured: Dict[str, object], fmodel):
    """Rebuild a generated JIT function from its source text and
    captured namespace — the warm-start path shared by the disk cache
    and the :mod:`repro.gles2.parallel` workers.  The helper closures
    are rebuilt from the float model; the returned function carries the
    same ``_jit_source``/``_jit_captured``/``_jit_gather_stats``
    attributes :func:`~.codegen.generate` attaches, so it is
    indistinguishable from a freshly generated one."""
    from .codegen import make_helpers

    ns = make_helpers(fmodel)
    ns.update(captured)
    exec(compile(source, "<jit:cache>", "exec"), ns)
    fn = ns["_jit_main"]
    fn._jit_source = source
    fn._jit_captured = dict(captured)
    fn._jit_gather_stats = ns["_gst"]
    return fn


def _disk_key(program, fmodel, wide: FrozenSet[str]):
    """The artifact-store key for one generated function, or None when
    the program has no source digest / the store is disabled."""
    from ...core import cache as artifact_cache

    digest = getattr(program.checked, "source_digest", None)
    if digest is None or not artifact_cache.enabled():
        return None
    return artifact_cache.artifact_key(
        "jit", digest,
        stage=getattr(program.checked, "stage", ""),
        model=artifact_cache.model_tag(fmodel),
        gather=gather_enabled(),
        wide=wide,
        fusion=getattr(program.checked, "fusion_signature", ""),
    )


def _jit_function(program, fmodel, wide: FrozenSet[str]):
    """Cached codegen: one compiled function per (program, wide set,
    gather flag).

    ``program`` instances are already memoised per (shader, float
    model) by :func:`repro.glsl.ir.get_compiled`, so attaching the JIT
    artifact cache to the program object gives the per-(shader,
    float-model) caching the launch path relies on.  Returns ``None``
    when the program is outside the JIT subset (negative result cached
    too, so unsupported shaders pay codegen only once).

    Under the in-memory memo sits the persistent artifact store: on a
    memory miss the generated source (or the ``unsupported`` verdict)
    is loaded from disk when some earlier process already generated
    it, and written there when codegen runs fresh.  The function's
    disk key is kept on ``fn._jit_disk_key`` so the multiprocess
    shading layer can ship a reference instead of the source text.
    """
    from ...core import cache as artifact_cache
    from ...testing import faults

    if faults.fire("jit_error"):
        # Injected codegen failure: this *draw* degrades to the IR
        # executor (bit-identical by the backend contract) without
        # poisoning the in-memory memo or the persistent store — the
        # next draw may JIT normally.
        from ...perf.counters import fault_path_stats

        fault_path_stats.fault_fallbacks += 1
        return None

    cache = getattr(program, "_jit_cache", None)
    if cache is None:
        cache = program._jit_cache = {}
    key = (wide, gather_enabled())
    if key in cache:
        return cache[key]
    rejected = getattr(program, "_jit_unsupported", None)
    if rejected is None:
        rejected = program._jit_unsupported = {}
    if key in rejected:
        return None
    from ...perf import trace

    with trace.span("compile.jit", "compile") as sp:
        if sp is not None:
            sp.args["stage"] = getattr(program.checked, "stage", "")
        disk_key = _disk_key(program, fmodel, wide)
        if disk_key is not None:
            payload = artifact_cache.get(disk_key)
            if payload is not None:
                entry = artifact_cache.load_jit_entry(payload)
                fn = None
                if entry is not None and "unsupported" in entry:
                    rejected[key] = entry["unsupported"]
                    codegen_events["disk"] += 1
                    if sp is not None:
                        sp.args.update(event="disk", unsupported=True)
                    return None
                if entry is not None:
                    try:
                        fn = materialize(
                            entry["source"],
                            artifact_cache.decode_captured(
                                entry["captured"]
                            ),
                            fmodel,
                        )
                    except (SyntaxError, KeyError, NameError, TypeError,
                            ValueError, AttributeError) as exc:
                        # A stale artifact whose source no longer
                        # compiles or whose captured namespace no
                        # longer resolves: treat as corrupt data
                        # (invalidated below), never as a fatal error
                        # — the healthy path regenerates.
                        artifact_cache.stats.load_failures += 1
                        faults.note_swallowed("jit_materialize", exc)
                        fn = None
                if fn is not None:
                    fn._jit_disk_key = disk_key
                    codegen_events["disk"] += 1
                    cache[key] = fn
                    if sp is not None:
                        sp.args["event"] = "disk"
                    return fn
                artifact_cache.invalidate(disk_key)
        try:
            fn = generate(program, fmodel, wide)
        except JitUnsupported as exc:
            rejected[key] = str(exc)
            if disk_key is not None:
                artifact_cache.put(
                    disk_key,
                    artifact_cache.dump_jit_unsupported(str(exc)),
                    "jit",
                )
            if sp is not None:
                sp.args.update(event="fresh", unsupported=True)
            return None
        fn._jit_disk_key = disk_key
        if disk_key is not None:
            codegen_events["fresh"] += 1
            encoded = artifact_cache.encode_captured(fn._jit_captured)
            if encoded is not None:
                artifact_cache.put(
                    disk_key,
                    artifact_cache.dump_jit_entry(
                        fn._jit_source, encoded
                    ),
                    "jit",
                )
        else:
            codegen_events["uncached"] += 1
        cache[key] = fn
        if sp is not None:
            sp.args["event"] = (
                "fresh" if disk_key is not None else "uncached"
            )
        return fn


class JitExecutor(IRExecutor):
    """Drop-in replacement for :class:`IRExecutor` that calls the
    generated straight-line numpy function instead of dispatching IR
    instructions.  Same constructor, same ``execute(n, presets)``
    contract, bit-identical observable results."""

    #: Texture-gather tallies, accumulated across this executor's
    #: ``execute`` calls (one executor serves one draw, so tiled draws
    #: sum naturally).  One count per gather-site execution: a site
    #: inside a loop counts once per iteration, matching how often the
    #: wrap/scale/filter pipeline it replaces would have run.
    texture_gathers = 0
    gather_fallbacks = 0

    def execute(self, n: int, presets: Dict[str, Value],
                count_globals: bool = True) -> Dict[str, Value]:
        program = self.program
        if program is None or program.checked is not self.checked:
            program = get_compiled(self.checked, self.fmodel)
            self.program = program

        wide = frozenset(
            name for name, value in presets.items()
            if value.batch > 1
        )
        fn = _jit_function(program, self.fmodel, wide)
        if fn is None:
            _bump_fallbacks()
            return super().execute(n, presets, count_globals)

        # Same preset/global binding as IRExecutor.execute.  The IR
        # dispatch state (exec_mask, control stacks, frames) is not
        # allocated: the generated function threads masks through
        # locals, and the fallback path re-initialises everything.
        self.n = n
        self.globals_env = {}
        self.consts = program.materialized_consts(self.fmodel)
        self.regs = [None] * program.nregs

        saved_counters = self.counters
        if not count_globals:
            self.counters = None
        try:
            simple_inits = program.simple_inits()
            for plan in program.globals_plan:
                if plan.name in presets:
                    value = presets[plan.name]
                elif plan.is_sampler:
                    value = Value(plan.type)
                elif plan.init_block is not None:
                    idx = simple_inits.get(plan.name)
                    if idx is not None:
                        gtype, data = self.consts[idx]
                        value = Value(gtype, data)
                    else:
                        value = self._run_global_init(program, plan)
                else:
                    value = zeros_for(plan.type, 1, self.fmodel.dtype)
                self.regs[plan.reg] = value
                self.globals_env[plan.name] = value
        finally:
            self.counters = saved_counters
        for name, value in presets.items():
            self.globals_env.setdefault(name, value)

        gst = getattr(fn, "_jit_gather_stats", None)
        gst_before = tuple(gst) if gst is not None else None
        try:
            discarded = fn(self.regs, n, self.max_loop_iterations)
        except (NameError, UnboundLocalError):
            # A cross-region CSE'd value whose defining branch did not
            # execute on this draw left a Python local unbound.  The
            # generated function only publishes results in its final
            # writeback, so nothing is half-written: run the draw on
            # the IR executor instead (full re-setup included).  Any
            # partial gather tally is dropped with the partial run.
            _bump_fallbacks()
            return super().execute(n, presets, count_globals)
        if gst_before is not None:
            self.texture_gathers += gst[0] - gst_before[0]
            self.gather_fallbacks += gst[1] - gst_before[1]
        if discarded is not None:
            self.discarded = self._broadcast_mask(discarded)
        else:
            self.discarded = np.zeros(n, dtype=bool)

        if self.counters is not None:
            self._charge_static(program, n, count_globals)
        return self.globals_env

    def _charge_static(self, program, n: int, count_globals: bool) -> None:
        """Charge the static counter projection for a draw of ``n``
        lanes.  The projection splits per-invocation from per-draw
        (global-initializer) cost; tiled callers charge the per-draw
        part on the first tile only, mirroring the dynamic executors'
        count_globals semantics."""
        if self.counters is None:
            return
        totals_cache = getattr(program, "_static_totals", None)
        if totals_cache is None:
            totals_cache = program._static_totals = {}
        totals = totals_cache.get((n, count_globals))
        if totals is None:
            cost = getattr(program, "_static_cost", None)
            if cost is None:
                cost = program._static_cost = static_cost(program)
            projected = dict(cost.totals(n))
            if not count_globals:
                for category, ops in cost.per_draw.items():
                    projected[category] = projected.get(category, 0) - ops
            totals = totals_cache[(n, count_globals)] = [
                (category, count)
                for category, count in projected.items()
                if count
            ]
        for category, count in totals:
            self.counters.add(category, count)
