"""AST optimisation passes: constant folding and static branch pruning.

Runs between parsing and type checking (purely syntactic, no symbol
information needed) — the same early folding a mobile GLSL compiler
performs.  Two transformations:

* **constant folding** — arithmetic, comparisons and logic over
  literals collapse to literals (``2.0 * 3.0`` → ``6.0``); unary
  minus/plus/not over literals fold too.  Division keeps GLSL
  semantics: int/int truncates toward zero, folding is skipped on
  division by a literal zero (left for the runtime's defined-as-zero
  behaviour and the checker's diagnostics).
* **branch pruning** — ``if (true)``/``if (false)`` statements and
  constant ternaries reduce to the taken branch.  Pruned-away code is
  never type-checked, matching how drivers treat ``#ifdef``-style
  constant guards.

Folding is conservative: anything with potential side effects or
non-literal operands is left untouched.
"""

from __future__ import annotations

from typing import Optional

from . import ast_nodes as ast


def optimize(unit: ast.TranslationUnit) -> ast.TranslationUnit:
    """Fold constants and prune static branches in place."""
    for decl in unit.declarations:
        if isinstance(decl, ast.FunctionDef) and decl.body is not None:
            decl.body = _fold_stmt(decl.body)
        elif isinstance(decl, ast.GlobalDecl):
            for declarator in decl.declarators:
                if declarator.initializer is not None:
                    declarator.initializer = _fold_expr(declarator.initializer)
                if declarator.array_size is not None:
                    declarator.array_size = _fold_expr(declarator.array_size)
    return unit


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
def _fold_stmt(stmt: ast.Stmt) -> ast.Stmt:
    if isinstance(stmt, ast.CompoundStmt):
        stmt.statements = [_fold_stmt(s) for s in stmt.statements]
        return stmt
    if isinstance(stmt, ast.DeclStmt):
        for declarator in stmt.declarators:
            if declarator.initializer is not None:
                declarator.initializer = _fold_expr(declarator.initializer)
            if declarator.array_size is not None:
                declarator.array_size = _fold_expr(declarator.array_size)
        return stmt
    if isinstance(stmt, ast.ExprStmt):
        stmt.expr = _fold_expr(stmt.expr)
        return stmt
    if isinstance(stmt, ast.IfStmt):
        stmt.condition = _fold_expr(stmt.condition)
        stmt.then_branch = _fold_stmt(stmt.then_branch)
        if stmt.else_branch is not None:
            stmt.else_branch = _fold_stmt(stmt.else_branch)
        if isinstance(stmt.condition, ast.BoolLiteral):
            if stmt.condition.value:
                return stmt.then_branch
            if stmt.else_branch is not None:
                return stmt.else_branch
            return ast.CompoundStmt(line=stmt.line)
        return stmt
    if isinstance(stmt, ast.ForStmt):
        if stmt.init is not None:
            stmt.init = _fold_stmt(stmt.init)
        if stmt.condition is not None:
            stmt.condition = _fold_expr(stmt.condition)
        if stmt.update is not None:
            stmt.update = _fold_expr(stmt.update)
        stmt.body = _fold_stmt(stmt.body)
        return stmt
    if isinstance(stmt, ast.WhileStmt):
        stmt.condition = _fold_expr(stmt.condition)
        stmt.body = _fold_stmt(stmt.body)
        # while(false) never executes.
        if isinstance(stmt.condition, ast.BoolLiteral) and not stmt.condition.value:
            return ast.CompoundStmt(line=stmt.line)
        return stmt
    if isinstance(stmt, ast.DoWhileStmt):
        stmt.body = _fold_stmt(stmt.body)
        stmt.condition = _fold_expr(stmt.condition)
        return stmt
    if isinstance(stmt, ast.ReturnStmt):
        if stmt.value is not None:
            stmt.value = _fold_expr(stmt.value)
        return stmt
    return stmt


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
def _literal_value(expr: ast.Expr):
    if isinstance(expr, (ast.IntLiteral, ast.FloatLiteral, ast.BoolLiteral)):
        return expr.value
    return None


def _make_literal(value, template: ast.Expr) -> Optional[ast.Expr]:
    line = template.line
    if isinstance(value, bool):
        return ast.BoolLiteral(value=value, line=line)
    if isinstance(value, int):
        if not -(2**31) <= value < 2**31:
            return None  # would overflow int32: leave unfolded
        return ast.IntLiteral(value=value, line=line)
    if isinstance(value, float):
        return ast.FloatLiteral(value=value, line=line)
    return None


def _fold_expr(expr: ast.Expr) -> ast.Expr:
    if isinstance(expr, ast.UnaryOp):
        expr.operand = _fold_expr(expr.operand)
        value = _literal_value(expr.operand)
        if value is not None:
            if expr.op == "-" and not isinstance(value, bool):
                folded = _make_literal(-value, expr)
                if folded is not None:
                    return folded
            if expr.op == "+" and not isinstance(value, bool):
                return expr.operand
            if expr.op == "!" and isinstance(value, bool):
                return ast.BoolLiteral(value=not value, line=expr.line)
        return expr

    if isinstance(expr, ast.BinaryOp):
        expr.left = _fold_expr(expr.left)
        expr.right = _fold_expr(expr.right)
        left = _literal_value(expr.left)
        right = _literal_value(expr.right)
        if left is None or right is None:
            return expr
        folded = _fold_binary(expr.op, left, right, expr)
        return folded if folded is not None else expr

    if isinstance(expr, ast.Conditional):
        expr.condition = _fold_expr(expr.condition)
        expr.if_true = _fold_expr(expr.if_true)
        expr.if_false = _fold_expr(expr.if_false)
        condition = _literal_value(expr.condition)
        if isinstance(condition, bool):
            return expr.if_true if condition else expr.if_false
        return expr

    if isinstance(expr, ast.Assignment):
        expr.value = _fold_expr(expr.value)
        # Target subexpressions (indices) can fold too.
        expr.target = _fold_expr(expr.target)
        return expr

    if isinstance(expr, ast.Call):
        expr.args = [_fold_expr(a) for a in expr.args]
        return expr

    if isinstance(expr, ast.FieldAccess):
        expr.base = _fold_expr(expr.base)
        return expr

    if isinstance(expr, ast.IndexAccess):
        expr.base = _fold_expr(expr.base)
        expr.index = _fold_expr(expr.index)
        return expr

    if isinstance(expr, ast.CommaExpr):
        expr.left = _fold_expr(expr.left)
        expr.right = _fold_expr(expr.right)
        return expr

    return expr


def _fold_binary(op: str, left, right, template: ast.Expr) -> Optional[ast.Expr]:
    left_is_bool = isinstance(left, bool)
    right_is_bool = isinstance(right, bool)

    if op in ("&&", "||", "^^"):
        if not (left_is_bool and right_is_bool):
            return None
        value = {
            "&&": left and right,
            "||": left or right,
            "^^": left != right,
        }[op]
        return ast.BoolLiteral(value=bool(value), line=template.line)

    if left_is_bool or right_is_bool:
        if op in ("==", "!="):
            if left_is_bool and right_is_bool:
                value = (left == right) if op == "==" else (left != right)
                return ast.BoolLiteral(value=value, line=template.line)
        return None

    # Numeric operands: GLSL forbids mixing int and float — leave such
    # (ill-typed) expressions for the checker's diagnostics.
    if isinstance(left, int) != isinstance(right, int):
        return None

    if op in ("==", "!=", "<", ">", "<=", ">="):
        value = {
            "==": left == right,
            "!=": left != right,
            "<": left < right,
            ">": left > right,
            "<=": left <= right,
            ">=": left >= right,
        }[op]
        return ast.BoolLiteral(value=value, line=template.line)

    if op == "+":
        return _make_literal(left + right, template)
    if op == "-":
        return _make_literal(left - right, template)
    if op == "*":
        return _make_literal(left * right, template)
    if op == "/":
        if right == 0:
            return None  # runtime defines this; don't fold
        if isinstance(left, int):
            return _make_literal(int(left / right), template)
        return _make_literal(left / right, template)
    return None
