"""AST optimisation entry point (compatibility shim).

The constant-folding / static-branch-pruning walk that used to live
here is now the front half of the IR pass pipeline —
:mod:`repro.glsl.ir.foldrules` — where it runs before type checking,
ahead of the typed abstract-execution folding, select-conversion, CSE
and DCE passes in :mod:`repro.glsl.ir.passes` that subsume everything
else this module used to do.

:func:`optimize` keeps its historical signature and in-place folding
behaviour so existing imports and tests keep working.
"""

from __future__ import annotations

from . import ast_nodes as ast
from .ir.foldrules import fold_unit


def optimize(unit: ast.TranslationUnit) -> ast.TranslationUnit:
    """Fold constants and prune static branches in place.

    Thin shim over :func:`repro.glsl.ir.foldrules.fold_unit`."""
    return fold_unit(unit)
