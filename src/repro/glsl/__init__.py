"""GLSL ES 1.00 front end and vectorised interpreter.

The shading-language substrate of the reproduction: a lexer,
preprocessor, recursive-descent parser, type checker enforcing the
GLSL ES 1.00 rules (no implicit conversions, reserved operators, no
recursion) and a SIMT-style interpreter that executes shaders over
whole vertex/fragment batches using numpy.

Quick use::

    from repro.glsl import compile_shader, Interpreter
    checked = compile_shader(source, stage="fragment")
    interp = Interpreter(checked)
    env = interp.execute(n, presets)
"""

from .errors import (
    GlslError,
    GlslLimitError,
    GlslPreprocessorError,
    GlslRuntimeError,
    GlslSyntaxError,
    GlslTypeError,
)
from .interp import Interpreter, compile_shader
from .optimize import optimize
from .printer import print_expr, print_stmt, print_unit
from .scalar_ref import FragmentDiscarded, ScalarInterpreter, python_value
from .typecheck import CheckedShader, ShaderStage, check
from .types import GlslType

__all__ = [
    "GlslError",
    "GlslSyntaxError",
    "GlslPreprocessorError",
    "GlslTypeError",
    "GlslRuntimeError",
    "GlslLimitError",
    "Interpreter",
    "ScalarInterpreter",
    "FragmentDiscarded",
    "python_value",
    "compile_shader",
    "CheckedShader",
    "ShaderStage",
    "check",
    "GlslType",
    "optimize",
    "print_unit",
    "print_stmt",
    "print_expr",
]
