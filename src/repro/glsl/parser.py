"""Recursive-descent parser for GLSL ES 1.00.

Builds the AST defined in :mod:`repro.glsl.ast_nodes`.  The parser is
purely syntactic except for one classic C-family necessity: it tracks
declared struct names so that ``MyStruct s;`` inside a function body is
recognised as a declaration rather than an expression statement.

Operators that GLSL ES 1.00 *reserves* (``%``, shifts, bitwise ops and
their assignment forms) are parsed here and rejected with a clear
message by the type checker, which gives better diagnostics than a
bare syntax error.
"""

from __future__ import annotations

from typing import List, Optional, Set

from . import ast_nodes as ast
from .errors import GlslSyntaxError
from .lexer import Token, TokenType, int_literal_value, tokenize
from .types import BUILTIN_TYPE_NAMES, GlslType, array_of, struct_type

_PRECISIONS = ("lowp", "mediump", "highp")
_TYPE_QUALIFIERS = ("const", "attribute", "uniform", "varying")
_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=", "|=", "^=")


def parse(source: str) -> ast.TranslationUnit:
    """Parse preprocessed GLSL source into a translation unit."""
    return Parser(tokenize(source)).parse_translation_unit()


class Parser:
    """Token-stream cursor with one token of lookahead (peek(k) for
    the few places needing more)."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        self.struct_names: Set[str] = set()
        self.struct_types: dict = {}

    # ------------------------------------------------------------------
    # Cursor helpers
    # ------------------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.type != TokenType.EOF:
            self.pos += 1
        return tok

    def check(self, type_: str, value: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.type == type_ and (value is None or tok.value == value)

    def check_op(self, *values: str) -> bool:
        tok = self.peek()
        return tok.type == TokenType.OP and tok.value in values

    def check_kw(self, *values: str) -> bool:
        tok = self.peek()
        return tok.type == TokenType.KEYWORD and tok.value in values

    def match_op(self, *values: str) -> Optional[Token]:
        if self.check_op(*values):
            return self.advance()
        return None

    def match_kw(self, *values: str) -> Optional[Token]:
        if self.check_kw(*values):
            return self.advance()
        return None

    def expect_op(self, value: str) -> Token:
        if not self.check_op(value):
            tok = self.peek()
            raise GlslSyntaxError(
                f"expected '{value}' but found '{tok.value or '<eof>'}'",
                line=tok.line,
                column=tok.column,
            )
        return self.advance()

    def expect_ident(self) -> Token:
        if not self.check(TokenType.IDENT):
            tok = self.peek()
            raise GlslSyntaxError(
                f"expected identifier but found '{tok.value or '<eof>'}'",
                line=tok.line,
                column=tok.column,
            )
        return self.advance()

    def error(self, message: str) -> GlslSyntaxError:
        tok = self.peek()
        return GlslSyntaxError(message, line=tok.line, column=tok.column)

    # ------------------------------------------------------------------
    # Translation unit
    # ------------------------------------------------------------------
    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit(line=1)
        while not self.check(TokenType.EOF):
            unit.declarations.append(self.parse_external_declaration())
        return unit

    def parse_external_declaration(self) -> ast.Node:
        tok = self.peek()
        if self.check_kw("precision"):
            return self.parse_precision_decl()
        if self.check_kw("struct"):
            return self.parse_struct_and_maybe_decl()

        is_invariant = bool(self.match_kw("invariant"))
        qualifier = None
        is_const = False
        qual_tok = self.match_kw(*_TYPE_QUALIFIERS)
        if qual_tok:
            if qual_tok.value == "const":
                is_const = True
            else:
                qualifier = qual_tok.value
        precision = None
        prec_tok = self.match_kw(*_PRECISIONS)
        if prec_tok:
            precision = prec_tok.value

        if self.check_kw("struct"):
            node = self.parse_struct_and_maybe_decl()
            if isinstance(node, ast.GlobalDecl):
                node.qualifier = qualifier
                node.is_const = is_const
                node.is_invariant = is_invariant
            return node

        type_name = self.parse_type_name()

        # A bare `void main() {...}` or prototype.
        name_tok = self.expect_ident()
        if self.check_op("(") and qualifier is None and not is_const:
            return self.parse_function_rest(type_name, name_tok)

        decl = ast.GlobalDecl(
            qualifier=qualifier,
            is_const=is_const,
            is_invariant=is_invariant,
            precision=precision,
            type_name=type_name,
            line=tok.line,
        )
        decl.struct = self.struct_types.get(type_name)
        decl.declarators.append(self.parse_declarator_rest(name_tok))
        while self.match_op(","):
            next_name = self.expect_ident()
            decl.declarators.append(self.parse_declarator_rest(next_name))
        self.expect_op(";")
        return decl

    def parse_precision_decl(self) -> ast.PrecisionDecl:
        tok = self.advance()  # 'precision'
        prec = self.match_kw(*_PRECISIONS)
        if not prec:
            raise self.error("expected precision qualifier")
        type_name = self.parse_type_name()
        self.expect_op(";")
        return ast.PrecisionDecl(precision=prec.value, type_name=type_name, line=tok.line)

    def parse_type_name(self) -> str:
        tok = self.peek()
        if tok.type == TokenType.KEYWORD and tok.value in BUILTIN_TYPE_NAMES:
            self.advance()
            return tok.value
        if tok.type == TokenType.IDENT and tok.value in self.struct_names:
            self.advance()
            return tok.value
        raise self.error(f"expected type name but found '{tok.value or '<eof>'}'")

    def parse_struct_and_maybe_decl(self) -> ast.Node:
        tok = self.advance()  # 'struct'
        name_tok = self.expect_ident()
        self.expect_op("{")
        fields = []
        while not self.check_op("}"):
            self.match_kw(*_PRECISIONS)
            member_type_name = self.parse_type_name()
            member_type = self._named_type(member_type_name)
            while True:
                member_name = self.expect_ident().value
                if self.match_op("["):
                    size_expr = self.parse_constant_int()
                    self.expect_op("]")
                    fields.append((member_name, array_of(member_type, size_expr)))
                else:
                    fields.append((member_name, member_type))
                if not self.match_op(","):
                    break
            self.expect_op(";")
        self.expect_op("}")
        stype = struct_type(name_tok.value, fields)
        self.struct_names.add(name_tok.value)
        self.struct_types[name_tok.value] = stype

        if self.check_op(";"):
            self.advance()
            return ast.StructDef(name=name_tok.value, resolved=stype, line=tok.line)

        # struct S {...} instance;
        decl = ast.GlobalDecl(type_name=name_tok.value, line=tok.line, struct=stype)
        while True:
            inst = self.expect_ident()
            decl.declarators.append(self.parse_declarator_rest(inst))
            if not self.match_op(","):
                break
        self.expect_op(";")
        return decl

    def _named_type(self, name: str) -> GlslType:
        if name in BUILTIN_TYPE_NAMES:
            return BUILTIN_TYPE_NAMES[name]
        if name in self.struct_types:
            return self.struct_types[name]
        raise self.error(f"unknown type '{name}'")

    def parse_constant_int(self) -> int:
        """Parse an integer literal used as an array size at parse time.

        General constant expressions in array sizes are resolved by the
        type checker; at parse time we accept a literal or identifier
        and defer, but struct members need the literal form.
        """
        tok = self.peek()
        if tok.type == TokenType.INTCONST:
            self.advance()
            return int_literal_value(tok.value)
        raise self.error("expected integer constant")

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------
    def parse_function_rest(self, return_type: str, name_tok: Token) -> ast.FunctionDef:
        self.expect_op("(")
        params: List[ast.Param] = []
        if not self.check_op(")"):
            if self.check_kw("void") and self.peek(1).value == ")":
                self.advance()
            else:
                params.append(self.parse_param())
                while self.match_op(","):
                    params.append(self.parse_param())
        self.expect_op(")")
        func = ast.FunctionDef(
            name=name_tok.value,
            return_type_name=return_type,
            params=params,
            line=name_tok.line,
        )
        if self.match_op(";"):
            return func  # prototype
        func.body = self.parse_compound_stmt()
        return func

    def parse_param(self) -> ast.Param:
        tok = self.peek()
        is_const = bool(self.match_kw("const"))
        direction = "in"
        dir_tok = self.match_kw("in", "out", "inout")
        if dir_tok:
            direction = dir_tok.value
        precision = None
        prec_tok = self.match_kw(*_PRECISIONS)
        if prec_tok:
            precision = prec_tok.value
        type_name = self.parse_type_name()
        name = ""
        if self.check(TokenType.IDENT):
            name = self.advance().value
        array_size = None
        if self.match_op("["):
            array_size = self.parse_conditional_expr()
            self.expect_op("]")
        return ast.Param(
            name=name,
            type_name=type_name,
            direction=direction,
            array_size=array_size,
            precision=precision,
            is_const=is_const,
            line=tok.line,
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_compound_stmt(self) -> ast.CompoundStmt:
        open_tok = self.expect_op("{")
        block = ast.CompoundStmt(line=open_tok.line)
        while not self.check_op("}"):
            if self.check(TokenType.EOF):
                raise self.error("unterminated block")
            block.statements.append(self.parse_statement())
        self.expect_op("}")
        return block

    def parse_statement(self) -> ast.Stmt:
        tok = self.peek()
        if self.check_op("{"):
            return self.parse_compound_stmt()
        if self.check_kw("if"):
            return self.parse_if()
        if self.check_kw("for"):
            return self.parse_for()
        if self.check_kw("while"):
            return self.parse_while()
        if self.check_kw("do"):
            return self.parse_do_while()
        if self.check_kw("return"):
            self.advance()
            value = None
            if not self.check_op(";"):
                value = self.parse_expression()
            self.expect_op(";")
            return ast.ReturnStmt(value=value, line=tok.line)
        if self.check_kw("break"):
            self.advance()
            self.expect_op(";")
            return ast.BreakStmt(line=tok.line)
        if self.check_kw("continue"):
            self.advance()
            self.expect_op(";")
            return ast.ContinueStmt(line=tok.line)
        if self.check_kw("discard"):
            self.advance()
            self.expect_op(";")
            return ast.DiscardStmt(line=tok.line)
        if self.check_op(";"):
            self.advance()
            return ast.CompoundStmt(line=tok.line)  # empty statement
        if self._starts_declaration():
            return self.parse_declaration_stmt()
        expr = self.parse_expression()
        self.expect_op(";")
        return ast.ExprStmt(expr=expr, line=tok.line)

    def _starts_declaration(self) -> bool:
        tok = self.peek()
        if tok.type == TokenType.KEYWORD:
            if tok.value in _PRECISIONS or tok.value == "const":
                return True
            if tok.value in BUILTIN_TYPE_NAMES:
                # `float(x)` is a constructor call, not a declaration;
                # a declaration is followed by an identifier.
                return self.peek(1).type == TokenType.IDENT
        if tok.type == TokenType.IDENT and tok.value in self.struct_names:
            return self.peek(1).type == TokenType.IDENT
        return False

    def parse_declaration_stmt(self) -> ast.DeclStmt:
        tok = self.peek()
        is_const = bool(self.match_kw("const"))
        precision = None
        prec_tok = self.match_kw(*_PRECISIONS)
        if prec_tok:
            precision = prec_tok.value
        type_name = self.parse_type_name()
        decl = ast.DeclStmt(
            type_name=type_name,
            is_const=is_const,
            precision=precision,
            line=tok.line,
        )
        decl.struct = self.struct_types.get(type_name)
        while True:
            name_tok = self.expect_ident()
            decl.declarators.append(self.parse_declarator_rest(name_tok))
            if not self.match_op(","):
                break
        self.expect_op(";")
        return decl

    def parse_declarator_rest(self, name_tok: Token) -> ast.Declarator:
        declarator = ast.Declarator(name=name_tok.value, line=name_tok.line)
        if self.match_op("["):
            declarator.array_size = self.parse_conditional_expr()
            self.expect_op("]")
        if self.match_op("="):
            declarator.initializer = self.parse_assignment_expr()
        return declarator

    def parse_if(self) -> ast.IfStmt:
        tok = self.advance()
        self.expect_op("(")
        condition = self.parse_expression()
        self.expect_op(")")
        then_branch = self.parse_statement()
        else_branch = None
        if self.match_kw("else"):
            else_branch = self.parse_statement()
        return ast.IfStmt(
            condition=condition,
            then_branch=then_branch,
            else_branch=else_branch,
            line=tok.line,
        )

    def parse_for(self) -> ast.ForStmt:
        tok = self.advance()
        self.expect_op("(")
        init: Optional[ast.Stmt] = None
        if self.check_op(";"):
            self.advance()
        elif self._starts_declaration():
            init = self.parse_declaration_stmt()
        else:
            init = ast.ExprStmt(expr=self.parse_expression(), line=self.peek().line)
            self.expect_op(";")
        condition = None
        if not self.check_op(";"):
            condition = self.parse_expression()
        self.expect_op(";")
        update = None
        if not self.check_op(")"):
            update = self.parse_expression()
        self.expect_op(")")
        body = self.parse_statement()
        return ast.ForStmt(
            init=init, condition=condition, update=update, body=body, line=tok.line
        )

    def parse_while(self) -> ast.WhileStmt:
        tok = self.advance()
        self.expect_op("(")
        condition = self.parse_expression()
        self.expect_op(")")
        body = self.parse_statement()
        return ast.WhileStmt(condition=condition, body=body, line=tok.line)

    def parse_do_while(self) -> ast.DoWhileStmt:
        tok = self.advance()
        body = self.parse_statement()
        if not self.match_kw("while"):
            raise self.error("expected 'while' after do-block")
        self.expect_op("(")
        condition = self.parse_expression()
        self.expect_op(")")
        self.expect_op(";")
        return ast.DoWhileStmt(body=body, condition=condition, line=tok.line)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing, spec §5.1 table)
    # ------------------------------------------------------------------
    def parse_expression(self) -> ast.Expr:
        expr = self.parse_assignment_expr()
        while self.check_op(","):
            tok = self.advance()
            right = self.parse_assignment_expr()
            expr = ast.CommaExpr(left=expr, right=right, line=tok.line)
        return expr

    def parse_assignment_expr(self) -> ast.Expr:
        left = self.parse_conditional_expr()
        if self.check_op(*_ASSIGN_OPS):
            tok = self.advance()
            value = self.parse_assignment_expr()
            return ast.Assignment(op=tok.value, target=left, value=value, line=tok.line)
        return left

    def parse_conditional_expr(self) -> ast.Expr:
        condition = self.parse_binary_expr(0)
        if self.check_op("?"):
            tok = self.advance()
            if_true = self.parse_assignment_expr()
            self.expect_op(":")
            if_false = self.parse_assignment_expr()
            return ast.Conditional(
                condition=condition, if_true=if_true, if_false=if_false, line=tok.line
            )
        return condition

    #: Binary operator precedence levels, loosest first.
    _BINARY_LEVELS = [
        ("||",),
        ("^^",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", ">", "<=", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def parse_binary_expr(self, level: int) -> ast.Expr:
        if level >= len(self._BINARY_LEVELS):
            return self.parse_unary_expr()
        ops = self._BINARY_LEVELS[level]
        expr = self.parse_binary_expr(level + 1)
        while self.check_op(*ops):
            tok = self.advance()
            right = self.parse_binary_expr(level + 1)
            expr = ast.BinaryOp(op=tok.value, left=expr, right=right, line=tok.line)
        return expr

    def parse_unary_expr(self) -> ast.Expr:
        tok = self.peek()
        if self.check_op("++", "--"):
            self.advance()
            operand = self.parse_unary_expr()
            return ast.PrefixIncDec(op=tok.value, operand=operand, line=tok.line)
        if self.check_op("+", "-", "!", "~"):
            self.advance()
            operand = self.parse_unary_expr()
            return ast.UnaryOp(op=tok.value, operand=operand, line=tok.line)
        return self.parse_postfix_expr()

    def parse_postfix_expr(self) -> ast.Expr:
        expr = self.parse_primary_expr()
        while True:
            tok = self.peek()
            if self.check_op("["):
                self.advance()
                index = self.parse_expression()
                self.expect_op("]")
                expr = ast.IndexAccess(base=expr, index=index, line=tok.line)
            elif self.check_op("."):
                self.advance()
                # Field name may lexically collide with a keyword-ish
                # token only if it is an identifier; swizzles always are.
                field_tok = self.expect_ident()
                expr = ast.FieldAccess(
                    base=expr, field_name=field_tok.value, line=tok.line
                )
            elif self.check_op("++", "--"):
                self.advance()
                expr = ast.PostfixIncDec(op=tok.value, operand=expr, line=tok.line)
            else:
                return expr

    def parse_primary_expr(self) -> ast.Expr:
        tok = self.peek()
        if tok.type == TokenType.INTCONST:
            self.advance()
            return ast.IntLiteral(value=int_literal_value(tok.value), line=tok.line)
        if tok.type == TokenType.FLOATCONST:
            self.advance()
            return ast.FloatLiteral(value=float(tok.value), line=tok.line)
        if tok.type == TokenType.BOOLCONST:
            self.advance()
            return ast.BoolLiteral(value=tok.value == "true", line=tok.line)
        if self.check_op("("):
            self.advance()
            expr = self.parse_expression()
            self.expect_op(")")
            return expr
        if tok.type == TokenType.KEYWORD and tok.value in BUILTIN_TYPE_NAMES:
            # Constructor: vec4(...), float(...), mat3(...)
            self.advance()
            return self.parse_call_rest(tok)
        if tok.type == TokenType.IDENT:
            self.advance()
            if self.check_op("("):
                return self.parse_call_rest(tok)
            return ast.Identifier(name=tok.value, line=tok.line)
        raise self.error(f"unexpected token '{tok.value or '<eof>'}' in expression")

    def parse_call_rest(self, callee_tok: Token) -> ast.Call:
        self.expect_op("(")
        args: List[ast.Expr] = []
        if not self.check_op(")"):
            if self.check_kw("void") and self.peek(1).value == ")":
                self.advance()
            else:
                args.append(self.parse_assignment_expr())
                while self.match_op(","):
                    args.append(self.parse_assignment_expr())
        self.expect_op(")")
        return ast.Call(callee=callee_tok.value, args=args, line=callee_tok.line)
