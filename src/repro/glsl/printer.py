"""AST -> GLSL source pretty-printer.

Closes the compiler loop: ``parse(print(ast))`` reproduces the same
AST (tested), which makes optimisation passes inspectable — dump the
folded tree as source and read exactly what will execute.  Also used
by error tooling to show reduced shaders.
"""

from __future__ import annotations

from typing import List

from . import ast_nodes as ast

#: Binary operator precedence (higher binds tighter), mirroring the
#: parser's table.
_PRECEDENCE = {
    "||": 1, "^^": 2, "&&": 3,
    "|": 4, "^": 5, "&": 6,
    "==": 7, "!=": 7,
    "<": 8, ">": 8, "<=": 8, ">=": 8,
    "<<": 9, ">>": 9,
    "+": 10, "-": 10,
    "*": 11, "/": 11, "%": 11,
}
_UNARY_PRECEDENCE = 12


def print_unit(unit: ast.TranslationUnit) -> str:
    """Render a whole translation unit."""
    parts: List[str] = []
    for decl in unit.declarations:
        parts.append(_print_declaration(decl))
    return "\n".join(parts) + "\n"


def print_expr(expr: ast.Expr, parent_precedence: int = 0) -> str:
    """Render one expression (minimal parentheses)."""
    if isinstance(expr, ast.IntLiteral):
        return str(expr.value)
    if isinstance(expr, ast.FloatLiteral):
        text = repr(float(expr.value))
        if "e" not in text and "." not in text and "inf" not in text:
            text += ".0"
        return text
    if isinstance(expr, ast.BoolLiteral):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.UnaryOp):
        inner = print_expr(expr.operand, _UNARY_PRECEDENCE)
        if expr.op in ("-", "+") and inner.startswith(expr.op):
            # "-" next to "-1.5" or "-x" would lex as "--" (decrement).
            inner = f"({inner})"
        text = f"{expr.op}{inner}"
        return f"({text})" if parent_precedence > _UNARY_PRECEDENCE else text
    if isinstance(expr, ast.PrefixIncDec):
        return f"{expr.op}{print_expr(expr.operand, _UNARY_PRECEDENCE)}"
    if isinstance(expr, ast.PostfixIncDec):
        return f"{print_expr(expr.operand, _UNARY_PRECEDENCE)}{expr.op}"
    if isinstance(expr, ast.BinaryOp):
        precedence = _PRECEDENCE[expr.op]
        left = print_expr(expr.left, precedence)
        # Right operand needs a bump for left-associative operators.
        right = print_expr(expr.right, precedence + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if parent_precedence > precedence else text
    if isinstance(expr, ast.Assignment):
        target = print_expr(expr.target, 0)
        value = print_expr(expr.value, 0)
        text = f"{target} {expr.op} {value}"
        return f"({text})" if parent_precedence > 0 else text
    if isinstance(expr, ast.Conditional):
        text = (
            f"{print_expr(expr.condition, 1)} ? "
            f"{print_expr(expr.if_true, 0)} : {print_expr(expr.if_false, 0)}"
        )
        return f"({text})" if parent_precedence > 0 else text
    if isinstance(expr, ast.Call):
        args = ", ".join(print_expr(a, 0) for a in expr.args)
        return f"{expr.callee}({args})"
    if isinstance(expr, ast.FieldAccess):
        return f"{print_expr(expr.base, _UNARY_PRECEDENCE + 1)}.{expr.field_name}"
    if isinstance(expr, ast.IndexAccess):
        return (
            f"{print_expr(expr.base, _UNARY_PRECEDENCE + 1)}"
            f"[{print_expr(expr.index, 0)}]"
        )
    if isinstance(expr, ast.CommaExpr):
        text = f"{print_expr(expr.left, 1)}, {print_expr(expr.right, 1)}"
        return f"({text})" if parent_precedence > 0 else text
    raise ValueError(f"cannot print {type(expr).__name__}")


def print_stmt(stmt: ast.Stmt, indent: int = 0) -> str:
    pad = "    " * indent
    if isinstance(stmt, ast.CompoundStmt):
        if not stmt.statements:
            return pad + "{\n" + pad + "}"
        body = "\n".join(print_stmt(s, indent + 1) for s in stmt.statements)
        return pad + "{\n" + body + "\n" + pad + "}"
    if isinstance(stmt, ast.DeclStmt):
        return pad + _print_decl_stmt(stmt)
    if isinstance(stmt, ast.ExprStmt):
        return pad + print_expr(stmt.expr) + ";"
    if isinstance(stmt, ast.IfStmt):
        text = pad + f"if ({print_expr(stmt.condition)})\n"
        text += print_stmt(_as_block(stmt.then_branch), indent)
        if stmt.else_branch is not None:
            text += "\n" + pad + "else\n"
            text += print_stmt(_as_block(stmt.else_branch), indent)
        return text
    if isinstance(stmt, ast.ForStmt):
        init = ""
        if isinstance(stmt.init, ast.DeclStmt):
            init = _print_decl_stmt(stmt.init).rstrip(";") + ";"
        elif isinstance(stmt.init, ast.ExprStmt):
            init = print_expr(stmt.init.expr) + ";"
        else:
            init = ";"
        condition = print_expr(stmt.condition) if stmt.condition else ""
        update = print_expr(stmt.update) if stmt.update else ""
        text = pad + f"for ({init} {condition}; {update})\n"
        return text + print_stmt(_as_block(stmt.body), indent)
    if isinstance(stmt, ast.WhileStmt):
        text = pad + f"while ({print_expr(stmt.condition)})\n"
        return text + print_stmt(_as_block(stmt.body), indent)
    if isinstance(stmt, ast.DoWhileStmt):
        text = pad + "do\n" + print_stmt(_as_block(stmt.body), indent)
        return text + "\n" + pad + f"while ({print_expr(stmt.condition)});"
    if isinstance(stmt, ast.ReturnStmt):
        if stmt.value is None:
            return pad + "return;"
        return pad + f"return {print_expr(stmt.value)};"
    if isinstance(stmt, ast.BreakStmt):
        return pad + "break;"
    if isinstance(stmt, ast.ContinueStmt):
        return pad + "continue;"
    if isinstance(stmt, ast.DiscardStmt):
        return pad + "discard;"
    raise ValueError(f"cannot print {type(stmt).__name__}")


def _as_block(stmt: ast.Stmt) -> ast.CompoundStmt:
    if isinstance(stmt, ast.CompoundStmt):
        return stmt
    return ast.CompoundStmt(statements=[stmt], line=stmt.line)


def _print_decl_stmt(stmt: ast.DeclStmt) -> str:
    prefix = "const " if stmt.is_const else ""
    if stmt.precision:
        prefix += stmt.precision + " "
    declarators = []
    for declarator in stmt.declarators:
        text = declarator.name
        if declarator.array_size is not None:
            text += f"[{print_expr(declarator.array_size)}]"
        if declarator.initializer is not None:
            text += f" = {print_expr(declarator.initializer)}"
        declarators.append(text)
    return f"{prefix}{stmt.type_name} {', '.join(declarators)};"


def _print_declaration(decl: ast.Node) -> str:
    if isinstance(decl, ast.PrecisionDecl):
        return f"precision {decl.precision} {decl.type_name};"
    if isinstance(decl, ast.StructDef):
        fields = "\n".join(
            f"    {ftype.glsl_name()} {fname};"
            for fname, ftype in decl.resolved.fields
        )
        return f"struct {decl.name} {{\n{fields}\n}};"
    if isinstance(decl, ast.GlobalDecl):
        parts = []
        if decl.is_invariant:
            parts.append("invariant")
        if decl.is_const:
            parts.append("const")
        if decl.qualifier:
            parts.append(decl.qualifier)
        if decl.precision:
            parts.append(decl.precision)
        parts.append(decl.type_name)
        declarators = []
        for declarator in decl.declarators:
            text = declarator.name
            if declarator.array_size is not None:
                text += f"[{print_expr(declarator.array_size)}]"
            if declarator.initializer is not None:
                text += f" = {print_expr(declarator.initializer)}"
            declarators.append(text)
        return " ".join(parts) + " " + ", ".join(declarators) + ";"
    if isinstance(decl, ast.FunctionDef):
        params = ", ".join(_print_param(p) for p in decl.params)
        head = f"{decl.return_type_name} {decl.name}({params})"
        if decl.body is None:
            return head + ";"
        return head + "\n" + print_stmt(decl.body, 0)
    raise ValueError(f"cannot print {type(decl).__name__}")


def _print_param(param: ast.Param) -> str:
    parts = []
    if param.is_const:
        parts.append("const")
    if param.direction != "in":
        parts.append(param.direction)
    if param.precision:
        parts.append(param.precision)
    parts.append(param.type_name)
    if param.name:
        name = param.name
        if param.array_size is not None:
            name += f"[{print_expr(param.array_size)}]"
        parts.append(name)
    return " ".join(parts)
