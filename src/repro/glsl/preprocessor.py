"""Minimal GLSL ES preprocessor.

Supports the directives shaders in this project (and typical GPGPU
shaders) actually use:

* ``#version`` — only ``100`` is accepted (OpenGL ES 2 / GLSL ES 1.00).
* ``#define`` / ``#undef`` — object-like and function-like macros.
* ``#ifdef`` / ``#ifndef`` / ``#if`` / ``#elif`` / ``#else`` / ``#endif``
  with a small constant-expression evaluator (integer arithmetic,
  comparisons, ``!``, ``&&``, ``||`` and ``defined(NAME)``).
* ``#error``, ``#pragma`` (ignored), ``#extension`` (recorded),
  ``#line`` (adjusts reported line numbers is *not* implemented; the
  directive is accepted and ignored).

The output preserves the line count of the input so token positions in
later stages match the original source.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .errors import GlslPreprocessorError

#: Macros predefined by GLSL ES 1.00 (spec §3.4).
PREDEFINED = {"GL_ES": "1", "__VERSION__": "100"}

_DIRECTIVE_RE = re.compile(r"^\s*#\s*(\w*)\s*(.*?)\s*$")
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_DEFINE_RE = re.compile(
    r"^(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"(?:\((?P<params>[^)]*)\))?"
    r"\s*(?P<body>.*)$"
)


@dataclass
class Macro:
    """A preprocessor macro definition."""

    name: str
    body: str
    params: Optional[List[str]] = None

    @property
    def is_function_like(self) -> bool:
        return self.params is not None


@dataclass
class PreprocessResult:
    """Output of :func:`preprocess`."""

    source: str
    version: int = 100
    extensions: Dict[str, str] = field(default_factory=dict)
    pragmas: List[str] = field(default_factory=list)


def preprocess(source: str, predefined: Optional[Dict[str, str]] = None) -> PreprocessResult:
    """Run the preprocessor over GLSL source.

    Returns the expanded source (same number of lines as the input)
    plus metadata gathered from ``#version``/``#extension``/``#pragma``.
    """
    macros: Dict[str, Macro] = {
        name: Macro(name, body) for name, body in PREDEFINED.items()
    }
    for name, body in (predefined or {}).items():
        macros[name] = Macro(name, body)

    result = PreprocessResult(source="")
    out_lines: List[str] = []
    # Stack of (taken_now, taken_ever, in_else) for conditional nesting.
    cond_stack: List[List[bool]] = []

    def active() -> bool:
        return all(frame[0] for frame in cond_stack)

    lines = source.split("\n")
    for lineno, raw in enumerate(lines, start=1):
        m = _DIRECTIVE_RE.match(raw)
        if not m or not raw.lstrip().startswith("#"):
            if active():
                out_lines.append(_expand(raw, macros, lineno))
            else:
                out_lines.append("")
            continue

        directive, rest = m.group(1), m.group(2)
        out_lines.append("")  # keep line numbering stable

        if directive == "" :
            continue  # null directive
        if directive in ("ifdef", "ifndef"):
            name_m = _IDENT_RE.match(rest)
            if not name_m:
                raise GlslPreprocessorError(
                    f"#{directive} requires a macro name", line=lineno
                )
            defined_now = name_m.group() in macros
            taken = defined_now if directive == "ifdef" else not defined_now
            taken = taken and active()
            cond_stack.append([taken, taken, False])
            continue
        if directive == "if":
            taken = bool(_eval_condition(rest, macros, lineno)) and active()
            cond_stack.append([taken, taken, False])
            continue
        if directive == "elif":
            if not cond_stack or cond_stack[-1][2]:
                raise GlslPreprocessorError("#elif without #if", line=lineno)
            frame = cond_stack[-1]
            parent_active = all(f[0] for f in cond_stack[:-1])
            if frame[1]:
                frame[0] = False
            else:
                frame[0] = bool(_eval_condition(rest, macros, lineno)) and parent_active
                frame[1] = frame[1] or frame[0]
            continue
        if directive == "else":
            if not cond_stack or cond_stack[-1][2]:
                raise GlslPreprocessorError("#else without #if", line=lineno)
            frame = cond_stack[-1]
            parent_active = all(f[0] for f in cond_stack[:-1])
            frame[0] = (not frame[1]) and parent_active
            frame[1] = True
            frame[2] = True
            continue
        if directive == "endif":
            if not cond_stack:
                raise GlslPreprocessorError("#endif without #if", line=lineno)
            cond_stack.pop()
            continue

        if not active():
            continue

        if directive == "version":
            if rest.split()[:1] != ["100"]:
                raise GlslPreprocessorError(
                    f"unsupported #version '{rest}' (only 100 is valid "
                    "for OpenGL ES 2)",
                    line=lineno,
                )
            result.version = 100
        elif directive == "define":
            dm = _DEFINE_RE.match(rest)
            if not dm:
                raise GlslPreprocessorError("malformed #define", line=lineno)
            params = dm.group("params")
            macro = Macro(
                dm.group("name"),
                dm.group("body"),
                params=[p.strip() for p in params.split(",") if p.strip()]
                if params is not None
                else None,
            )
            previous = macros.get(macro.name)
            if previous is not None and (
                previous.body != macro.body or previous.params != macro.params
            ):
                # Spec §3.4: redefinition is legal only when the token
                # sequences are identical.
                raise GlslPreprocessorError(
                    f"macro '{macro.name}' redefined with a different body",
                    line=lineno,
                )
            macros[macro.name] = macro
        elif directive == "undef":
            name_m = _IDENT_RE.match(rest)
            if name_m:
                macros.pop(name_m.group(), None)
        elif directive == "error":
            raise GlslPreprocessorError(f"#error: {rest}", line=lineno)
        elif directive == "pragma":
            result.pragmas.append(rest)
        elif directive == "extension":
            parts = [p.strip() for p in rest.split(":")]
            if len(parts) == 2:
                result.extensions[parts[0]] = parts[1]
        elif directive == "line":
            pass  # accepted, positions unadjusted
        else:
            raise GlslPreprocessorError(
                f"unknown directive '#{directive}'", line=lineno
            )

    if cond_stack:
        raise GlslPreprocessorError("unterminated #if block", line=len(lines))

    result.source = "\n".join(out_lines)
    return result


# ----------------------------------------------------------------------
# Macro expansion
# ----------------------------------------------------------------------
#: Expansion limits: self-referential macros like ``#define A A A``
#: grow the text exponentially with depth, so both the recursion depth
#: and the expanded line length are capped.
_MAX_EXPANSION_DEPTH = 32
_MAX_EXPANDED_LENGTH = 1 << 16


def _expand(line: str, macros: Dict[str, Macro], lineno: int, depth: int = 0) -> str:
    if depth > _MAX_EXPANSION_DEPTH:
        raise GlslPreprocessorError("macro expansion too deep", line=lineno)
    if len(line) > _MAX_EXPANDED_LENGTH:
        raise GlslPreprocessorError(
            "macro expansion too large (self-referential macro?)", line=lineno
        )
    out: List[str] = []
    i, n = 0, len(line)
    changed = False
    while i < n:
        m = _IDENT_RE.match(line, i)
        if not m:
            out.append(line[i])
            i += 1
            continue
        word = m.group()
        i = m.end()
        macro = macros.get(word)
        if macro is None:
            out.append(word)
            continue
        if macro.is_function_like:
            j = i
            while j < n and line[j] in " \t":
                j += 1
            if j >= n or line[j] != "(":
                out.append(word)
                continue
            args, i = _parse_macro_args(line, j, lineno)
            if len(args) != len(macro.params) and not (
                len(macro.params) == 0 and args == [""]
            ):
                raise GlslPreprocessorError(
                    f"macro '{word}' expects {len(macro.params)} args, "
                    f"got {len(args)}",
                    line=lineno,
                )
            body = macro.body
            # Whole-token parameter substitution.
            for param, arg in zip(macro.params, args):
                body = re.sub(
                    rf"\b{re.escape(param)}\b", arg.strip(), body
                )
            out.append(body)
            changed = True
        else:
            out.append(macro.body)
            changed = True
    text = "".join(out)
    if changed:
        return _expand(text, macros, lineno, depth + 1)
    return text


def _parse_macro_args(line: str, open_paren: int, lineno: int) -> Tuple[List[str], int]:
    """Split the argument list starting at ``line[open_paren] == '('``.
    Returns (args, index_after_close_paren)."""
    depth = 0
    args: List[str] = []
    current: List[str] = []
    i = open_paren
    while i < len(line):
        ch = line[i]
        if ch == "(":
            depth += 1
            if depth > 1:
                current.append(ch)
        elif ch == ")":
            depth -= 1
            if depth == 0:
                args.append("".join(current))
                return args, i + 1
            current.append(ch)
        elif ch == "," and depth == 1:
            args.append("".join(current))
            current = []
        else:
            current.append(ch)
        i += 1
    raise GlslPreprocessorError("unterminated macro argument list", line=lineno)


# ----------------------------------------------------------------------
# #if condition evaluation
# ----------------------------------------------------------------------
_DEFINED_RE = re.compile(r"defined\s*(?:\(\s*(\w+)\s*\)|(\w+))")
_SAFE_EXPR_RE = re.compile(r"^[\d\s()+\-*/%<>=!&|^~]*$")


def _eval_condition(expr: str, macros: Dict[str, Macro], lineno: int) -> int:
    def repl_defined(m: "re.Match") -> str:
        name = m.group(1) or m.group(2)
        return "1" if name in macros else "0"

    text = _DEFINED_RE.sub(repl_defined, expr)
    text = _expand(text, macros, lineno)
    # Any identifier left undefined evaluates to 0 (C preprocessor rule).
    text = _IDENT_RE.sub("0", text)
    # Map C logical operators onto Python.
    text = text.replace("&&", " and ").replace("||", " or ")
    text = re.sub(r"!(?!=)", " not ", text)
    check = text.replace(" and ", "").replace(" or ", "").replace(" not ", "")
    if not _SAFE_EXPR_RE.match(check):
        raise GlslPreprocessorError(
            f"cannot evaluate #if condition: {expr!r}", line=lineno
        )
    try:
        return int(bool(eval(text, {"__builtins__": {}}, {})))  # noqa: S307
    except (SyntaxError, ValueError, TypeError, ZeroDivisionError,
            OverflowError, MemoryError, RecursionError) as exc:
        # Everything a sanitised arithmetic expression can raise:
        # malformed syntax, numeric-domain errors, and the resource
        # blowups huge shift counts (``1<<999999999``) can trigger.
        raise GlslPreprocessorError(
            f"invalid #if condition {expr!r}: {exc}", line=lineno
        )
