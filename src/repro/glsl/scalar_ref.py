"""Scalar reference interpreter: the conformance oracle.

A second, independently written evaluation path for type-checked GLSL
ES 1.00 shaders.  Where :mod:`repro.glsl.interp` executes a whole
draw-call batch at once with numpy arrays and per-lane execution
masks, this module executes **one** vertex or fragment at a time with
plain Python values and ordinary recursive control flow:

* ``float`` -> Python float, ``int`` -> Python int, ``bool`` -> bool,
* ``vecK`` -> list of K floats,
* ``matK`` -> list of K *columns*, each a list of K floats,
* arrays -> Python lists, structs -> dicts.

Control flow uses exceptions (``return``/``break``/``continue``/
``discard``) instead of lane masks, so none of the vectorised
interpreter's divergence machinery is shared.  The two paths are
compared bit-exactly by :mod:`repro.testing.oracle`; any disagreement
is a bug in one of them (or in the pipeline between them).

Bit-exactness policy
--------------------
The independence of this oracle is in *evaluation strategy* (masking,
broadcasting, swizzle plumbing, l-value resolution, loop/function
semantics) — the richest bug surface — not in transcendental
approximation.  ``+ - *`` and comparisons use native Python floats
(IEEE double, identical to numpy's float64 loops); ``/`` and libm
functions (sin, pow, ...) go through numpy *scalar* calls so both
paths resolve to the same libm, keeping an 8-bit framebuffer
comparison meaningful down to the last ulp.

Only float64 ("exact") float models are supported: reduced-precision
models quantise mid-expression, which would force this oracle to copy
the vectorised implementation's quantisation placement and defeat the
purpose of an independent reference.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from . import ast_nodes as ast
from . import builtins as bi
from .errors import GlslLimitError, GlslRuntimeError
from .typecheck import CheckedShader
from .types import BaseType, GlslType, TypeKind

#: Same safety cap as the vectorised interpreter.
DEFAULT_MAX_LOOP_ITERATIONS = 65536

_INT32_MIN = -(2**31)


def _wrap_i32(x: int) -> int:
    """Two's-complement int32 wraparound (numpy int32 semantics)."""
    x &= 0xFFFFFFFF
    return x - 0x100000000 if x >= 0x80000000 else x


def _fdiv(a: float, b: float) -> float:
    """IEEE float division (inf/nan instead of ZeroDivisionError)."""
    with np.errstate(divide="ignore", invalid="ignore"):
        return float(np.float64(a) / np.float64(b))


def _idiv(a: int, b: int) -> int:
    """GLSL ES int division as implemented by the vectorised path:
    truncation toward zero, divide-by-zero yields 0."""
    if b == 0:
        return 0
    return _wrap_i32(int(np.trunc(_fdiv(float(a), float(b)))))


def _f2i(x: float) -> int:
    """float -> int conversion, reproducing ``np.trunc(...).astype(int32)``
    including the platform behaviour for out-of-range/nan inputs."""
    return int(np.trunc(np.float64(x)).astype(np.int32))


# ----------------------------------------------------------------------
# Control-flow signals
# ----------------------------------------------------------------------
class FragmentDiscarded(Exception):
    """Raised when the shader executes ``discard``."""


class _Return(Exception):
    def __init__(self, value):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


# ----------------------------------------------------------------------
# Value helpers
# ----------------------------------------------------------------------
def _copy(v):
    """Deep copy of a scalar-interpreter value."""
    if isinstance(v, list):
        return [_copy(e) for e in v]
    if isinstance(v, dict):
        return {k: _copy(e) for k, e in v.items()}
    return v


def zero_value(gtype: GlslType):
    """The zero-initialised Python value of a GLSL type."""
    if gtype.kind == TypeKind.SCALAR:
        if gtype.base == BaseType.FLOAT:
            return 0.0
        if gtype.base == BaseType.INT:
            return 0
        return False
    if gtype.kind == TypeKind.VECTOR:
        return [zero_value(gtype.component_type()) for _ in range(gtype.size)]
    if gtype.kind == TypeKind.MATRIX:
        return [[0.0] * gtype.size for _ in range(gtype.size)]
    if gtype.kind == TypeKind.ARRAY:
        return [zero_value(gtype.element) for _ in range(gtype.length)]
    if gtype.kind == TypeKind.STRUCT:
        return {name: zero_value(ftype) for name, ftype in gtype.fields}
    if gtype.kind == TypeKind.SAMPLER:
        return None
    raise GlslRuntimeError(f"cannot allocate scalar value of type {gtype}")


def python_value(value, lane: int):
    """Convert one lane of a batched :class:`repro.glsl.values.Value`
    into this module's plain-Python representation."""
    gtype = value.type
    if gtype.is_sampler():
        return value.sampler
    if value.fields is not None:
        if gtype.is_array():
            return [
                python_value(value.fields[str(i)], lane)
                for i in range(gtype.length)
            ]
        return {k: python_value(v, lane) for k, v in value.fields.items()}
    data = value.data
    row = data[lane if data.shape[0] > 1 else 0]
    return _np_to_py(row, gtype)


def _np_to_py(row: np.ndarray, gtype: GlslType):
    if gtype.kind == TypeKind.SCALAR:
        if gtype.base == BaseType.FLOAT:
            return float(row)
        if gtype.base == BaseType.INT:
            return int(row)
        return bool(row)
    if gtype.kind == TypeKind.VECTOR:
        ctype = gtype.component_type()
        return [_np_to_py(row[i], ctype) for i in range(gtype.size)]
    if gtype.kind == TypeKind.MATRIX:
        return [
            [float(row[c, r]) for r in range(gtype.size)]
            for c in range(gtype.size)
        ]
    if gtype.kind == TypeKind.ARRAY:
        return [_np_to_py(row[i], gtype.element) for i in range(gtype.length)]
    raise GlslRuntimeError(f"cannot convert {gtype} to a scalar value")


# ----------------------------------------------------------------------
# Componentwise application helpers
# ----------------------------------------------------------------------
def _map1(f, a):
    if isinstance(a, list):
        if a and isinstance(a[0], list):  # matrix
            return [[f(x) for x in col] for col in a]
        return [f(x) for x in a]
    return f(a)


def _map2(f, a, b):
    """Componentwise binary with scalar broadcast on either side."""
    a_list = isinstance(a, list)
    b_list = isinstance(b, list)
    if a_list and a and isinstance(a[0], list):  # matrix lhs
        if b_list:
            return [
                [f(x, y) for x, y in zip(col_a, col_b)]
                for col_a, col_b in zip(a, b)
            ]
        return [[f(x, b) for x in col] for col in a]
    if b_list and b and isinstance(b[0], list):  # matrix rhs, scalar lhs
        return [[f(a, y) for y in col] for col in b]
    if a_list and b_list:
        return [f(x, y) for x, y in zip(a, b)]
    if a_list:
        return [f(x, b) for x in a]
    if b_list:
        return [f(a, y) for y in b]
    return f(a, b)


def _map3(f, a, b, c):
    return _map2(lambda x, yz: f(x, yz[0], yz[1]), a, _zip2(b, c, a))


def _zip2(b, c, like):
    """Pair up b and c (broadcasting scalars) shaped like ``like``."""
    if isinstance(like, list):
        bs = b if isinstance(b, list) else [b] * len(like)
        cs = c if isinstance(c, list) else [c] * len(like)
        return [(x, y) for x, y in zip(bs, cs)]
    return (b, c)


# libm via numpy scalar calls: same ufunc inner loops as the
# vectorised path, applied to one element.
def _np1(fn):
    def call(x):
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            return float(fn(np.float64(x)))

    return call


def _np2(fn):
    def call(x, y):
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            return float(fn(np.float64(x), np.float64(y)))

    return call


_SIN = _np1(np.sin)
_COS = _np1(np.cos)
_TAN = _np1(np.tan)
_ASIN = _np1(np.arcsin)
_ACOS = _np1(np.arccos)
_ATAN1 = _np1(np.arctan)
_ATAN2 = _np2(np.arctan2)
_EXP = _np1(np.exp)
_LOG = _np1(np.log)
_EXP2 = _np1(np.exp2)
_LOG2 = _np1(np.log2)
_SQRT = _np1(np.sqrt)
_POW = _np2(np.power)
_FLOOR = _np1(np.floor)
_CEIL = _np1(np.ceil)
_SIGN = _np1(np.sign)
_FMIN = _np2(np.minimum)
_FMAX = _np2(np.maximum)


def _fract(x):
    return x - _FLOOR(x)


def _fmod(x, y):
    return x - y * _FLOOR(_fdiv(x, y))


def _clamp1(x, lo, hi):
    return _FMIN(_FMAX(x, lo), hi)


def _mix1(x, y, a):
    return x * (1.0 - a) + y * a


def _step1(edge, x):
    return 0.0 if x < edge else 1.0


def _smoothstep1(e0, e1, x):
    t = _clamp1(_fdiv(x - e0, e1 - e0), 0.0, 1.0)
    return t * t * (3.0 - 2.0 * t)


def _dot(a, b):
    if not isinstance(a, list):
        return a * b
    acc = a[0] * b[0]
    for i in range(1, len(a)):
        acc = acc + a[i] * b[i]
    return acc


def _length(x):
    if not isinstance(x, list):
        return abs(x)
    return _SQRT(_dot(x, x))


def _normalize(x):
    if not isinstance(x, list):
        return _SIGN(x)
    norm = _SQRT(_dot(x, x))
    return [_fdiv(c, norm) for c in x]


# ----------------------------------------------------------------------
# The interpreter
# ----------------------------------------------------------------------
class ScalarInterpreter:
    """Executes one shader invocation (a single vertex or fragment).

    Parameters mirror :class:`repro.glsl.interp.Interpreter`, but only
    float64 float models are accepted (see module docstring).
    """

    def __init__(
        self,
        checked: CheckedShader,
        float_model=None,
        max_loop_iterations: int = DEFAULT_MAX_LOOP_ITERATIONS,
    ):
        if float_model is not None and float_model.dtype != np.float64:
            raise GlslRuntimeError(
                "ScalarInterpreter only supports float64 (exact) models"
            )
        self.checked = checked
        self.max_loop_iterations = max_loop_iterations
        self.globals_env: Dict[str, object] = {}
        self.scopes: List[List[Dict[str, object]]] = []  # frame -> scope stack
        self.discarded = False

    # ------------------------------------------------------------------
    def run(self, presets: Dict[str, object]) -> Dict[str, object]:
        """Execute ``main()`` once.  ``presets`` maps global names to
        plain-Python values (see :func:`python_value`).  Returns the
        final global environment; :attr:`discarded` reports whether the
        fragment executed ``discard``."""
        self.globals_env = {}
        self.scopes = []
        self.discarded = False

        for name, symbol in self.checked.globals.items():
            if name in presets:
                self.globals_env[name] = _copy(presets[name])
            elif symbol.type.is_sampler():
                self.globals_env[name] = None
            elif symbol.initializer is not None:
                self.scopes.append([{}])
                try:
                    self.globals_env[name] = self.eval(symbol.initializer)
                finally:
                    self.scopes.pop()
            else:
                self.globals_env[name] = zero_value(symbol.type)
        for name, value in presets.items():
            self.globals_env.setdefault(name, _copy(value))

        main = self.checked.functions.get("main()")
        if main is None or main.body is None:
            raise GlslRuntimeError("shader has no main() body")
        try:
            self._call(main, [], [])
        except FragmentDiscarded:
            self.discarded = True
        return self.globals_env

    # ------------------------------------------------------------------
    # Environment
    # ------------------------------------------------------------------
    def _lookup(self, name: str):
        if self.scopes:
            for scope in reversed(self.scopes[-1]):
                if name in scope:
                    return scope[name]
        if name in self.globals_env:
            return self.globals_env[name]
        raise GlslRuntimeError(f"unbound variable '{name}'")

    def _set(self, name: str, value) -> None:
        if self.scopes:
            for scope in reversed(self.scopes[-1]):
                if name in scope:
                    scope[name] = value
                    return
        if name in self.globals_env:
            self.globals_env[name] = value
            return
        raise GlslRuntimeError(f"assignment to unbound variable '{name}'")

    def _declare(self, name: str, value) -> None:
        self.scopes[-1][-1][name] = value

    # ------------------------------------------------------------------
    # Function invocation
    # ------------------------------------------------------------------
    def _call(self, func: ast.FunctionDef, args: List[object],
              arg_exprs: List[ast.Expr]):
        if len(self.scopes) > 64:
            raise GlslLimitError("function call nesting too deep")
        # Resolve out/inout destinations in the caller's context.
        copy_back: List[Tuple[int, List]] = []
        for i, param in enumerate(func.params):
            if param.direction in ("out", "inout") and arg_exprs:
                copy_back.append((i, self._resolve_path(arg_exprs[i])))

        self.scopes.append([{}])
        try:
            for param, arg in zip(func.params, args):
                if not param.name:
                    continue
                if param.direction == "out":
                    self._declare(param.name, zero_value(param.resolved_type))
                else:
                    self._declare(param.name, _copy(arg))
            result = None
            try:
                for stmt in func.body.statements:
                    self.exec_stmt(stmt)
            except _Return as ret:
                result = ret.value
            if result is None and not func.resolved_return_type.is_void():
                # Falling off the end of a non-void function yields the
                # zero value, matching the vectorised interpreter's
                # zero-initialised return slot.
                result = zero_value(func.resolved_return_type)
            locals_env = self.scopes[-1][0]
        finally:
            self.scopes.pop()

        for i, path in copy_back:
            self._write_path(path, _copy(locals_env[func.params[i].name]))
        return result

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def exec_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.CompoundStmt):
            if self.scopes:
                self.scopes[-1].append({})
            try:
                for inner in stmt.statements:
                    self.exec_stmt(inner)
            finally:
                if self.scopes:
                    self.scopes[-1].pop()
        elif isinstance(stmt, ast.DeclStmt):
            for declarator in stmt.declarators:
                if declarator.initializer is not None:
                    value = _copy(self.eval(declarator.initializer))
                else:
                    value = zero_value(declarator.resolved_type)
                self._declare(declarator.name, value)
        elif isinstance(stmt, ast.ExprStmt):
            self.eval(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            if self.eval(stmt.condition):
                self.exec_stmt(stmt.then_branch)
            elif stmt.else_branch is not None:
                self.exec_stmt(stmt.else_branch)
        elif isinstance(stmt, ast.ForStmt):
            self.scopes[-1].append({})
            try:
                if stmt.init is not None:
                    self.exec_stmt(stmt.init)
                self._loop(stmt.condition, stmt.update, stmt.body, pretest=True)
            finally:
                self.scopes[-1].pop()
        elif isinstance(stmt, ast.WhileStmt):
            self._loop(stmt.condition, None, stmt.body, pretest=True)
        elif isinstance(stmt, ast.DoWhileStmt):
            self._loop(stmt.condition, None, stmt.body, pretest=False)
        elif isinstance(stmt, ast.ReturnStmt):
            value = None if stmt.value is None else _copy(self.eval(stmt.value))
            raise _Return(value)
        elif isinstance(stmt, ast.BreakStmt):
            raise _Break()
        elif isinstance(stmt, ast.ContinueStmt):
            raise _Continue()
        elif isinstance(stmt, ast.DiscardStmt):
            raise FragmentDiscarded()
        else:
            raise GlslRuntimeError(f"unhandled statement {type(stmt).__name__}")

    def _loop(self, condition, update, body, pretest: bool) -> None:
        iterations = 0
        while True:
            if condition is not None and (pretest or iterations > 0):
                if not self.eval(condition):
                    break
            try:
                self.exec_stmt(body)
            except _Break:
                break
            except _Continue:
                pass
            if update is not None:
                self.eval(update)
            iterations += 1
            if iterations > self.max_loop_iterations:
                raise GlslLimitError(
                    f"loop exceeded {self.max_loop_iterations} iterations"
                )

    # ==================================================================
    # Expressions
    # ==================================================================
    def eval(self, expr: ast.Expr):
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.FloatLiteral):
            return float(expr.value)
        if isinstance(expr, ast.BoolLiteral):
            return expr.value
        if isinstance(expr, ast.Identifier):
            return self._lookup(expr.name)
        if isinstance(expr, ast.UnaryOp):
            return self._eval_unary(expr)
        if isinstance(expr, (ast.PrefixIncDec, ast.PostfixIncDec)):
            return self._eval_incdec(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binary(expr)
        if isinstance(expr, ast.Assignment):
            return self._eval_assignment(expr)
        if isinstance(expr, ast.Conditional):
            if self.eval(expr.condition):
                return self.eval(expr.if_true)
            return self.eval(expr.if_false)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.FieldAccess):
            return self._eval_field(expr)
        if isinstance(expr, ast.IndexAccess):
            base = self.eval(expr.base)
            idx = self._clamp_index(self.eval(expr.index), len(base))
            return _copy(base[idx])
        if isinstance(expr, ast.CommaExpr):
            self.eval(expr.left)
            return self.eval(expr.right)
        raise GlslRuntimeError(f"unhandled expression {type(expr).__name__}")

    @staticmethod
    def _clamp_index(idx: int, size: int) -> int:
        # The vectorised interpreter clips out-of-range dynamic indices
        # (np.clip); the oracle must agree on that defensive behaviour.
        return min(max(int(idx), 0), size - 1)

    # -- unary / incdec -------------------------------------------------
    def _eval_unary(self, expr: ast.UnaryOp):
        operand = self.eval(expr.operand)
        if expr.op == "+":
            return operand
        if expr.op == "-":
            if expr.operand.resolved_type.is_int_based():
                return _map1(lambda x: _wrap_i32(-x), operand)
            return _map1(lambda x: -x, operand)
        if expr.op == "!":
            return not operand
        raise GlslRuntimeError(f"unhandled unary operator '{expr.op}'")

    def _eval_incdec(self, expr):
        path = self._resolve_path(expr.operand)
        old = self._read_path(path)
        is_int = expr.operand.resolved_type.is_int_based()
        delta = 1 if expr.op == "++" else -1
        if is_int:
            new = _map1(lambda x: _wrap_i32(x + delta), old)
        else:
            new = _map1(lambda x: x + float(delta), old)
        self._write_path(path, new)
        return new if isinstance(expr, ast.PrefixIncDec) else old

    # -- binary ---------------------------------------------------------
    def _eval_binary(self, expr: ast.BinaryOp):
        op = expr.op
        if op == "&&":
            return bool(self.eval(expr.left)) and bool(self.eval(expr.right))
        if op == "||":
            return bool(self.eval(expr.left)) or bool(self.eval(expr.right))
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        if op == "^^":
            return bool(left) != bool(right)
        if op in ("==", "!="):
            equal = self._deep_equal(left, right)
            return equal if op == "==" else not equal
        if op in ("<", ">", "<=", ">="):
            # NaN comparisons are False, matching numpy's ufuncs.
            if op == "<":
                return left < right
            if op == ">":
                return left > right
            if op == "<=":
                return left <= right
            return left >= right
        return self._arith(op, left, right,
                           expr.left.resolved_type, expr.right.resolved_type)

    @staticmethod
    def _deep_equal(a, b) -> bool:
        if isinstance(a, dict):
            return all(ScalarInterpreter._deep_equal(a[k], b[k]) for k in a)
        if isinstance(a, list):
            return all(
                ScalarInterpreter._deep_equal(x, y) for x, y in zip(a, b)
            )
        return bool(a == b)

    def _arith(self, op: str, a, b, ltype: GlslType, rtype: GlslType):
        if op == "*" and ltype.is_matrix() and rtype.is_matrix():
            k = ltype.size
            return [
                [
                    self._sum_k(k, lambda i, c=c, r=r: a[i][r] * b[c][i])
                    for r in range(k)
                ]
                for c in range(k)
            ]
        if op == "*" and ltype.is_matrix() and rtype.is_vector():
            k = ltype.size
            return [
                self._sum_k(k, lambda c, r=r: a[c][r] * b[c]) for r in range(k)
            ]
        if op == "*" and ltype.is_vector() and rtype.is_matrix():
            k = rtype.size
            return [
                self._sum_k(k, lambda r, c=c: a[r] * b[c][r]) for c in range(k)
            ]

        int_based = ltype.is_int_based() or rtype.is_int_based()
        if op == "+":
            f = (lambda x, y: _wrap_i32(x + y)) if int_based else (lambda x, y: x + y)
        elif op == "-":
            f = (lambda x, y: _wrap_i32(x - y)) if int_based else (lambda x, y: x - y)
        elif op == "*":
            f = (lambda x, y: _wrap_i32(x * y)) if int_based else (lambda x, y: x * y)
        elif op == "/":
            f = _idiv if int_based else _fdiv
        else:
            raise GlslRuntimeError(f"unhandled arithmetic operator '{op}'")
        return _map2(f, a, b)

    @staticmethod
    def _sum_k(k: int, term: Callable[[int], float]) -> float:
        acc = term(0)
        for i in range(1, k):
            acc = acc + term(i)
        return acc

    # -- assignment -----------------------------------------------------
    def _eval_assignment(self, expr: ast.Assignment):
        path = self._resolve_path(expr.target)
        value = self.eval(expr.value)
        if expr.op != "=":
            old = self._read_path(path)
            value = self._arith(
                expr.op[0], old, value,
                expr.target.resolved_type, expr.value.resolved_type,
            )
        self._write_path(path, _copy(value))
        return value

    # -- calls ----------------------------------------------------------
    def _eval_call(self, expr: ast.Call):
        if expr.is_constructor:
            return self._eval_constructor(expr)
        if expr.is_builtin:
            return self._eval_builtin(expr)
        func = self.checked.functions.get(expr.resolved_signature)
        if func is None or func.body is None:
            raise GlslRuntimeError(
                f"call to undefined function '{expr.resolved_signature}'"
            )
        args = [self.eval(a) for a in expr.args]
        return self._call(func, args, expr.args)

    # -- constructors ---------------------------------------------------
    def _eval_constructor(self, expr: ast.Call):
        target = expr.constructed_type
        args = [self.eval(a) for a in expr.args]

        if target.is_struct():
            return {
                fname: _copy(arg)
                for (fname, __), arg in zip(target.fields, args)
            }
        if target.is_scalar():
            first = self._first_component(args[0])
            return self._convert(first, target.base)
        if target.is_vector():
            if len(args) == 1 and expr.args[0].resolved_type.is_scalar():
                converted = self._convert(args[0], target.base)
                return [converted] * target.size
            flat = self._flatten(args)[: target.size]
            return [self._convert(c, target.base) for c in flat]
        if target.is_matrix():
            k = target.size
            if len(args) == 1 and expr.args[0].resolved_type.is_scalar():
                diag = self._convert(args[0], BaseType.FLOAT)
                return [
                    [diag if r == c else 0.0 for r in range(k)]
                    for c in range(k)
                ]
            flat = [
                self._convert(c, BaseType.FLOAT) for c in self._flatten(args)
            ]
            return [flat[c * k:(c + 1) * k] for c in range(k)]
        raise GlslRuntimeError(f"cannot construct {target}")

    @staticmethod
    def _first_component(v):
        while isinstance(v, list):
            v = v[0]
        return v

    @staticmethod
    def _flatten(args) -> List:
        flat: List = []
        for arg in args:
            if isinstance(arg, list):
                if arg and isinstance(arg[0], list):  # matrix, column-major
                    for col in arg:
                        flat.extend(col)
                else:
                    flat.extend(arg)
            else:
                flat.append(arg)
        return flat

    @staticmethod
    def _convert(x, base: str):
        if base == BaseType.FLOAT:
            return float(x)
        if base == BaseType.INT:
            if isinstance(x, bool):
                return int(x)
            if isinstance(x, int):
                return _wrap_i32(x)
            return _f2i(x)
        return x != 0

    # -- field access / swizzle -----------------------------------------
    def _eval_field(self, expr: ast.FieldAccess):
        base = self.eval(expr.base)
        if isinstance(base, dict):
            return _copy(base[expr.field_name])
        indices = expr.swizzle
        if len(indices) == 1:
            return base[indices[0]]
        return [base[i] for i in indices]

    # -- builtins -------------------------------------------------------
    def _eval_builtin(self, expr: ast.Call):
        overload = bi.OVERLOADS_BY_KEY[expr.resolved_signature]
        name = overload.name
        args = [self.eval(a) for a in expr.args]

        if name in bi.TEXTURE_BUILTINS:
            return self._eval_texture(overload, args)

        fn = _BUILTIN_IMPLS.get(name)
        if fn is None:
            raise GlslRuntimeError(f"builtin '{name}' not supported by the "
                                   "scalar reference interpreter")
        return fn(self, args, expr)

    def _eval_texture(self, overload, args):
        sampler = args[0]
        coords = [float(c) for c in args[1]]
        if sampler is None:
            return [0.0, 0.0, 0.0, 1.0]  # incomplete texture: opaque black
        if overload.impl == "texture2DProj3":
            coords = [_fdiv(coords[0], coords[2]), _fdiv(coords[1], coords[2])]
        elif overload.impl == "texture2DProj4":
            coords = [_fdiv(coords[0], coords[3]), _fdiv(coords[1], coords[3])]
        elif overload.impl == "textureCube":
            texels = sampler.sample_cube(np.array([coords], dtype=np.float64))
            return [float(texels[0, i]) for i in range(4)]
        texels = sampler.sample(
            np.array([coords[0]], dtype=np.float64),
            np.array([coords[1]], dtype=np.float64),
        )
        return [float(texels[0, i]) for i in range(4)]

    # ==================================================================
    # L-value paths
    # ==================================================================
    # A path is the variable name followed by a list of accessor steps;
    # index operands are evaluated exactly once, at resolution time.
    def _resolve_path(self, expr: ast.Expr) -> List:
        if isinstance(expr, ast.Identifier):
            return [("var", expr.name)]
        if isinstance(expr, ast.FieldAccess):
            path = self._resolve_path(expr.base)
            if expr.swizzle is not None:
                path.append(("swizzle", expr.swizzle))
            else:
                path.append(("field", expr.field_name))
            return path
        if isinstance(expr, ast.IndexAccess):
            path = self._resolve_path(expr.base)
            path.append(("index", int(self.eval(expr.index))))
            return path
        raise GlslRuntimeError("expression is not an l-value")

    def _read_path(self, path: List):
        value = self._lookup(path[0][1])
        for kind, key in path[1:]:
            if kind == "field":
                value = value[key]
            elif kind == "index":
                value = value[self._clamp_index(key, len(value))]
            else:  # swizzle
                if len(key) == 1:
                    value = value[key[0]]
                else:
                    value = [value[i] for i in key]
        return _copy(value)

    def _write_path(self, path: List, value) -> None:
        name = path[0][1]
        if len(path) == 1:
            self._set(name, _copy(value))
            return
        container = self._lookup(name)
        # Walk to the parent of the final step.
        for kind, key in path[1:-1]:
            if kind == "field":
                container = container[key]
            elif kind == "index":
                container = container[self._clamp_index(key, len(container))]
            else:
                raise GlslRuntimeError("cannot write through a swizzle chain")
        kind, key = path[-1]
        if kind == "field":
            container[key] = _copy(value)
        elif kind == "index":
            container[self._clamp_index(key, len(container))] = _copy(value)
        else:  # swizzle store
            if len(set(key)) != len(key):
                raise GlslRuntimeError(
                    "cannot write through a swizzle with repeated components"
                )
            if len(key) == 1:
                container[key[0]] = value
            else:
                for slot, component in enumerate(key):
                    container[component] = value[slot]


# ----------------------------------------------------------------------
# Built-in implementations (independent of repro.glsl.builtins impls)
# ----------------------------------------------------------------------
def _impl(fn):
    """Adapt a componentwise scalar function of N args."""

    def call(interp, args, expr):
        if len(args) == 1:
            return _map1(fn, args[0])
        if len(args) == 2:
            return _map2(fn, args[0], args[1])
        return _map3(fn, args[0], args[1], args[2])

    return call


def _geom(fn):
    def call(interp, args, expr):
        return fn(*args)

    return call


def _reflect(i, n):
    d = _dot(n, i)
    if isinstance(i, list):
        t = 2.0 * d
        return [ic - t * nc for ic, nc in zip(i, n)]
    return i - 2.0 * d * n


def _refract(i, n, eta):
    d = _dot(n, i)
    k = 1.0 - eta * eta * (1.0 - d * d)
    if k < 0.0:
        return [0.0] * len(i) if isinstance(i, list) else 0.0
    root = _SQRT(k)
    if isinstance(i, list):
        return [eta * ic - (eta * d + root) * nc for ic, nc in zip(i, n)]
    return eta * i - (eta * d + root) * n


def _faceforward(nv, iv, nref):
    flipped = _dot(nref, iv) < 0.0
    if isinstance(nv, list):
        return [c if flipped else -c for c in nv]
    return nv if flipped else -nv


def _cross(a, b):
    return [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]


def _relational(cmp):
    def call(interp, args, expr):
        return [bool(cmp(x, y)) for x, y in zip(args[0], args[1])]

    return call


_BUILTIN_IMPLS: Dict[str, Callable] = {
    "radians": _impl(lambda x: x * (math.pi / 180.0)),
    "degrees": _impl(lambda x: x * (180.0 / math.pi)),
    "sin": _impl(_SIN),
    "cos": _impl(_COS),
    "tan": _impl(_TAN),
    "asin": _impl(_ASIN),
    "acos": _impl(_ACOS),
    "atan": lambda interp, args, expr: (
        _map1(_ATAN1, args[0]) if len(args) == 1
        else _map2(_ATAN2, args[0], args[1])
    ),
    "pow": _impl(_POW),
    "exp": _impl(_EXP),
    "log": _impl(_LOG),
    "exp2": _impl(_EXP2),
    "log2": _impl(_LOG2),
    "sqrt": _impl(_SQRT),
    "inversesqrt": _impl(lambda x: _fdiv(1.0, _SQRT(x))),
    "abs": _impl(abs),
    "sign": _impl(_SIGN),
    "floor": _impl(_FLOOR),
    "ceil": _impl(_CEIL),
    "fract": _impl(_fract),
    "mod": _impl(_fmod),
    "min": _impl(_FMIN),
    "max": _impl(_FMAX),
    "clamp": _impl(_clamp1),
    "mix": _impl(_mix1),
    "step": _impl(_step1),
    "smoothstep": _impl(_smoothstep1),
    "length": _geom(_length),
    "distance": _geom(lambda a, b: _length(_map2(lambda x, y: x - y, a, b))),
    "dot": _geom(_dot),
    "cross": _geom(_cross),
    "normalize": _geom(_normalize),
    "faceforward": _geom(_faceforward),
    "reflect": _geom(_reflect),
    "refract": _geom(_refract),
    "matrixCompMult": _geom(
        lambda a, b: [
            [x * y for x, y in zip(ca, cb)] for ca, cb in zip(a, b)
        ]
    ),
    "lessThan": _relational(lambda x, y: x < y),
    "lessThanEqual": _relational(lambda x, y: x <= y),
    "greaterThan": _relational(lambda x, y: x > y),
    "greaterThanEqual": _relational(lambda x, y: x >= y),
    "equal": _relational(lambda x, y: x == y),
    "notEqual": _relational(lambda x, y: x != y),
    "any": _geom(lambda v: any(v)),
    "all": _geom(lambda v: all(v)),
    "not": lambda interp, args, expr: [not x for x in args[0]],
}
