"""GLSL ES 1.00 built-in functions (spec chapter 8).

Each built-in is registered with one or more *signatures* and a
vectorised numpy implementation.  Signatures use small pattern objects
so the genType families (``sin(float|vec2|vec3|vec4)``) are expressed
once; overload resolution binds the pattern to a concrete type.

Implementations receive already-broadcast numpy arrays (lane axis
first) and return the result array; the interpreter applies the
device float-precision model afterwards and feeds the op counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .types import (
    BOOL,
    FLOAT,
    INT,
    SAMPLER2D,
    SAMPLERCUBE,
    VEC2,
    VEC3,
    VEC4,
    BaseType,
    GlslType,
    TypeKind,
    vector_type,
)

# ----------------------------------------------------------------------
# Signature patterns
# ----------------------------------------------------------------------
class _Pattern:
    """Base class for type patterns in built-in signatures."""

    def matches(self, t: GlslType, binding: dict) -> bool:
        raise NotImplementedError


class _GenF(_Pattern):
    """float | vec2 | vec3 | vec4 — all uses bind to the same type."""

    def matches(self, t: GlslType, binding: dict) -> bool:
        if not t.is_float_based() or t.is_matrix():
            return False
        if "gen" in binding:
            return binding["gen"] == t
        binding["gen"] = t
        return True


class _VecF(_Pattern):
    """vec2 | vec3 | vec4 — same-binding."""

    def matches(self, t: GlslType, binding: dict) -> bool:
        if not (t.is_vector() and t.base == BaseType.FLOAT):
            return False
        if "gen" in binding:
            return binding["gen"] == t
        binding["gen"] = t
        return True


class _VecFI(_Pattern):
    """vec or ivec of any size — same-binding (relational functions)."""

    def matches(self, t: GlslType, binding: dict) -> bool:
        if not (t.is_vector() and t.base in (BaseType.FLOAT, BaseType.INT)):
            return False
        if "gen" in binding:
            return binding["gen"] == t
        binding["gen"] = t
        return True


class _VecB(_Pattern):
    """bvec of any size — same-binding."""

    def matches(self, t: GlslType, binding: dict) -> bool:
        if not (t.is_vector() and t.base == BaseType.BOOL):
            return False
        if "gen" in binding:
            return binding["gen"] == t
        binding["gen"] = t
        return True


class _Exact(_Pattern):
    def __init__(self, t: GlslType):
        self.t = t

    def matches(self, t: GlslType, binding: dict) -> bool:
        return t == self.t


class _Mat(_Pattern):
    """mat2 | mat3 | mat4 — same-binding."""

    def matches(self, t: GlslType, binding: dict) -> bool:
        if not t.is_matrix():
            return False
        if "gen" in binding:
            return binding["gen"] == t
        binding["gen"] = t
        return True


GENF = _GenF()
VECF = _VecF()
VECFI = _VecFI()
VECB = _VecB()
MAT = _Mat()


# Return-type resolvers: given the binding, produce the concrete type.
def _ret_gen(binding: dict) -> GlslType:
    return binding["gen"]


def _ret_float(binding: dict) -> GlslType:
    return FLOAT


def _ret_bool(binding: dict) -> GlslType:
    return BOOL


def _ret_bvec_of_gen(binding: dict) -> GlslType:
    return vector_type(BaseType.BOOL, binding["gen"].size)


def _ret_exact(t: GlslType) -> Callable[[dict], GlslType]:
    return lambda binding: t


@dataclass
class BuiltinOverload:
    """One resolvable overload of a built-in function."""

    name: str
    params: Tuple[object, ...]
    ret: Callable[[dict], GlslType]
    impl: Callable
    #: 'alu' = cheap op, 'sfu' = special-function unit (transcendental),
    #: 'tex' = texture fetch. Feeds the performance counters.
    category: str = "alu"
    #: Unique key used by the interpreter to dispatch.
    key: str = ""

    def match(self, arg_types: Sequence[GlslType]) -> Optional[dict]:
        if len(arg_types) != len(self.params):
            return None
        binding: dict = {}
        for pattern, arg_type in zip(self.params, arg_types):
            matcher = pattern if isinstance(pattern, _Pattern) else _Exact(pattern)
            if not matcher.matches(arg_type, binding):
                return None
        return binding


REGISTRY: Dict[str, List[BuiltinOverload]] = {}


def _register(name, params, ret, impl, category="alu"):
    overload = BuiltinOverload(
        name=name,
        params=tuple(params),
        ret=ret,
        impl=impl,
        category=category,
        key=f"{name}/{len(REGISTRY.get(name, []))}",
    )
    REGISTRY.setdefault(name, []).append(overload)
    return overload


def resolve(name: str, arg_types: Sequence[GlslType]) -> Optional[Tuple[BuiltinOverload, GlslType]]:
    """Find the overload matching the argument types; returns the
    overload and its concrete return type, or None."""
    for overload in REGISTRY.get(name, ()):
        binding = overload.match(arg_types)
        if binding is not None:
            return overload, overload.ret(binding)
    return None


def is_builtin(name: str) -> bool:
    return name in REGISTRY


# ----------------------------------------------------------------------
# numpy helpers
# ----------------------------------------------------------------------
def _as2d(a: np.ndarray) -> np.ndarray:
    """Scalars (N,) -> (N,1) so they broadcast against vectors (N,K)."""
    return a.reshape(a.shape[0], 1) if a.ndim == 1 else a


def _mixed(op):
    """Wrap a binary ufunc so float-scalar second/third operands
    broadcast against vector firsts (min(vec3, float) etc.)."""

    def wrapper(*arrays):
        widest = max(a.ndim for a in arrays)
        if widest > 1:
            arrays = [_as2d(a) if a.ndim == 1 else a for a in arrays]
        return op(*arrays)

    return wrapper


# ----------------------------------------------------------------------
# 8.1 Angle and trigonometry
# ----------------------------------------------------------------------
_register("radians", [GENF], _ret_gen, lambda x: x * (np.pi / 180.0))
_register("degrees", [GENF], _ret_gen, lambda x: x * (180.0 / np.pi))
_register("sin", [GENF], _ret_gen, np.sin, "sfu")
_register("cos", [GENF], _ret_gen, np.cos, "sfu")
_register("tan", [GENF], _ret_gen, np.tan, "sfu")
_register("asin", [GENF], _ret_gen, np.arcsin, "sfu")
_register("acos", [GENF], _ret_gen, np.arccos, "sfu")
_register("atan", [GENF, GENF], _ret_gen, np.arctan2, "sfu")
_register("atan", [GENF], _ret_gen, np.arctan, "sfu")

# ----------------------------------------------------------------------
# 8.2 Exponential
# ----------------------------------------------------------------------
def _pow(x, y):
    with np.errstate(invalid="ignore"):
        return np.power(x, y)


def _inversesqrt(x):
    with np.errstate(divide="ignore"):
        return 1.0 / np.sqrt(x)


_register("pow", [GENF, GENF], _ret_gen, _pow, "sfu")
_register("exp", [GENF], _ret_gen, np.exp, "sfu")
_register("log", [GENF], _ret_gen, np.log, "sfu")
_register("exp2", [GENF], _ret_gen, np.exp2, "sfu")
_register("log2", [GENF], _ret_gen, np.log2, "sfu")
_register("sqrt", [GENF], _ret_gen, np.sqrt, "sfu")
_register("inversesqrt", [GENF], _ret_gen, _inversesqrt, "sfu")

# ----------------------------------------------------------------------
# 8.3 Common
# ----------------------------------------------------------------------
def _fract(x):
    return x - np.floor(x)


def _mod(x, y):
    # GLSL mod: x - y*floor(x/y)  (sign follows y, unlike C fmod).
    return x - y * np.floor(x / y)


def _clamp(x, lo, hi):
    return np.minimum(np.maximum(x, lo), hi)


def _mix(x, y, a):
    return x * (1.0 - a) + y * a


def _step(edge, x):
    return np.where(x < edge, 0.0, 1.0)


def _smoothstep(edge0, edge1, x):
    t = _clamp((x - edge0) / (edge1 - edge0), 0.0, 1.0)
    return t * t * (3.0 - 2.0 * t)


_register("abs", [GENF], _ret_gen, np.abs)
_register("sign", [GENF], _ret_gen, np.sign)
_register("floor", [GENF], _ret_gen, np.floor)
_register("ceil", [GENF], _ret_gen, np.ceil)
_register("fract", [GENF], _ret_gen, _fract)
_register("mod", [GENF, GENF], _ret_gen, _mod)
_register("mod", [VECF, FLOAT], _ret_gen, _mixed(_mod))
_register("min", [GENF, GENF], _ret_gen, np.minimum)
_register("min", [VECF, FLOAT], _ret_gen, _mixed(np.minimum))
_register("max", [GENF, GENF], _ret_gen, np.maximum)
_register("max", [VECF, FLOAT], _ret_gen, _mixed(np.maximum))
_register("clamp", [GENF, GENF, GENF], _ret_gen, _clamp)
_register("clamp", [VECF, FLOAT, FLOAT], _ret_gen, _mixed(_clamp))
_register("mix", [GENF, GENF, GENF], _ret_gen, _mix)
_register("mix", [VECF, VECF, FLOAT], _ret_gen, _mixed(_mix))
_register("step", [GENF, GENF], _ret_gen, _step)
_register("step", [FLOAT, VECF], _ret_gen, _mixed(_step))
_register("smoothstep", [GENF, GENF, GENF], _ret_gen, _smoothstep)
_register("smoothstep", [FLOAT, FLOAT, VECF], _ret_gen, _mixed(_smoothstep))

# ----------------------------------------------------------------------
# 8.4 Geometric
# ----------------------------------------------------------------------
def _length(x):
    if x.ndim == 1:
        return np.abs(x)
    return np.sqrt(np.sum(x * x, axis=1))


def _distance(a, b):
    return _length(a - b)


def _dot(a, b):
    if a.ndim == 1:
        return a * b
    return np.sum(a * b, axis=1)


def _cross(a, b):
    return np.cross(a, b)


def _normalize(x):
    if x.ndim == 1:
        return np.sign(x)
    norm = np.sqrt(np.sum(x * x, axis=1, keepdims=True))
    with np.errstate(invalid="ignore", divide="ignore"):
        return x / norm


def _faceforward(n, i, nref):
    d = _dot(nref, i)
    cond = (d < 0.0).reshape(-1, *([1] * (n.ndim - 1)))
    return np.where(cond, n, -n)


def _reflect(i, n):
    d = _dot(n, i)
    if i.ndim > 1:
        d = d.reshape(-1, 1)
    return i - 2.0 * d * n


def _refract(i, n, eta):
    d = _dot(n, i)
    if i.ndim > 1:
        d = d.reshape(-1, 1)
        eta = _as2d(eta)
    k = 1.0 - eta * eta * (1.0 - d * d)
    out = eta * i - (eta * d + np.sqrt(np.maximum(k, 0.0))) * n
    return np.where(k < 0.0, 0.0, out)


_register("length", [GENF], _ret_float, _length, "sfu")
_register("distance", [GENF, GENF], _ret_float, _distance, "sfu")
_register("dot", [GENF, GENF], _ret_float, _dot)
_register("cross", [VEC3, VEC3], _ret_exact(VEC3), _cross)
_register("normalize", [GENF], _ret_gen, _normalize, "sfu")
_register("faceforward", [GENF, GENF, GENF], _ret_gen, _faceforward)
_register("reflect", [GENF, GENF], _ret_gen, _reflect)
_register("refract", [GENF, GENF, FLOAT], _ret_gen, _refract, "sfu")

# ----------------------------------------------------------------------
# 8.5 Matrix
# ----------------------------------------------------------------------
_register("matrixCompMult", [MAT, MAT], _ret_gen, lambda a, b: a * b)

# ----------------------------------------------------------------------
# 8.6 Vector relational
# ----------------------------------------------------------------------
_register("lessThan", [VECFI, VECFI], _ret_bvec_of_gen, np.less)
_register("lessThanEqual", [VECFI, VECFI], _ret_bvec_of_gen, np.less_equal)
_register("greaterThan", [VECFI, VECFI], _ret_bvec_of_gen, np.greater)
_register("greaterThanEqual", [VECFI, VECFI], _ret_bvec_of_gen, np.greater_equal)
_register("equal", [VECFI, VECFI], _ret_bvec_of_gen, np.equal)
_register("equal", [VECB, VECB], _ret_bvec_of_gen, np.equal)
_register("notEqual", [VECFI, VECFI], _ret_bvec_of_gen, np.not_equal)
_register("notEqual", [VECB, VECB], _ret_bvec_of_gen, np.not_equal)
_register("any", [VECB], _ret_bool, lambda x: np.any(x, axis=1))
_register("all", [VECB], _ret_bool, lambda x: np.all(x, axis=1))
_register("not", [VECB], _ret_bvec_of_gen, np.logical_not)

# ----------------------------------------------------------------------
# 8.7 Texture lookup — implemented by the interpreter itself, because
# they need the bound sampler object and the fragment mask.  The impl
# slot holds a marker string.
# ----------------------------------------------------------------------
_register("texture2D", [SAMPLER2D, VEC2], _ret_exact(VEC4), "texture2D", "tex")
_register("texture2D", [SAMPLER2D, VEC2, FLOAT], _ret_exact(VEC4), "texture2D", "tex")
_register("texture2DProj", [SAMPLER2D, VEC3], _ret_exact(VEC4), "texture2DProj3", "tex")
_register("texture2DProj", [SAMPLER2D, VEC4], _ret_exact(VEC4), "texture2DProj4", "tex")
_register("texture2DLod", [SAMPLER2D, VEC2, FLOAT], _ret_exact(VEC4), "texture2D", "tex")
_register("textureCube", [SAMPLERCUBE, VEC3], _ret_exact(VEC4), "textureCube", "tex")

#: Names of the texture built-ins (dispatch in the interpreter).
TEXTURE_BUILTINS = {"texture2D", "texture2DProj", "texture2DLod", "textureCube"}

#: Overload key -> overload, for interpreter dispatch.
OVERLOADS_BY_KEY: Dict[str, BuiltinOverload] = {
    overload.key: overload
    for overloads in REGISTRY.values()
    for overload in overloads
}
