"""Abstract syntax tree node definitions for GLSL ES 1.00.

Nodes are plain dataclasses.  Expression nodes carry a ``resolved_type``
slot that the type checker (:mod:`repro.glsl.typecheck`) fills in; the
interpreter relies on those annotations instead of re-deriving types.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import List, Optional, Tuple

from .types import GlslType


@dataclass
class Node:
    """Base class: every node knows its source line."""

    line: int = field(default=0, kw_only=True)


# ======================================================================
# Expressions
# ======================================================================
@dataclass
class Expr(Node):
    """Base class for expressions; annotated with a resolved type and
    a constness flag by the type checker."""

    resolved_type: Optional[GlslType] = field(default=None, kw_only=True)
    is_constant: bool = field(default=False, kw_only=True)


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class FloatLiteral(Expr):
    value: float = 0.0


@dataclass
class BoolLiteral(Expr):
    value: bool = False


@dataclass
class Identifier(Expr):
    name: str = ""


@dataclass
class UnaryOp(Expr):
    """Prefix ``-``, ``+``, ``!``, ``~`` (the last is reserved in ES)."""

    op: str = ""
    operand: Expr = None


@dataclass
class PrefixIncDec(Expr):
    op: str = ""  # "++" or "--"
    operand: Expr = None


@dataclass
class PostfixIncDec(Expr):
    op: str = ""  # "++" or "--"
    operand: Expr = None


@dataclass
class BinaryOp(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class Assignment(Expr):
    """``lhs op rhs`` where op is ``=``, ``+=``, ``-=``, ``*=``, ``/=``."""

    op: str = "="
    target: Expr = None
    value: Expr = None


@dataclass
class Conditional(Expr):
    """Ternary ``cond ? a : b``."""

    condition: Expr = None
    if_true: Expr = None
    if_false: Expr = None


@dataclass
class Call(Expr):
    """Function call or constructor; disambiguated by the type checker
    (``is_constructor`` set when the callee names a type)."""

    callee: str = ""
    args: List[Expr] = field(default_factory=list)
    is_constructor: bool = field(default=False, kw_only=True)
    constructed_type: Optional[GlslType] = field(default=None, kw_only=True)
    #: For user function calls: mangled key into the function table.
    resolved_signature: Optional[str] = field(default=None, kw_only=True)
    #: True when the callee is a GLSL built-in function.
    is_builtin: bool = field(default=False, kw_only=True)


@dataclass
class FieldAccess(Expr):
    """``expr.field`` — struct member access or vector swizzle.  The
    type checker sets ``swizzle`` for the latter."""

    base: Expr = None
    field_name: str = ""
    swizzle: Optional[Tuple[int, ...]] = field(default=None, kw_only=True)


@dataclass
class IndexAccess(Expr):
    """``expr[index]`` — array, vector or matrix indexing."""

    base: Expr = None
    index: Expr = None


@dataclass
class CommaExpr(Expr):
    """``a, b`` sequence; value is the right operand."""

    left: Expr = None
    right: Expr = None


# ======================================================================
# Statements
# ======================================================================
@dataclass
class Stmt(Node):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class Declarator(Node):
    """One declared name inside a declaration statement."""

    name: str = ""
    array_size: Optional[Expr] = None
    initializer: Optional[Expr] = None
    #: Filled by the type checker: the declared (possibly array) type.
    resolved_type: Optional[GlslType] = field(default=None, kw_only=True)


@dataclass
class DeclStmt(Stmt):
    """``const? type name (= init)? (, name2 ...)? ;``"""

    type_name: str = ""
    declarators: List[Declarator] = field(default_factory=list)
    is_const: bool = False
    precision: Optional[str] = None
    #: For struct-typed declarations: the struct's GlslType.
    struct: Optional[GlslType] = field(default=None, kw_only=True)


@dataclass
class IfStmt(Stmt):
    condition: Expr = None
    then_branch: Stmt = None
    else_branch: Optional[Stmt] = None


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt] = None
    condition: Optional[Expr] = None
    update: Optional[Expr] = None
    body: Stmt = None


@dataclass
class WhileStmt(Stmt):
    condition: Expr = None
    body: Stmt = None


@dataclass
class DoWhileStmt(Stmt):
    body: Stmt = None
    condition: Expr = None


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class DiscardStmt(Stmt):
    pass


@dataclass
class CompoundStmt(Stmt):
    statements: List[Stmt] = field(default_factory=list)


# ======================================================================
# Declarations at translation-unit scope
# ======================================================================
@dataclass
class Param(Node):
    """A function parameter."""

    name: str = ""
    type_name: str = ""
    direction: str = "in"  # in | out | inout
    array_size: Optional[Expr] = None
    precision: Optional[str] = None
    is_const: bool = False
    resolved_type: Optional[GlslType] = field(default=None, kw_only=True)


@dataclass
class FunctionDef(Node):
    name: str = ""
    return_type_name: str = ""
    params: List[Param] = field(default_factory=list)
    body: Optional[CompoundStmt] = None  # None for a prototype
    resolved_return_type: Optional[GlslType] = field(default=None, kw_only=True)


@dataclass
class GlobalDecl(Node):
    """A global variable declaration (attribute/uniform/varying/const/
    plain global)."""

    qualifier: Optional[str] = None  # attribute | uniform | varying | None
    is_const: bool = False
    is_invariant: bool = False
    precision: Optional[str] = None
    type_name: str = ""
    declarators: List[Declarator] = field(default_factory=list)
    struct: Optional[GlslType] = field(default=None, kw_only=True)


@dataclass
class PrecisionDecl(Node):
    """``precision mediump float;`` — recorded, affects the default
    precision table."""

    precision: str = ""
    type_name: str = ""


@dataclass
class StructDef(Node):
    """A named struct definition at global scope."""

    name: str = ""
    resolved: Optional[GlslType] = field(default=None, kw_only=True)


@dataclass
class TranslationUnit(Node):
    """A whole shader."""

    declarations: List[Node] = field(default_factory=list)


# ======================================================================
# Structural comparison
# ======================================================================
#: Annotation fields ignored by :func:`structurally_equal` — source
#: positions and checker-filled slots, which legitimately differ
#: between a freshly parsed tree and a checked/printed one.
_IGNORED_FIELDS = frozenset({"line", "resolved_type", "is_constant"})


def structurally_equal(a, b) -> bool:
    """True when two ASTs are identical up to source positions and type
    annotations.  This is the equality the printer round-trip guarantee
    (parse → print → parse) is stated in terms of, and what the test
    shrinker relies on to detect no-op reductions."""
    if isinstance(a, Node):
        if type(a) is not type(b):
            return False
        for f in fields(a):
            if f.name in _IGNORED_FIELDS:
                continue
            if not structurally_equal(getattr(a, f.name), getattr(b, f.name)):
                return False
        return True
    if isinstance(a, (list, tuple)):
        if not isinstance(b, (list, tuple)) or len(a) != len(b):
            return False
        return all(structurally_equal(x, y) for x, y in zip(a, b))
    return a == b
