"""Flat-loop executor for the register IR.

The structured program is flattened into a linear instruction list with
explicit jump targets; execution is then a single ``while pc < n`` loop
over pre-bound ``(handler, instr)`` pairs — no per-node recursion, no
dispatch dict lookups on the hot path.

:class:`IRExecutor` subclasses the AST :class:`~repro.glsl.interp.Interpreter`
and reuses all of its *value-level* machinery (`_eval_arith`,
`_apply_builtin`, `_construct`, `_index_value`, `_blend`, the l-value
reference classes, masks, counting, frames) so the two backends are
bit-identical by construction; only the control dispatch differs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..errors import GlslLimitError, GlslRuntimeError
from ..interp import (
    DEFAULT_MAX_LOOP_ITERATIONS,
    Interpreter,
    _FieldRef,
    _FunctionFrame,
    _IndexRef,
    _LoopFrame,
    _SwizzleRef,
    _VarRef,
)
from ..values import Value, assign_masked, zeros_for
from .nodes import (
    Block,
    CompiledProgram,
    CondRegion,
    FuncRegion,
    IfRegion,
    Instr,
    LoopRegion,
    ScRegion,
)

_COMPARE_FUNCS = {
    "<": np.less,
    ">": np.greater,
    "<=": np.less_equal,
    ">=": np.greater_equal,
}


# ======================================================================
# Flattening (structured regions -> linear code with jump targets)
# ======================================================================
def flatten_block(block: Block, code: List[Instr]) -> None:
    for item in block.items:
        if isinstance(item, Instr):
            code.append(item)
        elif isinstance(item, IfRegion):
            begin = Instr("IF", args=(item.cond,))
            code.append(begin)
            flatten_block(item.then_block, code)
            if item.else_block is not None:
                els = Instr("ELSE")
                code.append(els)
                begin.imm = len(code) - 1  # jump lands ON the ELSE op
                flatten_block(item.else_block, code)
                code.append(Instr("ENDIF"))
                els.imm = len(code) - 1
            else:
                code.append(Instr("ENDIF"))
                begin.imm = len(code) - 1
        elif isinstance(item, LoopRegion):
            code.append(Instr("LOOP_PUSH"))
            top_idx = len(code)
            top = Instr("LOOP_TOP",
                        imm=[item.pretest, item.cond_block is not None, 0, 0])
            code.append(top)
            test = None
            if item.cond_block is not None:
                flatten_block(item.cond_block, code)
                test = Instr("LOOP_TEST", args=(item.cond,))
                code.append(test)
            skip_idx = len(code)
            flatten_block(item.body_block, code)
            cont = Instr("LOOP_CONT", imm=None)
            code.append(cont)
            if item.update_block is not None:
                flatten_block(item.update_block, code)
            iter_idx = len(code)
            code.append(Instr("LOOP_ITER", imm=top_idx))
            if item.update_block is not None:
                cont.imm = iter_idx
            code.append(Instr("LOOP_POP"))
            exit_idx = len(code) - 1
            top.imm = (item.pretest, item.cond_block is not None,
                       exit_idx, skip_idx)
            if test is not None:
                test.imm = exit_idx
        elif isinstance(item, CondRegion):
            begin = Instr("CBEGIN", args=(item.cond,))
            code.append(begin)
            flatten_block(item.true_block, code)
            els = Instr("CELSE", args=(item.true_reg,))
            code.append(els)
            begin.imm = len(code) - 1
            flatten_block(item.false_block, code)
            code.append(Instr("CEND", out=item.out,
                              args=(item.true_reg, item.false_reg),
                              imm=None, type=item.type))
            els.imm = len(code) - 1
        elif isinstance(item, ScRegion):
            begin = Instr("SCBEGIN", args=(item.left,), imm=[item.op, 0])
            code.append(begin)
            flatten_block(item.rhs_block, code)
            code.append(Instr("SCEND", out=item.out,
                              args=(item.left, item.right), imm=item.op))
            begin.imm = (item.op, len(code) - 1)
        elif isinstance(item, FuncRegion):
            code.append(Instr("FUNC_PUSH", imm=item.ret_type))
            flatten_block(item.body_block, code)
            code.append(Instr("FUNC_POP", out=item.out, imm=item.ret_type))
        else:  # pragma: no cover - structural invariant
            raise GlslRuntimeError(f"cannot flatten {type(item).__name__}")


def flatten_program(program: CompiledProgram) -> None:
    """Fill the program's linear code caches (idempotent)."""
    if program.linear is not None:
        return
    code: List[Instr] = []
    flatten_block(program.body, code)
    program.linear = code
    program.global_linear = {}
    for plan in program.globals_plan:
        if plan.init_block is not None:
            init_code: List[Instr] = []
            flatten_block(plan.init_block, init_code)
            program.global_linear[plan.name] = init_code


class _LoopCtrl:
    __slots__ = ("region", "loop", "iterations")

    def __init__(self, region, loop):
        self.region = region
        self.loop = loop
        self.iterations = 0


# ======================================================================
# Executor
# ======================================================================
class IRExecutor(Interpreter):
    """Drop-in replacement for :class:`Interpreter` that runs compiled
    IR instead of walking the AST.  Same constructor, same
    ``execute(n, presets)`` contract, bit-identical results."""

    def __init__(self, checked, float_model=None, counters=None,
                 max_loop_iterations: int = DEFAULT_MAX_LOOP_ITERATIONS):
        self._nactive = -1
        super().__init__(checked, float_model, counters, max_loop_iterations)
        self.program: Optional[CompiledProgram] = None
        self.regs: List[Optional[Value]] = []
        self.consts = []
        self.call_stack: List[np.ndarray] = []
        self.if_ctrl: list = []
        self.loop_ctrl: List[_LoopCtrl] = []
        self.cond_ctrl: list = []
        self.sc_ctrl: list = []

    # ------------------------------------------------------------------
    # Cached lane popcount: straight-line code (the common case after
    # frame elision) never changes the mask, so ``_count`` can reuse
    # one popcount instead of summing the mask per counted op.
    # ------------------------------------------------------------------
    @property
    def exec_mask(self) -> np.ndarray:
        return self._exec_mask

    @exec_mask.setter
    def exec_mask(self, mask: np.ndarray) -> None:
        self._exec_mask = mask
        self._nactive = -1

    def _active_lanes(self) -> int:
        lanes = self._nactive
        if lanes < 0:
            lanes = self._nactive = int(self._exec_mask.sum())
        return lanes

    def _count(self, category: str, per_lane_ops: int = 1) -> None:
        counters = self.counters
        if counters is None or not per_lane_ops:
            return
        lanes = self._nactive
        if lanes < 0:
            lanes = self._nactive = int(self._exec_mask.sum())
        if lanes:
            counters.add(category, lanes * per_lane_ops)

    # ------------------------------------------------------------------
    def execute(self, n: int, presets: Dict[str, Value],
                count_globals: bool = True) -> Dict[str, Value]:
        from . import get_compiled

        program = self.program
        if program is None or program.checked is not self.checked:
            program = get_compiled(self.checked, self.fmodel)
            self.program = program
        self.n = n
        self.exec_mask = np.ones(n, dtype=bool)
        self.discarded = np.zeros(n, dtype=bool)
        self.globals_env = {}
        self.frames = []
        self.call_stack = []
        self.if_ctrl = []
        self.loop_ctrl = []
        self.cond_ctrl = []
        self.sc_ctrl = []
        self.consts = program.materialized_consts(self.fmodel)
        self.regs = [None] * program.nregs

        # Per-draw (not per-lane) init work: see Interpreter.execute on
        # why tiled callers mute it for all tiles but the first.
        saved_counters = self.counters
        if not count_globals:
            self.counters = None
        try:
            simple_inits = program.simple_inits()
            for plan in program.globals_plan:
                if plan.name in presets:
                    value = presets[plan.name]
                elif plan.is_sampler:
                    value = Value(plan.type)
                elif plan.init_block is not None:
                    idx = simple_inits.get(plan.name)
                    if idx is not None:
                        # Folded-to-constant initialiser: no frame needed.
                        gtype, data = self.consts[idx]
                        value = Value(gtype, data)
                    else:
                        value = self._run_global_init(program, plan)
                else:
                    value = zeros_for(plan.type, 1, self.fmodel.dtype)
                self.regs[plan.reg] = value
                self.globals_env[plan.name] = value
        finally:
            self.counters = saved_counters
        for name, value in presets.items():
            self.globals_env.setdefault(name, value)

        self._run(program.pairs())
        return self.globals_env

    def _run_global_init(self, program: CompiledProgram, plan) -> Value:
        # Mirrors Interpreter._materialize_global_init, including the
        # quirk that self.n keeps the full batch size while the frame
        # is batch-1.
        saved_mask = self.exec_mask
        self.exec_mask = np.ones(1, dtype=bool)
        frame = _FunctionFrame(1, plan.type, self.fmodel.dtype)
        self.frames.append(frame)
        try:
            self._run(program.init_pairs(plan.name))
        finally:
            self.frames.pop()
            self.exec_mask = saved_mask
        return self.regs[plan.init_reg]

    def _run(self, pairs) -> None:
        pc = 0
        n = len(pairs)
        while pc < n:
            handler, ins = pairs[pc]
            r = handler(self, ins)
            pc = pc + 1 if r is None else r

    # ------------------------------------------------------------------
    # L-value paths
    # ------------------------------------------------------------------
    def _make_ref(self, ins: Instr, path, idx_base: int):
        ref = _VarRef(self, self.regs[ins.args[0]])
        i = idx_base
        for step in path:
            kind = step[0]
            if kind == "f":
                ref = _FieldRef(self, ref, step[1])
            elif kind == "s":
                ref = _SwizzleRef(self, ref, step[1], step[2])
            else:
                ref = _IndexRef(self, ref, self.regs[ins.args[i]].data, step[1])
                i += 1
        return ref

    # ------------------------------------------------------------------
    # Value op handlers
    # ------------------------------------------------------------------
    def _h_const(self, ins):
        gtype, data = self.consts[ins.imm]
        # Fresh wrapper per execution: the pooled array is shared and
        # must never be reached by a masked assignment.
        self.regs[ins.out] = Value(gtype, data)

    def _h_move(self, ins):
        self.regs[ins.out] = self.regs[ins.args[0]]

    def _h_copy(self, ins):
        self.regs[ins.out] = self.regs[ins.args[0]].clone()

    def _h_decl(self, ins):
        self.regs[ins.out] = zeros_for(ins.type, 1, self.fmodel.dtype)

    def _h_unary(self, ins):
        operand = self.regs[ins.args[0]]
        if ins.imm == "-":
            data = -operand.data
            if operand.type.is_float_based():
                data = self.fmodel.quantize(data)
            self._count("alu", operand.type.component_count())
            self.regs[ins.out] = Value(operand.type, data)
        else:  # "!"
            self._count("alu")
            from ..types import BOOL
            self.regs[ins.out] = Value(BOOL, ~operand.data)

    def _h_arith(self, ins):
        self.regs[ins.out] = self._eval_arith(
            ins.imm[0], self.regs[ins.args[0]], self.regs[ins.args[1]],
            ins.type)

    def _h_compare(self, ins):
        from ..types import BOOL
        left = self.regs[ins.args[0]]
        right = self.regs[ins.args[1]]
        self._count("alu")
        self.regs[ins.out] = Value(
            BOOL, _COMPARE_FUNCS[ins.imm](left.data, right.data))

    def _h_equal(self, ins):
        from ..types import BOOL
        left = self.regs[ins.args[0]]
        right = self.regs[ins.args[1]]
        data = self._equal_data(left, right)
        if ins.imm[0] == "!=":
            data = ~data
        self._count("alu", left.type.component_count()
                    if left.data is not None else 1)
        self.regs[ins.out] = Value(BOOL, data)

    def _h_xor(self, ins):
        from ..types import BOOL
        left = self.regs[ins.args[0]]
        right = self.regs[ins.args[1]]
        self._count("alu")
        self.regs[ins.out] = Value(BOOL, left.data ^ right.data)

    def _h_construct(self, ins):
        self.regs[ins.out] = self._construct(
            ins.type, [self.regs[a] for a in ins.args])

    def _h_field(self, ins):
        self.regs[ins.out] = self.regs[ins.args[0]].fields[ins.imm]

    def _h_swizzle(self, ins):
        base = self.regs[ins.args[0]]
        indices = ins.imm
        if len(indices) == 1:
            self.regs[ins.out] = Value(ins.type, base.data[:, indices[0]])
        else:
            self.regs[ins.out] = Value(ins.type, base.data[:, list(indices)])

    def _h_index(self, ins):
        self.regs[ins.out] = self._index_value(
            self.regs[ins.args[0]], self.regs[ins.args[1]], ins.type)

    def _h_builtin(self, ins):
        self.regs[ins.out] = self._apply_builtin(
            ins.imm[1], [self.regs[a] for a in ins.args], ins.type)

    def _h_load(self, ins):
        self.regs[ins.out] = self._make_ref(ins, ins.imm, 1).read()

    def _h_store(self, ins):
        ref = self._make_ref(ins, ins.imm, 2)
        ref.write(self.regs[ins.args[1]], self.exec_mask)

    def _h_store_var(self, ins):
        # Bind-time specialisation of ``store`` with an empty l-value
        # path (a plain variable).  Under a full mask the blend result
        # is value-identical to the source, and the no-in-place
        # invariant (stores replace ``Value.data``, never mutate
        # arrays) makes sharing the source array safe.
        target = self.regs[ins.args[0]]
        source = self.regs[ins.args[1]]
        mask = self._exec_mask
        lanes = self._nactive
        if lanes < 0:
            lanes = self._nactive = int(mask.sum())
        tdata = target.data
        sdata = source.data
        if (lanes == mask.shape[0] and tdata is not None
                and sdata is not None
                and sdata.dtype == tdata.dtype
                and sdata.shape[1:] == tdata.shape[1:]
                and sdata.shape[0] >= tdata.shape[0]):
            target.data = sdata
            return
        assign_masked(target, source, mask)

    def _h_incdec(self, ins):
        path, op, prefix = ins.imm
        ref = self._make_ref(ins, path, 1)
        old = ref.read()
        old_data = old.data
        one = np.asarray(1, dtype=old_data.dtype)
        delta = one if op == "++" else -one
        new_data = old_data + delta
        if old.type.is_float_based():
            new_data = self.fmodel.quantize(new_data)
        self._count("alu", old.type.component_count())
        new = Value(old.type, new_data)
        ref.write(new, self.exec_mask)
        self.regs[ins.out] = new if prefix else Value(old.type, old_data.copy())

    def _h_select(self, ins):
        cond = self._broadcast_mask(self.regs[ins.args[0]].data)
        self.regs[ins.out] = self._blend(
            self.regs[ins.args[1]], self.regs[ins.args[2]], cond)

    def _h_sc_combine(self, ins):
        from ..types import BOOL
        left_mask = self._broadcast_mask(self.regs[ins.args[0]].data)
        right_mask = self._broadcast_mask(self.regs[ins.args[1]].data)
        rhs_mask = self.exec_mask & (left_mask if ins.imm == "&&" else ~left_mask)
        if ins.imm == "&&":
            result = left_mask & (right_mask | ~rhs_mask)
        else:
            result = left_mask | (right_mask & rhs_mask)
        self._count("alu")
        self.regs[ins.out] = Value(BOOL, result)

    # ------------------------------------------------------------------
    # Kill-channel handlers
    # ------------------------------------------------------------------
    def _h_return(self, ins):
        frame = self.frames[-1]
        if ins.args:
            assign_masked(frame.return_value, self.regs[ins.args[0]],
                          self.exec_mask)
        frame.returned |= self.exec_mask
        self.exec_mask = self.exec_mask & ~frame.returned

    def _h_break(self, ins):
        loop = self.frames[-1].loops[-1]
        loop.broken |= self.exec_mask
        self.exec_mask = self.exec_mask & ~loop.broken

    def _h_continue(self, ins):
        loop = self.frames[-1].loops[-1]
        loop.continued |= self.exec_mask
        self.exec_mask = self.exec_mask & ~loop.continued

    def _h_discard(self, ins):
        self.discarded |= self.exec_mask
        self.exec_mask = self.exec_mask & ~self.discarded

    # ------------------------------------------------------------------
    # Control handlers
    # ------------------------------------------------------------------
    def _h_if(self, ins):
        region = self.exec_mask
        cond = self._broadcast_mask(self.regs[ins.args[0]].data)
        self.if_ctrl.append((region, cond))
        then_mask = region & cond & self._live()
        self.exec_mask = then_mask
        if not then_mask.any():
            return ins.imm

    def _h_else(self, ins):
        region, cond = self.if_ctrl[-1]
        else_mask = region & ~cond & self._live()
        self.exec_mask = else_mask
        if not else_mask.any():
            return ins.imm

    def _h_endif(self, ins):
        region, _cond = self.if_ctrl.pop()
        self.exec_mask = region & self._live()

    def _h_loop_push(self, ins):
        region = self.exec_mask.copy()
        loop = _LoopFrame(self.n)
        self.frames[-1].loops.append(loop)
        self.loop_ctrl.append(_LoopCtrl(region, loop))

    def _h_loop_top(self, ins):
        pretest, has_cond, exit_idx, skip_idx = ins.imm
        entry = self.loop_ctrl[-1]
        self.exec_mask = entry.region & self._live()
        if not self.exec_mask.any():
            return exit_idx
        if has_cond and (pretest or entry.iterations > 0):
            return None  # fall through into the condition block
        return skip_idx

    def _h_loop_test(self, ins):
        entry = self.loop_ctrl[-1]
        cond = self._broadcast_mask(self.regs[ins.args[0]].data)
        entry.loop.exited |= self.exec_mask & ~cond
        self.exec_mask = self.exec_mask & cond
        if not self.exec_mask.any():
            return ins.imm

    def _h_loop_cont(self, ins):
        entry = self.loop_ctrl[-1]
        entry.loop.continued[:] = False
        self.exec_mask = entry.region & self._live()
        # Skip the update block when no lane needs it (mirrors the
        # tree walker's `if update and exec_mask.any()`).
        if ins.imm is not None and not self.exec_mask.any():
            return ins.imm

    def _h_loop_iter(self, ins):
        entry = self.loop_ctrl[-1]
        entry.iterations += 1
        if entry.iterations > self.max_loop_iterations:
            raise GlslLimitError(
                f"loop exceeded {self.max_loop_iterations} iterations")
        return ins.imm

    def _h_loop_pop(self, ins):
        entry = self.loop_ctrl.pop()
        self.frames[-1].loops.pop()
        self.exec_mask = entry.region & self._live()

    def _h_cbegin(self, ins):
        cond = self._broadcast_mask(self.regs[ins.args[0]].data)
        saved = self.exec_mask
        true_mask = saved & cond
        false_mask = saved & ~cond
        if not false_mask.any():
            # Uniform-true fast path: evaluate the true arm under the
            # unmodified mask; result is an alias, no blend.
            self.cond_ctrl.append((saved, cond, "t"))
            return None
        if not true_mask.any():
            self.cond_ctrl.append((saved, cond, "f"))
            return ins.imm  # straight to CELSE
        self.cond_ctrl.append((saved, cond, "b"))
        self.exec_mask = true_mask
        return None

    def _h_celse(self, ins):
        saved, cond, mode = self.cond_ctrl[-1]
        if mode == "t":
            return ins.imm  # skip the false arm entirely
        if mode == "f":
            self.exec_mask = saved
            return None
        self.exec_mask = saved & ~cond
        return None

    def _h_cend(self, ins):
        saved, cond, mode = self.cond_ctrl.pop()
        self.exec_mask = saved
        if mode == "t":
            self.regs[ins.out] = self.regs[ins.args[0]]
        elif mode == "f":
            self.regs[ins.out] = self.regs[ins.args[1]]
        else:
            self.regs[ins.out] = self._blend(
                self.regs[ins.args[0]], self.regs[ins.args[1]], cond)

    def _h_scbegin(self, ins):
        op, end_idx = ins.imm
        left_mask = self._broadcast_mask(self.regs[ins.args[0]].data)
        saved = self.exec_mask
        rhs_mask = saved & (left_mask if op == "&&" else ~left_mask)
        evaluated = bool(rhs_mask.any())
        self.sc_ctrl.append((saved, left_mask, rhs_mask, evaluated))
        if evaluated:
            self.exec_mask = rhs_mask
            return None
        return end_idx

    def _h_scend(self, ins):
        from ..types import BOOL
        saved, left_mask, rhs_mask, evaluated = self.sc_ctrl.pop()
        self.exec_mask = saved
        if evaluated:
            right_mask = self._broadcast_mask(self.regs[ins.args[1]].data)
            if ins.imm == "&&":
                result = left_mask & (right_mask | ~rhs_mask)
            else:
                result = left_mask | (right_mask & rhs_mask)
        else:
            result = left_mask.copy()
        self._count("alu")
        self.regs[ins.out] = Value(BOOL, result)

    def _h_func_push(self, ins):
        if len(self.frames) > 64:
            raise GlslLimitError("function call nesting too deep")
        frame = _FunctionFrame(self.n, ins.imm, self.fmodel.dtype)
        self.call_stack.append(self.exec_mask.copy())
        self.frames.append(frame)

    def _h_func_pop(self, ins):
        frame = self.frames.pop()
        self.exec_mask = self.call_stack.pop() & self._live()
        if frame.return_value is not None:
            self.regs[ins.out] = frame.return_value
        else:
            self.regs[ins.out] = Value(ins.imm)


HANDLERS = {
    "const": IRExecutor._h_const,
    "move": IRExecutor._h_move,
    "copy": IRExecutor._h_copy,
    "decl": IRExecutor._h_decl,
    "unary": IRExecutor._h_unary,
    "arith": IRExecutor._h_arith,
    "compare": IRExecutor._h_compare,
    "equal": IRExecutor._h_equal,
    "xor": IRExecutor._h_xor,
    "construct": IRExecutor._h_construct,
    "field": IRExecutor._h_field,
    "swizzle": IRExecutor._h_swizzle,
    "index": IRExecutor._h_index,
    "builtin": IRExecutor._h_builtin,
    "texture": IRExecutor._h_builtin,
    "load": IRExecutor._h_load,
    "store": IRExecutor._h_store,
    "incdec": IRExecutor._h_incdec,
    "select": IRExecutor._h_select,
    "sc_combine": IRExecutor._h_sc_combine,
    "return": IRExecutor._h_return,
    "break": IRExecutor._h_break,
    "continue": IRExecutor._h_continue,
    "discard": IRExecutor._h_discard,
    "IF": IRExecutor._h_if,
    "ELSE": IRExecutor._h_else,
    "ENDIF": IRExecutor._h_endif,
    "LOOP_PUSH": IRExecutor._h_loop_push,
    "LOOP_TOP": IRExecutor._h_loop_top,
    "LOOP_TEST": IRExecutor._h_loop_test,
    "LOOP_CONT": IRExecutor._h_loop_cont,
    "LOOP_ITER": IRExecutor._h_loop_iter,
    "LOOP_POP": IRExecutor._h_loop_pop,
    "CBEGIN": IRExecutor._h_cbegin,
    "CELSE": IRExecutor._h_celse,
    "CEND": IRExecutor._h_cend,
    "SCBEGIN": IRExecutor._h_scbegin,
    "SCEND": IRExecutor._h_scend,
    "FUNC_PUSH": IRExecutor._h_func_push,
    "FUNC_POP": IRExecutor._h_func_pop,
}


def _handler_for(ins: Instr):
    # Empty-path loads/stores are plain variable accesses: specialise
    # at bind time to skip the l-value reference chain entirely.
    if ins.op == "store" and ins.imm == ():
        return IRExecutor._h_store_var
    if ins.op == "load" and ins.imm == ():
        return IRExecutor._h_move
    return HANDLERS[ins.op]


def _bind_pairs(code: List[Instr]):
    return [(_handler_for(ins), ins) for ins in code]


def _program_pairs(self: CompiledProgram):
    """Pre-bound (handler, instr) pairs for the main body (cached)."""
    flatten_program(self)
    pairs = getattr(self, "_pairs", None)
    if pairs is None:
        pairs = _bind_pairs(self.linear)
        self._pairs = pairs
    return pairs


def _program_init_pairs(self: CompiledProgram, name: str):
    flatten_program(self)
    cache = getattr(self, "_init_pairs", None)
    if cache is None:
        cache = {}
        self._init_pairs = cache
    pairs = cache.get(name)
    if pairs is None:
        pairs = _bind_pairs(self.global_linear[name])
        cache[name] = pairs
    return pairs


def _program_simple_inits(self: CompiledProgram):
    """Global initialisers the fold pass reduced to a lone constant:
    ``name -> const pool index`` (cached).  The executor materialises
    these directly instead of running an activation frame."""
    simple = getattr(self, "_simple_inits", None)
    if simple is None:
        simple = {}
        for plan in self.globals_plan:
            block = plan.init_block
            if block is None or len(block.items) != 1:
                continue
            ins = block.items[0]
            if isinstance(ins, Instr) and ins.op == "const" \
                    and ins.out == plan.init_reg:
                simple[plan.name] = ins.imm
        self._simple_inits = simple
    return simple


CompiledProgram.pairs = _program_pairs
CompiledProgram.init_pairs = _program_init_pairs
CompiledProgram.simple_inits = _program_simple_inits
