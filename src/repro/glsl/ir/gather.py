"""Texture-gather annotation pass.

The kernel codegen (:mod:`repro.core.codegen.templates`) addresses
every input texture through the same two helpers: ``index_1d`` turns
the fragment position into a flat element index, and ``fetch_<input>``
maps that index back to a normalised sample coordinate as::

    float x = mod(idx, size.x);
    float y = floor(idx / size.x);
    vec2 coord = (vec2(x, y) + 0.5) / size;
    ... texture2D(sampler, coord) ...

After the optimisation pipeline this survives as one rigid instruction
chain (mod / floor / construct / +0.5 / divide-by-size), either fully
forwarded into pure value ops (straight-line kernels) or still routed
through the helper's single-store locals (loop bodies, where store
forwarding does not cross iterations).  This pass recognises both
forms and annotates the ``texture`` instruction with
``gather = (size_reg, x_reg, y_reg)``: a machine-checked proof that
the sample coordinate is the texel-centre form of the integer indices
held in ``x_reg``/``y_reg`` under the dimensions in ``size_reg``.

What the annotation licenses
----------------------------
For a *nearest*-filtered sampler the pipeline computes
``i = floor(s * W)`` (GLES2 §3.7.7); for ``s = (x + 0.5) / W`` with
integer ``0 <= x < W`` this round-trips exactly — in float32
(precision ``p = 24``) the combined relative error of the divide and
multiply roundings is below ``2^-24 + 2^-53``, so
``|s*W - (x+0.5)| < 0.5`` whenever ``W <= 2^21`` and the floor
recovers ``x`` — and CLAMP_TO_EDGE wrap is the identity on in-range
indices.  A backend may therefore replace the whole wrap/scale/filter
pipeline with a direct texel-storage gather ``texels[y, x]`` once the
*runtime* half of the proof holds: the sampler is complete with
NEAREST mag filter and CLAMP_TO_EDGE wrap on both axes, its
dimensions equal the ``size`` uniform, and the ``x``/``y`` values are
integral and in-range (``size`` is a runtime uniform, so integrality
and range cannot be proved statically; the JIT's ``_gather`` helper
checks them per call and falls back to the ordinary sampler
otherwise, counted in ``gather_fallbacks``).

Lane-freshness soundness
------------------------
Value ops compute full-width data (masks only gate stores), so a
chain of *pure* single-definition registers is value-consistent on
every lane, active or not.  The store-routed form is consistent only
because all three locals (``x``, ``y``, ``coord``) are written under
the same execution mask: the pass requires their defining stores and
the texture instruction to share one block with no region boundaries
or kill ops in between, so per lane the three registers always hold
values from the same (possibly earlier) iteration and the coordinate
relation holds lane-wise.  Mixed pure/stored chains are rejected —
a fresh full-width index paired with a stale masked coordinate could
disagree on inactive lanes.

The pass runs after :func:`~repro.glsl.ir.passes.compact_pool` so
constant-pool indices are final, and is purely additive: it never
reorders, rewrites or removes instructions, so the AST/IR/scalar-ref
backends are untouched and remain bit-identical oracles.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .nodes import Block, CompiledProgram, Instr, KILL_OPS, Region

#: texture overload keys eligible for gather (plain 2-D texture2D).
_GATHER_TEX_KEYS = frozenset({"texture2D/0"})

#: ops a matched coordinate chain may consist of — all pure value ops.
_CHAIN_OPS = frozenset({"const", "swizzle", "builtin", "arith", "construct"})


def _sub_blocks(region):
    for slot in region.__slots__:
        value = getattr(region, slot)
        if isinstance(value, Block):
            yield value


class _DefInfo:
    """Program-wide single-definition / single-store index."""

    def __init__(self, program: CompiledProgram):
        #: reg -> unique defining Instr, or None when multiply defined
        self.defs: Dict[int, Optional[Instr]] = {}
        #: store root reg -> list of (block, index, Instr)
        self.stores: Dict[int, List[Tuple[Block, int, Instr]]] = {}
        #: id(Instr) -> (block, index within block.items)
        self.positions: Dict[int, Tuple[Block, int]] = {}
        for plan in program.globals_plan:
            if plan.init_block is not None:
                self._scan(plan.init_block)
        self._scan(program.body)

    def _scan(self, block: Block) -> None:
        for idx, item in enumerate(block.items):
            if isinstance(item, Instr):
                self.positions[id(item)] = (block, idx)
                if item.op in ("store", "incdec") and item.args:
                    self.stores.setdefault(item.args[0], []).append(
                        (block, idx, item)
                    )
                if item.out is not None:
                    if item.out in self.defs:
                        self.defs[item.out] = None
                    else:
                        self.defs[item.out] = item
            elif isinstance(item, Region):
                for sub in _sub_blocks(item):
                    self._scan(sub)

    def resolve(self, reg: int):
        """Resolve ``reg`` to the pure instruction computing its value.

        Returns ``(instr, store)`` where ``store`` is None for a pure
        single-definition register, or the ``(block, idx, Instr)``
        triple of the *single* whole-value store when ``reg`` is a
        store-routed local whose stored source is pure.  Returns None
        when the value cannot be pinned down.
        """
        ins = self.defs.get(reg)
        if ins is None:
            return None
        if ins.op in _CHAIN_OPS and reg not in self.stores:
            return ins, None
        writes = self.stores.get(reg, ())
        if len(writes) != 1:
            return None
        block, idx, st = writes[0]
        if st.op != "store" or st.imm != () or len(st.args) != 2:
            return None  # partial (swizzled/indexed) store: not whole-value
        src = self.defs.get(st.args[1])
        if src is None or src.op not in _CHAIN_OPS \
                or st.args[1] in self.stores:
            return None
        return src, (block, idx, st)


def _is_half_const(program: CompiledProgram, imm) -> bool:
    """True when ``imm`` indexes a scalar float 0.5 in the pool."""
    if not isinstance(imm, int) or not 0 <= imm < len(program.consts):
        return False
    gtype, master = program.consts[imm]
    flat = master.reshape(-1)
    return str(gtype) == "float" and flat.size == 1 and float(flat[0]) == 0.5


def _same_mask_window(info: _DefInfo, tex: Instr, stores) -> bool:
    """True when every store in ``stores`` shares the texture's block
    and the span from the earliest store to the texture is free of
    region boundaries and kill ops — i.e. one execution mask covers
    all of them and the stored triple is lane-consistent."""
    tex_pos = info.positions.get(id(tex))
    if tex_pos is None:
        return False
    tex_block, tex_idx = tex_pos
    first = tex_idx
    for block, idx, __ in stores:
        if block is not tex_block or idx >= tex_idx:
            return False
        first = min(first, idx)
    for item in tex_block.items[first:tex_idx]:
        if isinstance(item, Region):
            return False
        if isinstance(item, Instr) and item.op in KILL_OPS:
            return False
    return True


def _match_fetch_chain(program, tex: Instr, info: _DefInfo):
    """Match the fetch-helper coordinate chain rooted at ``tex``.

    Expected value structure (each endpoint either a pure register or
    a single-store local)::

        swizzle   sx    <- size (0,)
        builtin   x     <- idx sx mod/0
        arith     q     <- idx sx ('/', 1)
        builtin   y     <- q floor/0
        construct xy    <- x y : vec2
        const     half  <- pool[0.5]
        arith     sum   <- xy half ('+', 2)
        arith     coord <- sum size ('/', 2)
        texture   out   <- sampler coord texture2D/0

    Returns ``(size_reg, x_reg, y_reg)`` or None.
    """

    def pure(reg, op):
        res = info.resolve(reg)
        if res is None or res[1] is not None or res[0].op != op:
            return None
        return res[0]

    coord_res = info.resolve(tex.args[1])
    if coord_res is None:
        return None
    coord, coord_store = coord_res
    if coord.op != "arith" or coord.imm[0] != "/" or len(coord.args) != 2:
        return None
    sum_reg, size_reg = coord.args
    if size_reg in info.stores:
        return None
    add = pure(sum_reg, "arith")
    if add is None or add.imm[0] != "+" or len(add.args) != 2:
        return None
    for xy_reg, half_reg in (add.args, add.args[::-1]):
        half = pure(half_reg, "const")
        if half is not None and _is_half_const(program, half.imm):
            break
    else:
        return None
    xy = pure(xy_reg, "construct")
    if xy is None or len(xy.args) != 2 or str(xy.type) != "vec2":
        return None
    x_reg, y_reg = xy.args
    x_res = info.resolve(x_reg)
    y_res = info.resolve(y_reg)
    if x_res is None or y_res is None:
        return None
    x, x_store = x_res
    y, y_store = y_res
    if x.op != "builtin" or x.imm[0] != "mod/0" or len(x.args) != 2:
        return None
    idx_reg, sx_reg = x.args
    if idx_reg in info.stores:
        return None
    if y.op != "builtin" or y.imm[0] != "floor/0" or len(y.args) != 1:
        return None
    quot = pure(y.args[0], "arith")
    if quot is None or quot.imm[0] != "/" or quot.args != (idx_reg, sx_reg):
        return None
    sx = pure(sx_reg, "swizzle")
    if sx is None or sx.imm != (0,) or sx.args != (size_reg,):
        return None
    # Lane-freshness: all three endpoints pure, or all three stored
    # under one mask in the texture's own block (see module docstring).
    endpoint_stores = [s for s in (coord_store, x_store, y_store)
                       if s is not None]
    if endpoint_stores:
        if len(endpoint_stores) != 3:
            return None  # mixed pure/stored: inactive lanes may skew
        if not _same_mask_window(info, tex, endpoint_stores):
            return None
    return (size_reg, x_reg, y_reg)


def annotate_gathers(program: CompiledProgram) -> int:
    """Annotate every provable fetch-pattern texture instruction.

    Returns the number of sites annotated (for tests/diagnostics).
    Idempotent; stale annotations from a previous run are cleared.
    """
    info = _DefInfo(program)

    def visit(block: Block) -> int:
        sites = 0
        for item in block.items:
            if isinstance(item, Instr):
                if item.op != "texture":
                    continue
                item.gather = None
                imm = item.imm
                if (not isinstance(imm, tuple) or len(imm) != 2
                        or imm[0] not in _GATHER_TEX_KEYS
                        or len(item.args) != 2):
                    continue
                match = _match_fetch_chain(program, item, info)
                if match is not None:
                    item.gather = match
                    sites += 1
            elif isinstance(item, Region):
                for sub in _sub_blocks(item):
                    sites += visit(sub)
        return sites

    return visit(program.body)
