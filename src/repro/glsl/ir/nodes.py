"""The linear, register-based IR for compiled GLSL shaders.

A :class:`CompiledProgram` is the artifact produced by
:mod:`repro.glsl.ir.lower` and consumed by the flat-loop executor
(:mod:`repro.glsl.ir.executor`), the optimisation passes
(:mod:`repro.glsl.ir.passes`) and the static cost model
(:mod:`repro.glsl.ir.cost`).

The IR is *structured*: straight-line value operations are plain
:class:`Instr` records over an infinite register file, while control
flow is explicit region nodes (:class:`IfRegion`, :class:`LoopRegion`,
:class:`CondRegion`, :class:`ScRegion`, :class:`FuncRegion`) that
carry the four divergence channels (``return`` / ``break`` /
``continue`` / ``discard``) as explicit lane masks at execution time.
User function calls are inlined at lower time (GLSL ES 1.00 forbids
recursion, so inlining always terminates) and Appendix-A ``for`` loops
are *bounded* at lower time: the lowering derives a static trip count
whenever the loop matches the Appendix-A shape, which the static cost
model consumes.

The structured form is flattened into a linear instruction list with
jump targets by the executor; the structured form is what the golden
IR dumps (``tests/corpus/*.ir``) record.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np

# ----------------------------------------------------------------------
# Instruction opcodes (value ops + straight-line effects)
# ----------------------------------------------------------------------
#: Pure value ops: produce a register from argument registers with no
#: side effects.  Safe to fold / CSE / speculate (texture excluded from
#: CSE and DCE only to keep ``tex`` counter semantics close to the AST
#: walker).
PURE_OPS = frozenset({
    "const", "move", "unary", "arith", "compare", "equal", "xor",
    "construct", "field", "swizzle", "index", "builtin", "load",
    "select", "sc_combine",
})

#: Ops whose only effect is a masked write through an l-value path.
STORE_OPS = frozenset({"store", "incdec"})

#: Mask ops: kill lanes through one of the divergence channels.
KILL_OPS = frozenset({"return", "break", "continue", "discard"})


class Instr:
    """One straight-line IR instruction.

    Fields
    ------
    op:
        Opcode string (see module docstring / executor table).
    out:
        Destination register or None.
    args:
        Tuple of argument registers.
    imm:
        Opcode-specific immediate payload (operator string, swizzle
        indices, l-value path, constant-pool index, ...).
    type:
        The result :class:`~repro.glsl.types.GlslType` where the
        executor needs it (arith/construct/index/...).
    gather:
        Texture instructions only: ``(size_reg, x_reg, y_reg)`` when
        the annotation pass (:mod:`repro.glsl.ir.gather`) proved the
        sample coordinates are the kernel codegen's texel-centre form
        ``(vec2(x, y) + 0.5) / size`` — i.e. integer texel indices
        ``x``/``y`` divided back out of normalised space.  Backends
        may then gather texel storage directly once the runtime
        qualification (sampler complete, NEAREST + CLAMP_TO_EDGE,
        indices in-range) holds; None everywhere else.
    """

    __slots__ = ("op", "out", "args", "imm", "type", "gather")

    def __init__(self, op, out=None, args=(), imm=None, type=None,
                 gather=None):
        self.op = op
        self.out = out
        self.args = tuple(args)
        self.imm = imm
        self.type = type
        self.gather = gather

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Instr({format_instr(self)})"


class Block:
    """An ordered sequence of instructions and nested regions."""

    __slots__ = ("items",)

    def __init__(self, items: Optional[list] = None):
        self.items: List[Union[Instr, "Region"]] = items if items is not None else []

    def append(self, item) -> None:
        self.items.append(item)


class IfRegion:
    """``if`` statement: masked execution of one or two branches."""

    __slots__ = ("cond", "then_block", "else_block")

    def __init__(self, cond: int, then_block: Block, else_block: Optional[Block]):
        self.cond = cond
        self.then_block = then_block
        self.else_block = else_block


class LoopRegion:
    """``for`` / ``while`` / ``do-while``: masked loop with per-lane
    break/continue/exit channels.

    ``static_trips`` is the Appendix-A trip count derived at lower
    time, or None when the loop shape is not statically analysable.
    """

    __slots__ = ("pretest", "cond_block", "cond", "body_block",
                 "update_block", "static_trips")

    def __init__(self, pretest: bool, cond_block: Optional[Block],
                 cond: Optional[int], body_block: Block,
                 update_block: Optional[Block], static_trips: Optional[int]):
        self.pretest = pretest
        self.cond_block = cond_block
        self.cond = cond
        self.body_block = body_block
        self.update_block = update_block
        self.static_trips = static_trips


class CondRegion:
    """Ternary ``?:`` with the AST interpreter's uniform fast paths."""

    __slots__ = ("cond", "true_block", "true_reg", "false_block",
                 "false_reg", "out", "type")

    def __init__(self, cond, true_block, true_reg, false_block,
                 false_reg, out, type):
        self.cond = cond
        self.true_block = true_block
        self.true_reg = true_reg
        self.false_block = false_block
        self.false_reg = false_reg
        self.out = out
        self.type = type


class ScRegion:
    """Short-circuit ``&&`` / ``||``: the rhs only executes on lanes
    the lhs did not decide."""

    __slots__ = ("op", "left", "rhs_block", "right", "out")

    def __init__(self, op, left, rhs_block, right, out):
        self.op = op
        self.left = left
        self.rhs_block = rhs_block
        self.right = right
        self.out = out


class FuncRegion:
    """One inlined user-function invocation: pushes an activation
    frame (``returned`` mask + return-value slot) around its body."""

    __slots__ = ("name", "ret_type", "body_block", "out")

    def __init__(self, name, ret_type, body_block, out):
        self.name = name
        self.ret_type = ret_type
        self.body_block = body_block
        self.out = out


Region = (IfRegion, LoopRegion, CondRegion, ScRegion, FuncRegion)


class GlobalPlan:
    """How one shader global gets its initial register value."""

    __slots__ = ("name", "reg", "type", "is_sampler", "init_block", "init_reg")

    def __init__(self, name, reg, type, is_sampler=False,
                 init_block: Optional[Block] = None, init_reg: Optional[int] = None):
        self.name = name
        self.reg = reg
        self.type = type
        self.is_sampler = is_sampler
        self.init_block = init_block
        self.init_reg = init_reg


class CompiledProgram:
    """The compiled artifact for one shader stage.

    Holds the structured IR (``body`` + per-global init blocks), the
    constant pool (master copies; materialised per float dtype by the
    executor) and, once the executor has flattened it, the linear
    instruction streams.
    """

    def __init__(self, checked, globals_plan: List[GlobalPlan],
                 body: Block, nregs: int,
                 consts: List[Tuple[object, np.ndarray]]):
        self.checked = checked
        self.globals_plan = globals_plan
        self.body = body
        self.nregs = nregs
        #: constant pool: (GlslType, master ndarray).  Float-based
        #: masters are stored in the dtype they were folded/parsed in
        #: and cast to the executor's float dtype at bind time.
        self.consts = consts
        #: dtype str -> list of materialised constant Values
        self._const_cache: Dict[str, list] = {}
        #: flattened linear code (filled by executor.flatten_program)
        self.linear = None
        self.global_linear = None

    def materialized_consts(self, fmodel):
        """Constant Values for one float model (cached per dtype)."""
        from ..values import Value

        key = np.dtype(fmodel.dtype).str
        cached = self._const_cache.get(key)
        if cached is None:
            cached = []
            for gtype, master in self.consts:
                if gtype.is_float_based() and master.dtype != fmodel.dtype:
                    data = master.astype(fmodel.dtype)
                else:
                    data = master
                cached.append((gtype, data))
            self._const_cache[key] = cached
        return cached


# ----------------------------------------------------------------------
# Deterministic text dump (golden IR tests)
# ----------------------------------------------------------------------
def _fmt_imm(imm) -> str:
    if imm is None:
        return ""
    if isinstance(imm, tuple) and len(imm) == 2 and hasattr(imm[1], "impl"):
        return imm[0]  # (builtin key, overload object)
    return repr(imm)


def format_instr(ins: Instr) -> str:
    parts = [ins.op]
    if ins.out is not None:
        parts.append(f"r{ins.out} <-")
    if ins.args:
        parts.append(" ".join(f"r{a}" for a in ins.args))
    imm = _fmt_imm(ins.imm)
    if imm:
        parts.append(imm)
    if ins.type is not None:
        parts.append(f": {ins.type}")
    if getattr(ins, "gather", None) is not None:
        size_reg, x_reg, y_reg = ins.gather
        parts.append(f"gather(size=r{size_reg}, x=r{x_reg}, y=r{y_reg})")
    return " ".join(parts)


def _dump_block(block: Block, indent: str, lines: List[str]) -> None:
    for item in block.items:
        if isinstance(item, Instr):
            lines.append(indent + format_instr(item))
        elif isinstance(item, IfRegion):
            lines.append(indent + f"if r{item.cond} {{")
            _dump_block(item.then_block, indent + "  ", lines)
            if item.else_block is not None:
                lines.append(indent + "} else {")
                _dump_block(item.else_block, indent + "  ", lines)
            lines.append(indent + "}")
        elif isinstance(item, LoopRegion):
            kind = "loop" if item.pretest else "do-loop"
            trips = "?" if item.static_trips is None else str(item.static_trips)
            lines.append(indent + f"{kind} trips={trips} {{")
            if item.cond_block is not None:
                lines.append(indent + "  cond {")
                _dump_block(item.cond_block, indent + "    ", lines)
                lines.append(indent + f"  }} test r{item.cond}")
            _dump_block(item.body_block, indent + "  ", lines)
            if item.update_block is not None:
                lines.append(indent + "  update {")
                _dump_block(item.update_block, indent + "    ", lines)
                lines.append(indent + "  }")
            lines.append(indent + "}")
        elif isinstance(item, CondRegion):
            lines.append(indent + f"cond r{item.out} <- r{item.cond} ? {{")
            _dump_block(item.true_block, indent + "  ", lines)
            lines.append(indent + f"  -> r{item.true_reg}")
            lines.append(indent + "} : {")
            _dump_block(item.false_block, indent + "  ", lines)
            lines.append(indent + f"  -> r{item.false_reg}")
            lines.append(indent + "}")
        elif isinstance(item, ScRegion):
            lines.append(indent + f"sc r{item.out} <- r{item.left} {item.op} {{")
            _dump_block(item.rhs_block, indent + "  ", lines)
            lines.append(indent + f"  -> r{item.right}")
            lines.append(indent + "}")
        elif isinstance(item, FuncRegion):
            out = "" if item.out is None else f"r{item.out} <- "
            lines.append(indent + f"call {out}{item.name} {{")
            _dump_block(item.body_block, indent + "  ", lines)
            lines.append(indent + "}")
        else:  # pragma: no cover - structural invariant
            raise TypeError(f"unknown IR node {type(item).__name__}")


def dump_ir(compiled: CompiledProgram) -> str:
    """Deterministic human-readable dump of a compiled program."""
    lines: List[str] = [f"; {len(compiled.consts)} consts, {compiled.nregs} regs"]
    for i, (gtype, master) in enumerate(compiled.consts):
        flat = np.asarray(master).reshape(-1)
        text = ", ".join(repr(x.item()) for x in flat[:8])
        if flat.size > 8:
            text += ", ..."
        lines.append(f"const[{i}] {gtype} = [{text}]")
    for plan in compiled.globals_plan:
        tag = "sampler " if plan.is_sampler else ""
        lines.append(f"global r{plan.reg} = {tag}{plan.name} : {plan.type}")
        if plan.init_block is not None:
            lines.append("init {")
            _dump_block(plan.init_block, "  ", lines)
            lines.append(f"}} -> r{plan.init_reg}")
    lines.append("body {")
    _dump_block(compiled.body, "  ", lines)
    lines.append("}")
    return "\n".join(lines) + "\n"
