"""Lowering: type-checked GLSL ASTs -> structured register IR.

The lowering mirrors the AST interpreter's evaluation orders *exactly*
(assignment targets resolve their index expressions before the rhs,
compound assignments read the old value after the rhs, declarations
allocate storage before evaluating their initializer, out/inout
argument l-values re-evaluate their indices after the argument values,
...) so that the IR executor is bit-identical to the tree walker.

User functions are inlined (GLSL ES 1.00 forbids recursion; the
interpreter's 64-frame depth cap becomes a lower-time inline cap) and
``for`` loops matching the Appendix-A shape get a static trip count
attached for the static cost model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import ast_nodes as ast
from .. import builtins as bi
from ..errors import GlslLimitError, GlslRuntimeError
from ..typecheck import CheckedShader
from ..values import INT_DTYPE
from .nodes import (
    Block,
    CompiledProgram,
    CondRegion,
    FuncRegion,
    GlobalPlan,
    IfRegion,
    Instr,
    LoopRegion,
    ScRegion,
)

#: Bail-out ceiling for static trip simulation (Appendix A allows only
#: tiny loops; anything bigger is treated as statically unbounded).
_TRIP_SIM_CAP = 65536


def arith_flops(op: str, ltype, rtype, result_type) -> int:
    """Per-lane flop count of one arithmetic op — the same formula the
    interpreter's ``_eval_arith`` applies at runtime."""
    if op == "*" and ltype.is_matrix() and rtype.is_matrix():
        return result_type.component_count() * ltype.size
    if op == "*" and ltype.is_matrix() and rtype.is_vector():
        return result_type.component_count() * ltype.size
    if op == "*" and ltype.is_vector() and rtype.is_matrix():
        return result_type.component_count() * rtype.size
    return result_type.component_count()


class Lowerer:
    def __init__(self, checked: CheckedShader):
        self.checked = checked
        self.nregs = 0
        self.consts: List[Tuple[object, np.ndarray]] = []
        self._const_index: Dict[tuple, int] = {}
        #: registers holding mutable variable storage (used by passes
        #: for dependence/invalidation analysis).
        self.var_regs = set()
        self.global_scope: Dict[str, int] = {}
        #: one entry per live function frame; each is a stack of
        #: name->reg scopes (mirrors interpreter scoping rules).
        self.frames: List[List[Dict[str, int]]] = []
        self.blocks: List[Block] = []
        self.inline_depth = 0

    # -- plumbing ------------------------------------------------------
    def newreg(self) -> int:
        r = self.nregs
        self.nregs += 1
        return r

    @property
    def block(self) -> Block:
        return self.blocks[-1]

    def emit(self, op, out=None, args=(), imm=None, type=None) -> Instr:
        ins = Instr(op, out, args, imm, type)
        self.block.append(ins)
        return ins

    def lookup(self, name: str) -> int:
        if self.frames:
            for scope in reversed(self.frames[-1]):
                if name in scope:
                    return scope[name]
        reg = self.global_scope.get(name)
        if reg is None:
            raise GlslRuntimeError(f"unbound variable '{name}'")
        return reg

    def declare(self, name: str, reg: int) -> None:
        self.frames[-1][-1][name] = reg

    # -- constants -----------------------------------------------------
    def const_reg(self, gtype, master: np.ndarray) -> int:
        key = (str(gtype), master.dtype.str, master.shape, master.tobytes())
        idx = self._const_index.get(key)
        if idx is None:
            idx = len(self.consts)
            self.consts.append((gtype, master))
            self._const_index[key] = idx
        out = self.newreg()
        self.emit("const", out=out, imm=idx, type=gtype)
        return out

    # ==================================================================
    # Program entry
    # ==================================================================
    def lower(self) -> CompiledProgram:
        from ..types import FLOAT  # noqa: F401  (doc anchor)

        plans: List[GlobalPlan] = []
        for name, symbol in self.checked.globals.items():
            reg = self.newreg()
            self.var_regs.add(reg)
            plan = GlobalPlan(name, reg, symbol.type,
                              is_sampler=symbol.type.is_sampler())
            if symbol.initializer is not None and not plan.is_sampler:
                block = Block()
                self.blocks.append(block)
                self.frames.append([{}])
                try:
                    plan.init_reg = self.lower_expr(symbol.initializer)
                finally:
                    self.frames.pop()
                    self.blocks.pop()
                plan.init_block = block
            self.global_scope[name] = reg
            plans.append(plan)

        main = self.checked.functions.get("main()")
        if main is None or main.body is None:
            raise GlslRuntimeError("shader has no main() body")
        body = Block()
        self.blocks.append(body)
        try:
            self.lower_call(main, [], None)
        finally:
            self.blocks.pop()
        program = CompiledProgram(self.checked, plans, body, self.nregs,
                                  self.consts)
        program.var_regs = self.var_regs
        return program

    # ==================================================================
    # Inlined function calls
    # ==================================================================
    def lower_call(self, func: ast.FunctionDef, arg_regs: List[int],
                   arg_exprs: Optional[List[ast.Expr]]) -> int:
        # Mirrors the interpreter's 64-frame cap: recursion is illegal,
        # so lexical inline depth bounds runtime depth.
        if self.inline_depth > 64:
            raise GlslLimitError("function call nesting too deep")

        # out/inout l-values resolve in the caller's context, after the
        # argument values — including re-evaluating index expressions,
        # exactly like the tree walker.
        refs: Dict[int, tuple] = {}
        for i, param in enumerate(func.params):
            if param.direction in ("out", "inout") and arg_exprs is not None:
                refs[i] = self.lower_lvalue(arg_exprs[i])

        body = Block()
        out = self.newreg()
        region = FuncRegion(func.name, func.resolved_return_type, body, out)

        self.blocks.append(body)
        self.frames.append([{}])
        param_regs: Dict[int, int] = {}
        self.inline_depth += 1
        try:
            for i, (param, areg) in enumerate(zip(func.params, arg_regs)):
                if not param.name:
                    continue
                preg = self.newreg()
                self.var_regs.add(preg)
                if param.direction == "out":
                    self.emit("decl", out=preg, type=param.resolved_type)
                else:
                    self.emit("copy", out=preg, args=(areg,),
                              type=param.resolved_type)
                param_regs[i] = preg
                self.declare(param.name, preg)
            for stmt in func.body.statements:
                self.lower_stmt(stmt)
        finally:
            self.inline_depth -= 1
            self.frames.pop()
            self.blocks.pop()
        self.block.append(region)

        # Copy out/inout parameters back (runs under the caller's
        # post-call mask, which FUNC_POP has already restored).
        for i, (root, path, idx_regs) in refs.items():
            self.emit("store", args=(root, param_regs[i]) + tuple(idx_regs),
                      imm=path)
        return out

    # ==================================================================
    # Statements
    # ==================================================================
    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.CompoundStmt):
            self.frames[-1].append({})
            try:
                for inner in stmt.statements:
                    self.lower_stmt(inner)
            finally:
                self.frames[-1].pop()
        elif isinstance(stmt, ast.DeclStmt):
            for d in stmt.declarators:
                reg = self.newreg()
                self.var_regs.add(reg)
                self.emit("decl", out=reg, type=d.resolved_type)
                if d.initializer is not None:
                    r = self.lower_expr(d.initializer)
                    self.emit("store", args=(reg, r), imm=())
                self.declare(d.name, reg)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            cond = self.lower_expr(stmt.condition)
            then_block = Block()
            self.blocks.append(then_block)
            try:
                self.lower_stmt(stmt.then_branch)
            finally:
                self.blocks.pop()
            else_block = None
            if stmt.else_branch is not None:
                else_block = Block()
                self.blocks.append(else_block)
                try:
                    self.lower_stmt(stmt.else_branch)
                finally:
                    self.blocks.pop()
            self.block.append(IfRegion(cond, then_block, else_block))
        elif isinstance(stmt, ast.ForStmt):
            self.frames[-1].append({})
            try:
                trips = self.static_trips(stmt)
                if stmt.init is not None:
                    self.lower_stmt(stmt.init)
                self._lower_loop(stmt.condition, stmt.update, stmt.body,
                                 pretest=True, static_trips=trips)
            finally:
                self.frames[-1].pop()
        elif isinstance(stmt, ast.WhileStmt):
            self._lower_loop(stmt.condition, None, stmt.body, pretest=True,
                             static_trips=None)
        elif isinstance(stmt, ast.DoWhileStmt):
            self._lower_loop(stmt.condition, None, stmt.body, pretest=False,
                             static_trips=None)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                r = self.lower_expr(stmt.value)
                self.emit("return", args=(r,))
            else:
                self.emit("return")
        elif isinstance(stmt, ast.BreakStmt):
            self.emit("break")
        elif isinstance(stmt, ast.ContinueStmt):
            self.emit("continue")
        elif isinstance(stmt, ast.DiscardStmt):
            self.emit("discard")
        else:
            raise GlslRuntimeError(f"unhandled statement {type(stmt).__name__}")

    def _lower_loop(self, condition, update, body_stmt, pretest: bool,
                    static_trips: Optional[int]) -> None:
        cond_block = None
        cond_reg = None
        if condition is not None:
            cond_block = Block()
            self.blocks.append(cond_block)
            try:
                cond_reg = self.lower_expr(condition)
            finally:
                self.blocks.pop()
        body = Block()
        self.blocks.append(body)
        try:
            self.lower_stmt(body_stmt)
        finally:
            self.blocks.pop()
        update_block = None
        if update is not None:
            update_block = Block()
            self.blocks.append(update_block)
            try:
                self.lower_expr(update)
            finally:
                self.blocks.pop()
        self.block.append(LoopRegion(pretest, cond_block, cond_reg, body,
                                     update_block, static_trips))

    # ==================================================================
    # Appendix-A static trip counts
    # ==================================================================
    def static_trips(self, stmt: ast.ForStmt) -> Optional[int]:
        init = stmt.init
        if (not isinstance(init, ast.DeclStmt) or len(init.declarators) != 1
                or stmt.condition is None or stmt.update is None):
            return None
        d = init.declarators[0]
        if d.resolved_type is None or not d.resolved_type.is_scalar() \
                or not d.resolved_type.is_int_based():
            return None
        start = _int_literal(d.initializer)
        if start is None:
            return None
        name = d.name

        cond = stmt.condition
        if not (isinstance(cond, ast.BinaryOp)
                and cond.op in ("<", ">", "<=", ">=", "==", "!=")
                and isinstance(cond.left, ast.Identifier)
                and cond.left.name == name):
            return None
        bound = _int_literal(cond.right)
        if bound is None:
            return None

        step = self._update_step(stmt.update, name)
        if step is None or step == 0:
            return None
        if self._writes_var(stmt.body, name):
            return None

        compare = {"<": lambda a, b: a < b, ">": lambda a, b: a > b,
                   "<=": lambda a, b: a <= b, ">=": lambda a, b: a >= b,
                   "==": lambda a, b: a == b, "!=": lambda a, b: a != b}[cond.op]
        i, trips = start, 0
        while compare(i, bound):
            trips += 1
            i += step
            if trips > _TRIP_SIM_CAP:
                return None
        return trips

    @staticmethod
    def _update_step(update: ast.Expr, name: str) -> Optional[int]:
        if isinstance(update, (ast.PrefixIncDec, ast.PostfixIncDec)):
            if isinstance(update.operand, ast.Identifier) \
                    and update.operand.name == name:
                return 1 if update.op == "++" else -1
            return None
        if (isinstance(update, ast.Assignment) and update.op in ("+=", "-=")
                and isinstance(update.target, ast.Identifier)
                and update.target.name == name):
            step = _int_literal(update.value)
            if step is None:
                return None
            return step if update.op == "+=" else -step
        return None

    def _writes_var(self, node, name: str) -> bool:
        """Conservatively: does this subtree (re)declare or store to
        ``name``?  Includes passing it to an out/inout parameter."""
        if isinstance(node, ast.DeclStmt):
            if any(d.name == name for d in node.declarators):
                return True
        if isinstance(node, ast.Assignment) and _lvalue_root(node.target) == name:
            return True
        if isinstance(node, (ast.PrefixIncDec, ast.PostfixIncDec)) \
                and _lvalue_root(node.operand) == name:
            return True
        if isinstance(node, ast.Call) and not node.is_constructor \
                and not node.is_builtin and node.resolved_signature:
            func = self.checked.functions.get(node.resolved_signature)
            if func is not None:
                for param, arg in zip(func.params, node.args):
                    if param.direction in ("out", "inout") \
                            and _lvalue_root(arg) == name:
                        return True
        for child in _ast_children(node):
            if self._writes_var(child, name):
                return True
        return False

    # ==================================================================
    # Expressions
    # ==================================================================
    def lower_expr(self, expr: ast.Expr) -> int:
        if isinstance(expr, ast.IntLiteral):
            from ..types import INT
            return self.const_reg(INT, np.array([expr.value], dtype=INT_DTYPE))
        if isinstance(expr, ast.FloatLiteral):
            from ..types import FLOAT
            # float64 master; cast to the executor's model dtype at
            # bind time (identical rounding to building the literal in
            # the model dtype directly).
            return self.const_reg(FLOAT, np.array([expr.value], dtype=np.float64))
        if isinstance(expr, ast.BoolLiteral):
            from ..types import BOOL
            return self.const_reg(BOOL, np.array([expr.value], dtype=bool))
        if isinstance(expr, ast.Identifier):
            return self.lookup(expr.name)
        if isinstance(expr, ast.UnaryOp):
            operand = self.lower_expr(expr.operand)
            if expr.op == "+":
                return operand
            out = self.newreg()
            self.emit("unary", out=out, args=(operand,), imm=expr.op,
                      type=expr.resolved_type)
            return out
        if isinstance(expr, (ast.PrefixIncDec, ast.PostfixIncDec)):
            root, path, idx_regs = self.lower_lvalue(expr.operand)
            out = self.newreg()
            self.emit("incdec", out=out, args=(root,) + tuple(idx_regs),
                      imm=(path, expr.op, isinstance(expr, ast.PrefixIncDec)),
                      type=expr.resolved_type)
            return out
        if isinstance(expr, ast.BinaryOp):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Assignment):
            return self._lower_assignment(expr)
        if isinstance(expr, ast.Conditional):
            cond = self.lower_expr(expr.condition)
            tb, tr = self._lower_arm(expr.if_true)
            fb, fr = self._lower_arm(expr.if_false)
            out = self.newreg()
            self.block.append(
                CondRegion(cond, tb, tr, fb, fr, out, expr.resolved_type))
            return out
        if isinstance(expr, ast.Call):
            return self._lower_call_expr(expr)
        if isinstance(expr, ast.FieldAccess):
            base = self.lower_expr(expr.base)
            out = self.newreg()
            if expr.swizzle is not None:
                self.emit("swizzle", out=out, args=(base,),
                          imm=tuple(expr.swizzle), type=expr.resolved_type)
            else:
                self.emit("field", out=out, args=(base,),
                          imm=expr.field_name, type=expr.resolved_type)
            return out
        if isinstance(expr, ast.IndexAccess):
            base = self.lower_expr(expr.base)
            index = self.lower_expr(expr.index)
            out = self.newreg()
            self.emit("index", out=out, args=(base, index),
                      type=expr.resolved_type)
            return out
        if isinstance(expr, ast.CommaExpr):
            self.lower_expr(expr.left)
            return self.lower_expr(expr.right)
        raise GlslRuntimeError(f"unhandled expression {type(expr).__name__}")

    def _lower_arm(self, expr: ast.Expr) -> Tuple[Block, int]:
        block = Block()
        self.blocks.append(block)
        try:
            reg = self.lower_expr(expr)
        finally:
            self.blocks.pop()
        return block, reg

    def _lower_binary(self, expr: ast.BinaryOp) -> int:
        op = expr.op
        if op in ("&&", "||"):
            left = self.lower_expr(expr.left)
            rhs_block, right = self._lower_arm(expr.right)
            out = self.newreg()
            self.block.append(ScRegion(op, left, rhs_block, right, out))
            return out
        left = self.lower_expr(expr.left)
        right = self.lower_expr(expr.right)
        out = self.newreg()
        if op == "^^":
            self.emit("xor", out=out, args=(left, right),
                      type=expr.resolved_type)
        elif op in ("==", "!="):
            ltype = expr.left.resolved_type
            comps = 1 if (ltype is None or ltype.is_struct()) \
                else ltype.component_count()
            self.emit("equal", out=out, args=(left, right), imm=(op, comps),
                      type=expr.resolved_type)
        elif op in ("<", ">", "<=", ">="):
            self.emit("compare", out=out, args=(left, right), imm=op,
                      type=expr.resolved_type)
        else:
            flops = arith_flops(op, expr.left.resolved_type,
                                expr.right.resolved_type, expr.resolved_type)
            self.emit("arith", out=out, args=(left, right), imm=(op, flops),
                      type=expr.resolved_type)
        return out

    def _lower_assignment(self, expr: ast.Assignment) -> int:
        root, path, idx_regs = self.lower_lvalue(expr.target)
        value = self.lower_expr(expr.value)
        if expr.op != "=":
            # Compound assignment reads the old value *after* the rhs.
            old = self.newreg()
            self.emit("load", out=old, args=(root,) + tuple(idx_regs),
                      imm=path, type=expr.target.resolved_type)
            res = self.newreg()
            flops = arith_flops(expr.op[0], expr.target.resolved_type,
                                expr.value.resolved_type, expr.resolved_type)
            self.emit("arith", out=res, args=(old, value),
                      imm=(expr.op[0], flops), type=expr.resolved_type)
            value = res
        self.emit("store", args=(root, value) + tuple(idx_regs), imm=path)
        return value

    def _lower_call_expr(self, expr: ast.Call) -> int:
        if expr.is_constructor:
            args = [self.lower_expr(a) for a in expr.args]
            out = self.newreg()
            self.emit("construct", out=out, args=tuple(args),
                      type=expr.constructed_type)
            return out
        if expr.is_builtin:
            overload = bi.OVERLOADS_BY_KEY[expr.resolved_signature]
            args = [self.lower_expr(a) for a in expr.args]
            out = self.newreg()
            op = "texture" if overload.name in bi.TEXTURE_BUILTINS else "builtin"
            self.emit(op, out=out, args=tuple(args),
                      imm=(expr.resolved_signature, overload),
                      type=expr.resolved_type)
            return out
        func = self.checked.functions.get(expr.resolved_signature)
        if func is None or func.body is None:
            raise GlslRuntimeError(
                f"call to undefined function '{expr.resolved_signature}'")
        args = [self.lower_expr(a) for a in expr.args]
        return self.lower_call(func, args, expr.args)

    # ==================================================================
    # L-values
    # ==================================================================
    def lower_lvalue(self, expr: ast.Expr) -> Tuple[int, tuple, List[int]]:
        """Returns (root reg, path steps, index regs).  Path steps are
        ("f", name) | ("s", indices, type) | ("i", type); index regs
        pair up with "i" steps in order."""
        if isinstance(expr, ast.Identifier):
            return self.lookup(expr.name), (), []
        if isinstance(expr, ast.FieldAccess):
            root, path, idx_regs = self.lower_lvalue(expr.base)
            if expr.swizzle is not None:
                step = ("s", tuple(expr.swizzle), expr.resolved_type)
            else:
                step = ("f", expr.field_name)
            return root, path + (step,), idx_regs
        if isinstance(expr, ast.IndexAccess):
            root, path, idx_regs = self.lower_lvalue(expr.base)
            idx = self.lower_expr(expr.index)
            return root, path + (("i", expr.resolved_type),), idx_regs + [idx]
        raise GlslRuntimeError("expression is not an l-value")


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------
def _int_literal(expr) -> Optional[int]:
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.UnaryOp) and expr.op == "-" \
            and isinstance(expr.operand, ast.IntLiteral):
        return -expr.operand.value
    return None


def _lvalue_root(expr) -> Optional[str]:
    while isinstance(expr, (ast.FieldAccess, ast.IndexAccess)):
        expr = expr.base
    if isinstance(expr, ast.Identifier):
        return expr.name
    return None


def _ast_children(node):
    import dataclasses

    if not isinstance(node, ast.Node):
        return
    for f in dataclasses.fields(node):
        value = getattr(node, f.name)
        if isinstance(value, ast.Node):
            yield value
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, ast.Node):
                    yield item


def lower_shader(checked: CheckedShader) -> CompiledProgram:
    """Lower one type-checked shader into a structured IR program."""
    return Lowerer(checked).lower()
