"""IR optimisation passes: constant folding + static branch pruning,
select-conversion (if-conversion of pure ternary/short-circuit arms),
call-frame elision, parameter copy propagation, common-subexpression
elimination and dead-code elimination.

Folding is *abstract execution*: a batch-1 host executor runs the real
instruction handlers under the real float model, so folded constants
are bit-exact per precision model by construction — this is strictly
stronger than the scalar literal folding the old AST-level
``optimize.py`` pass performed (see :mod:`repro.glsl.ir.foldrules`).

Soundness notes
---------------
* At every statement boundary the executor maintains
  ``exec_mask ⊆ live()``; splicing a statically-taken branch in place
  of its region is therefore mask- and count-exact.
* Value ops always compute full-width data — masks only gate stores,
  counts and control — so speculating *pure* ternary/short-circuit arms
  (select-conversion) is value-exact.  Arms whose result is an *alias*
  of mutable storage (a bare variable, a struct field) snapshot at the
  select, while the interpreter's uniform fast path returns the alias
  itself, which observes later stores — such arms are only converted
  when the window between the region and the last reader of its result
  is provably store-free, so both timings read the same data.
* CSE availability is scoped to the enclosing region (arms can be
  skipped at runtime) and entries are invalidated when any variable in
  their transitive dependence set is stored to; loop regions
  pre-invalidate everything their body writes so renamed uses can never
  go stale across iterations.
* Frame elision: a :class:`FuncRegion` exists only to service the
  ``return`` kill channel (the ``returned`` mask, the return-value
  blend) and to host loop frames.  A body whose only ``return`` is the
  final top-level instruction and which contains no loops needs
  neither: the frame push/pop brackets are dropped and the tail return
  becomes a plain ``move``.  Lane-exactness: value ops compute
  full-width data regardless of masks, and the frame's return-value
  blend only zero-fills lanes that are already dead (never stored),
  so outputs are bit-identical.
* Copy propagation: an ``in``-parameter ``copy`` whose register is
  never the root of a store — and whose source register is never the
  root of a store either — can alias instead of clone.  Stores replace
  ``Value.data`` with fresh arrays (the no-in-place invariant), so an
  alias of a never-stored register can never observe a divergent
  write.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from ..errors import GlslError
from ..values import Value
from .nodes import (
    Block,
    CompiledProgram,
    CondRegion,
    FuncRegion,
    IfRegion,
    Instr,
    LoopRegion,
    ScRegion,
)

#: Ops abstract execution can evaluate when every argument is constant.
_FOLDABLE = frozenset({
    "move", "unary", "arith", "compare", "equal", "xor", "construct",
    "swizzle", "index", "builtin", "select", "sc_combine",
})

#: Ops safe to speculate under select-conversion (no side effects, no
#: masked stores, no texture-unit traffic, defined on garbage lanes).
_SPECULATABLE = frozenset({
    "const", "unary", "arith", "compare", "equal", "xor", "construct",
    "swizzle", "index", "builtin", "select", "sc_combine",
})

#: Ops whose result register aliases mutable storage; converting an arm
#: ending in one of these would change alias semantics (see module
#: docstring).
_ALIASING = frozenset({"field", "move", "load"})

#: Ops eligible for CSE (value ops with copy semantics; ``field`` and
#: ``load`` alias storage, textures keep their counter semantics).
_CSEABLE = frozenset({
    "const", "unary", "arith", "compare", "equal", "xor", "swizzle",
    "index", "builtin", "construct", "select", "sc_combine",
})


def _imm_key(ins: Instr):
    imm = ins.imm
    if ins.op in ("builtin", "texture"):
        return imm[0]  # the mangled overload key
    if isinstance(imm, (str, int, bool, tuple, type(None))):
        try:
            hash(imm)
            return imm
        except TypeError:
            pass
    return repr(imm)


# ======================================================================
# Constant folding + static branch pruning
# ======================================================================
class _FoldPass:
    def __init__(self, program: CompiledProgram, fmodel):
        from .executor import HANDLERS, IRExecutor

        self.program = program
        self.handlers = HANDLERS
        host = IRExecutor(program.checked, float_model=fmodel)
        host.n = 1
        host.exec_mask = np.ones(1, dtype=bool)
        host.discarded = np.zeros(1, dtype=bool)
        host.frames = []
        host.regs = {}
        self.host = host
        program._const_cache = {}
        self.materialized = program.materialized_consts(fmodel)
        #: reg -> known-constant Value
        self.known: Dict[int, Value] = {}
        self._pool_index: Dict[tuple, int] = {}
        for i, (gtype, master) in enumerate(program.consts):
            self._pool_index[self._pool_key(gtype, master)] = i
        self.changed = False

    @staticmethod
    def _pool_key(gtype, master: np.ndarray):
        return (str(gtype), master.dtype.str, master.shape, master.tobytes())

    def _intern(self, gtype, master: np.ndarray) -> int:
        key = self._pool_key(gtype, master)
        idx = self._pool_index.get(key)
        if idx is None:
            idx = len(self.program.consts)
            self.program.consts.append((gtype, master))
            self._pool_index[key] = idx
        return idx

    def run(self) -> bool:
        for plan in self.program.globals_plan:
            if plan.init_block is not None:
                self.fold_block(plan.init_block)
        self.fold_block(self.program.body)
        if self.changed:
            self.program._const_cache = {}
        return self.changed

    def fold_block(self, block: Block) -> None:
        new_items: list = []
        for item in block.items:
            if isinstance(item, Instr):
                new_items.append(self.fold_instr(item))
            elif isinstance(item, IfRegion):
                self.fold_block(item.then_block)
                if item.else_block is not None:
                    self.fold_block(item.else_block)
                flag = self._const_flag(item.cond)
                if flag is None:
                    new_items.append(item)
                elif flag:
                    new_items.extend(item.then_block.items)
                    self.changed = True
                else:
                    if item.else_block is not None:
                        new_items.extend(item.else_block.items)
                    self.changed = True
            elif isinstance(item, CondRegion):
                self.fold_block(item.true_block)
                self.fold_block(item.false_block)
                flag = self._const_flag(item.cond)
                if flag is None:
                    new_items.append(item)
                else:
                    # The interpreter's uniform fast path returns the
                    # taken arm's value directly (an alias) — a move.
                    block_taken = item.true_block if flag else item.false_block
                    reg = item.true_reg if flag else item.false_reg
                    new_items.extend(block_taken.items)
                    new_items.append(Instr("move", out=item.out, args=(reg,),
                                           type=item.type))
                    self.changed = True
            elif isinstance(item, ScRegion):
                self.fold_block(item.rhs_block)
                new_items.append(item)
            elif isinstance(item, LoopRegion):
                if item.cond_block is not None:
                    self.fold_block(item.cond_block)
                self.fold_block(item.body_block)
                if item.update_block is not None:
                    self.fold_block(item.update_block)
                new_items.append(item)
            elif isinstance(item, FuncRegion):
                self.fold_block(item.body_block)
                new_items.append(item)
            else:  # pragma: no cover
                new_items.append(item)
        block.items = new_items

    def _const_flag(self, reg: int) -> Optional[bool]:
        value = self.known.get(reg)
        if value is None or value.data is None or value.data.shape != (1,):
            return None
        return bool(value.data[0])

    def fold_instr(self, ins: Instr) -> Instr:
        if ins.op == "const":
            gtype, data = self.materialized[ins.imm] \
                if ins.imm < len(self.materialized) \
                else self.program.consts[ins.imm]
            self.known[ins.out] = Value(gtype, data)
            return ins
        if ins.op == "move" and ins.args[0] in self.known:
            self.known[ins.out] = self.known[ins.args[0]]
        if ins.op not in _FOLDABLE or ins.out is None:
            return ins
        if not ins.args or not all(a in self.known for a in ins.args):
            return ins
        host = self.host
        try:
            for a in ins.args:
                host.regs[a] = self.known[a]
            self.handlers[ins.op](host, ins)
            result = host.regs[ins.out]
        except (GlslError, ZeroDivisionError, FloatingPointError,
                OverflowError, ValueError, TypeError, IndexError,
                KeyError):
            # Folding is best-effort: anything the evaluator can
            # legitimately reject (semantic errors, numeric-domain
            # failures, shape/type mismatches) leaves the instruction
            # for runtime.  Genuine interpreter bugs now propagate.
            return ins
        if (not isinstance(result, Value) or result.data is None
                or result.fields is not None
                or result.data.shape[:1] != (1,)):
            return ins
        master = np.ascontiguousarray(result.data)
        idx = self._intern(result.type, master)
        self.known[ins.out] = Value(result.type, master)
        self.changed = True
        return Instr("const", out=ins.out, imm=idx, type=result.type)


# ======================================================================
# Select-conversion
# ======================================================================
def _arm_convertible(block: Block, reg: int) -> Optional[str]:
    """Classify one select arm.

    ``"value"``: every item is speculatable and the arm register is
    produced by one of them (copy semantics — a blend of it is exactly
    what the interpreter's divergent path computes, and the uniform
    fast path returns the same fresh temp).

    ``"outer"``: every item is speculatable but the arm register comes
    from outside the arm (a bare variable, an outer temp).  The select
    snapshots its data where the region used to end; the interpreter's
    uniform fast path instead returns the alias, which observes stores
    until the result is consumed.  Convertible only when the caller
    proves that window store-free (:func:`_window_safe`).

    ``None``: not convertible (side effects / masked ops in the arm).
    """
    defined_in_arm = False
    for item in block.items:
        if not isinstance(item, Instr) or item.op not in _SPECULATABLE:
            return None
        if item.out == reg:
            defined_in_arm = True
    return "value" if defined_in_arm else "outer"


def _reads_reg(ins: Instr, reg: int) -> bool:
    return ins.args is not None and reg in ins.args


def _region_reads_reg(region, reg: int) -> bool:
    for kind in ("cond", "left", "right", "true_reg", "false_reg"):
        if getattr(region, kind, None) == reg:
            return True
    for name in ("then_block", "else_block", "cond_block", "body_block",
                 "update_block", "true_block", "false_block", "rhs_block"):
        block = getattr(region, name, None)
        if block is None:
            continue
        for item in block.items:
            if isinstance(item, Instr):
                if _reads_reg(item, reg):
                    return True
            elif _region_reads_reg(item, reg):
                return True
    return False


#: Value ops that wrap their result in a *fresh* Value object.  With
#: the no-in-place invariant (arrays are never mutated, stores rebind
#: ``Value.data`` on the variable's storage object), a reg defined by
#: one of these can never observe a later store: snapshotting it is
#: indistinguishable from aliasing it.
_FRESH_OPS = frozenset({
    "const", "unary", "arith", "compare", "equal", "xor", "construct",
    "swizzle", "index", "builtin", "texture", "select", "sc_combine",
})


def _build_defs(program: CompiledProgram) -> Dict[int, object]:
    """Map each out-register to its defining Instr or region object."""
    defs: Dict[int, object] = {}

    def scan(block: Optional[Block]) -> None:
        if block is None:
            return
        for item in block.items:
            out = getattr(item, "out", None)
            if out is not None:
                defs.setdefault(out, item)
            if not isinstance(item, Instr):
                for sub in _region_blocks(item):
                    scan(sub)

    for plan in program.globals_plan:
        scan(plan.init_block)
    scan(program.body)
    return defs


def _snapshot_watch(reg: int, defs: Dict[int, object]):
    """Which store roots could make a snapshot of ``reg`` diverge from
    the interpreter's alias of it?

    Returns ``None`` when no store can (the reg is a fresh value),
    a set of root registers to watch, or ``True`` for "any store"
    (conservative fallback, e.g. a reg produced by an unconverted
    region, whose uniform fast path may alias arbitrary storage)."""
    seen: Set[int] = set()
    while True:
        if reg in seen:
            return True
        seen.add(reg)
        d = defs.get(reg)
        if d is None:
            # No defining item: a global/varying root.  Only stores to
            # that root itself rebind its storage.
            return {reg}
        if not isinstance(d, Instr):
            return True
        if d.op in _FRESH_OPS or (d.op == "load" and d.imm != ()):
            return None
        if d.op in ("decl", "copy"):
            return {reg}
        if d.op in ("move", "field") or (d.op == "load" and d.imm == ()):
            reg = d.args[0]
            continue
        return True


def _window_safe(items: list, start: int, out: int,
                 watch) -> bool:
    """True when no store/incdec that could rebind the aliased storage
    (per ``watch``, see :func:`_snapshot_watch`) can run between
    position ``start`` and the last direct reader of ``out`` — the
    window in which a select snapshot and the interpreter's
    uniform-alias fast path could observe different data."""
    if watch is None:
        return True

    def is_hazard(it) -> bool:
        if isinstance(it, Instr):
            if it.op not in ("store", "incdec"):
                return False
            return watch is True or it.args[0] in watch
        if watch is True:
            return True
        roots: Set[int] = set()

        def scan(block: Optional[Block]) -> None:
            if block is None:
                return
            for sub in block.items:
                if isinstance(sub, Instr):
                    if sub.op in ("store", "incdec"):
                        roots.add(sub.args[0])
                else:
                    for blk in _region_blocks(sub):
                        scan(blk)

        for blk in _region_blocks(it):
            scan(blk)
        return bool(roots & watch)

    last_use = -1
    hazards: List[int] = []
    for j in range(start, len(items)):
        item = items[j]
        if isinstance(item, Instr):
            if _reads_reg(item, out):
                last_use = j
        else:
            if _region_reads_reg(item, out):
                return False
        if is_hazard(item):
            hazards.append(j)
    # A hazard *at* the last use (a store consuming the select result)
    # reads before it writes, so only strictly-earlier hazards matter.
    return all(h >= last_use for h in hazards)


def _scan_store_arm(block: Optional[Block]):
    """Classify one if-arm for store-if-conversion.

    Returns ``(instrs, final)`` where ``final`` maps each stored root
    to the register holding its arm-final value, or None when the arm
    is not convertible: every item must be a speculatable value op, a
    plain load, or a plain store, and no item may read a root after
    the arm stored it (deferred stores would change what it reads).
    """
    if block is None:
        return [], {}
    instrs: list = []
    final: Dict[int, Instr] = {}
    for item in block.items:
        if not isinstance(item, Instr):
            return None
        reads = item.args[1:] if item.op == "store" else item.args
        if any(r in final for r in reads):
            return None
        if item.op == "store" and item.imm == ():
            final[item.args[0]] = item
            continue
        if item.op in _SPECULATABLE or (item.op == "load"
                                        and item.args[0] not in final):
            instrs.append(item)
            continue
        return None
    return instrs, final


def _convert_store_if(item: IfRegion, program: CompiledProgram,
                      defs: Dict[int, object]) -> Optional[list]:
    """Flatten an if/else whose arms only compute values and store
    them to plain variable roots: hoist both arms full-width, then
    per root emit ``store root <- select(cond, then_val, else_val)``
    with the pre-branch value standing in for an arm that does not
    store that root.  Per-lane stored data is unchanged (lanes whose
    arm did not run store back their own current value), so this is
    invisible to outputs while making the instruction stream — and
    therefore the dynamic op tally — straight-line."""
    then_scan = _scan_store_arm(item.then_block)
    else_scan = _scan_store_arm(item.else_block)
    if then_scan is None or else_scan is None:
        return None
    then_instrs, then_final = then_scan
    else_instrs, else_final = else_scan
    if not then_final and not else_final:
        return None  # nothing stored: leave it to the other passes
    roots = list(then_final)
    roots += [r for r in else_final if r not in then_final]
    out_items: list = []
    pre: Dict[int, int] = {}
    for root in roots:
        if root in then_final and root in else_final:
            continue  # both arms define it; pre-value never needed
        store = then_final.get(root) or else_final[root]
        reg = program.nregs
        program.nregs += 1
        load = Instr("load", out=reg, args=(root,), imm=(),
                     type=store.type)
        defs[reg] = load
        out_items.append(load)
        pre[root] = reg
    out_items.extend(then_instrs)
    out_items.extend(else_instrs)
    for root in roots:
        store = then_final.get(root) or else_final[root]
        tval = then_final[root].args[1] if root in then_final else pre[root]
        fval = else_final[root].args[1] if root in else_final else pre[root]
        reg = program.nregs
        program.nregs += 1
        select = Instr("select", out=reg, args=(item.cond, tval, fval),
                       type=store.type)
        defs[reg] = select
        out_items.append(select)
        out_items.append(Instr("store", args=(root, reg), imm=(),
                               type=store.type))
    return out_items


def _select_block(block: Block, defs: Dict[int, object],
                  program: CompiledProgram) -> bool:
    changed = False
    new_items: list = []
    items = block.items
    for pos, item in enumerate(items):
        if isinstance(item, Instr):
            new_items.append(item)
            continue
        if isinstance(item, IfRegion):
            changed |= _select_block(item.then_block, defs, program)
            if item.else_block is not None:
                changed |= _select_block(item.else_block, defs, program)
            converted = _convert_store_if(item, program, defs)
            if converted is not None:
                new_items.extend(converted)
                changed = True
            else:
                new_items.append(item)
        elif isinstance(item, CondRegion):
            changed |= _select_block(item.true_block, defs, program)
            changed |= _select_block(item.false_block, defs, program)
            true_kind = _arm_convertible(item.true_block, item.true_reg)
            false_kind = _arm_convertible(item.false_block, item.false_reg)
            convertible = true_kind is not None and false_kind is not None
            if convertible and "outer" in (true_kind, false_kind):
                watch = None
                for kind, reg in ((true_kind, item.true_reg),
                                  (false_kind, item.false_reg)):
                    if kind != "outer":
                        continue
                    w = _snapshot_watch(reg, defs)
                    if w is True:
                        watch = True
                        break
                    if w:
                        watch = (watch or set()) | w
                if not _window_safe(items, pos + 1, item.out, watch):
                    convertible = False
            if convertible:
                new_items.extend(item.true_block.items)
                new_items.extend(item.false_block.items)
                select = Instr(
                    "select", out=item.out,
                    args=(item.cond, item.true_reg, item.false_reg),
                    type=item.type)
                defs[item.out] = select
                new_items.append(select)
                changed = True
            else:
                new_items.append(item)
        elif isinstance(item, ScRegion):
            changed |= _select_block(item.rhs_block, defs, program)
            rhs_kind = _arm_convertible(item.rhs_block, item.right)
            # ``sc_combine`` always produces a fresh value, so an
            # outer/alias rhs register needs no window check.
            if rhs_kind is not None:
                new_items.extend(item.rhs_block.items)
                new_items.append(Instr(
                    "sc_combine", out=item.out,
                    args=(item.left, item.right), imm=item.op))
                changed = True
            else:
                new_items.append(item)
        elif isinstance(item, LoopRegion):
            if item.cond_block is not None:
                changed |= _select_block(item.cond_block, defs, program)
            changed |= _select_block(item.body_block, defs, program)
            if item.update_block is not None:
                changed |= _select_block(item.update_block, defs, program)
            new_items.append(item)
        elif isinstance(item, FuncRegion):
            changed |= _select_block(item.body_block, defs, program)
            new_items.append(item)
        else:  # pragma: no cover
            new_items.append(item)
    block.items = new_items
    return changed


def select_convert(program: CompiledProgram) -> bool:
    defs = _build_defs(program)
    changed = False
    for plan in program.globals_plan:
        if plan.init_block is not None:
            changed |= _select_block(plan.init_block, defs, program)
    changed |= _select_block(program.body, defs, program)
    return changed


# ======================================================================
# Call-frame elision + parameter copy propagation
# ======================================================================
def _frame_kills(block: Block) -> bool:
    """Any ``return`` in this frame's scope?  (Nested function regions
    carry their own frame, so their returns are not ours.)"""
    for item in block.items:
        if isinstance(item, Instr):
            if item.op == "return":
                return True
        elif not isinstance(item, FuncRegion):
            for sub in _region_blocks(item):
                if _frame_kills(sub):
                    return True
    return False


def _frame_loops(block: Block) -> bool:
    """Any loop in this frame's scope?  Loop frames attach to the
    innermost function frame, so a frame hosting loops must stay."""
    for item in block.items:
        if isinstance(item, LoopRegion):
            return True
        if isinstance(item, (Instr, FuncRegion)):
            continue
        for sub in _region_blocks(item):
            if _frame_loops(sub):
                return True
    return False


def _flatten_ladder(region: FuncRegion, program: CompiledProgram) -> bool:
    """Rewrite an early-return ladder into nested selects.

    Matches a call-region body of the shape::

        <speculatable instrs>
        if c1 { <speculatable instrs>; return r1 }
        ...
        if cN { <speculatable instrs>; return rN }
        <speculatable instrs>
        return r

    and rewrites it to straight-line code ending in a single tail
    return of ``select(c1, r1, select(..., select(cN, rN, r)))``.
    Per-lane results are identical (each lane takes the value of its
    first true guard); the guarded arms are speculatable by
    construction, so running them on lanes that "already returned"
    computes garbage that the selects discard.  This is what turns the
    float32 pack/unpack helpers (IEEE special-case ladders) into
    straight-line code the static cost model can count exactly.
    """
    items = region.body_block.items
    if not items:
        return False
    tail = items[-1]
    if not (isinstance(tail, Instr) and tail.op == "return" and tail.args):
        return False
    new_items: list = []
    ladder: list = []  # (cond_reg, returned_reg)
    local_roots: Set[int] = set()
    for item in items[:-1]:
        if isinstance(item, Instr):
            if item.op == "decl" and item.out is not None:
                # Frame-local variable: dies at frame exit, so running
                # the code below a taken rung full-width only ever
                # scribbles on storage no surviving lane observes.
                local_roots.add(item.out)
                new_items.append(item)
                continue
            if item.op in ("store", "incdec"):
                if item.args[0] not in local_roots:
                    return False
                new_items.append(item)
                continue
            if item.op in _SPECULATABLE or item.op == "load":
                new_items.append(item)
                continue
            return False
        if not isinstance(item, IfRegion) or item.else_block is not None:
            return False
        arm = item.then_block.items
        if not arm:
            return False
        last = arm[-1]
        if not (isinstance(last, Instr) and last.op == "return"
                and last.args):
            return False
        for ins in arm[:-1]:
            if not isinstance(ins, Instr) or ins.op not in _SPECULATABLE:
                return False
        new_items.extend(arm[:-1])
        ladder.append((item.cond, last.args[0]))
    if not ladder:
        return False
    running = tail.args[0]
    for cond, ret in reversed(ladder):
        out = program.nregs
        program.nregs += 1
        new_items.append(Instr("select", out=out, args=(cond, ret, running),
                               type=region.ret_type))
        running = out
    new_items.append(Instr("return", args=(running,), type=tail.type))
    region.body_block.items = new_items
    return True


def _ladder_block(block: Block, program: CompiledProgram) -> bool:
    changed = False
    for item in block.items:
        if isinstance(item, Instr):
            continue
        for sub in _region_blocks(item):
            changed |= _ladder_block(sub, program)
        if isinstance(item, FuncRegion):
            changed |= _flatten_ladder(item, program)
    return changed


def flatten_return_ladders(program: CompiledProgram) -> bool:
    changed = False
    for plan in program.globals_plan:
        if plan.init_block is not None:
            changed |= _ladder_block(plan.init_block, program)
    changed |= _ladder_block(program.body, program)
    return changed


def _try_elide(region: FuncRegion) -> Optional[list]:
    """Replacement items for an elidable call region, or None.

    Elidable when the body's only ``return`` is the final top-level
    instruction and the frame hosts no loops: the push/pop brackets
    then have no observable effect beyond routing the return value,
    which a ``move`` of the (in-body) result register reproduces.  The
    frame's return-value blend only zero-fills lanes outside the call
    mask — lanes that are dead for every downstream masked store — so
    outputs are unchanged.
    """
    items = region.body_block.items
    tail = items[-1] if items and isinstance(items[-1], Instr) \
        and items[-1].op == "return" else None
    head = items[:-1] if tail is not None else items
    if _frame_kills(Block(list(head))):
        return None
    if _frame_loops(region.body_block):
        return None
    if tail is not None:
        if not tail.args:
            if not region.ret_type.is_void():
                return None
            return list(head)
        return list(head) + [Instr("move", out=region.out,
                                   args=(tail.args[0],),
                                   type=region.ret_type)]
    if not region.ret_type.is_void():
        return None  # missing return: keep FUNC_POP's zero fallback
    return list(head)


def _elide_block(block: Block) -> bool:
    changed = False
    new_items: list = []
    for item in block.items:
        if isinstance(item, Instr):
            new_items.append(item)
            continue
        for sub in _region_blocks(item):
            changed |= _elide_block(sub)
        if isinstance(item, FuncRegion):
            replacement = _try_elide(item)
            if replacement is not None:
                new_items.extend(replacement)
                changed = True
                continue
        new_items.append(item)
    block.items = new_items
    return changed


def elide_frames(program: CompiledProgram) -> bool:
    """Drop activation-frame brackets around straight-line call
    bodies (bottom-up, so fully-inlined helper chains flatten)."""
    changed = False
    for plan in program.globals_plan:
        if plan.init_block is not None:
            changed |= _elide_block(plan.init_block)
    changed |= _elide_block(program.body)
    return changed


class _UnitScan:
    """One execution-order walk of a unit collecting store positions.

    Positions are a DFS counter matching execution order for
    straight-line code; any store inside a loop is recorded at +inf
    (it can re-execute after anything), which keeps every position
    test conservative across iterations.  ``top`` marks positions
    whose only ancestors are :class:`FuncRegion` brackets — the
    execution mask there is the unit's entry mask modulo kill-channel
    lanes, which only ever diverge on dead lanes.
    """

    def __init__(self, unit: Block):
        self.pos = 0
        self.last_store: Dict[int, float] = {}
        self.store_count: Dict[int, int] = {}
        #: root -> (pos, source reg) for plain top-level stores
        self.top_stores: Dict[int, List] = {}
        self.copies: List = []  # (instr, pos)
        self._walk(unit, in_loop=False, top=True)

    def _walk(self, block: Block, in_loop: bool, top: bool) -> None:
        for item in block.items:
            if isinstance(item, Instr):
                self.pos += 1
                if item.op in ("store", "incdec"):
                    root = item.args[0]
                    self.store_count[root] = \
                        self.store_count.get(root, 0) + 1
                    self.last_store[root] = \
                        float("inf") if in_loop else self.pos
                    if (item.op == "store" and item.imm == ()
                            and top and not in_loop):
                        self.top_stores.setdefault(root, []).append(
                            (self.pos, item))
                elif item.op == "copy":
                    self.copies.append((item, self.pos))
            elif isinstance(item, FuncRegion):
                self._walk(item.body_block, in_loop, top)
            elif isinstance(item, LoopRegion):
                for sub in _region_blocks(item):
                    self._walk(sub, True, False)
            else:
                for sub in _region_blocks(item):
                    self._walk(sub, in_loop, False)


def propagate_copies(program: CompiledProgram) -> bool:
    """Turn read-only parameter clones into aliases.

    A ``copy`` upgrades to a ``move`` when its own register is never
    stored to and every store to its source strictly precedes it in
    execution order.  All data mutation in the executor replaces
    ``Value.data`` arrays rather than writing in place, so an alias of
    a register with no further stores can never observe a divergent
    write.
    """
    changed = False
    units = [plan.init_block for plan in program.globals_plan
             if plan.init_block is not None] + [program.body]
    for unit in units:
        scan = _UnitScan(unit)
        for ins, pos in scan.copies:
            if scan.store_count.get(ins.out, 0):
                continue
            if scan.last_store.get(ins.args[0], -1) >= pos:
                continue
            ins.op = "move"
            changed = True
    return changed


def _forward_rewrite(block: Block, state: Dict) -> None:
    fwd = state["fwd"]
    eligible = state["eligible"]
    for item in block.items:
        if isinstance(item, Instr):
            state["pos"] += 1
            if item.args:
                if item.op in ("store", "incdec"):
                    # args[0] is the l-value root; only value/index
                    # operands follow the data flow.
                    item.args = item.args[:1] + tuple(
                        fwd.get(a, a) for a in item.args[1:])
                else:
                    item.args = tuple(fwd.get(a, a) for a in item.args)
            if item.op == "store":
                entry = eligible.get(item.args[0])
                if entry is not None and entry[0] == state["pos"]:
                    fwd[item.args[0]] = item.args[1]
        else:
            for attr in ("cond", "left", "right", "true_reg",
                         "false_reg"):
                reg = getattr(item, attr, None)
                if reg is not None and reg in fwd:
                    setattr(item, attr, fwd[reg])
            for sub in _region_blocks(item):
                _forward_rewrite(sub, state)


def forward_stores(program: CompiledProgram) -> bool:
    """Store-to-load forwarding for single-store top-level variables.

    When a variable's only store in the whole unit is a plain
    top-level ``store v <- r``, every later read of ``v`` sees exactly
    the data of ``r`` (the top-level mask diverges from full only on
    kill-channel lanes, whose values are unobservable), so those reads
    can use ``r`` directly; DCE then retires the dead declaration and
    store for non-pinned variables.
    """
    changed = False
    units = [plan.init_block for plan in program.globals_plan
             if plan.init_block is not None] + [program.body]
    for unit in units:
        scan = _UnitScan(unit)
        eligible: Dict[int, tuple] = {}
        for root, entries in scan.top_stores.items():
            if scan.store_count.get(root, 0) == 1 and len(entries) == 1:
                pos, ins = entries[0]
                eligible[root] = (pos, ins.args[1])
        if not eligible:
            continue
        state = {"pos": 0, "fwd": {}, "eligible": eligible}
        _forward_rewrite(unit, state)
        changed |= bool(state["fwd"])
    return changed


# ======================================================================
# Common-subexpression elimination
# ======================================================================
class _CsePass:
    def __init__(self, program: CompiledProgram):
        self.var_regs: Set[int] = getattr(program, "var_regs", set())
        #: reg -> transitive set of variable registers it was computed
        #: from (alias roots included).
        self.deps: Dict[int, Set[int]] = {}
        #: availability scopes: each is {key: reg}
        self.scopes: List[Dict[tuple, int]] = [{}]
        self.rename: Dict[int, int] = {}
        self.changed = False

    def resolve(self, reg: int) -> int:
        seen = reg
        while seen in self.rename:
            seen = self.rename[seen]
        return seen

    def _dep_of(self, reg: int) -> Set[int]:
        # A variable root is always part of its own dependence set, even
        # when a recorded def (its ``decl``, with no args) left an empty
        # set behind: expressions reading the root directly must go
        # stale when it is stored to.
        d = self.deps.get(reg)
        if reg in self.var_regs:
            return d | {reg} if d else {reg}
        return d if d is not None else frozenset()

    def invalidate(self, root: int) -> None:
        for scope in self.scopes:
            stale = [k for k, r in scope.items() if root in self._dep_of(r)]
            for k in stale:
                del scope[k]

    def lookup(self, key: tuple) -> Optional[int]:
        for scope in reversed(self.scopes):
            reg = scope.get(key)
            if reg is not None:
                return reg
        return None

    # ------------------------------------------------------------------
    def run_block(self, block: Block) -> None:
        new_items: list = []
        for item in block.items:
            if isinstance(item, Instr):
                kept = self.visit_instr(item)
                if kept is not None:
                    new_items.append(kept)
            else:
                self.visit_region(item)
                new_items.append(item)
        block.items = new_items

    def visit_instr(self, ins: Instr) -> Optional[Instr]:
        ins.args = tuple(self.resolve(a) for a in ins.args)
        if ins.out is not None:
            deps = set()
            for a in ins.args:
                deps |= self._dep_of(a)
            self.deps[ins.out] = deps
        if ins.op == "move":
            # Coalesce: a move makes its output the *same object* as
            # its source, and register slots are only rebound when
            # their defining instruction re-executes — so reading the
            # source at use time is identical.
            src = ins.args[0]
            if src != ins.out:
                self.rename[ins.out] = src
                self.changed = True
                return None
            return ins
        if ins.op in ("store", "incdec"):
            self.invalidate(ins.args[0])
            return ins
        if ins.op in ("decl", "copy"):
            # A (re-)declaration rebinds the variable register: any
            # available expression over it is stale.
            if ins.out in self.var_regs:
                self.invalidate(ins.out)
            return ins
        if ins.op not in _CSEABLE or ins.out is None:
            return ins
        if ins.op == "construct" and ins.type is not None \
                and ins.type.is_struct():
            return ins
        key = (ins.op, ins.args, _imm_key(ins), str(ins.type))
        prev = self.lookup(key)
        if prev is not None:
            self.rename[ins.out] = prev
            self.changed = True
            return None
        self.scopes[-1][key] = ins.out
        return ins

    def visit_region(self, item) -> None:
        if isinstance(item, IfRegion):
            item.cond = self.resolve(item.cond)
            self.scopes.append({})
            self.run_block(item.then_block)
            self.scopes.pop()
            if item.else_block is not None:
                self.scopes.append({})
                self.run_block(item.else_block)
                self.scopes.pop()
        elif isinstance(item, CondRegion):
            item.cond = self.resolve(item.cond)
            self.scopes.append({})
            self.run_block(item.true_block)
            self.scopes.pop()
            self.scopes.append({})
            self.run_block(item.false_block)
            self.scopes.pop()
            item.true_reg = self.resolve(item.true_reg)
            item.false_reg = self.resolve(item.false_reg)
        elif isinstance(item, ScRegion):
            item.left = self.resolve(item.left)
            self.scopes.append({})
            self.run_block(item.rhs_block)
            self.scopes.pop()
            item.right = self.resolve(item.right)
        elif isinstance(item, LoopRegion):
            # Anything the loop stores to can change between
            # iterations: drop dependent availability up front so
            # renamed uses can never observe a stale outer value.
            for root in _stored_roots(item):
                self.invalidate(self.resolve(root))
            if item.pretest:
                if item.cond_block is not None:
                    self.scopes.append({})
                    self.run_block(item.cond_block)
                self.scopes.append({})
                self.run_block(item.body_block)
                if item.update_block is not None:
                    self.scopes.append({})
                    self.run_block(item.update_block)
                    self.scopes.pop()
                self.scopes.pop()
                if item.cond_block is not None:
                    self.scopes.pop()
            else:
                self.scopes.append({})
                self.run_block(item.body_block)
                if item.cond_block is not None:
                    self.scopes.append({})
                    self.run_block(item.cond_block)
                    self.scopes.pop()
                self.scopes.pop()
            if item.cond is not None:
                item.cond = self.resolve(item.cond)
        elif isinstance(item, FuncRegion):
            self.scopes.append({})
            self.run_block(item.body_block)
            self.scopes.pop()


def _stored_roots(item) -> Set[int]:
    roots: Set[int] = set()

    def scan_block(block: Optional[Block]):
        if block is None:
            return
        for it in block.items:
            if isinstance(it, Instr):
                if it.op in ("store", "incdec"):
                    roots.add(it.args[0])
                elif it.op in ("decl", "copy") and it.out is not None:
                    roots.add(it.out)
            elif isinstance(it, IfRegion):
                scan_block(it.then_block)
                scan_block(it.else_block)
            elif isinstance(it, CondRegion):
                scan_block(it.true_block)
                scan_block(it.false_block)
            elif isinstance(it, ScRegion):
                scan_block(it.rhs_block)
            elif isinstance(it, LoopRegion):
                scan_block(it.cond_block)
                scan_block(it.body_block)
                scan_block(it.update_block)
            elif isinstance(it, FuncRegion):
                scan_block(it.body_block)

    if isinstance(item, LoopRegion):
        scan_block(item.cond_block)
        scan_block(item.body_block)
        scan_block(item.update_block)
    return roots


def cse(program: CompiledProgram) -> bool:
    # Each global-init block and the body execute as separate units
    # (an init block is skipped entirely when its global is preset),
    # so availability must not leak between them.
    changed = False
    for plan in program.globals_plan:
        if plan.init_block is not None:
            p = _CsePass(program)
            p.run_block(plan.init_block)
            plan.init_reg = p.resolve(plan.init_reg)
            changed |= p.changed
    p = _CsePass(program)
    p.run_block(program.body)
    return changed or p.changed


# ======================================================================
# Dead-code elimination
# ======================================================================
def _scan_uses(block: Block, read: Set[int], roots: Set[int]) -> None:
    for item in block.items:
        if isinstance(item, Instr):
            if item.op == "store":
                roots.add(item.args[0])
                read.update(item.args[1:])
            elif item.op == "incdec":
                roots.add(item.args[0])
                read.update(item.args)
            else:
                read.update(item.args)
        elif isinstance(item, IfRegion):
            read.add(item.cond)
            _scan_uses(item.then_block, read, roots)
            if item.else_block is not None:
                _scan_uses(item.else_block, read, roots)
        elif isinstance(item, CondRegion):
            read.update((item.cond, item.true_reg, item.false_reg))
            _scan_uses(item.true_block, read, roots)
            _scan_uses(item.false_block, read, roots)
        elif isinstance(item, ScRegion):
            read.update((item.left, item.right))
            _scan_uses(item.rhs_block, read, roots)
        elif isinstance(item, LoopRegion):
            if item.cond is not None:
                read.add(item.cond)
            if item.cond_block is not None:
                _scan_uses(item.cond_block, read, roots)
            _scan_uses(item.body_block, read, roots)
            if item.update_block is not None:
                _scan_uses(item.update_block, read, roots)
        elif isinstance(item, FuncRegion):
            _scan_uses(item.body_block, read, roots)


def _sweep(block: Block, read: Set[int], roots: Set[int],
           pinned: Set[int]) -> bool:
    changed = False
    new_items: list = []
    for item in block.items:
        if isinstance(item, Instr):
            op = item.op
            if op == "store":
                if item.args[0] not in read and item.args[0] not in pinned:
                    changed = True
                    continue
            elif op in ("decl", "copy"):
                if item.out not in read and item.out not in roots \
                        and item.out not in pinned:
                    changed = True
                    continue
            elif op in ("texture", "incdec") or item.out is None:
                pass  # side effects (tex counter / masked store / kill)
            elif item.out not in read and item.out not in pinned:
                changed = True
                continue
            new_items.append(item)
        else:
            for sub in _region_blocks(item):
                changed |= _sweep(sub, read, roots, pinned)
            new_items.append(item)
    block.items = new_items
    return changed


def _region_blocks(item):
    if isinstance(item, IfRegion):
        return [b for b in (item.then_block, item.else_block) if b]
    if isinstance(item, CondRegion):
        return [item.true_block, item.false_block]
    if isinstance(item, ScRegion):
        return [item.rhs_block]
    if isinstance(item, LoopRegion):
        return [b for b in (item.cond_block, item.body_block,
                            item.update_block) if b]
    if isinstance(item, FuncRegion):
        return [item.body_block]
    return []


def dce(program: CompiledProgram) -> bool:
    pinned: Set[int] = set()
    for plan in program.globals_plan:
        pinned.add(plan.reg)
        if plan.init_reg is not None:
            pinned.add(plan.init_reg)
    any_change = False
    while True:
        read: Set[int] = set()
        roots: Set[int] = set()
        for plan in program.globals_plan:
            if plan.init_block is not None:
                _scan_uses(plan.init_block, read, roots)
        _scan_uses(program.body, read, roots)
        changed = False
        for plan in program.globals_plan:
            if plan.init_block is not None:
                changed |= _sweep(plan.init_block, read, roots, pinned)
        changed |= _sweep(program.body, read, roots, pinned)
        if not changed:
            return any_change
        any_change = True


# ======================================================================
# Constant-pool compaction + driver
# ======================================================================
def compact_pool(program: CompiledProgram) -> None:
    order: List[int] = []
    remap: Dict[int, int] = {}

    def visit(block: Block):
        for item in block.items:
            if isinstance(item, Instr):
                if item.op == "const":
                    idx = item.imm
                    if idx not in remap:
                        remap[idx] = len(order)
                        order.append(idx)
                    item.imm = remap[idx]
            else:
                for sub in _region_blocks(item):
                    visit(sub)

    for plan in program.globals_plan:
        if plan.init_block is not None:
            visit(plan.init_block)
    visit(program.body)
    program.consts = [program.consts[i] for i in order]
    program._const_cache = {}


def run_passes(program: CompiledProgram, fmodel) -> CompiledProgram:
    """Run the full pass pipeline to a fixpoint (bounded)."""
    for _ in range(4):
        changed = _FoldPass(program, fmodel).run()
        changed |= flatten_return_ladders(program)
        changed |= elide_frames(program)
        changed |= propagate_copies(program)
        changed |= forward_stores(program)
        changed |= select_convert(program)
        changed |= cse(program)
        changed |= dce(program)
        if not changed:
            break
    compact_pool(program)
    # Annotation, not transformation: runs last so constant-pool
    # indices are final and the matched chain is the one backends see.
    from .gather import annotate_gathers

    annotate_gathers(program)
    return program
