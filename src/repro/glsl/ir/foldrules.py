"""Front half of the pass pipeline: pre-typecheck AST folding.

The compile pipeline is *preprocess → parse → fold/prune → typecheck →
lower → IR passes → execute*.  This module is the fold/prune stage: a
purely syntactic literal-folding and static-branch-pruning walk that
runs before the checker — the same early folding a mobile GLSL
compiler performs, which is what lets ``#ifdef``-style constant guards
hide ill-typed dead code from diagnostics.

Everything it can prove is proved again, more strongly, by the
abstract-execution fold pass in :mod:`repro.glsl.ir.passes`, which
works on typed registers with the real float model.  The AST walk is
kept (and kept *here*, as part of the IR pipeline) only for the two
things the IR pass cannot do:

* pruning branches **before** type checking, so statically-dead code
  is never diagnosed;
* shrinking the AST the lowerer has to visit.

Scalar semantics match GLSL ES 1.00: int/int division truncates
toward zero, division by a literal zero is left for the runtime's
defined-as-zero behaviour, int32 overflow is left unfolded, and
mixed int/float arithmetic (a type error) is left for the checker.

The legacy entry point :func:`repro.glsl.optimize.optimize` is a thin
shim over :func:`fold_unit`.
"""

from __future__ import annotations

from typing import Optional

from .. import ast_nodes as ast


def fold_unit(unit: ast.TranslationUnit) -> ast.TranslationUnit:
    """Fold constants and prune static branches in place."""
    for decl in unit.declarations:
        if isinstance(decl, ast.FunctionDef) and decl.body is not None:
            decl.body = fold_stmt(decl.body)
        elif isinstance(decl, ast.GlobalDecl):
            for declarator in decl.declarators:
                if declarator.initializer is not None:
                    declarator.initializer = fold_expr(declarator.initializer)
                if declarator.array_size is not None:
                    declarator.array_size = fold_expr(declarator.array_size)
    return unit


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
def fold_stmt(stmt: ast.Stmt) -> ast.Stmt:
    if isinstance(stmt, ast.CompoundStmt):
        stmt.statements = [fold_stmt(s) for s in stmt.statements]
        return stmt
    if isinstance(stmt, ast.DeclStmt):
        for declarator in stmt.declarators:
            if declarator.initializer is not None:
                declarator.initializer = fold_expr(declarator.initializer)
            if declarator.array_size is not None:
                declarator.array_size = fold_expr(declarator.array_size)
        return stmt
    if isinstance(stmt, ast.ExprStmt):
        stmt.expr = fold_expr(stmt.expr)
        return stmt
    if isinstance(stmt, ast.IfStmt):
        stmt.condition = fold_expr(stmt.condition)
        stmt.then_branch = fold_stmt(stmt.then_branch)
        if stmt.else_branch is not None:
            stmt.else_branch = fold_stmt(stmt.else_branch)
        if isinstance(stmt.condition, ast.BoolLiteral):
            if stmt.condition.value:
                return stmt.then_branch
            if stmt.else_branch is not None:
                return stmt.else_branch
            return ast.CompoundStmt(line=stmt.line)
        return stmt
    if isinstance(stmt, ast.ForStmt):
        if stmt.init is not None:
            stmt.init = fold_stmt(stmt.init)
        if stmt.condition is not None:
            stmt.condition = fold_expr(stmt.condition)
        if stmt.update is not None:
            stmt.update = fold_expr(stmt.update)
        stmt.body = fold_stmt(stmt.body)
        return stmt
    if isinstance(stmt, ast.WhileStmt):
        stmt.condition = fold_expr(stmt.condition)
        stmt.body = fold_stmt(stmt.body)
        # while(false) never executes.
        if isinstance(stmt.condition, ast.BoolLiteral) and not stmt.condition.value:
            return ast.CompoundStmt(line=stmt.line)
        return stmt
    if isinstance(stmt, ast.DoWhileStmt):
        stmt.body = fold_stmt(stmt.body)
        stmt.condition = fold_expr(stmt.condition)
        return stmt
    if isinstance(stmt, ast.ReturnStmt):
        if stmt.value is not None:
            stmt.value = fold_expr(stmt.value)
        return stmt
    return stmt


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
def literal_value(expr: ast.Expr):
    if isinstance(expr, (ast.IntLiteral, ast.FloatLiteral, ast.BoolLiteral)):
        return expr.value
    return None


def make_literal(value, template: ast.Expr) -> Optional[ast.Expr]:
    line = template.line
    if isinstance(value, bool):
        return ast.BoolLiteral(value=value, line=line)
    if isinstance(value, int):
        if not -(2**31) <= value < 2**31:
            return None  # would overflow int32: leave unfolded
        return ast.IntLiteral(value=value, line=line)
    if isinstance(value, float):
        return ast.FloatLiteral(value=value, line=line)
    return None


def fold_expr(expr: ast.Expr) -> ast.Expr:
    if isinstance(expr, ast.UnaryOp):
        expr.operand = fold_expr(expr.operand)
        value = literal_value(expr.operand)
        if value is not None:
            if expr.op == "-" and not isinstance(value, bool):
                folded = make_literal(-value, expr)
                if folded is not None:
                    return folded
            if expr.op == "+" and not isinstance(value, bool):
                return expr.operand
            if expr.op == "!" and isinstance(value, bool):
                return ast.BoolLiteral(value=not value, line=expr.line)
        return expr

    if isinstance(expr, ast.BinaryOp):
        expr.left = fold_expr(expr.left)
        expr.right = fold_expr(expr.right)
        left = literal_value(expr.left)
        right = literal_value(expr.right)
        if left is None or right is None:
            return expr
        folded = fold_binary(expr.op, left, right, expr)
        return folded if folded is not None else expr

    if isinstance(expr, ast.Conditional):
        expr.condition = fold_expr(expr.condition)
        expr.if_true = fold_expr(expr.if_true)
        expr.if_false = fold_expr(expr.if_false)
        condition = literal_value(expr.condition)
        if isinstance(condition, bool):
            return expr.if_true if condition else expr.if_false
        return expr

    if isinstance(expr, ast.Assignment):
        expr.value = fold_expr(expr.value)
        # Target subexpressions (indices) can fold too.
        expr.target = fold_expr(expr.target)
        return expr

    if isinstance(expr, ast.Call):
        expr.args = [fold_expr(a) for a in expr.args]
        return expr

    if isinstance(expr, ast.FieldAccess):
        expr.base = fold_expr(expr.base)
        return expr

    if isinstance(expr, ast.IndexAccess):
        expr.base = fold_expr(expr.base)
        expr.index = fold_expr(expr.index)
        return expr

    if isinstance(expr, ast.CommaExpr):
        expr.left = fold_expr(expr.left)
        expr.right = fold_expr(expr.right)
        return expr

    return expr


def fold_binary(op: str, left, right, template: ast.Expr) -> Optional[ast.Expr]:
    left_is_bool = isinstance(left, bool)
    right_is_bool = isinstance(right, bool)

    if op in ("&&", "||", "^^"):
        if not (left_is_bool and right_is_bool):
            return None
        value = {
            "&&": left and right,
            "||": left or right,
            "^^": left != right,
        }[op]
        return ast.BoolLiteral(value=bool(value), line=template.line)

    if left_is_bool or right_is_bool:
        if op in ("==", "!="):
            if left_is_bool and right_is_bool:
                value = (left == right) if op == "==" else (left != right)
                return ast.BoolLiteral(value=value, line=template.line)
        return None

    # Numeric operands: GLSL forbids mixing int and float — leave such
    # (ill-typed) expressions for the checker's diagnostics.
    if isinstance(left, int) != isinstance(right, int):
        return None

    if op in ("==", "!=", "<", ">", "<=", ">="):
        value = {
            "==": left == right,
            "!=": left != right,
            "<": left < right,
            "<=": left <= right,
            ">": left > right,
            ">=": left >= right,
        }[op]
        return ast.BoolLiteral(value=value, line=template.line)

    if op == "+":
        return make_literal(left + right, template)
    if op == "-":
        return make_literal(left - right, template)
    if op == "*":
        return make_literal(left * right, template)
    if op == "/":
        if right == 0:
            return None  # runtime defines this; don't fold
        if isinstance(left, int):
            return make_literal(int(left / right), template)
        return make_literal(left / right, template)
    return None
