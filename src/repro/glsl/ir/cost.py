"""Static instruction-cost model over the compiled IR artifact.

Counts per-invocation ALU/SFU/texture operations by walking the
*post-pass* structured program — the same artifact the executor runs —
using the same per-op formulas the runtime counters apply.  For
straight-line programs (after select-conversion this includes the
paper's int32 E1 kernels) the static count times the invocation count
equals the dynamic tally exactly; divergent constructs (non-converted
branches, data-dependent loops, kill channels) make the count an
estimate and clear the ``exact`` flag.

Global initializers execute once per draw at batch size 1, so their
cost is reported separately as ``per_draw``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .nodes import (
    Block,
    CompiledProgram,
    CondRegion,
    FuncRegion,
    IfRegion,
    Instr,
    LoopRegion,
    ScRegion,
)


@dataclass
class _BlockCost:
    counts: Dict[str, int] = field(default_factory=dict)
    exact: bool = True

    def add(self, category: str, ops: int) -> None:
        if ops:
            self.counts[category] = self.counts.get(category, 0) + ops

    def merge(self, other: "_BlockCost", times: int = 1) -> None:
        for cat, ops in other.counts.items():
            self.add(cat, ops * times)
        self.exact = self.exact and other.exact

    def total(self) -> int:
        return sum(self.counts.values())


def _instr_cost(ins: Instr, cost: _BlockCost) -> None:
    op = ins.op
    if op == "unary":
        if ins.imm == "-":
            cost.add("alu", ins.type.component_count() if ins.type else 1)
        else:
            cost.add("alu", 1)
    elif op == "arith":
        cost.add("alu", ins.imm[1])
    elif op in ("compare", "xor", "sc_combine"):
        cost.add("alu", 1)
    elif op == "equal":
        cost.add("alu", ins.imm[1])
    elif op == "construct":
        if ins.type is not None and not ins.type.is_struct():
            cost.add("alu", ins.type.component_count())
    elif op == "builtin":
        overload = ins.imm[1]
        cost.add(overload.category,
                 ins.type.component_count() if ins.type else 1)
    elif op == "texture":
        cost.add("tex", 1)
    elif op == "incdec":
        cost.add("alu", ins.type.component_count() if ins.type else 1)
    elif op in ("break", "continue", "discard"):
        # Kill channels make every later count mask-dependent.
        cost.exact = False
    # const/move/copy/decl/load/store/field/swizzle/index/select/return
    # are free; `return` exactness is handled positionally by the
    # caller (a tail return kills no counted work).


def _block_cost(block: Optional[Block], tail_func: bool = False) -> _BlockCost:
    cost = _BlockCost()
    if block is None:
        return cost
    last = len(block.items) - 1
    for pos, item in enumerate(block.items):
        if isinstance(item, Instr):
            if item.op == "return":
                if not (tail_func and pos == last):
                    cost.exact = False
                continue
            _instr_cost(item, cost)
        elif isinstance(item, IfRegion):
            then_cost = _block_cost(item.then_block)
            else_cost = _block_cost(item.else_block)
            if then_cost.total() or else_cost.total():
                cost.exact = False
            cost.merge(then_cost)
            cost.merge(else_cost)
        elif isinstance(item, CondRegion):
            true_cost = _block_cost(item.true_block)
            false_cost = _block_cost(item.false_block)
            if true_cost.total() or false_cost.total():
                cost.exact = False
            cost.merge(true_cost)
            cost.merge(false_cost)
        elif isinstance(item, ScRegion):
            rhs_cost = _block_cost(item.rhs_block)
            if rhs_cost.total():
                cost.exact = False
            cost.merge(rhs_cost)
            cost.add("alu", 1)  # the combine itself always counts
        elif isinstance(item, LoopRegion):
            cond_cost = _block_cost(item.cond_block)
            body_cost = _block_cost(item.body_block)
            update_cost = _block_cost(item.update_block)
            trips = item.static_trips
            if trips is None:
                # Unknown trip count: charge one nominal iteration.
                cost.exact = False
                cost.merge(cond_cost)
                cost.merge(body_cost)
                cost.merge(update_cost)
            else:
                # The condition runs once more than the body (the
                # final, failing evaluation).
                cost.merge(cond_cost, trips + 1)
                cost.merge(body_cost, trips)
                cost.merge(update_cost, trips)
        elif isinstance(item, FuncRegion):
            cost.merge(_block_cost(item.body_block, tail_func=True))
    return cost


@dataclass
class StaticCost:
    """Static op counts for one compiled shader stage."""

    #: ops per shader invocation (per fragment / per vertex)
    per_invocation: Dict[str, int]
    #: ops per draw call (global initializers, batch-1)
    per_draw: Dict[str, int]
    #: True when the counts are guaranteed to equal the dynamic tally
    exact: bool
    #: texture sites carrying the gather annotation (see
    #: :mod:`repro.glsl.ir.gather`) — the sites the JIT turns into
    #: direct texel gathers.  Informational: gathers still count as
    #: ``tex`` ops in :meth:`totals` (the fetch happens either way, it
    #: just skips wrap/scale/filter dispatch), so the dynamic-parity
    #: guarantee of the projection is unchanged.
    gather_sites: int = 0

    def totals(self, invocations: int) -> Dict[str, int]:
        """Projected dynamic counter totals for a draw shading
        ``invocations`` lanes with no kills."""
        cats = set(self.per_invocation) | set(self.per_draw)
        return {
            cat: self.per_invocation.get(cat, 0) * invocations
            + self.per_draw.get(cat, 0)
            for cat in cats
        }


def _count_gather_sites(block: Optional[Block]) -> int:
    if block is None:
        return 0
    sites = 0
    for item in block.items:
        if isinstance(item, Instr):
            if item.op == "texture" and getattr(item, "gather", None):
                sites += 1
        else:
            for slot in item.__slots__:
                value = getattr(item, slot)
                if isinstance(value, Block):
                    sites += _count_gather_sites(value)
    return sites


def static_cost(program: CompiledProgram) -> StaticCost:
    """Compute the static cost of a compiled program."""
    draw = _BlockCost()
    for plan in program.globals_plan:
        if plan.init_block is not None:
            draw.merge(_block_cost(plan.init_block))
    body = _block_cost(program.body)
    return StaticCost(
        per_invocation=dict(body.counts),
        per_draw=dict(draw.counts),
        exact=body.exact and draw.exact,
        gather_sites=_count_gather_sites(program.body),
    )
