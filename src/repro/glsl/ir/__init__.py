"""``repro.glsl.ir`` — linear register IR for compiled GLSL shaders.

Pipeline: :func:`~repro.glsl.ir.lower.lower_shader` turns a
:class:`~repro.glsl.typecheck.CheckedShader` into a structured
:class:`~repro.glsl.ir.nodes.CompiledProgram`;
:func:`~repro.glsl.ir.passes.run_passes` folds/prunes/CSEs/DCEs it;
:class:`~repro.glsl.ir.executor.IRExecutor` flattens and runs it as a
drop-in, bit-identical replacement for the AST tree walker.

:func:`get_compiled` is the cached front door: compiled artifacts are
memoised per (float model, dtype) on the CheckedShader itself, so
repeated draws — and repeated kernels compiled from identical source —
skip lowering and the pass pipeline entirely.  Under that in-process
memo sits the persistent artifact store (:mod:`repro.core.cache`):
shaders carrying a source digest (everything compiled through the
gles2 front end) load their optimised ``CompiledProgram`` from disk on
a memory miss and only run the pass pipeline when no process has ever
compiled this (source, float model) before.  ``compile_events`` counts
how each program was obtained — ``fresh`` (pipeline ran, disk entry
written), ``disk`` (warm start), ``uncached`` (no digest or cache
disabled) — which the warm-CI leg asserts over.
"""

from __future__ import annotations

import numpy as np

from .cost import StaticCost, static_cost
from .executor import IRExecutor, flatten_program
from .gather import annotate_gathers
from .lower import Lowerer, lower_shader
from .nodes import CompiledProgram, Instr, dump_ir
from .passes import run_passes

__all__ = [
    "CompiledProgram",
    "IRExecutor",
    "Instr",
    "Lowerer",
    "StaticCost",
    "annotate_gathers",
    "compile_events",
    "compile_ir",
    "dump_ir",
    "flatten_program",
    "get_compiled",
    "lower_shader",
    "reset_compile_events",
    "run_passes",
    "static_cost",
]


def _model_key(fmodel) -> tuple:
    return (getattr(fmodel, "name", fmodel.__class__.__name__),
            np.dtype(fmodel.dtype).str)


#: How compiled programs were obtained this process (see module
#: docstring).  reset via :func:`reset_compile_events`.
compile_events = {"fresh": 0, "disk": 0, "uncached": 0}


def reset_compile_events() -> None:
    for key in compile_events:
        compile_events[key] = 0


def _load_or_compile(checked, fmodel, mkey) -> CompiledProgram:
    """The disk layer under the in-memory program memo."""
    from ...core import cache as artifact_cache
    from ...perf import trace

    with trace.span("compile.ir", "compile") as sp:
        if sp is not None:
            sp.args["stage"] = getattr(checked, "stage", "")
        digest = getattr(checked, "source_digest", None)
        disk_key = None
        if digest is not None and artifact_cache.enabled():
            disk_key = artifact_cache.artifact_key(
                "ir", digest,
                stage=getattr(checked, "stage", ""),
                model=f"{mkey[0]}:{mkey[1]}",
                fusion=getattr(checked, "fusion_signature", ""),
            )
            data = artifact_cache.get(disk_key)
            if data is not None:
                program = artifact_cache.load_program(data, checked)
                if program is not None:
                    compile_events["disk"] += 1
                    if sp is not None:
                        sp.args["event"] = "disk"
                    return program
                artifact_cache.invalidate(disk_key)
        program = compile_ir(checked, fmodel)
        if disk_key is not None:
            compile_events["fresh"] += 1
            artifact_cache.put(
                disk_key, artifact_cache.dump_program(program), "ir"
            )
        else:
            compile_events["uncached"] += 1
        if sp is not None:
            sp.args["event"] = (
                "fresh" if disk_key is not None else "uncached"
            )
        return program


def compile_ir(checked, fmodel=None) -> CompiledProgram:
    """Lower + optimise one shader for one float model (uncached)."""
    from ..interp import _ExactModel

    fmodel = fmodel or _ExactModel()
    program = lower_shader(checked)
    run_passes(program, fmodel)
    return program


def get_compiled(checked, fmodel=None) -> CompiledProgram:
    """Cached compile: one artifact per (shader, float model, dtype).

    The cache lives on the CheckedShader object, so it shares the
    lifetime of the front-end artifact (and of the gles2 shader cache
    that holds on to it)."""
    from ..interp import _ExactModel

    fmodel = fmodel or _ExactModel()
    cache = getattr(checked, "_ir_cache", None)
    if cache is None:
        cache = {}
        try:
            checked._ir_cache = cache
        except AttributeError:  # frozen/slotted shader object
            return compile_ir(checked, fmodel)
    key = _model_key(fmodel)
    program = cache.get(key)
    if program is None:
        program = _load_or_compile(checked, fmodel, key)
        cache[key] = program
    return program
