"""``repro.glsl.ir`` — linear register IR for compiled GLSL shaders.

Pipeline: :func:`~repro.glsl.ir.lower.lower_shader` turns a
:class:`~repro.glsl.typecheck.CheckedShader` into a structured
:class:`~repro.glsl.ir.nodes.CompiledProgram`;
:func:`~repro.glsl.ir.passes.run_passes` folds/prunes/CSEs/DCEs it;
:class:`~repro.glsl.ir.executor.IRExecutor` flattens and runs it as a
drop-in, bit-identical replacement for the AST tree walker.

:func:`get_compiled` is the cached front door: compiled artifacts are
memoised per (float model, dtype) on the CheckedShader itself, so
repeated draws — and repeated kernels compiled from identical source —
skip lowering and the pass pipeline entirely.
"""

from __future__ import annotations

import numpy as np

from .cost import StaticCost, static_cost
from .executor import IRExecutor, flatten_program
from .gather import annotate_gathers
from .lower import Lowerer, lower_shader
from .nodes import CompiledProgram, Instr, dump_ir
from .passes import run_passes

__all__ = [
    "CompiledProgram",
    "IRExecutor",
    "Instr",
    "Lowerer",
    "StaticCost",
    "annotate_gathers",
    "compile_ir",
    "dump_ir",
    "flatten_program",
    "get_compiled",
    "lower_shader",
    "run_passes",
    "static_cost",
]


def _model_key(fmodel) -> tuple:
    return (getattr(fmodel, "name", fmodel.__class__.__name__),
            np.dtype(fmodel.dtype).str)


def compile_ir(checked, fmodel=None) -> CompiledProgram:
    """Lower + optimise one shader for one float model (uncached)."""
    from ..interp import _ExactModel

    fmodel = fmodel or _ExactModel()
    program = lower_shader(checked)
    run_passes(program, fmodel)
    return program


def get_compiled(checked, fmodel=None) -> CompiledProgram:
    """Cached compile: one artifact per (shader, float model, dtype).

    The cache lives on the CheckedShader object, so it shares the
    lifetime of the front-end artifact (and of the gles2 shader cache
    that holds on to it)."""
    from ..interp import _ExactModel

    fmodel = fmodel or _ExactModel()
    cache = getattr(checked, "_ir_cache", None)
    if cache is None:
        cache = {}
        try:
            checked._ir_cache = cache
        except AttributeError:  # frozen/slotted shader object
            return compile_ir(checked, fmodel)
    key = _model_key(fmodel)
    program = cache.get(key)
    if program is None:
        program = compile_ir(checked, fmodel)
        cache[key] = program
    return program
