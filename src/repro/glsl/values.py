r"""Runtime values for the vectorised GLSL interpreter.

The interpreter executes a shader for *all* vertices or fragments of a
draw call at once (a software SIMT model, matching how the VideoCore
IV's QPUs execute 16-way warps).  Every GLSL variable therefore holds a
numpy array whose leading axis is the batch (lane) axis:

========  =======================  =========================
GLSL      shape                    dtype
========  =======================  =========================
float     ``(N,)``                 float model dtype
int       ``(N,)``                 int32
bool      ``(N,)``                 bool\_
vecK      ``(N, K)``               float model dtype
ivecK     ``(N, K)``               int32
bvecK     ``(N, K)``               bool\_
matK      ``(N, K, K)``            float model dtype, ``[n, col, row]``
array[L]  ``(N, L, *elem shape)``  element dtype
========  =======================  =========================

Uniform (per-draw) quantities use ``N == 1`` and rely on numpy
broadcasting; :func:`batch_of` computes the joint batch size.

Matrices are stored column-major like GLSL itself: ``data[n, c, r]`` is
column ``c``, row ``r``, so ``m[c]`` is a cheap slice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np

from .errors import GlslRuntimeError
from .types import BaseType, GlslType, TypeKind

#: dtype used for int and bool data (floats come from the float model).
INT_DTYPE = np.int32
BOOL_DTYPE = np.bool_


@dataclass
class Value:
    """A typed runtime value: a GLSL type plus its batched numpy data.

    Struct values use ``fields`` instead of ``data``; arrays of structs
    hold a list of struct Values in ``fields[str(i)]``.
    """

    type: GlslType
    data: Optional[np.ndarray] = None
    fields: Optional[Dict[str, "Value"]] = None
    #: Opaque handle for sampler types (set when binding uniforms).
    sampler: object = None

    def clone(self) -> "Value":
        """Deep copy (needed for out-parameter snapshots and masked
        assignment fallbacks)."""
        return Value(
            type=self.type,
            data=None if self.data is None else self.data.copy(),
            fields=None
            if self.fields is None
            else {k: v.clone() for k, v in self.fields.items()},
            sampler=self.sampler,
        )

    @property
    def batch(self) -> int:
        """Lane count of this value (1 for uniforms)."""
        if self.data is not None:
            return self.data.shape[0]
        if self.fields:
            return max(v.batch for v in self.fields.values())
        return 1


def batch_of(*values: Value) -> int:
    """The joint batch size of several values (all must be 1 or equal)."""
    n = 1
    for v in values:
        b = v.batch
        if b != 1:
            if n != 1 and n != b:
                raise GlslRuntimeError(f"incompatible batch sizes {n} vs {b}")
            n = b
    return n


def float_dtype_of(model) -> np.dtype:
    """dtype of float data under a float model (see gles2.precision)."""
    return model.dtype


# ----------------------------------------------------------------------
# Constructors for fresh values
# ----------------------------------------------------------------------
def zeros_for(gtype: GlslType, n: int, float_dtype) -> Value:
    """A zero-initialised value of the given type and batch size."""
    if gtype.kind == TypeKind.SCALAR:
        dtype = _dtype_for_base(gtype.base, float_dtype)
        return Value(gtype, np.zeros((n,), dtype=dtype))
    if gtype.kind == TypeKind.VECTOR:
        dtype = _dtype_for_base(gtype.base, float_dtype)
        return Value(gtype, np.zeros((n, gtype.size), dtype=dtype))
    if gtype.kind == TypeKind.MATRIX:
        return Value(gtype, np.zeros((n, gtype.size, gtype.size), dtype=float_dtype))
    if gtype.kind == TypeKind.ARRAY:
        elem = zeros_for(gtype.element, n, float_dtype)
        if elem.data is None:
            # Array of structs: store as numbered fields.
            return Value(
                gtype,
                fields={
                    str(i): zeros_for(gtype.element, n, float_dtype)
                    for i in range(gtype.length)
                },
            )
        shape = (n, gtype.length) + elem.data.shape[1:]
        return Value(gtype, np.zeros(shape, dtype=elem.data.dtype))
    if gtype.kind == TypeKind.STRUCT:
        return Value(
            gtype,
            fields={
                name: zeros_for(ftype, n, float_dtype)
                for name, ftype in gtype.fields
            },
        )
    if gtype.kind == TypeKind.SAMPLER:
        return Value(gtype)
    raise GlslRuntimeError(f"cannot allocate value of type {gtype}")


def _dtype_for_base(base: str, float_dtype) -> np.dtype:
    if base == BaseType.FLOAT:
        return float_dtype
    if base == BaseType.INT:
        return INT_DTYPE
    return BOOL_DTYPE


# ----------------------------------------------------------------------
# Masked assignment
# ----------------------------------------------------------------------
def masked_blend(old: np.ndarray, new: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Combine two data arrays under a lane mask.

    ``mask`` has shape (N,) or (1,); trailing axes of the data arrays
    broadcast.  The result always has the widest batch of the three.
    """
    if mask.all() and new.shape[0] >= old.shape[0]:
        return new.copy() if new is old else np.array(new, copy=True)
    expanded = mask.reshape(mask.shape + (1,) * (old.ndim - 1))
    return np.where(expanded, new, old)


def assign_masked(target: Value, source: Value, mask: np.ndarray) -> None:
    """Write ``source`` into ``target`` for lanes where ``mask`` is set.

    Handles struct and array-of-struct values recursively.
    """
    if target.fields is not None:
        for key, tfield in target.fields.items():
            assign_masked(tfield, source.fields[key], mask)
        return
    new_data = masked_blend(target.data, source.data, mask)
    if new_data.dtype != target.data.dtype:
        new_data = new_data.astype(target.data.dtype)
    target.data = new_data


# ----------------------------------------------------------------------
# Shape helpers used by the interpreter
# ----------------------------------------------------------------------
def broadcast_lanes(data: np.ndarray, n: int) -> np.ndarray:
    """Materialise a (1, ...) array to n lanes (no copy if already n)."""
    if data.shape[0] == n:
        return data
    return np.broadcast_to(data, (n,) + data.shape[1:]).copy()


def flatten_components(values: Iterable[Value]) -> np.ndarray:
    """Concatenate the scalar components of several numeric values
    along the component axis — the core of constructor semantics
    (spec §5.4.2: arguments are consumed left to right, component by
    component)."""
    parts = []
    n = batch_of(*values)
    for v in values:
        data = v.data
        if data.shape[0] != n:
            data = np.broadcast_to(data, (n,) + data.shape[1:])
        if v.type.kind == TypeKind.SCALAR:
            parts.append(data.reshape(n, 1))
        elif v.type.kind == TypeKind.VECTOR:
            parts.append(data.reshape(n, v.type.size))
        elif v.type.kind == TypeKind.MATRIX:
            # Column-major flattening, matching GLSL.
            parts.append(data.reshape(n, v.type.size * v.type.size))
        else:
            raise GlslRuntimeError(f"{v.type} not allowed in a constructor")
    return np.concatenate(parts, axis=1)
