"""Error types raised by the GLSL ES 1.00 front end.

Every error carries a source position so that :class:`repro.gles2.shader`
objects can assemble a driver-style info log (``ERROR: 0:12: ...``) the
way a real OpenGL ES 2 implementation would.
"""

from __future__ import annotations


class GlslError(Exception):
    """Base class for all shader-compilation problems.

    Parameters
    ----------
    message:
        Human-readable description of the problem.
    line:
        1-based source line the problem was detected on (0 if unknown).
    column:
        1-based source column (0 if unknown).
    """

    #: Label used in the info log, mirroring driver conventions.
    stage = "ERROR"

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(message)
        self.message = message
        self.line = line
        self.column = column

    def info_log_entry(self) -> str:
        """Format the error like a GL shader info log line."""
        return f"{self.stage}: 0:{self.line}: {self.message}"


class GlslSyntaxError(GlslError):
    """Lexical or grammatical error detected by the lexer or parser."""


class GlslPreprocessorError(GlslError):
    """Malformed or unsupported preprocessor directive."""


class GlslTypeError(GlslError):
    """Semantic error detected by the type checker (bad types, bad
    qualifiers, unresolved names, invalid constructors, ...)."""


class GlslRuntimeError(GlslError):
    """Error raised while *executing* a shader (should be rare: the
    type checker validates programs up front, so runtime errors signal
    resource problems such as an unbound sampler)."""

    stage = "RUNTIME"


class GlslLimitError(GlslError):
    """A shader exceeded an implementation-defined limit (loop
    iteration cap, recursion, expression nesting depth)."""
