"""Vectorised (SIMT) interpreter for type-checked GLSL ES 1.00 shaders.

The interpreter executes a shader for all vertices/fragments of a draw
call at once, mirroring the lock-step warp execution of the VideoCore
IV's QPUs: each GLSL variable holds a batched numpy array (see
:mod:`repro.glsl.values`) and divergent control flow is handled with
per-lane execution masks.

Divergence model
----------------
``self.exec_mask`` is the set of lanes executing the current statement.
Lanes leave it through four "kill" channels and rejoin at well-defined
points:

* ``return``   — recorded per function frame; lanes rejoin at the call
  site,
* ``break``    — recorded per loop frame; lanes rejoin after the loop,
* ``continue`` — recorded per loop frame; lanes rejoin at the next
  iteration,
* ``discard``  — recorded globally; lanes never rejoin (the fragment
  is dropped).

``&&``/``||`` short-circuit per lane: the right operand only executes
on lanes the left operand did not decide, matching the spec's
sequencing guarantees.

Precision and cost accounting
-----------------------------
All float arithmetic is filtered through a *float model* (see
:mod:`repro.gles2.precision`) so device-accurate reduced precision can
be simulated, and every operation reports to an optional counter sink
(:mod:`repro.perf.counters`) that the performance model consumes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from . import ast_nodes as ast
from . import builtins as bi
from .errors import GlslLimitError, GlslRuntimeError
from .typecheck import CheckedShader, mangle
from .types import BOOL, FLOAT, INT, BaseType, GlslType, TypeKind
from .values import (
    INT_DTYPE,
    Value,
    assign_masked,
    batch_of,
    broadcast_lanes,
    flatten_components,
    masked_blend,
    zeros_for,
)

#: Iteration safety cap (far above anything a GLSL ES Appendix-A
#: conformant shader can express).
DEFAULT_MAX_LOOP_ITERATIONS = 65536


class _ExactModel:
    """Fallback float model: float64, no rounding — used when the
    caller does not supply one."""

    dtype = np.float64
    name = "exact"

    def quantize(self, data: np.ndarray, category: str = "alu") -> np.ndarray:
        return data

    def quantize_is_cast(self, category: str = "alu") -> bool:
        return True


class _LoopFrame:
    """Masks for one active loop."""

    def __init__(self, n: int):
        self.broken = np.zeros(n, dtype=bool)
        self.continued = np.zeros(n, dtype=bool)
        #: Lanes whose loop condition went false (left the loop).
        self.exited = np.zeros(n, dtype=bool)

    def dead(self) -> np.ndarray:
        return self.broken | self.continued | self.exited


class _FunctionFrame:
    """Activation record for one (inlined) function invocation."""

    def __init__(self, n: int, return_type: GlslType, float_dtype):
        self.scopes: List[Dict[str, Value]] = [{}]
        self.returned = np.zeros(n, dtype=bool)
        self.loops: List[_LoopFrame] = []
        if return_type.is_void():
            self.return_value: Optional[Value] = None
        else:
            self.return_value = zeros_for(return_type, 1, float_dtype)


class Interpreter:
    """Executes one compiled shader stage.

    Parameters
    ----------
    checked:
        The type-checked shader.
    float_model:
        Object with ``dtype`` and ``quantize(data, category)`` — models
        the device's float precision (defaults to exact float64).
    counters:
        Optional op-counter sink with ``add(category, count)``.
    max_loop_iterations:
        Safety cap for loop execution.
    """

    def __init__(
        self,
        checked: CheckedShader,
        float_model=None,
        counters=None,
        max_loop_iterations: int = DEFAULT_MAX_LOOP_ITERATIONS,
    ):
        self.checked = checked
        self.fmodel = float_model or _ExactModel()
        self.counters = counters
        self.max_loop_iterations = max_loop_iterations
        # Runtime state (reset per execution).
        self.n = 0
        self.exec_mask: np.ndarray = np.ones(1, dtype=bool)
        self.discarded: np.ndarray = np.zeros(1, dtype=bool)
        self.globals_env: Dict[str, Value] = {}
        self.frames: List[_FunctionFrame] = []

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def execute(self, n: int, presets: Dict[str, Value],
                count_globals: bool = True) -> Dict[str, Value]:
        """Run ``main()`` over a batch of ``n`` lanes.

        ``presets`` seeds global variables (attributes, uniforms,
        varyings, gl_FragCoord, ...).  Returns the final global
        environment; the caller extracts outputs (gl_Position,
        varyings, gl_FragColor) and the discard mask is available as
        :attr:`discarded`.

        Global initializers run once per ``execute`` call at batch
        width 1, so a caller splitting one draw into several batches
        (fragment tiling) would tally them once per tile instead of
        once per draw; such callers pass ``count_globals=False`` on
        every batch but the first to keep the merged counters equal to
        a monolithic run.
        """
        self.n = n
        self.exec_mask = np.ones(n, dtype=bool)
        self.discarded = np.zeros(n, dtype=bool)
        self.globals_env = {}
        self.frames = []

        saved_counters = self.counters
        if not count_globals:
            self.counters = None
        try:
            for name, symbol in self.checked.globals.items():
                if name in presets:
                    self.globals_env[name] = presets[name]
                elif symbol.type.is_sampler():
                    self.globals_env[name] = Value(symbol.type)
                elif symbol.initializer is not None:
                    self.globals_env[name] = self._materialize_global_init(symbol)
                else:
                    self.globals_env[name] = zeros_for(symbol.type, 1, self.fmodel.dtype)
        finally:
            self.counters = saved_counters
        for name, value in presets.items():
            self.globals_env.setdefault(name, value)

        main = self.checked.functions.get("main()")
        if main is None or main.body is None:
            raise GlslRuntimeError("shader has no main() body")
        self._call(main, [])
        return self.globals_env

    def _materialize_global_init(self, symbol) -> Value:
        saved_mask = self.exec_mask
        self.exec_mask = np.ones(1, dtype=bool)
        frame = _FunctionFrame(1, symbol.type, self.fmodel.dtype)
        self.frames.append(frame)
        try:
            value = self.eval(symbol.initializer)
        finally:
            self.frames.pop()
            self.exec_mask = saved_mask
        return value

    # ------------------------------------------------------------------
    # Mask plumbing
    # ------------------------------------------------------------------
    def _live(self) -> np.ndarray:
        mask = ~self.discarded
        if self.frames:
            frame = self.frames[-1]
            mask = mask & ~frame.returned
            for loop in frame.loops:
                mask = mask & ~loop.dead()
        return mask

    def _count(self, category: str, per_lane_ops: int = 1) -> None:
        if self.counters is not None and per_lane_ops:
            lanes = int(self.exec_mask.sum())
            if lanes:
                self.counters.add(category, lanes * per_lane_ops)

    def _broadcast_mask(self, data: np.ndarray) -> np.ndarray:
        """A bool (N,) lane mask from possibly batch-1 bool data."""
        if data.shape[0] == self.n:
            return data.astype(bool, copy=False)
        return np.broadcast_to(data, (self.n,)).astype(bool, copy=False)

    # ------------------------------------------------------------------
    # Variable lookup
    # ------------------------------------------------------------------
    def _lookup(self, name: str) -> Value:
        if self.frames:
            for scope in reversed(self.frames[-1].scopes):
                if name in scope:
                    return scope[name]
        value = self.globals_env.get(name)
        if value is None:
            raise GlslRuntimeError(f"unbound variable '{name}'")
        return value

    def _declare(self, name: str, value: Value) -> None:
        self.frames[-1].scopes[-1][name] = value

    # ------------------------------------------------------------------
    # Function invocation
    # ------------------------------------------------------------------
    def _call(self, func: ast.FunctionDef, args: List[Value],
              arg_exprs: Optional[List[ast.Expr]] = None) -> Optional[Value]:
        if len(self.frames) > 64:
            raise GlslLimitError("function call nesting too deep")
        frame = _FunctionFrame(self.n, func.resolved_return_type, self.fmodel.dtype)
        outgoing = []  # (param index, lvalue ref) for out/inout copy-back
        caller_mask = self.exec_mask.copy()

        # Resolve out/inout references in the caller's context first.
        refs: Dict[int, "_LValueRef"] = {}
        for i, param in enumerate(func.params):
            if param.direction in ("out", "inout") and arg_exprs is not None:
                refs[i] = self._resolve_lvalue(arg_exprs[i])
                outgoing.append(i)

        self.frames.append(frame)
        try:
            for param, arg in zip(func.params, args):
                if not param.name:
                    continue
                if param.direction == "out":
                    local = zeros_for(param.resolved_type, 1, self.fmodel.dtype)
                else:
                    local = arg.clone()
                self._declare(param.name, local)
            for stmt in func.body.statements:
                self.exec_stmt(stmt)
                if not self.exec_mask.any():
                    break
            result = frame.return_value
        finally:
            self.frames.pop()
            self.exec_mask = caller_mask & self._live()

        # Copy out/inout parameters back under the caller's mask.
        for i in outgoing:
            local = frame.scopes[0][func.params[i].name]
            refs[i].write(local, self.exec_mask)
        return result

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def exec_stmt(self, stmt: ast.Stmt) -> None:
        if not self.exec_mask.any():
            return
        if isinstance(stmt, ast.CompoundStmt):
            if self.frames:
                self.frames[-1].scopes.append({})
            try:
                for inner in stmt.statements:
                    self.exec_stmt(inner)
                    if not self.exec_mask.any():
                        break
            finally:
                if self.frames:
                    self.frames[-1].scopes.pop()
        elif isinstance(stmt, ast.DeclStmt):
            self._exec_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.eval(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self._exec_if(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self._exec_for(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._exec_loop(None, stmt.condition, None, stmt.body, pretest=True)
        elif isinstance(stmt, ast.DoWhileStmt):
            self._exec_loop(None, stmt.condition, None, stmt.body, pretest=False)
        elif isinstance(stmt, ast.ReturnStmt):
            frame = self.frames[-1]
            if stmt.value is not None:
                value = self.eval(stmt.value)
                assign_masked(frame.return_value, value, self.exec_mask)
            frame.returned |= self.exec_mask
            self.exec_mask = self.exec_mask & ~frame.returned
        elif isinstance(stmt, ast.BreakStmt):
            loop = self.frames[-1].loops[-1]
            loop.broken |= self.exec_mask
            self.exec_mask = self.exec_mask & ~loop.broken
        elif isinstance(stmt, ast.ContinueStmt):
            loop = self.frames[-1].loops[-1]
            loop.continued |= self.exec_mask
            self.exec_mask = self.exec_mask & ~loop.continued
        elif isinstance(stmt, ast.DiscardStmt):
            self.discarded |= self.exec_mask
            self.exec_mask = self.exec_mask & ~self.discarded
        else:
            raise GlslRuntimeError(f"unhandled statement {type(stmt).__name__}")

    def _exec_decl(self, stmt: ast.DeclStmt) -> None:
        for declarator in stmt.declarators:
            storage = zeros_for(declarator.resolved_type, 1, self.fmodel.dtype)
            if declarator.initializer is not None:
                value = self.eval(declarator.initializer)
                assign_masked(storage, value, self.exec_mask)
            self._declare(declarator.name, storage)

    def _exec_if(self, stmt: ast.IfStmt) -> None:
        region = self.exec_mask
        cond = self._broadcast_mask(self.eval(stmt.condition).data)
        then_mask = region & cond & self._live()
        if then_mask.any():
            self.exec_mask = then_mask
            self.exec_stmt(stmt.then_branch)
        if stmt.else_branch is not None:
            else_mask = region & ~cond & self._live()
            if else_mask.any():
                self.exec_mask = else_mask
                self.exec_stmt(stmt.else_branch)
        self.exec_mask = region & self._live()

    def _exec_for(self, stmt: ast.ForStmt) -> None:
        if self.frames:
            self.frames[-1].scopes.append({})
        try:
            if stmt.init is not None:
                self.exec_stmt(stmt.init)
            self._exec_loop(None, stmt.condition, stmt.update, stmt.body, pretest=True)
        finally:
            if self.frames:
                self.frames[-1].scopes.pop()

    def _exec_loop(
        self,
        init,
        condition: Optional[ast.Expr],
        update: Optional[ast.Expr],
        body: ast.Stmt,
        pretest: bool,
    ) -> None:
        region = self.exec_mask.copy()
        frame = self.frames[-1]
        loop = _LoopFrame(self.n)
        frame.loops.append(loop)
        iterations = 0
        try:
            while True:
                self.exec_mask = region & self._live()
                if not self.exec_mask.any():
                    break
                if condition is not None and (pretest or iterations > 0):
                    cond = self._broadcast_mask(self.eval(condition).data)
                    loop.exited |= self.exec_mask & ~cond
                    self.exec_mask = self.exec_mask & cond
                    if not self.exec_mask.any():
                        break
                self.exec_stmt(body)
                # continue-lanes rejoin for the update expression.
                loop.continued[:] = False
                self.exec_mask = region & self._live()
                if update is not None and self.exec_mask.any():
                    self.eval(update)
                iterations += 1
                if iterations > self.max_loop_iterations:
                    raise GlslLimitError(
                        f"loop exceeded {self.max_loop_iterations} iterations"
                    )
        finally:
            frame.loops.pop()
        self.exec_mask = region & self._live()

    # ==================================================================
    # Expressions
    # ==================================================================
    def eval(self, expr: ast.Expr) -> Value:
        method = self._DISPATCH.get(type(expr))
        if method is None:
            raise GlslRuntimeError(f"unhandled expression {type(expr).__name__}")
        return method(self, expr)

    # -- literals -------------------------------------------------------
    def _eval_int(self, expr: ast.IntLiteral) -> Value:
        return Value(INT, np.array([expr.value], dtype=INT_DTYPE))

    def _eval_float(self, expr: ast.FloatLiteral) -> Value:
        return Value(FLOAT, np.array([expr.value], dtype=self.fmodel.dtype))

    def _eval_bool(self, expr: ast.BoolLiteral) -> Value:
        return Value(BOOL, np.array([expr.value], dtype=bool))

    def _eval_ident(self, expr: ast.Identifier) -> Value:
        return self._lookup(expr.name)

    # -- unary ----------------------------------------------------------
    def _eval_unary(self, expr: ast.UnaryOp) -> Value:
        operand = self.eval(expr.operand)
        if expr.op == "+":
            return operand
        if expr.op == "-":
            data = -operand.data
            if operand.type.is_float_based():
                data = self.fmodel.quantize(data)
            self._count("alu", operand.type.component_count())
            return Value(operand.type, data)
        if expr.op == "!":
            self._count("alu")
            return Value(BOOL, ~operand.data)
        raise GlslRuntimeError(f"unhandled unary operator '{expr.op}'")

    def _eval_incdec(self, expr) -> Value:
        ref = self._resolve_lvalue(expr.operand)
        old = ref.read()
        # Capture the array before the write: for a plain variable,
        # `old` IS the storage object and the write replaces its
        # `.data` — the old array itself stays intact.
        old_data = old.data
        one = np.asarray(1, dtype=old_data.dtype)
        delta = one if expr.op == "++" else -one
        new_data = old_data + delta
        if old.type.is_float_based():
            new_data = self.fmodel.quantize(new_data)
        self._count("alu", old.type.component_count())
        new = Value(old.type, new_data)
        ref.write(new, self.exec_mask)
        if isinstance(expr, ast.PrefixIncDec):
            return new
        return Value(old.type, old_data.copy())

    # -- binary ---------------------------------------------------------
    def _eval_binary(self, expr: ast.BinaryOp) -> Value:
        op = expr.op
        if op in ("&&", "||"):
            return self._eval_shortcircuit(expr)
        left = self.eval(expr.left)
        if op == "^^":
            right = self.eval(expr.right)
            self._count("alu")
            return Value(BOOL, left.data ^ right.data)
        right = self.eval(expr.right)
        if op in ("==", "!="):
            return self._eval_equality(op, left, right)
        if op in ("<", ">", "<=", ">="):
            func = {
                "<": np.less,
                ">": np.greater,
                "<=": np.less_equal,
                ">=": np.greater_equal,
            }[op]
            self._count("alu")
            return Value(BOOL, func(left.data, right.data))
        return self._eval_arith(op, left, right, expr.resolved_type)

    def _eval_shortcircuit(self, expr: ast.BinaryOp) -> Value:
        left = self.eval(expr.left)
        left_mask = self._broadcast_mask(left.data)
        saved = self.exec_mask
        rhs_mask = saved & (left_mask if expr.op == "&&" else ~left_mask)
        result = left_mask.copy()
        if rhs_mask.any():
            self.exec_mask = rhs_mask
            try:
                right = self.eval(expr.right)
            finally:
                self.exec_mask = saved
            right_mask = self._broadcast_mask(right.data)
            if expr.op == "&&":
                # Lanes that evaluated the rhs take left&&right; the
                # rest keep the left value (false, or don't-care).
                result = left_mask & (right_mask | ~rhs_mask)
            else:
                result = left_mask | (right_mask & rhs_mask)
        self._count("alu")
        return Value(BOOL, result)

    def _eval_equality(self, op: str, left: Value, right: Value) -> Value:
        data = self._equal_data(left, right)
        if op == "!=":
            data = ~data
        self._count("alu", left.type.component_count() if left.data is not None else 1)
        return Value(BOOL, data)

    def _equal_data(self, left: Value, right: Value) -> np.ndarray:
        if left.fields is not None:
            n = batch_of(left, right)
            acc = np.ones(n if n > 1 else 1, dtype=bool)
            for key in left.fields:
                acc = acc & self._equal_data(left.fields[key], right.fields[key])
            return acc
        eq = left.data == right.data
        axes = tuple(range(1, eq.ndim))
        if axes:
            eq = np.all(eq, axis=axes)
        return eq

    def _eval_arith(self, op: str, left: Value, right: Value, result_type: GlslType) -> Value:
        ltype, rtype = left.type, right.type
        a, b = left.data, right.data
        flops = result_type.component_count()

        # Linear-algebra products accumulate in ascending component
        # order (a.x*b.x + a.y*b.y + ...), the same order as dot() and
        # the scalar reference interpreter — keeping every path in the
        # conformance harness bit-identical.
        if op == "*" and ltype.is_matrix() and rtype.is_matrix():
            k = ltype.size
            # result[n,c,r] = sum_i a[n,i,r] * b[n,c,i]
            data = a[:, 0, :][:, None, :] * b[:, :, 0][:, :, None]
            for i in range(1, k):
                data = data + a[:, i, :][:, None, :] * b[:, :, i][:, :, None]
            flops = result_type.component_count() * ltype.size
        elif op == "*" and ltype.is_matrix() and rtype.is_vector():
            k = ltype.size
            # result[n,r] = sum_c a[n,c,r] * b[n,c]
            data = a[:, 0, :] * b[:, 0][:, None]
            for c in range(1, k):
                data = data + a[:, c, :] * b[:, c][:, None]
            flops = result_type.component_count() * ltype.size
        elif op == "*" and ltype.is_vector() and rtype.is_matrix():
            k = rtype.size
            # result[n,c] = sum_r a[n,r] * b[n,c,r]
            data = a[:, 0][:, None] * b[:, :, 0]
            for r in range(1, k):
                data = data + a[:, r][:, None] * b[:, :, r]
            flops = result_type.component_count() * rtype.size
        else:
            a, b = self._align_operands(left, right)
            with np.errstate(over="ignore", invalid="ignore"):
                if op == "+":
                    data = a + b
                elif op == "-":
                    data = a - b
                elif op == "*":
                    data = a * b
                elif op == "/":
                    data = self._divide(a, b, result_type)
                else:
                    raise GlslRuntimeError(
                        f"unhandled arithmetic operator '{op}'"
                    )

        if result_type.is_float_based():
            data = self.fmodel.quantize(data)
        elif result_type.is_int_based() and data.dtype != INT_DTYPE:
            data = data.astype(INT_DTYPE)
        self._count("alu", flops)
        return Value(result_type, data)

    @staticmethod
    def _align_operands(left: Value, right: Value):
        """Reshape scalar operands so they broadcast against vectors
        and matrices."""
        a, b = left.data, right.data
        if a.ndim < b.ndim:
            a = a.reshape(a.shape + (1,) * (b.ndim - a.ndim))
        elif b.ndim < a.ndim:
            b = b.reshape(b.shape + (1,) * (a.ndim - b.ndim))
        return a, b

    @staticmethod
    def _divide(a: np.ndarray, b: np.ndarray, result_type: GlslType) -> np.ndarray:
        if result_type.is_int_based():
            # C-style truncation toward zero; divide-by-zero yields 0
            # (the GL spec leaves it undefined).
            with np.errstate(divide="ignore", invalid="ignore"):
                quotient = np.where(b != 0, a / np.where(b == 0, 1, b), 0.0)
            return np.trunc(quotient).astype(INT_DTYPE)
        with np.errstate(divide="ignore", invalid="ignore"):
            return a / b

    # -- assignment -----------------------------------------------------
    def _eval_assignment(self, expr: ast.Assignment) -> Value:
        ref = self._resolve_lvalue(expr.target)
        value = self.eval(expr.value)
        if expr.op != "=":
            old = ref.read()
            value = self._eval_arith(expr.op[0], old, value, expr.resolved_type)
        ref.write(value, self.exec_mask)
        return value

    # -- conditional ----------------------------------------------------
    def _eval_conditional(self, expr: ast.Conditional) -> Value:
        cond = self._broadcast_mask(self.eval(expr.condition).data)
        saved = self.exec_mask
        true_mask = saved & cond
        false_mask = saved & ~cond

        # Uniform fast path.
        if not false_mask.any():
            return self.eval(expr.if_true)
        if not true_mask.any():
            return self.eval(expr.if_false)

        self.exec_mask = true_mask
        try:
            v_true = self.eval(expr.if_true)
        finally:
            self.exec_mask = saved
        self.exec_mask = false_mask
        try:
            v_false = self.eval(expr.if_false)
        finally:
            self.exec_mask = saved

        return self._blend(v_true, v_false, cond)

    def _blend(self, v_true: Value, v_false: Value, cond: np.ndarray) -> Value:
        if v_true.fields is not None:
            return Value(
                v_true.type,
                fields={
                    k: self._blend(v_true.fields[k], v_false.fields[k], cond)
                    for k in v_true.fields
                },
            )
        data = masked_blend(v_false.data, v_true.data, cond)
        return Value(v_true.type, data)

    # -- comma ----------------------------------------------------------
    def _eval_comma(self, expr: ast.CommaExpr) -> Value:
        self.eval(expr.left)
        return self.eval(expr.right)

    # -- calls ----------------------------------------------------------
    def _eval_call(self, expr: ast.Call) -> Value:
        if expr.is_constructor:
            return self._eval_constructor(expr)
        if expr.is_builtin:
            return self._eval_builtin(expr)
        func = self.checked.functions.get(expr.resolved_signature)
        if func is None or func.body is None:
            raise GlslRuntimeError(
                f"call to undefined function '{expr.resolved_signature}'"
            )
        args = [self.eval(a) for a in expr.args]
        result = self._call(func, args, arg_exprs=expr.args)
        if result is None:
            return Value(expr.resolved_type)
        return result

    def _eval_builtin(self, expr: ast.Call) -> Value:
        overload = bi.OVERLOADS_BY_KEY[expr.resolved_signature]
        args = [self.eval(a) for a in expr.args]
        return self._apply_builtin(overload, args, expr.resolved_type)

    def _apply_builtin(self, overload, args: List[Value], out_type: GlslType) -> Value:
        """Apply one builtin overload to already-evaluated argument
        Values (shared with the IR executor)."""
        if overload.name in bi.TEXTURE_BUILTINS:
            return self._eval_texture(overload, args, out_type)

        n = batch_of(*args) if args else 1
        datas = []
        for arg in args:
            data = arg.data
            if data.shape[0] not in (1, n):
                raise GlslRuntimeError("builtin argument batch mismatch")
            datas.append(data)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            result = overload.impl(*datas)
        result = np.asarray(result)
        if out_type.is_float_based():
            result = self.fmodel.quantize(result.astype(self.fmodel.dtype), overload.category)
        elif out_type.is_int_based():
            result = result.astype(INT_DTYPE)
        elif out_type.is_bool_based():
            result = result.astype(bool)
        self._count(overload.category, out_type.component_count())
        return Value(out_type, result)

    def _eval_texture(self, overload, args: List[Value], out_type: GlslType) -> Value:
        sampler = args[0].sampler
        coords = args[1].data.astype(np.float64)
        if sampler is None:
            # Unbound sampler = texture object 0 = incomplete texture:
            # GL defines the sample as opaque black.
            n = coords.shape[0]
            texels = np.zeros((n, 4), dtype=self.fmodel.dtype)
            texels[:, 3] = 1.0
            self._count("tex")
            return Value(out_type, texels)
        if overload.impl == "texture2DProj3":
            coords = coords[:, :2] / coords[:, 2:3]
        elif overload.impl == "texture2DProj4":
            coords = coords[:, :2] / coords[:, 3:4]
        elif overload.impl == "textureCube":
            texels = sampler.sample_cube(coords)
            self._count("tex")
            return Value(out_type, self.fmodel.quantize(
                texels.astype(self.fmodel.dtype), "tex"))
        texels = sampler.sample(coords[:, 0], coords[:, 1])
        self._count("tex")
        return Value(out_type, self.fmodel.quantize(
            texels.astype(self.fmodel.dtype), "tex"))

    # -- constructors ----------------------------------------------------
    def _eval_constructor(self, expr: ast.Call) -> Value:
        target = expr.constructed_type
        args = [self.eval(a) for a in expr.args]
        return self._construct(target, args)

    def _construct(self, target: GlslType, args: List[Value]) -> Value:
        """Apply a constructor to already-evaluated argument Values
        (shared with the IR executor)."""
        if target.is_struct():
            fields = {}
            for (fname, __), arg in zip(target.fields, args):
                fields[fname] = arg.clone()
            return Value(target, fields=fields)

        self._count("alu", target.component_count())
        if target.is_scalar():
            return Value(target, self._convert_base(
                args[0].data.reshape(args[0].data.shape[0], -1)[:, 0],
                target.base,
            ))
        if target.is_vector():
            if len(args) == 1 and args[0].type.is_scalar():
                n = args[0].batch
                splat = np.repeat(
                    self._convert_base(args[0].data, target.base)[:, None],
                    target.size,
                    axis=1,
                )
                return Value(target, splat)
            flat = flatten_components(args)[:, : target.size]
            return Value(target, self._convert_base(flat, target.base))
        if target.is_matrix():
            k = target.size
            if len(args) == 1 and args[0].type.is_scalar():
                n = args[0].batch
                data = np.zeros((n, k, k), dtype=self.fmodel.dtype)
                diag = self._convert_base(args[0].data, BaseType.FLOAT)
                for i in range(k):
                    data[:, i, i] = diag
                return Value(target, data)
            flat = self._convert_base(flatten_components(args), BaseType.FLOAT)
            n = flat.shape[0]
            return Value(target, flat.reshape(n, k, k))
        raise GlslRuntimeError(f"cannot construct {target}")

    def _convert_base(self, data: np.ndarray, base: str) -> np.ndarray:
        if base == BaseType.FLOAT:
            if data.dtype == bool:
                return data.astype(self.fmodel.dtype)
            return data.astype(self.fmodel.dtype)
        if base == BaseType.INT:
            if data.dtype == bool:
                return data.astype(INT_DTYPE)
            # float -> int truncates toward zero (spec §5.4.1).
            return np.trunc(data).astype(INT_DTYPE) if np.issubdtype(
                data.dtype, np.floating
            ) else data.astype(INT_DTYPE)
        # bool: zero -> false, nonzero -> true.
        return data != 0

    # -- field access / swizzle / index -----------------------------------
    def _eval_field(self, expr: ast.FieldAccess) -> Value:
        base = self.eval(expr.base)
        if base.fields is not None:
            return base.fields[expr.field_name]
        indices = expr.swizzle
        if len(indices) == 1:
            return Value(expr.resolved_type, base.data[:, indices[0]])
        return Value(expr.resolved_type, base.data[:, list(indices)])

    def _eval_index(self, expr: ast.IndexAccess) -> Value:
        base = self.eval(expr.base)
        index = self.eval(expr.index)
        return self._index_value(base, index, expr.resolved_type)

    def _index_value(self, base: Value, index: Value, out_type: GlslType) -> Value:
        idx = index.data
        if base.fields is not None:
            # Array of structs: require a uniform index.
            unique = np.unique(idx[self.exec_mask[: idx.shape[0]]] if idx.shape[0] == self.n else idx)
            if unique.size > 1:
                raise GlslRuntimeError(
                    "dynamic indexing of struct arrays requires a uniform index"
                )
            return base.fields[str(int(unique[0]) if unique.size else 0)]
        data = base.data
        n = max(data.shape[0], idx.shape[0])
        if data.shape[0] != n:
            data = np.broadcast_to(data, (n,) + data.shape[1:])
        if idx.shape[0] != n:
            idx = np.broadcast_to(idx, (n,))
        idx = np.clip(idx, 0, data.shape[1] - 1)
        if np.all(idx == idx.flat[0]):
            return Value(out_type, data[:, int(idx.flat[0])].copy())
        expand = idx.reshape((n,) + (1,) * (data.ndim - 1))
        expand = np.broadcast_to(expand, (n, 1) + data.shape[2:])
        gathered = np.take_along_axis(data, expand, axis=1)[:, 0]
        return Value(out_type, gathered)

    # ==================================================================
    # L-values
    # ==================================================================
    def _resolve_lvalue(self, expr: ast.Expr) -> "_LValueRef":
        if isinstance(expr, ast.Identifier):
            return _VarRef(self, self._lookup(expr.name))
        if isinstance(expr, ast.FieldAccess):
            parent = self._resolve_lvalue(expr.base)
            if expr.swizzle is not None:
                return _SwizzleRef(self, parent, expr.swizzle, expr.resolved_type)
            return _FieldRef(self, parent, expr.field_name)
        if isinstance(expr, ast.IndexAccess):
            parent = self._resolve_lvalue(expr.base)
            index = self.eval(expr.index)
            return _IndexRef(self, parent, index.data, expr.resolved_type)
        raise GlslRuntimeError("expression is not an l-value")

    _DISPATCH: Dict[type, Callable] = {}


Interpreter._DISPATCH = {
    ast.IntLiteral: Interpreter._eval_int,
    ast.FloatLiteral: Interpreter._eval_float,
    ast.BoolLiteral: Interpreter._eval_bool,
    ast.Identifier: Interpreter._eval_ident,
    ast.UnaryOp: Interpreter._eval_unary,
    ast.PrefixIncDec: Interpreter._eval_incdec,
    ast.PostfixIncDec: Interpreter._eval_incdec,
    ast.BinaryOp: Interpreter._eval_binary,
    ast.Assignment: Interpreter._eval_assignment,
    ast.Conditional: Interpreter._eval_conditional,
    ast.Call: Interpreter._eval_call,
    ast.FieldAccess: Interpreter._eval_field,
    ast.IndexAccess: Interpreter._eval_index,
    ast.CommaExpr: Interpreter._eval_comma,
}


# ======================================================================
# L-value reference objects
# ======================================================================
class _LValueRef:
    """A resolved assignment destination.  ``read`` returns the current
    value; ``write`` performs a masked store."""

    def read(self) -> Value:
        raise NotImplementedError

    def write(self, value: Value, mask: np.ndarray) -> None:
        raise NotImplementedError


class _VarRef(_LValueRef):
    def __init__(self, interp: Interpreter, storage: Value):
        self.interp = interp
        self.storage = storage

    def read(self) -> Value:
        return self.storage

    def write(self, value: Value, mask: np.ndarray) -> None:
        assign_masked(self.storage, value, mask)


class _FieldRef(_LValueRef):
    def __init__(self, interp: Interpreter, parent: _LValueRef, name: str):
        self.interp = interp
        self.parent = parent
        self.name = name

    def read(self) -> Value:
        return self.parent.read().fields[self.name]

    def write(self, value: Value, mask: np.ndarray) -> None:
        assign_masked(self.parent.read().fields[self.name], value, mask)


class _SwizzleRef(_LValueRef):
    def __init__(self, interp, parent: _LValueRef, indices, out_type: GlslType):
        self.interp = interp
        self.parent = parent
        self.indices = indices
        self.out_type = out_type
        if len(set(indices)) != len(indices):
            raise GlslRuntimeError("cannot write through a swizzle with "
                                   "repeated components")

    def read(self) -> Value:
        base = self.parent.read()
        if len(self.indices) == 1:
            return Value(self.out_type, base.data[:, self.indices[0]])
        return Value(self.out_type, base.data[:, list(self.indices)])

    def write(self, value: Value, mask: np.ndarray) -> None:
        base = self.parent.read()
        n = max(base.data.shape[0], value.data.shape[0], mask.shape[0])
        data = broadcast_lanes(base.data, n).copy()
        incoming = value.data
        if incoming.shape[0] != n:
            incoming = np.broadcast_to(incoming, (n,) + incoming.shape[1:])
        if len(self.indices) == 1:
            col = data[:, self.indices[0]]
            data[:, self.indices[0]] = np.where(mask, incoming, col)
        else:
            for slot, component in enumerate(self.indices):
                col = data[:, component]
                data[:, component] = np.where(mask, incoming[:, slot], col)
        self.parent.write(Value(base.type, data), np.ones(n, dtype=bool))


class _IndexRef(_LValueRef):
    def __init__(self, interp, parent: _LValueRef, index_data: np.ndarray,
                 out_type: GlslType):
        self.interp = interp
        self.parent = parent
        self.index = index_data
        self.out_type = out_type

    def read(self) -> Value:
        base = self.parent.read()
        return self.interp._index_value(
            base, Value(INT, self.index), self.out_type
        )

    def write(self, value: Value, mask: np.ndarray) -> None:
        base = self.parent.read()
        if base.fields is not None:
            unique = np.unique(self.index)
            if unique.size > 1:
                raise GlslRuntimeError(
                    "dynamic store to a struct array requires a uniform index"
                )
            assign_masked(base.fields[str(int(unique[0]))], value, mask)
            return
        n = max(base.data.shape[0], value.data.shape[0], mask.shape[0],
                self.index.shape[0])
        data = broadcast_lanes(base.data, n).copy()
        idx = self.index
        if idx.shape[0] != n:
            idx = np.broadcast_to(idx, (n,))
        idx = np.clip(idx, 0, data.shape[1] - 1)
        incoming = value.data
        if incoming.shape[0] != n:
            incoming = np.broadcast_to(incoming, (n,) + incoming.shape[1:])
        if np.all(idx == idx.flat[0]):
            slot = int(idx.flat[0])
            current = data[:, slot]
            data[:, slot] = masked_blend(current, incoming, mask)
        else:
            expand = idx.reshape((n, 1) + (1,) * (data.ndim - 2))
            expand = np.broadcast_to(expand, (n, 1) + data.shape[2:])
            current = np.take_along_axis(data, expand, axis=1)[:, 0]
            blended = masked_blend(current, incoming, mask)
            np.put_along_axis(data, expand, blended[:, None], axis=1)
        self.parent.write(Value(base.type, data), np.ones(n, dtype=bool))


def compile_shader(source: str, stage: str) -> CheckedShader:
    """Convenience: preprocess, parse and type-check a shader."""
    from .parser import parse
    from .preprocessor import preprocess

    preprocessed = preprocess(source)
    unit = parse(preprocessed.source)
    from .typecheck import check

    return check(unit, stage)
