"""Tokeniser for GLSL ES 1.00 source.

Operates on *preprocessed* source (see :mod:`repro.glsl.preprocessor`)
but tolerates raw source too, since ``#`` directives are stripped
earlier.  Tracks line/column for every token so later stages can
produce driver-style info logs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from .errors import GlslSyntaxError


class TokenType:
    """Token categories."""

    IDENT = "ident"
    KEYWORD = "keyword"
    INTCONST = "intconst"
    FLOATCONST = "floatconst"
    BOOLCONST = "boolconst"
    OP = "op"
    EOF = "eof"


#: Keywords of GLSL ES 1.00 (spec §3.6).
KEYWORDS = frozenset(
    """
    attribute const uniform varying
    break continue do for while
    if else
    in out inout
    float int void bool true false
    lowp mediump highp precision invariant
    discard return
    mat2 mat3 mat4
    vec2 vec3 vec4 ivec2 ivec3 ivec4 bvec2 bvec3 bvec4
    sampler2D samplerCube
    struct
    """.split()
)

#: Words reserved for future use — using one is a compile-time error
#: (spec §3.6).  A representative subset.
RESERVED = frozenset(
    """
    asm class union enum typedef template this packed goto switch default
    inline noinline volatile public static extern external interface flat
    long short double half fixed unsigned superp input output
    hvec2 hvec3 hvec4 dvec2 dvec3 dvec4 fvec2 fvec3 fvec4
    sampler1D sampler3D sampler1DShadow sampler2DShadow sampler2DRect
    sampler3DRect sampler2DRectShadow
    sizeof cast namespace using
    """.split()
)

#: Multi-character operators, longest first so the scanner is greedy.
OPERATORS = [
    "<<=", ">>=",
    "++", "--", "<=", ">=", "==", "!=", "&&", "||", "^^",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>",
    "(", ")", "[", "]", "{", "}",
    ".", ",", ";", ":", "?",
    "+", "-", "*", "/", "%",
    "<", ">", "=", "!", "&", "|", "^", "~",
]

_FLOAT_RE = re.compile(
    r"""
    (?:
        \d+\.\d*(?:[eE][+-]?\d+)?   # 1. , 1.5 , 1.5e3
      | \.\d+(?:[eE][+-]?\d+)?     # .5 , .5e-2
      | \d+[eE][+-]?\d+            # 1e3
    )
    """,
    re.VERBOSE,
)
_HEX_RE = re.compile(r"0[xX][0-9a-fA-F]+")
_OCT_RE = re.compile(r"0[0-7]*")
_DEC_RE = re.compile(r"\d+")
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    type: str
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type}, {self.value!r}, {self.line}:{self.column})"


def strip_comments(source: str) -> str:
    """Replace comments with whitespace, preserving line structure.

    Block comments keep their newlines so positions stay accurate;
    everything else inside a comment becomes a single space (spec:
    comments are replaced by one space).
    """
    out: List[str] = []
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        nxt = source[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            j = source.find("\n", i)
            if j == -1:
                j = n
            out.append(" ")
            i = j
        elif ch == "/" and nxt == "*":
            j = source.find("*/", i + 2)
            if j == -1:
                raise GlslSyntaxError(
                    "unterminated block comment",
                    line=source.count("\n", 0, i) + 1,
                )
            body = source[i : j + 2]
            out.append(" " + "\n" * body.count("\n"))
            i = j + 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def tokenize(source: str) -> List[Token]:
    """Tokenise GLSL source into a token list ending with an EOF token."""
    return list(_scan(strip_comments(source)))


def _scan(text: str) -> Iterator[Token]:
    line = 1
    line_start = 0
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r\f\v":
            i += 1
            continue
        col = i - line_start + 1

        m = _IDENT_RE.match(text, i)
        if m:
            word = m.group()
            if word in ("true", "false"):
                yield Token(TokenType.BOOLCONST, word, line, col)
            elif word in KEYWORDS:
                yield Token(TokenType.KEYWORD, word, line, col)
            elif word in RESERVED:
                raise GlslSyntaxError(
                    f"'{word}' is a reserved word", line=line, column=col
                )
            elif "__" in word:
                raise GlslSyntaxError(
                    f"identifier '{word}' contains a double underscore "
                    "(reserved)",
                    line=line,
                    column=col,
                )
            else:
                yield Token(TokenType.IDENT, word, line, col)
            i = m.end()
            continue

        m = _FLOAT_RE.match(text, i)
        if m:
            yield Token(TokenType.FLOATCONST, m.group(), line, col)
            i = m.end()
            continue

        m = _HEX_RE.match(text, i)
        if m:
            yield Token(TokenType.INTCONST, m.group(), line, col)
            i = m.end()
            continue

        if ch == "0":
            m = _OCT_RE.match(text, i)
            yield Token(TokenType.INTCONST, m.group(), line, col)
            i = m.end()
            continue

        m = _DEC_RE.match(text, i)
        if m:
            yield Token(TokenType.INTCONST, m.group(), line, col)
            i = m.end()
            continue

        for op in OPERATORS:
            if text.startswith(op, i):
                yield Token(TokenType.OP, op, line, col)
                i += len(op)
                break
        else:
            raise GlslSyntaxError(
                f"unexpected character {ch!r}", line=line, column=col
            )
    yield Token(TokenType.EOF, "", line, 1)


def int_literal_value(text: str) -> int:
    """Decode a GLSL integer literal (decimal, octal or hex)."""
    if text.lower().startswith("0x"):
        return int(text, 16)
    if text.startswith("0") and len(text) > 1:
        return int(text, 8)
    return int(text, 10)
