"""Semantic analysis for GLSL ES 1.00 shaders.

Runs at ``glCompileShader`` time.  Responsibilities:

* build symbol tables (structs, globals, overloaded functions),
* annotate every expression node with its resolved type,
* enforce the ES-specific rules the paper's techniques must respect:
  **no implicit conversions** (§4.1.10), reserved operators (``%``,
  shifts, bitwise ops, ``~``) are compile-time errors, attributes are
  vertex-only, samplers are uniform-only, recursion is forbidden
  (Appendix A),
* resolve calls to user functions (exact-match overloading) and
  built-ins (:mod:`repro.glsl.builtins`),
* validate l-values (no writes to const/attribute/uniform, no writes
  to varyings in fragment shaders, no duplicate swizzle writes),
* fold constant expressions for array sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from . import ast_nodes as ast
from . import builtins as bi
from .errors import GlslTypeError
from .types import (
    BOOL,
    BUILTIN_TYPE_NAMES,
    FLOAT,
    INT,
    VEC2,
    VEC4,
    BaseType,
    GlslType,
    TypeKind,
    array_of,
    scalar_type,
    swizzle_indices,
    vector_type,
)


class ShaderStage:
    VERTEX = "vertex"
    FRAGMENT = "fragment"


#: Operators reserved by GLSL ES 1.00 §5.1 — parsing succeeds, semantic
#: analysis rejects them with a targeted message.
RESERVED_OPS = {"%", "<<", ">>", "&", "|", "^", "~", "%=", "<<=", ">>=", "&=", "|=", "^="}


@dataclass
class GlobalSymbol:
    """One global-scope variable."""

    name: str
    type: GlslType
    #: 'attribute' | 'uniform' | 'varying' | 'const' | 'global' | 'builtin'
    qualifier: str
    writable: bool = True
    initializer: Optional[ast.Expr] = None
    precision: Optional[str] = None
    #: For built-ins: which stages may access it.
    stages: Tuple[str, ...] = (ShaderStage.VERTEX, ShaderStage.FRAGMENT)


@dataclass
class CheckedShader:
    """Output of :func:`check` — everything later stages need."""

    stage: str
    unit: ast.TranslationUnit
    globals: Dict[str, GlobalSymbol] = field(default_factory=dict)
    #: mangled signature -> FunctionDef (bodies only; prototypes merged)
    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    structs: Dict[str, GlslType] = field(default_factory=dict)
    has_main: bool = False
    #: Built-in variables the shader statically writes (gl_Position,
    #: gl_FragColor, gl_FragData, ...).
    written_builtins: Set[str] = field(default_factory=set)

    def active_uniforms(self) -> List[GlobalSymbol]:
        return [g for g in self.globals.values() if g.qualifier == "uniform"]

    def active_attributes(self) -> List[GlobalSymbol]:
        return [g for g in self.globals.values() if g.qualifier == "attribute"]

    def varyings(self) -> List[GlobalSymbol]:
        return [g for g in self.globals.values() if g.qualifier == "varying"]


def _builtin_globals(stage: str) -> Dict[str, GlobalSymbol]:
    """The built-in variables of each stage (spec §7)."""
    symbols = {}

    def add(name, gtype, writable, stages):
        symbols[name] = GlobalSymbol(
            name=name, type=gtype, qualifier="builtin", writable=writable, stages=stages
        )

    if stage == ShaderStage.VERTEX:
        add("gl_Position", VEC4, True, (ShaderStage.VERTEX,))
        add("gl_PointSize", FLOAT, True, (ShaderStage.VERTEX,))
    else:
        add("gl_FragCoord", VEC4, False, (ShaderStage.FRAGMENT,))
        add("gl_FrontFacing", BOOL, False, (ShaderStage.FRAGMENT,))
        add("gl_PointCoord", VEC2, False, (ShaderStage.FRAGMENT,))
        add("gl_FragColor", VEC4, True, (ShaderStage.FRAGMENT,))
        # OpenGL ES 2 mandates gl_MaxDrawBuffers >= 1; VideoCore IV
        # exposes exactly 1, which is limitation (8) in the paper.
        add("gl_FragData", array_of(VEC4, 1), True, (ShaderStage.FRAGMENT,))

    # Built-in constants (spec §7.4) with ES 2 minimum values.
    for name, value in [
        ("gl_MaxVertexAttribs", 8),
        ("gl_MaxVertexUniformVectors", 128),
        ("gl_MaxVaryingVectors", 8),
        ("gl_MaxVertexTextureImageUnits", 0),
        ("gl_MaxCombinedTextureImageUnits", 8),
        ("gl_MaxTextureImageUnits", 8),
        ("gl_MaxFragmentUniformVectors", 16),
        ("gl_MaxDrawBuffers", 1),
    ]:
        sym = GlobalSymbol(name=name, type=INT, qualifier="const", writable=False)
        sym.initializer = ast.IntLiteral(value=value, resolved_type=INT, is_constant=True)
        symbols[name] = sym
    return symbols


def check(unit: ast.TranslationUnit, stage: str) -> CheckedShader:
    """Type-check a parsed shader for the given stage."""
    checker = _Checker(unit, stage)
    checker.run()
    return checker.result


def mangle(name: str, param_types: List[GlslType]) -> str:
    """Overload-resolution key for user functions."""
    return name + "(" + ",".join(t.glsl_name() for t in param_types) + ")"


class _Scope:
    """One lexical scope of local variables."""

    def __init__(self):
        self.vars: Dict[str, Tuple[GlslType, bool]] = {}  # name -> (type, writable)


class _Checker:
    def __init__(self, unit: ast.TranslationUnit, stage: str):
        self.unit = unit
        self.stage = stage
        self.result = CheckedShader(stage=stage, unit=unit)
        self.result.globals.update(_builtin_globals(stage))
        self.scopes: List[_Scope] = []
        self.current_function: Optional[ast.FunctionDef] = None
        self.loop_depth = 0
        #: caller mangled name -> set of callee mangled names
        self.call_graph: Dict[str, Set[str]] = {}
        self._current_caller: Optional[str] = None

    # ------------------------------------------------------------------
    def error(self, message: str, node: ast.Node) -> GlslTypeError:
        return GlslTypeError(message, line=getattr(node, "line", 0))

    def run(self) -> None:
        for decl in self.unit.declarations:
            if isinstance(decl, ast.PrecisionDecl):
                continue
            if isinstance(decl, ast.StructDef):
                self.result.structs[decl.name] = decl.resolved
                continue
            if isinstance(decl, ast.GlobalDecl):
                self.check_global_decl(decl)
                continue
            if isinstance(decl, ast.FunctionDef):
                self.check_function(decl)
                continue
            raise self.error(f"unexpected declaration {type(decl).__name__}", decl)
        if not self.result.has_main:
            raise GlslTypeError("missing main() entry point", line=0)
        self._check_no_recursion()

    # ------------------------------------------------------------------
    # Globals
    # ------------------------------------------------------------------
    def resolve_type_name(self, name: str, node: ast.Node) -> GlslType:
        if name in BUILTIN_TYPE_NAMES:
            return BUILTIN_TYPE_NAMES[name]
        if name in self.result.structs:
            return self.result.structs[name]
        raise self.error(f"unknown type '{name}'", node)

    def check_global_decl(self, decl: ast.GlobalDecl) -> None:
        base = decl.struct or self.resolve_type_name(decl.type_name, decl)
        if isinstance(decl.struct, GlslType):
            self.result.structs.setdefault(decl.struct.name, decl.struct)
        qualifier = decl.qualifier or ("const" if decl.is_const else "global")

        if qualifier == "attribute":
            if self.stage != ShaderStage.VERTEX:
                raise self.error("attributes are only allowed in vertex shaders", decl)
            if not base.is_float_based():
                raise self.error(
                    f"attribute must be float-based, got {base}", decl
                )
        if base.is_sampler() and qualifier != "uniform":
            raise self.error("sampler variables must be uniforms", decl)
        if qualifier == "varying" and not (
            base.is_float_based()
            or (base.is_array() and base.element.is_float_based())
        ):
            raise self.error(f"varying must be float-based, got {base}", decl)

        for declarator in decl.declarators:
            gtype = base
            if declarator.array_size is not None:
                gtype = array_of(base, self.const_int(declarator.array_size))
            declarator.resolved_type = gtype
            if declarator.name in self.result.globals:
                existing = self.result.globals[declarator.name]
                if existing.qualifier == "builtin":
                    raise self.error(
                        f"cannot redeclare built-in '{declarator.name}'", decl
                    )
                raise self.error(f"redefinition of '{declarator.name}'", decl)
            if declarator.initializer is not None:
                if qualifier in ("attribute", "uniform", "varying"):
                    raise self.error(
                        f"{qualifier} '{declarator.name}' cannot have an "
                        "initializer",
                        decl,
                    )
                init_type = self.check_expr(declarator.initializer)
                if init_type != gtype:
                    raise self.error(
                        f"initializer type {init_type} does not match "
                        f"declared type {gtype} (GLSL ES has no implicit "
                        "conversions)",
                        decl,
                    )
            elif qualifier == "const":
                raise self.error(
                    f"const '{declarator.name}' requires an initializer", decl
                )
            self.result.globals[declarator.name] = GlobalSymbol(
                name=declarator.name,
                type=gtype,
                qualifier=qualifier,
                writable=qualifier in ("global", "varying", "builtin"),
                initializer=declarator.initializer,
                precision=decl.precision,
            )

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------
    def check_function(self, func: ast.FunctionDef) -> None:
        func.resolved_return_type = self.resolve_type_name(func.return_type_name, func)
        param_types: List[GlslType] = []
        for param in func.params:
            ptype = self.resolve_type_name(param.type_name, param)
            if param.array_size is not None:
                ptype = array_of(ptype, self.const_int(param.array_size))
            if ptype.is_sampler() and param.direction != "in":
                raise self.error("sampler parameters must be 'in'", param)
            param.resolved_type = ptype
            param_types.append(ptype)
        key = mangle(func.name, param_types)

        if bi.is_builtin(func.name):
            raise self.error(
                f"cannot redefine built-in function '{func.name}'", func
            )
        existing = self.result.functions.get(key)
        if func.body is None:
            # Prototype: record if not already defined.
            self.result.functions.setdefault(key, func)
            return
        if existing is not None and existing.body is not None:
            raise self.error(f"redefinition of function '{key}'", func)
        self.result.functions[key] = func
        if func.name == "main":
            if param_types or func.resolved_return_type.kind != TypeKind.VOID:
                raise self.error("main must be declared as 'void main()'", func)
            self.result.has_main = True

        # Check the body in a fresh scope seeded with parameters.
        self.current_function = func
        self._current_caller = key
        self.call_graph.setdefault(key, set())
        scope = _Scope()
        for param in func.params:
            if param.name:
                scope.vars[param.name] = (param.resolved_type, not param.is_const)
        self.scopes.append(scope)
        self.check_stmt(func.body)
        self.scopes.pop()
        self.current_function = None
        self._current_caller = None

    def _check_no_recursion(self) -> None:
        """Appendix A: static recursion is disallowed."""
        graph = self.call_graph
        visiting: Set[str] = set()
        done: Set[str] = set()

        def visit(node: str) -> None:
            if node in done:
                return
            if node in visiting:
                raise GlslTypeError(
                    f"recursion detected involving '{node}' "
                    "(forbidden by GLSL ES Appendix A)",
                    line=0,
                )
            visiting.add(node)
            for callee in graph.get(node, ()):
                visit(callee)
            visiting.discard(node)
            done.add(node)

        for key in graph:
            visit(key)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.CompoundStmt):
            self.scopes.append(_Scope())
            for inner in stmt.statements:
                self.check_stmt(inner)
            self.scopes.pop()
        elif isinstance(stmt, ast.DeclStmt):
            self.check_local_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.check_expr(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            cond = self.check_expr(stmt.condition)
            if cond != BOOL:
                raise self.error(f"if condition must be bool, got {cond}", stmt)
            self.check_stmt(stmt.then_branch)
            if stmt.else_branch is not None:
                self.check_stmt(stmt.else_branch)
        elif isinstance(stmt, ast.ForStmt):
            self.scopes.append(_Scope())
            if stmt.init is not None:
                self.check_stmt(stmt.init)
            if stmt.condition is not None:
                cond = self.check_expr(stmt.condition)
                if cond != BOOL:
                    raise self.error(f"loop condition must be bool, got {cond}", stmt)
            if stmt.update is not None:
                self.check_expr(stmt.update)
            self.loop_depth += 1
            self.check_stmt(stmt.body)
            self.loop_depth -= 1
            self.scopes.pop()
        elif isinstance(stmt, (ast.WhileStmt, ast.DoWhileStmt)):
            cond = self.check_expr(stmt.condition)
            if cond != BOOL:
                raise self.error(f"loop condition must be bool, got {cond}", stmt)
            self.loop_depth += 1
            self.check_stmt(stmt.body)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.ReturnStmt):
            if self.current_function is None:
                raise self.error("return outside a function", stmt)
            expected = self.current_function.resolved_return_type
            if stmt.value is None:
                if not expected.is_void():
                    raise self.error(
                        f"return without value in function returning {expected}",
                        stmt,
                    )
            else:
                actual = self.check_expr(stmt.value)
                if actual != expected:
                    raise self.error(
                        f"return type {actual} does not match declared {expected}",
                        stmt,
                    )
        elif isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            if self.loop_depth == 0:
                kind = "break" if isinstance(stmt, ast.BreakStmt) else "continue"
                raise self.error(f"'{kind}' outside a loop", stmt)
        elif isinstance(stmt, ast.DiscardStmt):
            if self.stage != ShaderStage.FRAGMENT:
                raise self.error("'discard' is only valid in fragment shaders", stmt)
        else:
            raise self.error(f"unhandled statement {type(stmt).__name__}", stmt)

    def check_local_decl(self, decl: ast.DeclStmt) -> None:
        base = decl.struct or self.resolve_type_name(decl.type_name, decl)
        for declarator in decl.declarators:
            gtype = base
            if declarator.array_size is not None:
                gtype = array_of(base, self.const_int(declarator.array_size))
            declarator.resolved_type = gtype
            if declarator.initializer is not None:
                init_type = self.check_expr(declarator.initializer)
                if init_type != gtype:
                    raise self.error(
                        f"cannot initialise {gtype} '{declarator.name}' from "
                        f"{init_type} (no implicit conversions)",
                        decl,
                    )
            elif decl.is_const:
                raise self.error(
                    f"const '{declarator.name}' requires an initializer", decl
                )
            scope = self.scopes[-1]
            if declarator.name in scope.vars:
                raise self.error(
                    f"redefinition of '{declarator.name}' in the same scope", decl
                )
            scope.vars[declarator.name] = (gtype, not decl.is_const)

    # ------------------------------------------------------------------
    # Name lookup
    # ------------------------------------------------------------------
    def lookup(self, name: str, node: ast.Node) -> Tuple[GlslType, bool]:
        """Returns (type, writable)."""
        for scope in reversed(self.scopes):
            if name in scope.vars:
                return scope.vars[name]
        symbol = self.result.globals.get(name)
        if symbol is not None:
            if symbol.qualifier == "builtin" and self.stage not in symbol.stages:
                raise self.error(
                    f"'{name}' is not available in {self.stage} shaders", node
                )
            writable = symbol.writable
            if symbol.qualifier == "varying":
                writable = self.stage == ShaderStage.VERTEX
            if symbol.qualifier in ("attribute", "uniform", "const"):
                writable = False
            return symbol.type, writable
        raise self.error(f"undeclared identifier '{name}'", node)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def check_expr(self, expr: ast.Expr) -> GlslType:
        result = self._check_expr_inner(expr)
        expr.resolved_type = result
        return result

    def _check_expr_inner(self, expr: ast.Expr) -> GlslType:
        if isinstance(expr, ast.IntLiteral):
            expr.is_constant = True
            return INT
        if isinstance(expr, ast.FloatLiteral):
            expr.is_constant = True
            return FLOAT
        if isinstance(expr, ast.BoolLiteral):
            expr.is_constant = True
            return BOOL
        if isinstance(expr, ast.Identifier):
            gtype, __ = self.lookup(expr.name, expr)
            return gtype
        if isinstance(expr, ast.UnaryOp):
            return self.check_unary(expr)
        if isinstance(expr, (ast.PrefixIncDec, ast.PostfixIncDec)):
            self.require_lvalue(expr.operand)
            optype = self.check_expr(expr.operand)
            if not optype.is_numeric():
                raise self.error(f"cannot apply '{expr.op}' to {optype}", expr)
            return optype
        if isinstance(expr, ast.BinaryOp):
            return self.check_binary(expr)
        if isinstance(expr, ast.Assignment):
            return self.check_assignment(expr)
        if isinstance(expr, ast.Conditional):
            cond = self.check_expr(expr.condition)
            if cond != BOOL:
                raise self.error(f"?: condition must be bool, got {cond}", expr)
            t_true = self.check_expr(expr.if_true)
            t_false = self.check_expr(expr.if_false)
            if t_true != t_false:
                raise self.error(
                    f"?: branches have different types ({t_true} vs {t_false})",
                    expr,
                )
            return t_true
        if isinstance(expr, ast.Call):
            return self.check_call(expr)
        if isinstance(expr, ast.FieldAccess):
            return self.check_field_access(expr)
        if isinstance(expr, ast.IndexAccess):
            return self.check_index(expr)
        if isinstance(expr, ast.CommaExpr):
            self.check_expr(expr.left)
            return self.check_expr(expr.right)
        raise self.error(f"unhandled expression {type(expr).__name__}", expr)

    def check_unary(self, expr: ast.UnaryOp) -> GlslType:
        if expr.op == "~":
            raise self.error("operator '~' is reserved in GLSL ES 1.00", expr)
        optype = self.check_expr(expr.operand)
        if expr.op == "!":
            if optype != BOOL:
                raise self.error(f"'!' requires bool, got {optype}", expr)
            return BOOL
        if not optype.is_numeric():
            raise self.error(f"cannot apply unary '{expr.op}' to {optype}", expr)
        return optype

    def check_binary(self, expr: ast.BinaryOp) -> GlslType:
        if expr.op in RESERVED_OPS:
            raise self.error(
                f"operator '{expr.op}' is reserved in GLSL ES 1.00 "
                "(integer modulo/bitwise ops are not available — the "
                "paper's transformations use floor()/mod() instead)",
                expr,
            )
        left = self.check_expr(expr.left)
        right = self.check_expr(expr.right)
        op = expr.op

        if op in ("&&", "||", "^^"):
            if left != BOOL or right != BOOL:
                raise self.error(
                    f"'{op}' requires bool operands, got {left} and {right}", expr
                )
            return BOOL
        if op in ("==", "!="):
            if left != right:
                raise self.error(
                    f"'{op}' operands must have the same type "
                    f"({left} vs {right})",
                    expr,
                )
            if left.is_sampler() or left.is_array():
                raise self.error(f"'{op}' cannot compare {left}", expr)
            return BOOL
        if op in ("<", ">", "<=", ">="):
            if not (left.is_scalar() and left == right and left.base != BaseType.BOOL):
                raise self.error(
                    f"'{op}' requires matching int or float scalars, "
                    f"got {left} and {right}",
                    expr,
                )
            return BOOL
        if op in ("+", "-", "*", "/"):
            return self.arith_result(op, left, right, expr)
        raise self.error(f"unhandled operator '{op}'", expr)

    def arith_result(self, op: str, left: GlslType, right: GlslType, node) -> GlslType:
        if not left.is_numeric() or not right.is_numeric():
            raise self.error(
                f"'{op}' requires numeric operands, got {left} and {right}", node
            )
        if left.base != right.base:
            raise self.error(
                f"'{op}' operands must share a base type, got {left} and "
                f"{right} (GLSL ES has no implicit int->float conversion)",
                node,
            )
        if left == right:
            if op == "*" and left.is_matrix():
                return left  # linear-algebraic product, same order
            return left
        if left.is_scalar():
            return right
        if right.is_scalar():
            return left
        if op == "*":
            if left.is_matrix() and right.is_vector() and left.size == right.size:
                return right
            if left.is_vector() and right.is_matrix() and left.size == right.size:
                return left
        raise self.error(f"invalid operands to '{op}': {left} and {right}", node)

    def check_assignment(self, expr: ast.Assignment) -> GlslType:
        if expr.op in RESERVED_OPS:
            raise self.error(f"operator '{expr.op}' is reserved in GLSL ES", expr)
        self.require_lvalue(expr.target)
        target = self.check_expr(expr.target)
        value = self.check_expr(expr.value)
        if expr.op == "=":
            if target != value:
                raise self.error(
                    f"cannot assign {value} to {target} (no implicit "
                    "conversions)",
                    expr,
                )
            return target
        op = expr.op[0]  # '+=' -> '+'
        result = self.arith_result(op, target, value, expr)
        if result != target:
            raise self.error(
                f"'{expr.op}' result type {result} does not match target "
                f"{target}",
                expr,
            )
        return target

    def require_lvalue(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Identifier):
            __, writable = self.lookup(expr.name, expr)
            if not writable:
                raise self.error(f"'{expr.name}' is not assignable", expr)
            symbol = self.result.globals.get(expr.name)
            if symbol is not None and symbol.qualifier == "builtin":
                self.result.written_builtins.add(expr.name)
            return
        if isinstance(expr, ast.FieldAccess):
            # Swizzle writes may not repeat components; validated after
            # the swizzle is resolved in check_field_access, but the
            # base must itself be an l-value.
            self.require_lvalue(expr.base)
            return
        if isinstance(expr, ast.IndexAccess):
            self.require_lvalue(expr.base)
            return
        raise self.error("expression is not assignable", expr)

    def check_call(self, expr: ast.Call) -> GlslType:
        arg_types = [self.check_expr(a) for a in expr.args]

        # Constructor?
        if expr.callee in BUILTIN_TYPE_NAMES:
            target = BUILTIN_TYPE_NAMES[expr.callee]
            return self.check_constructor(expr, target, arg_types)
        if expr.callee in self.result.structs:
            return self.check_struct_constructor(
                expr, self.result.structs[expr.callee], arg_types
            )

        # Built-in function?
        if bi.is_builtin(expr.callee):
            resolved = bi.resolve(expr.callee, arg_types)
            if resolved is None:
                names = ", ".join(str(t) for t in arg_types)
                raise self.error(
                    f"no overload of '{expr.callee}' matches ({names})", expr
                )
            overload, ret = resolved
            expr.is_builtin = True
            expr.resolved_signature = overload.key
            return ret

        # User function (exact-match overloading).
        key = mangle(expr.callee, arg_types)
        func = self.result.functions.get(key)
        if func is None:
            names = ", ".join(str(t) for t in arg_types)
            raise self.error(
                f"no function '{expr.callee}({names})' declared", expr
            )
        # out/inout arguments must be l-values.
        for param, arg in zip(func.params, expr.args):
            if param.direction in ("out", "inout"):
                self.require_lvalue(arg)
        expr.resolved_signature = key
        if self._current_caller is not None:
            self.call_graph.setdefault(self._current_caller, set()).add(key)
        return func.resolved_return_type

    def check_constructor(
        self, expr: ast.Call, target: GlslType, arg_types: List[GlslType]
    ) -> GlslType:
        expr.is_constructor = True
        expr.constructed_type = target
        if target.is_sampler() or target.is_void():
            raise self.error(f"cannot construct {target}", expr)
        if not arg_types:
            raise self.error(f"constructor {target}() requires arguments", expr)
        for t in arg_types:
            if not (t.is_scalar() or t.is_vector() or t.is_matrix()):
                raise self.error(f"{t} cannot appear in a constructor", expr)

        if target.is_scalar():
            if len(arg_types) != 1:
                raise self.error(
                    f"scalar constructor {target}() takes exactly one argument",
                    expr,
                )
            return target
        if target.is_vector():
            if len(arg_types) == 1 and arg_types[0].is_scalar():
                return target  # splat
            if len(arg_types) == 1 and arg_types[0].is_matrix():
                raise self.error("cannot build a vector from a matrix", expr)
            total = sum(t.component_count() for t in arg_types)
            if total < target.size:
                raise self.error(
                    f"too few components for {target} constructor "
                    f"({total} < {target.size})",
                    expr,
                )
            # Spec: supplying extra *arguments* beyond what is consumed
            # is an error; extra components in the last argument are ok.
            consumed = 0
            for i, t in enumerate(arg_types):
                if consumed >= target.size:
                    raise self.error(
                        f"too many arguments for {target} constructor", expr
                    )
                consumed += t.component_count()
            return target
        if target.is_matrix():
            if len(arg_types) == 1 and arg_types[0].is_scalar():
                return target  # diagonal
            if any(t.is_matrix() for t in arg_types):
                raise self.error(
                    "GLSL ES 1.00 does not allow constructing matrices "
                    "from matrices",
                    expr,
                )
            total = sum(t.component_count() for t in arg_types)
            if total != target.component_count():
                raise self.error(
                    f"{target} constructor needs exactly "
                    f"{target.component_count()} components, got {total}",
                    expr,
                )
            return target
        raise self.error(f"cannot construct {target}", expr)

    def check_struct_constructor(
        self, expr: ast.Call, target: GlslType, arg_types: List[GlslType]
    ) -> GlslType:
        expr.is_constructor = True
        expr.constructed_type = target
        expected = [ftype for __, ftype in target.fields]
        if arg_types != expected:
            raise self.error(
                f"struct {target.name} constructor expects "
                f"({', '.join(map(str, expected))})",
                expr,
            )
        return target

    def check_field_access(self, expr: ast.FieldAccess) -> GlslType:
        base = self.check_expr(expr.base)
        if base.is_struct():
            for fname, ftype in base.fields:
                if fname == expr.field_name:
                    return ftype
            raise self.error(
                f"struct {base.name} has no field '{expr.field_name}'", expr
            )
        if base.is_vector():
            indices = swizzle_indices(expr.field_name)
            if indices is None or max(indices) >= base.size:
                raise self.error(
                    f"invalid swizzle '.{expr.field_name}' on {base}", expr
                )
            expr.swizzle = indices
            if len(indices) == 1:
                return scalar_type(base.base)
            return vector_type(base.base, len(indices))
        raise self.error(f"cannot apply '.{expr.field_name}' to {base}", expr)

    def check_index(self, expr: ast.IndexAccess) -> GlslType:
        base = self.check_expr(expr.base)
        index = self.check_expr(expr.index)
        if index != INT:
            raise self.error(f"index must be int, got {index}", expr)
        if base.is_array():
            return base.element
        if base.is_vector():
            return scalar_type(base.base)
        if base.is_matrix():
            return base.column_type()
        raise self.error(f"cannot index {base}", expr)

    # ------------------------------------------------------------------
    # Constant folding (array sizes)
    # ------------------------------------------------------------------
    def const_int(self, expr: ast.Expr) -> int:
        value = self.fold(expr)
        if not isinstance(value, int) or isinstance(value, bool):
            raise self.error("array size must be a constant integer", expr)
        if value <= 0:
            raise self.error("array size must be positive", expr)
        return value

    def fold(self, expr: ast.Expr):
        """Evaluate a constant integer/float/bool expression, or None."""
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.FloatLiteral):
            return expr.value
        if isinstance(expr, ast.BoolLiteral):
            return expr.value
        if isinstance(expr, ast.UnaryOp):
            value = self.fold(expr.operand)
            if value is None:
                return None
            if expr.op == "-":
                return -value
            if expr.op == "+":
                return value
            if expr.op == "!":
                return not value
            return None
        if isinstance(expr, ast.BinaryOp):
            left = self.fold(expr.left)
            right = self.fold(expr.right)
            if left is None or right is None:
                return None
            try:
                if expr.op == "+":
                    return left + right
                if expr.op == "-":
                    return left - right
                if expr.op == "*":
                    return left * right
                if expr.op == "/":
                    if isinstance(left, int) and isinstance(right, int):
                        return int(left / right)  # C truncation
                    return left / right
            except ZeroDivisionError:
                raise self.error("division by zero in constant expression", expr)
            return None
        if isinstance(expr, ast.Identifier):
            symbol = self.result.globals.get(expr.name)
            if symbol is not None and symbol.qualifier == "const" and symbol.initializer is not None:
                return self.fold(symbol.initializer)
            return None
        return None
