"""The GLSL ES 1.00 type system.

GLSL ES 1.00 (the shading language mandated by OpenGL ES 2) has a
small, closed type universe: ``void``, the scalars ``bool``/``int``/
``float``, vectors of 2..4 components over each scalar, square float
matrices of order 2..4, the opaque ``sampler2D``/``samplerCube``
types, fixed-size arrays, and user-declared structs.

Unlike desktop GLSL there are **no implicit conversions** — an ``int``
never silently becomes a ``float`` (spec §4.1.10).  All conversions go
through constructor syntax, which this module models via
:func:`constructor_result`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


class TypeKind:
    """Enumeration of type categories (plain class constants: explicit
    and cheap to compare)."""

    VOID = "void"
    SCALAR = "scalar"
    VECTOR = "vector"
    MATRIX = "matrix"
    SAMPLER = "sampler"
    ARRAY = "array"
    STRUCT = "struct"


class BaseType:
    """Scalar base categories."""

    FLOAT = "float"
    INT = "int"
    BOOL = "bool"


@dataclass(frozen=True)
class GlslType:
    """An immutable GLSL type descriptor.

    Instances are interned for the built-in types (see the module-level
    constants ``FLOAT``, ``VEC3``, ...) so identity comparison usually
    works, but equality is structural to cover arrays and structs.
    """

    kind: str
    base: Optional[str] = None
    #: Component count for vectors, order for square matrices.
    size: int = 1
    #: Element type for arrays.
    element: Optional["GlslType"] = None
    #: Declared length for arrays.
    length: int = 0
    #: Struct name and ordered field table.
    name: Optional[str] = None
    fields: Tuple[Tuple[str, "GlslType"], ...] = field(default=())

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def is_void(self) -> bool:
        return self.kind == TypeKind.VOID

    def is_scalar(self) -> bool:
        return self.kind == TypeKind.SCALAR

    def is_vector(self) -> bool:
        return self.kind == TypeKind.VECTOR

    def is_matrix(self) -> bool:
        return self.kind == TypeKind.MATRIX

    def is_array(self) -> bool:
        return self.kind == TypeKind.ARRAY

    def is_struct(self) -> bool:
        return self.kind == TypeKind.STRUCT

    def is_sampler(self) -> bool:
        return self.kind == TypeKind.SAMPLER

    def is_float_based(self) -> bool:
        return self.base == BaseType.FLOAT and self.kind in (
            TypeKind.SCALAR,
            TypeKind.VECTOR,
            TypeKind.MATRIX,
        )

    def is_int_based(self) -> bool:
        return self.base == BaseType.INT and self.kind in (
            TypeKind.SCALAR,
            TypeKind.VECTOR,
        )

    def is_bool_based(self) -> bool:
        return self.base == BaseType.BOOL and self.kind in (
            TypeKind.SCALAR,
            TypeKind.VECTOR,
        )

    def is_numeric(self) -> bool:
        """True for types valid in arithmetic (float/int scalars,
        vectors; float matrices)."""
        return self.is_float_based() or self.is_int_based()

    # ------------------------------------------------------------------
    # Derived shapes
    # ------------------------------------------------------------------
    def component_count(self) -> int:
        """Number of scalar components (1 for scalars, N for vectors,
        N*N for matrices)."""
        if self.kind == TypeKind.SCALAR:
            return 1
        if self.kind == TypeKind.VECTOR:
            return self.size
        if self.kind == TypeKind.MATRIX:
            return self.size * self.size
        raise ValueError(f"{self} has no scalar component count")

    def component_type(self) -> "GlslType":
        """The scalar type of one component."""
        if self.kind == TypeKind.SCALAR:
            return self
        if self.kind in (TypeKind.VECTOR, TypeKind.MATRIX):
            return scalar_type(self.base)
        if self.kind == TypeKind.ARRAY:
            return self.element
        raise ValueError(f"{self} has no component type")

    def column_type(self) -> "GlslType":
        """For matrices: the vector type of one column."""
        if not self.is_matrix():
            raise ValueError(f"{self} is not a matrix")
        return vector_type(BaseType.FLOAT, self.size)

    def with_base(self, base: str) -> "GlslType":
        """Same shape, different scalar base (e.g. vec3 -> bvec3)."""
        if self.kind == TypeKind.SCALAR:
            return scalar_type(base)
        if self.kind == TypeKind.VECTOR:
            return vector_type(base, self.size)
        raise ValueError(f"cannot rebase {self}")

    # ------------------------------------------------------------------
    def glsl_name(self) -> str:
        """The type's spelling in GLSL source."""
        if self.kind == TypeKind.VOID:
            return "void"
        if self.kind == TypeKind.SCALAR:
            return self.base
        if self.kind == TypeKind.VECTOR:
            prefix = {"float": "", "int": "i", "bool": "b"}[self.base]
            return f"{prefix}vec{self.size}"
        if self.kind == TypeKind.MATRIX:
            return f"mat{self.size}"
        if self.kind == TypeKind.SAMPLER:
            return self.name
        if self.kind == TypeKind.ARRAY:
            return f"{self.element.glsl_name()}[{self.length}]"
        if self.kind == TypeKind.STRUCT:
            return self.name
        return "<?>"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.glsl_name()


# ----------------------------------------------------------------------
# Interned built-in types
# ----------------------------------------------------------------------
VOID = GlslType(TypeKind.VOID)
FLOAT = GlslType(TypeKind.SCALAR, BaseType.FLOAT, 1)
INT = GlslType(TypeKind.SCALAR, BaseType.INT, 1)
BOOL = GlslType(TypeKind.SCALAR, BaseType.BOOL, 1)
VEC2 = GlslType(TypeKind.VECTOR, BaseType.FLOAT, 2)
VEC3 = GlslType(TypeKind.VECTOR, BaseType.FLOAT, 3)
VEC4 = GlslType(TypeKind.VECTOR, BaseType.FLOAT, 4)
IVEC2 = GlslType(TypeKind.VECTOR, BaseType.INT, 2)
IVEC3 = GlslType(TypeKind.VECTOR, BaseType.INT, 3)
IVEC4 = GlslType(TypeKind.VECTOR, BaseType.INT, 4)
BVEC2 = GlslType(TypeKind.VECTOR, BaseType.BOOL, 2)
BVEC3 = GlslType(TypeKind.VECTOR, BaseType.BOOL, 3)
BVEC4 = GlslType(TypeKind.VECTOR, BaseType.BOOL, 4)
MAT2 = GlslType(TypeKind.MATRIX, BaseType.FLOAT, 2)
MAT3 = GlslType(TypeKind.MATRIX, BaseType.FLOAT, 3)
MAT4 = GlslType(TypeKind.MATRIX, BaseType.FLOAT, 4)
SAMPLER2D = GlslType(TypeKind.SAMPLER, name="sampler2D")
SAMPLERCUBE = GlslType(TypeKind.SAMPLER, name="samplerCube")

#: Keyword -> type table used by the parser for type specifiers.
BUILTIN_TYPE_NAMES: Dict[str, GlslType] = {
    "void": VOID,
    "float": FLOAT,
    "int": INT,
    "bool": BOOL,
    "vec2": VEC2,
    "vec3": VEC3,
    "vec4": VEC4,
    "ivec2": IVEC2,
    "ivec3": IVEC3,
    "ivec4": IVEC4,
    "bvec2": BVEC2,
    "bvec3": BVEC3,
    "bvec4": BVEC4,
    "mat2": MAT2,
    "mat3": MAT3,
    "mat4": MAT4,
    "sampler2D": SAMPLER2D,
    "samplerCube": SAMPLERCUBE,
}


def scalar_type(base: str) -> GlslType:
    """The interned scalar type for a base category."""
    return {BaseType.FLOAT: FLOAT, BaseType.INT: INT, BaseType.BOOL: BOOL}[base]


def vector_type(base: str, size: int) -> GlslType:
    """The interned vector type ``<base>vec<size>``."""
    table = {
        (BaseType.FLOAT, 2): VEC2,
        (BaseType.FLOAT, 3): VEC3,
        (BaseType.FLOAT, 4): VEC4,
        (BaseType.INT, 2): IVEC2,
        (BaseType.INT, 3): IVEC3,
        (BaseType.INT, 4): IVEC4,
        (BaseType.BOOL, 2): BVEC2,
        (BaseType.BOOL, 3): BVEC3,
        (BaseType.BOOL, 4): BVEC4,
    }
    return table[(base, size)]


def matrix_type(size: int) -> GlslType:
    """The interned square float matrix type ``mat<size>``."""
    return {2: MAT2, 3: MAT3, 4: MAT4}[size]


def array_of(element: GlslType, length: int) -> GlslType:
    """A fixed-size array type."""
    return GlslType(TypeKind.ARRAY, element=element, length=length)


def struct_type(name: str, fields) -> GlslType:
    """A struct type with an ordered ``(name, type)`` field list."""
    return GlslType(TypeKind.STRUCT, name=name, fields=tuple(fields))


# ----------------------------------------------------------------------
# Constructor semantics (spec §5.4)
# ----------------------------------------------------------------------
def constructor_arg_components(arg_type: GlslType) -> int:
    """How many scalar components an argument contributes inside a
    vector/matrix constructor."""
    return arg_type.component_count()


def scalar_can_construct(target: GlslType) -> bool:
    """Whether the type can be built from constructor syntax at all."""
    return target.kind in (TypeKind.SCALAR, TypeKind.VECTOR, TypeKind.MATRIX)


#: Swizzle character sets (spec §5.5).  All characters of one swizzle
#: must come from the same set.
SWIZZLE_SETS = ("xyzw", "rgba", "stpq")


def swizzle_indices(swizzle: str) -> Optional[Tuple[int, ...]]:
    """Translate a swizzle string into component indices, or None if
    the string is not a valid swizzle (mixed sets, bad chars, len>4)."""
    if not 1 <= len(swizzle) <= 4:
        return None
    for charset in SWIZZLE_SETS:
        if all(ch in charset for ch in swizzle):
            return tuple(charset.index(ch) for ch in swizzle)
    return None
