"""The paper's primary contribution: GPGPU on OpenGL ES 2.

Subpackages:

* :mod:`repro.core.numerics` — the §IV numeric transformations;
* :mod:`repro.core.codegen` — GLSL generation for the §III solutions;
* :mod:`repro.core.api` — the user-facing framework
  (:class:`GpgpuDevice`, :class:`GpuArray`, :class:`Kernel`,
  :class:`Pipeline`).
"""

from .api import (
    GpgpuDevice,
    GpgpuError,
    GpuArray,
    Kernel,
    MultiOutputKernel,
    Pipeline,
    ShaderBuildError,
)
from .numerics import FORMATS, NumericFormat, get_format

__all__ = [
    "GpgpuDevice",
    "GpuArray",
    "Kernel",
    "MultiOutputKernel",
    "Pipeline",
    "GpgpuError",
    "ShaderBuildError",
    "FORMATS",
    "NumericFormat",
    "get_format",
]
