"""``repro.core.knobs`` — central, validated environment-knob parsing.

Every deployment-facing knob used to be parsed at its point of use
with a bare ``int(os.environ[...])`` — so ``REPRO_SHADE_WORKERS=abc``
detonated as a raw ``ValueError`` in the middle of a draw, and
``REPRO_TILE_SIZE=-1`` silently produced nonsense scheduling.  This
module is the one place knob strings become values: a malformed or
out-of-range knob falls back to its default and warns **once** per
(knob, raw value) pair, naming both, instead of crashing the call
that happened to read it.

Reads stay lazy (per call, like :mod:`repro.core.cache`'s) so tests
that monkeypatch the environment see changes immediately; only the
warning is deduplicated process-wide.
"""

from __future__ import annotations

import math
import os
import warnings
from typing import Optional, Set, Tuple

__all__ = ["float_knob", "int_knob", "reset_warned"]

_WARNED: Set[Tuple[str, str]] = set()


def reset_warned() -> None:
    """Forget which (knob, value) pairs already warned (test hook)."""
    _WARNED.clear()


def _fallback(name: str, raw: str, reason: str, default):
    key = (name, raw)
    if key not in _WARNED:
        _WARNED.add(key)
        warnings.warn(
            f"ignoring {name}={raw!r} ({reason}); "
            f"using default {default!r}",
            RuntimeWarning,
            stacklevel=3,
        )
    return default


def int_knob(
    name: str,
    default: Optional[int],
    *,
    minimum: Optional[int] = None,
    maximum: Optional[int] = None,
) -> Optional[int]:
    """Read an integer knob; unset/empty → ``default``, malformed or
    out-of-range → ``default`` plus a single warning."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        value = int(raw)
    except ValueError:
        return _fallback(name, raw, "not an integer", default)
    if minimum is not None and value < minimum:
        return _fallback(name, raw, f"below minimum {minimum}", default)
    if maximum is not None and value > maximum:
        return _fallback(name, raw, f"above maximum {maximum}", default)
    return value


def float_knob(
    name: str,
    default: Optional[float],
    *,
    minimum: Optional[float] = None,
    maximum: Optional[float] = None,
) -> Optional[float]:
    """Read a float knob with the same fall-back-and-warn-once
    contract as :func:`int_knob`."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        value = float(raw)
    except ValueError:
        return _fallback(name, raw, "not a number", default)
    if not math.isfinite(value):
        # NaN never compares in range, and ±inf sails over any maximum
        # — a timeout of "inf" must not disable the deadline silently.
        return _fallback(name, raw, "not finite", default)
    if minimum is not None and value < minimum:
        return _fallback(name, raw, f"below minimum {minimum}", default)
    if maximum is not None and value > maximum:
        return _fallback(name, raw, f"above maximum {maximum}", default)
    return value
