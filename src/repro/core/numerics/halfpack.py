"""Half-precision (fp16) and 16-bit integer transformations.

Two extensions beyond the paper's §IV set, both motivated by its text:

* **fp16** — §II-B(5/6): "some vendors provide extensions for half
  floats, in general it is not enough for general purpose
  computations."  We implement the fp16 path (two bytes per value, in
  the R/G channels) so the claim can be *measured*: the E7 benchmark
  shows fp16's 10-bit mantissa falls far short of the ≥15-bit band the
  paper's fp32 transformations deliver.
* **uint16/int16** — the related-work comparison (§VI): Strzodka's
  VMV'02 system emulated 16-bit integers in a *custom* memory format;
  here 16-bit integers travel as their natural little-endian 2's
  complement bytes, same as the paper's 32-bit solution.

Layouts (one value per RGBA texel, value bytes in R/G):

========  =====================================
byte      fp16 / u16 / s16
========  =====================================
R         low byte (mantissa low for fp16)
G         high byte (sign+exponent+mantissa hi)
B, A      unused (0 / 255)
========  =====================================
"""

from __future__ import annotations

import numpy as np

from .delta import reconstruct_byte

FP16_EXPONENT_BIAS = 15
FP16_MANTISSA_BITS = 10
FP16_MAX = 65504.0


# ----------------------------------------------------------------------
# Host layouts
# ----------------------------------------------------------------------
def _pack_two_bytes(raw16: np.ndarray) -> np.ndarray:
    raw16 = np.ascontiguousarray(raw16, dtype="<u2").reshape(-1)
    pairs = raw16.view(np.uint8).reshape(-1, 2)
    texels = np.zeros((pairs.shape[0], 4), dtype=np.uint8)
    texels[:, :2] = pairs
    texels[:, 3] = 255
    return texels


def _unpack_two_bytes(texels: np.ndarray) -> np.ndarray:
    texels = np.ascontiguousarray(texels, dtype=np.uint8).reshape(-1, 4)
    return texels[:, :2].copy().reshape(-1).view("<u2").copy()


def pack_half(values: np.ndarray) -> np.ndarray:
    """float16 host array -> (N, 4) texel bytes (little-endian fp16 in
    R/G — fp16's exponent+sign already fit byte G, so unlike fp32 no
    bit rearrangement is needed)."""
    values = np.asarray(values, dtype=np.float16)
    return _pack_two_bytes(values.view("<u2"))


def unpack_half(texels: np.ndarray) -> np.ndarray:
    """(N, 4) texel bytes -> float16 host array."""
    return _unpack_two_bytes(texels).view(np.float16).copy()


def pack_uint16(values: np.ndarray) -> np.ndarray:
    return _pack_two_bytes(np.asarray(values, dtype="<u2"))


def unpack_uint16(texels: np.ndarray) -> np.ndarray:
    return _unpack_two_bytes(texels)


def pack_int16(values: np.ndarray) -> np.ndarray:
    return _pack_two_bytes(np.asarray(values, dtype="<i2").view("<u2"))


def unpack_int16(texels: np.ndarray) -> np.ndarray:
    return _unpack_two_bytes(texels).view(np.int16).copy()


# ----------------------------------------------------------------------
# Shader mirrors
# ----------------------------------------------------------------------
def shader_unpack_uint16(texel_floats: np.ndarray) -> np.ndarray:
    bytes_ = reconstruct_byte(np.asarray(texel_floats, dtype=np.float64))
    return bytes_[..., 0] + bytes_[..., 1] * 256.0


def shader_pack_uint16(values: np.ndarray) -> np.ndarray:
    v = np.floor(np.asarray(values, dtype=np.float64) + 0.5)
    out = np.zeros(v.shape + (4,), dtype=np.float64)
    out[..., 0] = np.mod(v, 256.0)
    out[..., 1] = np.mod(np.floor(v / 256.0), 256.0)
    out[..., 3] = 255.0
    return out / 255.0


def shader_unpack_int16(texel_floats: np.ndarray) -> np.ndarray:
    bytes_ = reconstruct_byte(np.asarray(texel_floats, dtype=np.float64))
    high = bytes_[..., 1]
    signed_high = np.where(high < 128.0, high, high - 256.0)
    return bytes_[..., 0] + signed_high * 256.0


def shader_pack_int16(values: np.ndarray) -> np.ndarray:
    v = np.floor(np.asarray(values, dtype=np.float64) + 0.5)
    wrapped = np.where(v < 0, v + 65536.0, v)
    out = np.zeros(v.shape + (4,), dtype=np.float64)
    out[..., 0] = np.mod(wrapped, 256.0)
    out[..., 1] = np.mod(np.floor(wrapped / 256.0), 256.0)
    out[..., 3] = 255.0
    return out / 255.0


def shader_unpack_half(texel_floats: np.ndarray) -> np.ndarray:
    """fp16 reconstruction: byte G = s eeeee mm, byte R = low mantissa."""
    bytes_ = reconstruct_byte(np.asarray(texel_floats, dtype=np.float64))
    b0, b1 = bytes_[..., 0], bytes_[..., 1]
    sign = np.where(b1 >= 128.0, -1.0, 1.0)
    rest = np.where(b1 >= 128.0, b1 - 128.0, b1)
    exponent = np.floor(rest / 4.0)
    mant_high = rest - exponent * 4.0
    mantissa = (mant_high * 256.0 + b0) / float(2**FP16_MANTISSA_BITS)
    value = sign * (1.0 + mantissa) * np.exp2(exponent - FP16_EXPONENT_BIAS)
    is_zero = (exponent == 0.0) & (mantissa == 0.0)
    is_subnormal = (exponent == 0.0) & (mantissa != 0.0)
    subnormal = sign * (mantissa) * np.exp2(1.0 - FP16_EXPONENT_BIAS)
    value = np.where(is_subnormal, subnormal, value)
    value = np.where(is_zero, 0.0, value)
    is_inf = (exponent == 31.0) & (mantissa == 0.0)
    is_nan = (exponent == 31.0) & (mantissa != 0.0)
    value = np.where(is_inf, sign * np.inf, value)
    value = np.where(is_nan, np.nan, value)
    return value


def shader_pack_half(values: np.ndarray) -> np.ndarray:
    """fp16 decomposition, mirroring the generated GLSL exactly:
    round-half-up on the 10-bit mantissa, gradual underflow to
    subnormals, overflow beyond FP16_MAX encodes infinity.

    (IEEE round-to-nearest-even differs only on exact ties; values
    already representable in fp16 round-trip bit-exactly either way.)
    """
    v = np.asarray(values, dtype=np.float64)
    sign_bit = np.signbit(v).astype(np.float64)
    a = np.abs(v)

    finite = np.isfinite(v)
    is_nan = np.isnan(v)
    positive = a > 0
    safe = np.where(positive & finite, a, 1.0)

    exponent = np.floor(np.log2(safe))
    p = safe * np.exp2(-exponent)
    too_big = p >= 2.0
    exponent = np.where(too_big, exponent + 1.0, exponent)
    p = np.where(too_big, p * 0.5, p)
    too_small = p < 1.0
    exponent = np.where(too_small, exponent - 1.0, exponent)
    p = np.where(too_small, p * 2.0, p)

    # Normal path.
    mantissa = np.floor((p - 1.0) * 1024.0 + 0.5)
    overflow = mantissa >= 1024.0
    exponent = np.where(overflow, exponent + 1.0, exponent)
    mantissa = np.where(overflow, 0.0, mantissa)
    biased = exponent + float(FP16_EXPONENT_BIAS)

    # Gradual underflow: exponent below -14 stores a subnormal.
    subnormal = exponent < -14.0
    sub_mant = np.floor(safe * np.exp2(24.0) + 0.5)
    sub_promoted = sub_mant >= 1024.0
    mantissa = np.where(subnormal, np.where(sub_promoted, 0.0, sub_mant), mantissa)
    biased = np.where(subnormal, np.where(sub_promoted, 1.0, 0.0), biased)

    # Overflow / specials.
    to_inf = finite & (a > FP16_MAX)
    biased = np.where(to_inf | ~finite, 31.0, biased)
    mantissa = np.where(to_inf | (~finite & ~is_nan), 0.0, mantissa)
    mantissa = np.where(is_nan, 512.0, mantissa)
    sign_bit = np.where(is_nan, 0.0, sign_bit)

    # Zero.
    is_zero = (~positive) & finite
    biased = np.where(is_zero, 0.0, biased)
    mantissa = np.where(is_zero, 0.0, mantissa)
    sign_bit = np.where(is_zero, 0.0, sign_bit)

    out = np.zeros(v.shape + (4,), dtype=np.float64)
    out[..., 0] = np.mod(mantissa, 256.0)
    out[..., 1] = sign_bit * 128.0 + biased * 4.0 + np.floor(mantissa / 256.0)
    out[..., 3] = 255.0
    return out / 255.0
