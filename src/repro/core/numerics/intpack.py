"""32-bit integer transformations (§IV-C, §IV-D).

Host side, integers travel as their natural little-endian 2's
complement bytes — the paper's key interoperability claim over
Strzodka's custom 16-bit format: *unmodified* 32-bit integers go into
the texture, byte for byte (one int per RGBA texel).

Shader side, the four texel bytes are recombined arithmetically
(eq. (6)): ``i = sum b_i * 256^i``.  On GPUs whose integer path is
emulated in fp32 (all the paper's targets), exact reconstruction holds
up to 2^24 — "precision equivalent to a 24-bit integer" (§IV-C).
Signed values use the sign split of §IV-D: the paper's
``(i_s + 256^3)`` wrap shows the authors treat negative magnitudes
within 24 bits, which is what we implement (and test against the
stated bound).

Note on paper typos (documented in DESIGN.md): eq. (7) prints
``b_i = i_u mod 256^i``; the inverse consistent with eq. (6) is
``b_i = floor(i_u / 256^i) mod 256``, which we use.
"""

from __future__ import annotations

import numpy as np

from .delta import reconstruct_byte

#: Exact-integer capacity of an fp32 mantissa: §IV-C's 2^24 bound.
FLOAT_EXACT_INT_LIMIT = 2**24

#: Byte significance weights of eq. (6).
BYTE_WEIGHTS = np.array([1.0, 256.0, 65536.0, 16777216.0])


# ----------------------------------------------------------------------
# Host side: natural 2's-complement little-endian bytes
# ----------------------------------------------------------------------
def pack_uint(values: np.ndarray) -> np.ndarray:
    """uint32 host array -> (N, 4) texel bytes, little-endian."""
    values = np.ascontiguousarray(values, dtype="<u4").reshape(-1)
    return values.view(np.uint8).reshape(-1, 4).copy()


def unpack_uint(texels: np.ndarray) -> np.ndarray:
    """(N, 4) texel bytes -> uint32 host array."""
    texels = np.ascontiguousarray(texels, dtype=np.uint8).reshape(-1, 4)
    return texels.reshape(-1).view("<u4").copy()


def pack_int(values: np.ndarray) -> np.ndarray:
    """int32 host array -> texel bytes (unmodified 2's complement)."""
    return pack_uint(np.asarray(values, dtype="<i4").view("<u4"))


def unpack_int(texels: np.ndarray) -> np.ndarray:
    """Texel bytes -> int32 host array."""
    return unpack_uint(texels).view(np.int32).copy()


# ----------------------------------------------------------------------
# Shader side (mirrored in numpy)
# ----------------------------------------------------------------------
def shader_unpack_uint(texel_floats: np.ndarray) -> np.ndarray:
    """Eq. (6): four [0,1] channel floats -> unsigned integer value.

    ``texel_floats`` has shape (N, 4) (RGBA order = byte significance
    order 0..3).  The result is a float carrying the integer value —
    exact up to 2^24 in fp32 arithmetic, exact everywhere in float64.
    """
    bytes_ = reconstruct_byte(np.asarray(texel_floats, dtype=np.float64))
    return bytes_ @ BYTE_WEIGHTS


def shader_pack_uint(values: np.ndarray) -> np.ndarray:
    """Eq. (7), corrected form: integer value -> four [0,1] outputs."""
    v = np.asarray(values, dtype=np.float64)
    out = np.empty(v.shape + (4,), dtype=np.float64)
    for i in range(4):
        out[..., i] = np.mod(np.floor(v / BYTE_WEIGHTS[i]), 256.0)
    return out / 255.0


def shader_unpack_int(texel_floats: np.ndarray) -> np.ndarray:
    """§IV-D reconstruction: unsigned low 24 bits + sign-carrying top
    byte read as a signed byte.

    Exact for values in (-2^24, 2^24) under fp32; the full int32 range
    reconstructs exactly under float64 ('exact' device model).
    """
    bytes_ = reconstruct_byte(np.asarray(texel_floats, dtype=np.float64))
    low24 = bytes_[..., 0] + bytes_[..., 1] * 256.0 + bytes_[..., 2] * 65536.0
    b3 = bytes_[..., 3]
    signed_b3 = np.where(b3 < 128.0, b3, b3 - 256.0)
    return low24 + signed_b3 * 16777216.0


def shader_pack_int(values: np.ndarray) -> np.ndarray:
    """§IV-D reverse transform: ``(i_s + 256^3) mod 256^i`` for
    negatives — i.e. wrap negative values into 24 bits and sign-extend
    through byte 3.

    Values must lie in (-2^24, 2^24); this is the paper's stated
    integer precision envelope for fp32 GPUs.
    """
    v = np.asarray(values, dtype=np.float64)
    low = np.where(v < 0, v + 16777216.0, v)  # 24-bit wrap (paper's +256^3)
    out = np.empty(v.shape + (4,), dtype=np.float64)
    out[..., 0] = np.mod(np.floor(low), 256.0)
    out[..., 1] = np.mod(np.floor(low / 256.0), 256.0)
    out[..., 2] = np.mod(np.floor(low / 65536.0), 256.0)
    # Byte 3 is pure sign extension within the 24-bit envelope.
    out[..., 3] = np.where(v < 0, 255.0, np.mod(np.floor(v / 16777216.0), 256.0))
    return out / 255.0
