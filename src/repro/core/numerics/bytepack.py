"""Unsigned and signed char transformations (§IV-A, §IV-B).

These are the simplest of the paper's numeric formats: one byte per
element, carried in the R channel of an RGBA8 texel.  The host-side
layout is the identity (a byte is a byte); the interesting part — the
bijective mappings M and M2 between shader floats in [0, 1] and byte
values — lives in the shader and is mirrored here in numpy for
validation (:func:`shader_unpack_uchar` etc. compute exactly what the
generated GLSL computes).
"""

from __future__ import annotations

import numpy as np

from .delta import BYTE_MAX, reconstruct_byte, texel_to_float

# ----------------------------------------------------------------------
# Host side: value array <-> texel bytes (identity layout)
# ----------------------------------------------------------------------
def pack_uchar(values: np.ndarray) -> np.ndarray:
    """uint8 host array -> (N, 4) RGBA texel bytes (value in R)."""
    values = np.asarray(values, dtype=np.uint8).reshape(-1)
    texels = np.zeros((values.shape[0], 4), dtype=np.uint8)
    texels[:, 0] = values
    texels[:, 3] = 255
    return texels


def unpack_uchar(texels: np.ndarray) -> np.ndarray:
    """(N, 4) RGBA texel bytes -> uint8 host array."""
    return np.asarray(texels, dtype=np.uint8).reshape(-1, 4)[:, 0].copy()


def pack_schar(values: np.ndarray) -> np.ndarray:
    """int8 host array -> RGBA texels (two's-complement byte in R)."""
    return pack_uchar(np.asarray(values, dtype=np.int8).view(np.uint8))


def unpack_schar(texels: np.ndarray) -> np.ndarray:
    """RGBA texels -> int8 host array."""
    return unpack_uchar(texels).view(np.int8)


# ----------------------------------------------------------------------
# Shader side (mirrored in numpy): M and M2 of §IV-A / §IV-B
# ----------------------------------------------------------------------
def shader_unpack_uchar(f: np.ndarray) -> np.ndarray:
    """M: [0,1] -> [0,255].  Eq. (4) in rounding form."""
    return reconstruct_byte(f)


def shader_pack_uchar(b: np.ndarray) -> np.ndarray:
    """M^-1: byte value -> [0,1] fragment output (eq. (5)).

    The emitted float is exactly b/255, which the framebuffer's
    eq. (2) conversion maps back to b.
    """
    return np.asarray(b, dtype=np.float64) / BYTE_MAX


def shader_unpack_schar(f: np.ndarray) -> np.ndarray:
    """M2: [0,1] -> [-128, 127] via the two's-complement split."""
    b = reconstruct_byte(f)
    return np.where(b < 128, b, b - 256)


def shader_pack_schar(v: np.ndarray) -> np.ndarray:
    """M2^-1: signed value -> [0,1] fragment output."""
    v = np.asarray(v, dtype=np.float64)
    unsigned = np.where(v < 0, v + 256.0, v)
    return unsigned / BYTE_MAX


def roundtrip_uchar_through_shader(values: np.ndarray, quantize=texel_to_float) -> np.ndarray:
    """Full input-side path: bytes -> eq.(1) floats -> M -> bytes.
    Used by tests to prove bijectivity over all 256 values."""
    return shader_unpack_uchar(quantize(values))
