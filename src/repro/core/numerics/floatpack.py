"""IEEE 754 float transformations (§IV-E, Figure 2).

Floats are the one format whose CPU memory layout cannot go to the GPU
unmodified: in IEEE 754 the 8 exponent bits straddle bytes 2 and 3
(byte 3 = sign + exponent[7:1], byte 2 = exponent[0] + mantissa[22:16]).
The paper's Figure 2 rearrangement swaps the sign bit and the exponent
LSB so that **byte 3 carries the full biased exponent** and **byte 2's
MSB carries the sign**:

====  ===========================  ==========================
byte  CPU (IEEE 754)               GPU layout (Fig. 2)
====  ===========================  ==========================
3     s e7 e6 e5 e4 e3 e2 e1       e7 e6 e5 e4 e3 e2 e1 e0
2     e0 m22 ... m16               s  m22 ... m16
1     m15 ... m8                   m15 ... m8
0     m7 ... m0                    m7 ... m0
====  ===========================  ==========================

The rearrangement is a cheap bit rotation done on the CPU (the paper's
"partial bit re-arrangements for the floating point data on the CPU");
everything else happens in the shader.

The paper's printed reconstruction formulas contain typos (the
``b3 >= 128`` branch and a ``255^i`` radix — see DESIGN.md); we
implement the semantics consistent with Figure 2 and the text, which
round-trips bit-exactly (proven by the tests over the full float32
range, including subnormals when ``preserve_special`` handling is on).
"""

from __future__ import annotations

import numpy as np

from .delta import reconstruct_byte

EXPONENT_BIAS = 127
MANTISSA_BITS = 23
MANTISSA_SCALE = float(2**MANTISSA_BITS)


# ----------------------------------------------------------------------
# Host side: IEEE 754 bits <-> GPU byte layout (exact, pure bit moves)
# ----------------------------------------------------------------------
def float_bits_to_gpu_word(bits: np.ndarray) -> np.ndarray:
    """IEEE 754 uint32 bit patterns -> Fig. 2 GPU words."""
    bits = np.asarray(bits, dtype=np.uint32)
    sign = bits >> np.uint32(31)
    exponent = (bits >> np.uint32(23)) & np.uint32(0xFF)
    mantissa = bits & np.uint32(0x7FFFFF)
    return (exponent << np.uint32(24)) | (sign << np.uint32(23)) | mantissa


def gpu_word_to_float_bits(words: np.ndarray) -> np.ndarray:
    """Fig. 2 GPU words -> IEEE 754 uint32 bit patterns."""
    words = np.asarray(words, dtype=np.uint32)
    exponent = words >> np.uint32(24)
    sign = (words >> np.uint32(23)) & np.uint32(1)
    mantissa = words & np.uint32(0x7FFFFF)
    return (sign << np.uint32(31)) | (exponent << np.uint32(23)) | mantissa


def pack_float(values: np.ndarray) -> np.ndarray:
    """float32 host array -> (N, 4) texel bytes in the GPU layout."""
    values = np.ascontiguousarray(values, dtype="<f4").reshape(-1)
    words = float_bits_to_gpu_word(values.view("<u4"))
    return words.astype("<u4").view(np.uint8).reshape(-1, 4).copy()


def unpack_float(texels: np.ndarray) -> np.ndarray:
    """(N, 4) texel bytes -> float32 host array (exact inverse)."""
    texels = np.ascontiguousarray(texels, dtype=np.uint8).reshape(-1, 4)
    words = texels.reshape(-1).view("<u4")
    return gpu_word_to_float_bits(words).view("<f4").copy()


# ----------------------------------------------------------------------
# Shader side (mirrored in numpy): §IV-E reconstruction/decomposition
# ----------------------------------------------------------------------
def shader_unpack_float(
    texel_floats: np.ndarray, preserve_special: bool = True
) -> np.ndarray:
    """Reconstruct float values from four [0,1] channel floats.

    Channels are in byte-significance order (R = byte 0 ... A = byte
    3).  Implements::

        exponent = b3 - 127                      (biased in byte 3)
        sign     = -1 if b2 >= 128 else +1       (MSB of byte 2)
        mantissa = (b0 + 256 b1 + 65536 (b2 mod 128)) / 2^23
        f        = sign * (1 + mantissa) * 2^exponent

    With ``preserve_special`` the encodings for zero (e = 0, treating
    subnormals as zero: flush-to-zero, like the QPU), infinity and NaN
    (e = 255) are recognised, "required in high performance and
    scientific computing" (§IV-E).
    """
    bytes_ = reconstruct_byte(np.asarray(texel_floats, dtype=np.float64))
    b0, b1, b2, b3 = (bytes_[..., i] for i in range(4))
    sign = np.where(b2 >= 128.0, -1.0, 1.0)
    mant_high = np.where(b2 >= 128.0, b2 - 128.0, b2)
    mantissa = (b0 + b1 * 256.0 + mant_high * 65536.0) / MANTISSA_SCALE
    exponent = b3 - float(EXPONENT_BIAS)
    value = sign * (1.0 + mantissa) * np.exp2(exponent)
    if preserve_special:
        is_zero = (b3 == 0.0) & (mantissa == 0.0)
        is_subnormal = (b3 == 0.0) & (mantissa != 0.0)
        is_inf = (b3 == 255.0) & (mantissa == 0.0)
        is_nan = (b3 == 255.0) & (mantissa != 0.0)
        value = np.where(is_zero | is_subnormal, sign * 0.0, value)
        value = np.where(is_inf, sign * np.inf, value)
        value = np.where(is_nan, np.nan, value)
    return value


def shader_pack_float(
    values: np.ndarray, preserve_special: bool = True
) -> np.ndarray:
    """Decompose float values into four [0,1] channel outputs.

    Implements the §IV-E reverse transform with the robust
    normalisation guard (``log2`` on a device is approximate; one
    conditional renormalisation step makes the exponent exact)::

        e = floor(log2(|f|)); p = |f| * 2^-e; renormalise p into [1,2)
        mantissa = round((p - 1) * 2^23)
        b3 = e + 127; b2 = sign*128 + mantissa[22:16]; b1; b0
    """
    v = np.asarray(values, dtype=np.float64)
    sign_bit = (np.signbit(v)).astype(np.float64)
    a = np.abs(v)

    finite = np.isfinite(v)
    positive = a > 0
    safe = np.where(positive & finite, a, 1.0)

    exponent = np.floor(np.log2(safe))
    p = safe * np.exp2(-exponent)
    # Renormalise against log2 rounding error.
    too_big = p >= 2.0
    exponent = np.where(too_big, exponent + 1.0, exponent)
    p = np.where(too_big, p * 0.5, p)
    too_small = p < 1.0
    exponent = np.where(too_small, exponent - 1.0, exponent)
    p = np.where(too_small, p * 2.0, p)

    exponent = np.clip(exponent, -126.0, 128.0)
    mantissa = np.floor((p - 1.0) * MANTISSA_SCALE + 0.5)
    overflow = mantissa >= MANTISSA_SCALE
    exponent = np.where(overflow, exponent + 1.0, exponent)
    mantissa = np.where(overflow, 0.0, mantissa)

    b3 = exponent + float(EXPONENT_BIAS)
    if preserve_special:
        is_inf = ~finite & ~np.isnan(v)
        is_nan = np.isnan(v)
        b3 = np.where(is_inf | is_nan, 255.0, b3)
        mantissa = np.where(is_inf, 0.0, mantissa)
        mantissa = np.where(is_nan, 1.0 * 2**22, mantissa)
        sign_bit = np.where(is_nan, 0.0, sign_bit)
    # Zero collapses to all-zero bytes.  GLSL cannot distinguish -0.0
    # from +0.0 with comparisons, so (matching the generated shader
    # code) the sign of a negative zero is not preserved.
    is_zero = ~positive
    b3 = np.where(is_zero & finite, 0.0, b3)
    mantissa = np.where(is_zero & finite, 0.0, mantissa)
    sign_bit = np.where(is_zero & finite, 0.0, sign_bit)

    out = np.empty(v.shape + (4,), dtype=np.float64)
    out[..., 0] = np.mod(mantissa, 256.0)
    out[..., 1] = np.mod(np.floor(mantissa / 256.0), 256.0)
    out[..., 2] = np.mod(np.floor(mantissa / 65536.0), 128.0) + sign_bit * 128.0
    out[..., 3] = b3
    return out / 255.0
