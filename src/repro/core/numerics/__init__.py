"""Numeric transformations for kernel I/O — the paper's Section IV.

Everything needed to move unsigned/signed chars, 32-bit integers and
IEEE 754 floats through OpenGL ES 2's unsigned-byte-only textures and
framebuffers:

* :mod:`repro.core.numerics.delta` — the quantisation equations
  (1)–(3) and the delta correction;
* :mod:`repro.core.numerics.bytepack` — unsigned/signed char (§IV-A/B);
* :mod:`repro.core.numerics.intpack` — unsigned/signed 32-bit integers
  (§IV-C/D, 24-bit exactness envelope on fp32 GPUs);
* :mod:`repro.core.numerics.floatpack` — IEEE 754 floats with the
  Figure 2 CPU-side bit rearrangement (§IV-E);
* :mod:`repro.core.numerics.formats` — the registry tying host
  layouts, shader mirrors and GLSL function names together.
"""

from .delta import (
    BYTE_LEVELS,
    BYTE_MAX,
    DELTA,
    float_to_texel,
    reconstruct_byte,
    texel_to_float,
)
from .formats import (
    ALIASES,
    FLOAT16,
    FLOAT32,
    FORMATS,
    INT16,
    INT32,
    SCHAR,
    UCHAR,
    UINT16,
    UINT32,
    NumericFormat,
    get_format,
)
from .halfpack import (
    FP16_MANTISSA_BITS,
    FP16_MAX,
    pack_half,
    pack_int16,
    pack_uint16,
    shader_pack_half,
    shader_pack_int16,
    shader_pack_uint16,
    shader_unpack_half,
    shader_unpack_int16,
    shader_unpack_uint16,
    unpack_half,
    unpack_int16,
    unpack_uint16,
)
from .floatpack import (
    float_bits_to_gpu_word,
    gpu_word_to_float_bits,
    pack_float,
    shader_pack_float,
    shader_unpack_float,
    unpack_float,
)
from .intpack import (
    FLOAT_EXACT_INT_LIMIT,
    pack_int,
    pack_uint,
    shader_pack_int,
    shader_pack_uint,
    shader_unpack_int,
    shader_unpack_uint,
    unpack_int,
    unpack_uint,
)
from .bytepack import (
    pack_schar,
    pack_uchar,
    shader_pack_schar,
    shader_pack_uchar,
    shader_unpack_schar,
    shader_unpack_uchar,
    unpack_schar,
    unpack_uchar,
)

__all__ = [
    "FLOAT16",
    "INT16",
    "UINT16",
    "FP16_MANTISSA_BITS",
    "FP16_MAX",
    "pack_half",
    "unpack_half",
    "pack_uint16",
    "unpack_uint16",
    "pack_int16",
    "unpack_int16",
    "shader_pack_half",
    "shader_unpack_half",
    "shader_pack_uint16",
    "shader_unpack_uint16",
    "shader_pack_int16",
    "shader_unpack_int16",
    "BYTE_LEVELS",
    "BYTE_MAX",
    "DELTA",
    "float_to_texel",
    "texel_to_float",
    "reconstruct_byte",
    "NumericFormat",
    "FORMATS",
    "ALIASES",
    "get_format",
    "UCHAR",
    "SCHAR",
    "UINT32",
    "INT32",
    "FLOAT32",
    "FLOAT_EXACT_INT_LIMIT",
    "pack_uchar",
    "unpack_uchar",
    "pack_schar",
    "unpack_schar",
    "pack_uint",
    "unpack_uint",
    "pack_int",
    "unpack_int",
    "pack_float",
    "unpack_float",
    "float_bits_to_gpu_word",
    "gpu_word_to_float_bits",
    "shader_unpack_uchar",
    "shader_pack_uchar",
    "shader_unpack_schar",
    "shader_pack_schar",
    "shader_unpack_uint",
    "shader_pack_uint",
    "shader_unpack_int",
    "shader_pack_int",
    "shader_unpack_float",
    "shader_pack_float",
]
