"""The quantisation constants of §IV (equations (1)–(3)).

OpenGL ES 2 sees texture bytes ``c`` in the shader as ``f = c / 255``
(eq. (1)) and converts fragment outputs back with ``i = f * 255``
quantised to an integer (eq. (2)).  The paper's eq. (3) derives the
correction ``delta`` from the mismatch between the 1/255-spaced texel
values and the 1/256-spaced byte grid; in practice the correction is
applied as a half-step rounding offset before truncation, which is the
form all the shader-side transformations in this package use.
"""

from __future__ import annotations

import numpy as np

#: Number of representable byte values.
BYTE_LEVELS = 2**8  # 256

#: Maximum byte value; eq. (1)'s denominator (2^8 - 1).
BYTE_MAX = BYTE_LEVELS - 1  # 255

#: The paper's delta (eq. (3)): the gap between a 1/255 step and a
#: 1/256 step.  1/255 + delta = 1/256.
DELTA = 1.0 / BYTE_LEVELS - 1.0 / BYTE_MAX

#: Half-texel rounding offset used by the robust (rounding) form of
#: the reconstruction: floor(f * 255 + 0.5).
ROUNDING_OFFSET = 0.5


def texel_to_float(c) -> np.ndarray:
    """Eq. (1): byte value -> shader float in [0, 1]."""
    return np.asarray(c, dtype=np.float64) / BYTE_MAX


def float_to_texel(f, mode: str = "round") -> np.ndarray:
    """Eq. (2): clamp to [0,1] and quantise a shader float to a byte.

    ``mode='floor'`` is the paper's printed form; ``mode='round'`` is
    what the GL ES spec mandates for framebuffer conversion.
    """
    clamped = np.clip(np.asarray(f, dtype=np.float64), 0.0, 1.0)
    if mode == "floor":
        return np.floor(clamped * BYTE_MAX).astype(np.uint8)
    if mode == "round":
        return np.floor(clamped * BYTE_MAX + ROUNDING_OFFSET).astype(np.uint8)
    raise ValueError(f"unknown quantisation mode '{mode}'")


def reconstruct_byte(f) -> np.ndarray:
    """Eq. (4), rounding form: shader float in [0,1] -> original byte.

    This is the bijective mapping M: because texel floats are exact
    multiples of 1/255 (possibly perturbed by one ulp of device
    arithmetic), ``floor(f * 255 + 0.5)`` recovers the byte exactly.
    """
    f = np.asarray(f, dtype=np.float64)
    return np.floor(f * BYTE_MAX + ROUNDING_OFFSET)
