"""The numeric format registry.

One :class:`NumericFormat` per C-language format the paper enables
(§IV: "unsigned and signed variants of char and integer, as well as
floating point"), each bundling:

* the host-side byte layout (value array <-> RGBA texel bytes),
* numpy mirrors of the shader-side transformations (used for
  validation and for the paper's "same transformations on the CPU are
  precise" claim),
* the names of the GLSL functions the code generator emits for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from . import bytepack, floatpack, halfpack, intpack


@dataclass(frozen=True)
class NumericFormat:
    """Descriptor of one supported kernel I/O format."""

    name: str
    #: The numpy dtype of host arrays in this format.
    dtype: np.dtype
    #: Host array -> (N, 4) RGBA texel bytes.
    host_pack: Callable[[np.ndarray], np.ndarray]
    #: (N, 4) RGBA texel bytes -> host array.
    host_unpack: Callable[[np.ndarray], np.ndarray]
    #: numpy mirror of the GLSL unpack ((N,4) [0,1] floats -> values).
    shader_unpack: Callable[[np.ndarray], np.ndarray]
    #: numpy mirror of the GLSL pack (values -> (N,4) [0,1] floats).
    shader_pack: Callable[[np.ndarray], np.ndarray]
    #: GLSL function names emitted by the code generator.
    glsl_unpack_name: str
    glsl_pack_name: str
    #: Whether GPU arithmetic on this format is exact only within the
    #: fp32 24-bit integer envelope (§IV-C).
    limited_to_24_bits: bool = False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


UCHAR = NumericFormat(
    name="uint8",
    dtype=np.dtype(np.uint8),
    host_pack=bytepack.pack_uchar,
    host_unpack=bytepack.unpack_uchar,
    shader_unpack=lambda t: bytepack.shader_unpack_uchar(
        np.asarray(t)[..., 0]
    ),
    shader_pack=lambda v: _r_only(bytepack.shader_pack_uchar(v)),
    glsl_unpack_name="gpgpu_unpack_uchar",
    glsl_pack_name="gpgpu_pack_uchar",
)

SCHAR = NumericFormat(
    name="int8",
    dtype=np.dtype(np.int8),
    host_pack=bytepack.pack_schar,
    host_unpack=bytepack.unpack_schar,
    shader_unpack=lambda t: bytepack.shader_unpack_schar(
        np.asarray(t)[..., 0]
    ),
    shader_pack=lambda v: _r_only(bytepack.shader_pack_schar(v)),
    glsl_unpack_name="gpgpu_unpack_schar",
    glsl_pack_name="gpgpu_pack_schar",
)

UINT32 = NumericFormat(
    name="uint32",
    dtype=np.dtype(np.uint32),
    host_pack=intpack.pack_uint,
    host_unpack=intpack.unpack_uint,
    shader_unpack=intpack.shader_unpack_uint,
    shader_pack=intpack.shader_pack_uint,
    glsl_unpack_name="gpgpu_unpack_uint",
    glsl_pack_name="gpgpu_pack_uint",
    limited_to_24_bits=True,
)

INT32 = NumericFormat(
    name="int32",
    dtype=np.dtype(np.int32),
    host_pack=intpack.pack_int,
    host_unpack=intpack.unpack_int,
    shader_unpack=intpack.shader_unpack_int,
    shader_pack=intpack.shader_pack_int,
    glsl_unpack_name="gpgpu_unpack_int",
    glsl_pack_name="gpgpu_pack_int",
    limited_to_24_bits=True,
)

UINT16 = NumericFormat(
    name="uint16",
    dtype=np.dtype(np.uint16),
    host_pack=halfpack.pack_uint16,
    host_unpack=halfpack.unpack_uint16,
    shader_unpack=halfpack.shader_unpack_uint16,
    shader_pack=halfpack.shader_pack_uint16,
    glsl_unpack_name="gpgpu_unpack_uint16",
    glsl_pack_name="gpgpu_pack_uint16",
)

INT16 = NumericFormat(
    name="int16",
    dtype=np.dtype(np.int16),
    host_pack=halfpack.pack_int16,
    host_unpack=halfpack.unpack_int16,
    shader_unpack=halfpack.shader_unpack_int16,
    shader_pack=halfpack.shader_pack_int16,
    glsl_unpack_name="gpgpu_unpack_int16",
    glsl_pack_name="gpgpu_pack_int16",
)

FLOAT16 = NumericFormat(
    name="float16",
    dtype=np.dtype(np.float16),
    host_pack=halfpack.pack_half,
    host_unpack=halfpack.unpack_half,
    shader_unpack=halfpack.shader_unpack_half,
    shader_pack=halfpack.shader_pack_half,
    glsl_unpack_name="gpgpu_unpack_half",
    glsl_pack_name="gpgpu_pack_half",
)

FLOAT32 = NumericFormat(
    name="float32",
    dtype=np.dtype(np.float32),
    host_pack=floatpack.pack_float,
    host_unpack=floatpack.unpack_float,
    shader_unpack=floatpack.shader_unpack_float,
    shader_pack=floatpack.shader_pack_float,
    glsl_unpack_name="gpgpu_unpack_float32",
    glsl_pack_name="gpgpu_pack_float32",
)

FORMATS = {
    "uint8": UCHAR,
    "int8": SCHAR,
    "uint16": UINT16,
    "int16": INT16,
    "uint32": UINT32,
    "int32": INT32,
    "float16": FLOAT16,
    "float32": FLOAT32,
}

#: Convenience aliases matching the C names used in the paper.
ALIASES = {
    "uchar": "uint8",
    "unsigned char": "uint8",
    "schar": "int8",
    "char": "int8",
    "ushort": "uint16",
    "unsigned short": "uint16",
    "short": "int16",
    "uint": "uint32",
    "unsigned int": "uint32",
    "int": "int32",
    "half": "float16",
    "float": "float32",
}


def get_format(name) -> NumericFormat:
    """Look up a format by name (C aliases accepted) or pass a
    NumericFormat through."""
    if isinstance(name, NumericFormat):
        return name
    key = ALIASES.get(name, name)
    try:
        return FORMATS[key]
    except KeyError:
        raise ValueError(
            f"unknown numeric format '{name}' "
            f"(choose from {sorted(FORMATS)} or aliases {sorted(ALIASES)})"
        )


def _r_only(r_channel: np.ndarray) -> np.ndarray:
    """Expand an R-channel [0,1] float into an RGBA quadruple with
    opaque alpha, matching the byte-format GLSL pack functions."""
    r = np.asarray(r_channel, dtype=np.float64)
    out = np.zeros(r.shape + (4,), dtype=np.float64)
    out[..., 0] = r
    out[..., 3] = 1.0
    return out
