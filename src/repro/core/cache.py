"""``repro.core.cache`` — persistent, content-addressed compile-artifact store.

The paper's platform makes shader compilation expensive relative to
kernel runtime, and the repro models that cost explicitly (the
wall-time model's compile term, ``relinks_on_relaunch`` in the bench
report).  The in-process caches already make *relaunches* free; this
module makes *process launches* cheap too, by persisting the compile
pipeline's artifacts on disk so every later process — a cold CLI run,
a pytest session, a ``gles2.parallel`` worker — warm-starts from the
store instead of re-running parse → typecheck → IR-optimise →
JIT-codegen.

Three artifact kinds are stored, one per pipeline stage:

``frontend``
    The pickled :class:`~repro.glsl.typecheck.CheckedShader` (the
    parse/typecheck result), keyed by (stage, source digest).
``ir``
    The pickled optimised :class:`~repro.glsl.ir.nodes.CompiledProgram`
    (lowering + the whole pass pipeline), keyed additionally by the
    float model and fusion signature.
``jit``
    The generated NumPy source plus its captured namespace in a
    pickle-safe encoding (arrays as-is, builtin implementations by
    registry key), keyed additionally by the texture-gather flag and
    the wide-global set.  Programs outside the JIT subset store an
    ``unsupported`` marker so the negative result is warm too.

Every key mixes in the cache schema version and the Python/NumPy
versions (:func:`env_fingerprint`), so interpreter or dependency
upgrades silently invalidate the whole store rather than feeding a new
runtime stale artifacts.

Storage is crash- and concurrency-safe by construction: entries are
single files written to a temp name and published with an atomic
``os.replace`` (readers never observe torn writes), the LRU eviction
scan serialises on an advisory ``fcntl`` lock, and *any* invalid entry
— truncated, garbage, checksum-mismatched, wrong schema — is treated
as a miss, deleted, and recompiled.  A racing second writer simply
republishes bit-identical content.

Knobs (environment, read lazily so tests can flip them):

``REPRO_CACHE=0``
    Disable the disk layer entirely (in-process caches unaffected).
``REPRO_CACHE_DIR``
    Store location (default ``~/.cache/repro``).
``REPRO_CACHE_MAX_BYTES``
    LRU size bound (default 256 MiB); the store is trimmed to 80 % of
    the bound, oldest-access first, when a write overflows it.

Observability: every lookup/eviction/corruption tallies into
:data:`repro.perf.counters.disk_cache_stats`; GL contexts mirror the
deltas into ``ContextStats`` and ``python -m repro.cache`` reports the
store's contents (see that module for the maintenance CLI).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import sys
import tempfile
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional, Tuple

import numpy as np

from ..perf import trace
from ..perf.counters import disk_cache_stats

#: Bump to invalidate every existing store (key *and* entry header).
SCHEMA_VERSION = 1

_MAGIC = b"repro-artifact-v1\n"
_ENTRY_SUFFIX = ".art"
_DEFAULT_MAX_BYTES = 256 * 1024 * 1024
#: Trim target once the size bound is hit (fraction of the bound).
_EVICT_TO = 0.8

stats = disk_cache_stats


# ----------------------------------------------------------------------
# Configuration (lazy env reads so monkeypatched tests see changes)
# ----------------------------------------------------------------------
def enabled() -> bool:
    """Whether the disk layer is active (``REPRO_CACHE=0`` disables)."""
    return os.environ.get("REPRO_CACHE", "1") != "0"


def cache_dir() -> Path:
    """The store root (``REPRO_CACHE_DIR`` or ``~/.cache/repro``)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


def max_bytes() -> int:
    from .knobs import int_knob

    return int_knob(
        "REPRO_CACHE_MAX_BYTES", _DEFAULT_MAX_BYTES, minimum=1
    )


def env_fingerprint() -> str:
    """The runtime component of every key: artifacts are pickles and
    generated Python source, so they are only valid within one
    (Python minor, NumPy) combination."""
    return (
        f"py{sys.version_info.major}.{sys.version_info.minor}"
        f"-np{np.__version__}"
    )


def model_tag(fmodel) -> str:
    """The float-model key component — mirrors the in-memory IR cache
    key (:func:`repro.glsl.ir._model_key`)."""
    return (
        f"{getattr(fmodel, 'name', fmodel.__class__.__name__)}"
        f":{np.dtype(fmodel.dtype).str}"
    )


def artifact_key(
    kind: str,
    source_digest: str,
    *,
    stage: str = "",
    model: str = "",
    gather: Optional[bool] = None,
    wide: Iterable[str] = (),
    fusion: str = "",
) -> str:
    """Compose one content-addressed key.

    Every knob that changes the artifact's bytes is a component:
    the GLSL source digest, the shader stage, the float model, the
    texture-gather flag, the wide-global set (JIT only), the fusion
    signature of composed map chains, the schema version, and the
    Python/NumPy versions.  Execution-irrelevant knobs (``tile_size``,
    ``shade_workers``, ``graph_mode``) deliberately have no component:
    they change scheduling, never generated code.
    """
    parts = (
        f"schema={SCHEMA_VERSION}",
        f"env={env_fingerprint()}",
        f"kind={kind}",
        f"src={source_digest}",
        f"stage={stage}",
        f"model={model}",
        f"gather={'' if gather is None else int(bool(gather))}",
        f"wide={','.join(sorted(wide))}",
        f"fusion={fusion}",
    )
    return hashlib.sha256("\x1f".join(parts).encode("utf-8")).hexdigest()


def _entry_path(key: str) -> Path:
    return cache_dir() / f"v{SCHEMA_VERSION}" / key[:2] / (key + _ENTRY_SUFFIX)


# ----------------------------------------------------------------------
# Raw entry I/O
# ----------------------------------------------------------------------
def _pack(payload: bytes, kind: str) -> bytes:
    header = json.dumps({
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "len": len(payload),
        "sha256": hashlib.sha256(payload).hexdigest(),
    }, sort_keys=True).encode("utf-8")
    return _MAGIC + header + b"\n" + payload


def _unpack(blob: bytes) -> Optional[Tuple[Dict, bytes]]:
    """Validate one entry blob; None for anything malformed."""
    if not blob.startswith(_MAGIC):
        return None
    rest = blob[len(_MAGIC):]
    newline = rest.find(b"\n")
    if newline < 0:
        return None
    try:
        header = json.loads(rest[:newline].decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(header, dict) or header.get("schema") != SCHEMA_VERSION:
        return None
    payload = rest[newline + 1:]
    if len(payload) != header.get("len"):
        return None
    if hashlib.sha256(payload).hexdigest() != header.get("sha256"):
        return None
    return header, payload


def get(key: str) -> Optional[bytes]:
    """Look one entry up; validates integrity and refreshes its LRU
    access time.  Corrupt entries are deleted and reported as misses."""
    if not enabled():
        return None
    path = _entry_path(key)
    try:
        blob = path.read_bytes()
    except OSError:
        stats.misses += 1
        trace.instant("cache.miss", "cache", {"key": key[:16]})
        return None
    from ..testing import faults

    if faults.fire("cache_corrupt"):
        # Simulated bit rot: hand the validator garbage bytes so the
        # corrupt-entry path below (count, delete, recompile) runs
        # against a real on-disk entry.
        blob = blob[: len(_MAGIC)] + b"\x00" + blob[len(_MAGIC) + 1:]
    unpacked = _unpack(blob)
    if unpacked is None:
        stats.corrupt += 1
        stats.misses += 1
        trace.instant("cache.corrupt", "cache", {"key": key[:16]})
        try:
            path.unlink()
        except OSError:
            pass
        return None
    stats.hits += 1
    trace.instant("cache.hit", "cache", {
        "key": key[:16], "kind": unpacked[0].get("kind", "unknown"),
    })
    try:
        os.utime(path)
    except OSError:
        pass
    return unpacked[1]


def contains(key: str) -> bool:
    """Entry presence without reading it (no hit/miss accounting)."""
    if not enabled():
        return False
    try:
        return _entry_path(key).is_file()
    except OSError:
        return False


def put(key: str, payload: bytes, kind: str) -> bool:
    """Publish one entry atomically (tmp file + rename); runs the LRU
    trim afterwards.  Failures never break a compile — they are
    counted (``write_failures``), optionally logged
    (``REPRO_DEBUG_FAULTS=1``), and the caller proceeds uncached."""
    if not enabled():
        return False
    from ..testing import faults

    path = _entry_path(key)
    tmp = None
    try:
        if faults.fire("cache_enospc"):
            raise OSError(28, "injected fault: no space left on device")
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=".tmp-")
        with os.fdopen(fd, "wb") as handle:
            handle.write(_pack(payload, kind))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        tmp = None
        trace.instant("cache.publish", "cache", {
            "key": key[:16], "kind": kind, "bytes": len(payload),
        })
    except OSError as exc:
        stats.write_failures += 1
        faults.note_swallowed("cache_write", exc)
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        return False
    _maybe_evict()
    return True


def invalidate(key: str) -> None:
    """Drop one entry (deserialisation-level corruption: the envelope
    checksum passed but the payload would not load)."""
    stats.corrupt += 1
    try:
        _entry_path(key).unlink()
    except OSError:
        pass


def iter_entries() -> Iterator[Path]:
    root = cache_dir() / f"v{SCHEMA_VERSION}"
    try:
        yield from root.glob(f"*/*{_ENTRY_SUFFIX}")
    except OSError:
        return


def usage() -> Tuple[int, int]:
    """(entry count, total bytes) of the store."""
    entries = 0
    total = 0
    for path in iter_entries():
        try:
            total += path.stat().st_size
            entries += 1
        except OSError:
            continue
    return entries, total


def clear() -> int:
    """Remove every entry; returns the number removed."""
    removed = 0
    for path in iter_entries():
        try:
            path.unlink()
            removed += 1
        except OSError:
            continue
    return removed


def verify() -> Dict[str, int]:
    """Re-validate every entry (magic, header, payload digest, payload
    deserialisation) and drop the invalid ones."""
    kept = 0
    dropped = 0
    for path in iter_entries():
        ok = False
        try:
            unpacked = _unpack(path.read_bytes())
            if unpacked is not None:
                header, payload = unpacked
                if header.get("kind") == "frontend":
                    ok = load_checked(payload) is not None
                elif header.get("kind") == "ir":
                    ok = load_program(payload, None) is not None
                elif header.get("kind") == "jit":
                    ok = load_jit_entry(payload) is not None
                else:
                    ok = True
        except OSError:
            continue
        if ok:
            kept += 1
        else:
            dropped += 1
            stats.corrupt += 1
            try:
                path.unlink()
            except OSError:
                pass
    return {"kept": kept, "dropped": dropped}


#: How old an unpublished ``.tmp-*`` file must be before the trim
#: treats it as an orphan (a writer killed between mkstemp and
#: os.replace).  One hour: comfortably past any legitimate in-flight
#: publish, so a racing live writer is never swept.
_ORPHAN_MAX_AGE_SECONDS = 3600.0


def _sweep_orphans(root: Path) -> None:
    """Remove stale mkstemp leftovers the atomic-publish protocol can
    leak when a writer dies mid-publish.  Without this the LRU trim
    never touches them (it only scans ``*.art``) and they accumulate
    forever in the cache dir."""
    import time

    cutoff = time.time() - _ORPHAN_MAX_AGE_SECONDS
    try:
        candidates = list(root.glob("*/.tmp-*"))
    except OSError:
        return
    for path in candidates:
        try:
            if path.stat().st_mtime < cutoff:
                path.unlink()
                stats.orphans_removed += 1
        except OSError:
            continue


def _maybe_evict() -> None:
    """LRU size bound: trim oldest-access entries once the store
    overflows ``max_bytes()``.  The scan serialises on an advisory
    lock; a contended lock skips the trim (another process is already
    doing it, counted in ``lock_skips``).  Every run also sweeps
    orphaned publish temp files (:func:`_sweep_orphans`)."""
    bound = max_bytes()
    root = cache_dir() / f"v{SCHEMA_VERSION}"
    from ..testing import faults

    _sweep_orphans(root)
    lock_handle = None
    try:
        entries = []
        total = 0
        for path in root.glob(f"*/*{_ENTRY_SUFFIX}"):
            try:
                meta = path.stat()
            except OSError:
                continue
            entries.append((meta.st_mtime, meta.st_size, path))
            total += meta.st_size
        if total <= bound:
            return
        if faults.fire("cache_lock"):
            stats.lock_skips += 1
            return  # injected contention: someone else is trimming
        try:
            import fcntl

            lock_handle = open(root / ".lock", "a+b")
            fcntl.flock(lock_handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except ImportError:
            lock_handle = None
        except OSError:
            stats.lock_skips += 1
            if lock_handle is not None:
                lock_handle.close()
            return  # someone else is trimming
        entries.sort()  # oldest access first
        target = bound * _EVICT_TO
        for __, size, path in entries:
            if total <= target:
                break
            try:
                path.unlink()
                total -= size
                stats.evictions += 1
            except OSError:
                continue
    except OSError:
        return
    finally:
        if lock_handle is not None:
            lock_handle.close()


def reset_stats() -> None:
    stats.reset()


# ----------------------------------------------------------------------
# Artifact (de)serialisation
# ----------------------------------------------------------------------
class _ArtifactPickler(pickle.Pickler):
    """Pickler that ships builtin overloads by registry key (their
    ``impl`` lambdas do not pickle) and strips a
    :class:`CompiledProgram` down to its persistent fields — the
    structured IR, register count and constant pool — dropping the
    attached runtime caches and the live CheckedShader reference."""

    def persistent_id(self, obj):
        from ..glsl.builtins import BuiltinOverload

        if isinstance(obj, BuiltinOverload):
            return ("builtin", obj.key)
        return None

    def reducer_override(self, obj):
        from ..glsl.ir.nodes import CompiledProgram

        if isinstance(obj, CompiledProgram):
            state = {
                "globals_plan": obj.globals_plan,
                "body": obj.body,
                "nregs": obj.nregs,
                "consts": obj.consts,
            }
            return (_fresh_program, (), state)
        return NotImplemented


class _ArtifactUnpickler(pickle.Unpickler):
    def persistent_load(self, pid):
        from ..glsl.builtins import OVERLOADS_BY_KEY

        tag, key = pid
        if tag == "builtin":
            return OVERLOADS_BY_KEY[key]
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def _fresh_program():
    from ..glsl.ir.nodes import CompiledProgram

    program = CompiledProgram.__new__(CompiledProgram)
    program.checked = None
    program._const_cache = {}
    program.linear = None
    program.global_linear = None
    return program


def _dumps(obj) -> bytes:
    buffer = io.BytesIO()
    _ArtifactPickler(buffer, protocol=4).dump(obj)
    return buffer.getvalue()


#: What deserialising a stale or hostile payload can legitimately
#: raise: the pickle protocol's own errors (``UnpicklingError``,
#: ``EOFError``, ``AttributeError``, ``ImportError``, ``IndexError``
#: per the pickle docs), ``KeyError`` from
#: :meth:`_ArtifactUnpickler.persistent_load` resolving a builtin key
#: that no longer exists in the registry, and ``TypeError`` /
#: ``ValueError`` / ``UnicodeDecodeError`` from malformed opcodes and
#: reconstructed state.  Anything else (``KeyboardInterrupt``,
#: ``MemoryError``, a genuine repro bug) propagates — a cache must
#: degrade on bad *data*, not mask broken *code*.
_DESERIALISE_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ImportError,
    IndexError,
    KeyError,
    TypeError,
    ValueError,
    UnicodeDecodeError,
)


def _loads(data: bytes):
    return _ArtifactUnpickler(io.BytesIO(data)).load()


def _note_load_failure(kind: str, exc: BaseException) -> None:
    from ..testing import faults

    faults.note_swallowed(f"cache_load[{kind}]", exc)


def dump_checked(checked) -> bytes:
    return _dumps(checked)


def load_checked(data: bytes):
    """Deserialise a front-end artifact; None on any data failure
    (counted in ``load_failures``, logged under
    ``REPRO_DEBUG_FAULTS=1``)."""
    from ..glsl.typecheck import CheckedShader

    try:
        checked = _loads(data)
    except _DESERIALISE_ERRORS as exc:
        stats.load_failures += 1
        _note_load_failure("frontend", exc)
        return None
    return checked if isinstance(checked, CheckedShader) else None


def dump_program(program) -> bytes:
    return _dumps(program)


def load_program(data: bytes, checked):
    """Deserialise an IR artifact and re-attach the live CheckedShader;
    None on any failure."""
    from ..glsl.ir.nodes import CompiledProgram

    try:
        program = _loads(data)
    except _DESERIALISE_ERRORS as exc:
        stats.load_failures += 1
        _note_load_failure("ir", exc)
        return None
    if not isinstance(program, CompiledProgram):
        return None
    program.checked = checked
    return program


def encode_captured(captured: Dict[str, object]) -> Optional[Dict]:
    """Pickle-safe encoding of a JIT function's captured namespace:
    ndarrays as-is, builtin implementations by registry key.  None when
    some captured object has no shippable encoding (the entry is then
    simply not cached)."""
    from ..glsl.builtins import OVERLOADS_BY_KEY

    impl_keys = {
        id(overload.impl): key
        for key, overload in OVERLOADS_BY_KEY.items()
    }
    encoded: Dict[str, Tuple[str, object]] = {}
    for name in sorted(captured):
        obj = captured[name]
        if isinstance(obj, np.ndarray):
            encoded[name] = ("array", obj)
        else:
            key = impl_keys.get(id(obj))
            if key is None:
                return None
            encoded[name] = ("builtin", key)
    return encoded


def decode_captured(encoded: Dict) -> Dict[str, object]:
    from ..glsl.builtins import OVERLOADS_BY_KEY

    return {
        name: (payload if kind == "array" else OVERLOADS_BY_KEY[payload].impl)
        for name, (kind, payload) in encoded.items()
    }


def dump_jit_entry(source: str, encoded_captured: Dict) -> bytes:
    return _dumps({"source": source, "captured": encoded_captured})


def dump_jit_unsupported(reason: str) -> bytes:
    return _dumps({"unsupported": reason})


def load_jit_entry(data: bytes) -> Optional[Dict]:
    """Deserialise a JIT artifact — either ``{"source", "captured"}``
    or ``{"unsupported": reason}``; None on any data failure."""
    try:
        entry = _loads(data)
    except _DESERIALISE_ERRORS as exc:
        stats.load_failures += 1
        _note_load_failure("jit", exc)
        return None
    if not isinstance(entry, dict):
        return None
    if "unsupported" in entry:
        return entry
    if not isinstance(entry.get("source"), str):
        return None
    if not isinstance(entry.get("captured"), dict):
        return None
    return entry
