"""Errors raised by the GPGPU framework API."""

from __future__ import annotations


class GpgpuError(Exception):
    """Base class for framework-level errors (bad arguments, format
    mismatches, using a released resource)."""


class ShaderBuildError(GpgpuError):
    """Generated GLSL failed to compile or link — carries the driver
    info log and the offending source for debugging."""

    def __init__(self, message: str, info_log: str = "", source: str = ""):
        detail = message
        if info_log:
            detail += "\n" + info_log.rstrip()
        if source:
            numbered = "\n".join(
                f"{i + 1:4d} | {line}" for i, line in enumerate(source.split("\n"))
            )
            detail += "\n--- generated source ---\n" + numbered
        super().__init__(detail)
        self.info_log = info_log
        self.source = source
