"""Kernel pipelines with readback-order optimisation (challenge 7).

A :class:`Pipeline` is an ordered list of kernel launches.  Because
ES 2 can only read data back from the *currently framebuffer-attached*
texture, the order of kernels determines whether the final result
needs an extra copy pass: "with careful kernel ordering the texture to
be read can be already mapped into the framebuffer, so that there is
no need for the additional shader" (§III-7).

``Pipeline.run`` executes the steps in order and returns the output of
the last step; reading that output immediately afterwards uses the
direct path.  Set ``force_copy_readback`` on the device to measure the
unoptimised alternative (the E5 ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .buffer import GpuArray
from .errors import GpgpuError
from .kernel import Kernel


@dataclass
class PipelineStep:
    """One kernel launch within a pipeline."""

    kernel: Kernel
    out: GpuArray
    inputs: Dict[str, GpuArray] = field(default_factory=dict)
    uniforms: Dict[str, object] = field(default_factory=dict)


class Pipeline:
    """An ordered multi-kernel computation."""

    def __init__(self, device):
        self.device = device
        self.steps: List[PipelineStep] = []

    def add(
        self,
        kernel: Kernel,
        out: GpuArray,
        inputs: Optional[Dict[str, GpuArray]] = None,
        uniforms: Optional[Dict[str, object]] = None,
    ) -> "Pipeline":
        """Append a launch.  Returns self for chaining."""
        if kernel.device is not self.device:
            raise GpgpuError("kernel belongs to a different device")
        self.steps.append(
            PipelineStep(kernel, out, dict(inputs or {}), dict(uniforms or {}))
        )
        return self

    def reorder_for_readback(self, final: GpuArray) -> "Pipeline":
        """Challenge-(7) optimisation: move the step producing
        ``final`` to the end when data dependences allow, so the
        result is framebuffer-resident at readback time.

        Steps after the producer that neither read nor write ``final``
        are independent of it and can run before it.
        """
        producer_index = None
        for i, step in enumerate(self.steps):
            if step.out is final:
                producer_index = i
        if producer_index is None or producer_index == len(self.steps) - 1:
            return self
        producer = self.steps[producer_index]
        tail = self.steps[producer_index + 1 :]
        for step in tail:
            touches = step.out is final or any(
                array is final for array in step.inputs.values()
            )
            if touches:
                return self  # dependence: cannot reorder
        self.steps = (
            self.steps[:producer_index] + tail + [producer]
        )
        return self

    def run(self) -> Optional[GpuArray]:
        """Execute all steps in order; returns the last output."""
        result = None
        for step in self.steps:
            step.kernel(step.out, inputs=step.inputs, uniforms=step.uniforms)
            result = step.out
        return result
