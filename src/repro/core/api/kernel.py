"""Kernel: a compiled GPGPU computation.

A kernel is one generated fragment shader (plus the pass-through
vertex shader of challenge 1) compiled into a GL program.  Launching
it renders the fullscreen quad (challenge 2) into the output array's
framebuffer, with inputs bound as textures.

``MultiOutputKernel`` wraps the challenge-(8) split: a body assigning
``result0..resultN`` becomes N+1 programs executed back to back.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...gles2 import enums as gl
from ..codegen.kernelsplit import split_multi_output
from ..codegen.templates import (
    FULLSCREEN_QUAD_VERTICES,
    KernelSource,
    generate_kernel_source,
)
from ..numerics.formats import get_format
from .buffer import GpuArray
from .errors import GpgpuError, ShaderBuildError


@dataclass(frozen=True)
class KernelSpec:
    """The generation-time recipe of a kernel — everything needed to
    re-derive (and therefore to *compose*) its fragment shader.

    The launch-graph scheduler (:mod:`repro.core.api.graph`) fuses a
    map chain by concatenating the stages' bodies into one program;
    that is only possible for kernels whose recipe was captured here.
    Kernels built directly from sources (multi-output splits, hand
    supplied programs) carry no spec and never fuse.
    """

    name: str
    inputs: Tuple[Tuple[str, str], ...]  # (input name, format name)
    output: str  # format name
    body: str
    uniforms: Tuple[Tuple[str, str], ...] = ()
    mode: str = "map"
    preamble: str = ""


def program_cache_key(vertex_source: str, fragment_source: str) -> Tuple[str, str]:
    """The source-hash half of the program-cache key.

    Two kernels with the same key compile to the same GL program; the
    other half of the full key — the device float/precision model — is
    applied downstream (the gles2 front-end cache shares the
    ``CheckedShader`` per source hash, and
    :func:`repro.glsl.ir.get_compiled` memoises the compiled IR per
    float model on it)."""
    return (
        hashlib.sha1(vertex_source.encode("utf-8")).hexdigest(),
        hashlib.sha1(fragment_source.encode("utf-8")).hexdigest(),
    )


class Kernel:
    """One single-output GPGPU kernel."""

    def __init__(
        self,
        device,
        name: str,
        inputs: Sequence[Tuple[str, object]],
        output: object,
        body: str,
        uniforms: Sequence[Tuple[str, str]] = (),
        mode: str = "map",
        preamble: str = "",
    ):
        self.device = device
        self.name = name
        self.input_formats = [(iname, get_format(fmt)) for iname, fmt in inputs]
        self.output_format = get_format(output)
        self.source: KernelSource = generate_kernel_source(
            name=name,
            inputs=inputs,
            output_format=output,
            body=body,
            uniforms=uniforms,
            mode=mode,
            preamble=preamble,
        )
        self.spec: Optional[KernelSpec] = KernelSpec(
            name=name,
            inputs=tuple((n, get_format(f).name) for n, f in inputs),
            output=self.output_format.name,
            body=body,
            uniforms=tuple(uniforms),
            mode=mode,
            preamble=preamble,
        )
        self._bind_program()

    @classmethod
    def from_source(
        cls,
        device,
        name: str,
        inputs: Sequence[Tuple[str, object]],
        output: object,
        source: KernelSource,
        spec: Optional[KernelSpec] = None,
    ) -> "Kernel":
        """Build a kernel from an already-generated source (used by
        the multi-output splitter and the device kernel cache)."""
        kernel = cls.__new__(cls)
        kernel.device = device
        kernel.name = name
        kernel.input_formats = [(n, get_format(f)) for n, f in inputs]
        kernel.output_format = get_format(output)
        kernel.source = source
        kernel.spec = spec
        kernel._bind_program()
        return kernel

    def _bind_program(self) -> None:
        """Compile/link the generated sources and cache locations."""
        device = self.device
        self.cache_key = program_cache_key(self.source.vertex, self.source.fragment)
        self.program = device.build_program(self.source.vertex, self.source.fragment)
        ctx = device.ctx
        self._position_location = ctx.glGetAttribLocation(self.program, "a_position")
        self._uniform_locations: Dict[str, int] = {}
        for uname in (
            [self.source.out_size_uniform]
            + list(self.source.sampler_uniforms.values())
            + list(self.source.size_uniforms.values())
            + [u for u, __ in self.source.user_uniforms]
        ):
            self._uniform_locations[uname] = ctx.glGetUniformLocation(
                self.program, uname
            )
        self._user_uniform_types = dict(self.source.user_uniforms)

    # ------------------------------------------------------------------
    def __call__(
        self,
        out: GpuArray,
        inputs: Optional[Dict[str, GpuArray]] = None,
        uniforms: Optional[Dict[str, object]] = None,
    ) -> GpuArray:
        """Launch the kernel: one fragment per output texel."""
        inputs = inputs or {}
        uniforms = uniforms or {}
        self.validate_launch(out, inputs, uniforms)
        return self._execute(out, inputs, uniforms)

    def validate_launch(
        self,
        out,
        inputs: Dict[str, object],
        uniforms: Dict[str, object],
    ) -> None:
        """Check a (out, inputs, uniforms) binding without executing.

        Shared between the eager launch path and the launch-graph
        recorder (which validates at record time so mistakes surface
        where they were made, not at replay)."""
        device = self.device
        expected = {iname for iname, __ in self.input_formats}
        provided = set(inputs)
        if expected != provided:
            raise GpgpuError(
                f"kernel '{self.name}' expects inputs {sorted(expected)}, "
                f"got {sorted(provided)}"
            )
        for iname, fmt in self.input_formats:
            array = inputs[iname]
            if array.device is not device:
                raise GpgpuError(
                    f"input '{iname}' belongs to a different GpgpuDevice "
                    "(GL objects are not shareable across contexts)"
                )
            if array.format.name != fmt.name:
                raise GpgpuError(
                    f"input '{iname}' of kernel '{self.name}' must be "
                    f"{fmt.name}, got {array.format.name}"
                )
        if out.device is not device:
            raise GpgpuError(
                "output array belongs to a different GpgpuDevice"
            )
        if out.format.name != self.output_format.name:
            raise GpgpuError(
                f"kernel '{self.name}' writes {self.output_format.name}, "
                f"output array is {out.format.name}"
            )
        if any(array is out for array in inputs.values()):
            raise GpgpuError(
                "an array cannot be both input and output of the same "
                "launch (feedback through a texture is undefined in GL)"
            )
        unknown = set(uniforms) - set(self._user_uniform_types)
        if unknown:
            raise GpgpuError(
                f"unknown uniforms {sorted(unknown)} for kernel '{self.name}'"
            )

    def _execute(
        self,
        out,
        inputs: Dict[str, "GpuArray"],
        uniforms: Dict[str, object],
    ):
        """Run an already-validated launch through the GL state
        machine.  ``out``/``inputs`` must be materialised arrays."""
        device = self.device
        ctx = device.ctx
        ctx.glUseProgram(self.program)
        ctx.glBindFramebuffer(gl.GL_FRAMEBUFFER, out.framebuffer())
        ctx.glViewport(0, 0, out.width, out.height)

        for unit, (iname, __) in enumerate(self.input_formats):
            array = inputs[iname]
            ctx.glActiveTexture(gl.GL_TEXTURE0 + unit)
            ctx.glBindTexture(gl.GL_TEXTURE_2D, array.texture)
            ctx.glUniform1i(self._uniform_locations[self.source.sampler_uniforms[iname]], unit)
            ctx.glUniform2f(
                self._uniform_locations[self.source.size_uniforms[iname]],
                *array.size_vec2,
            )
        ctx.glUniform2f(
            self._uniform_locations[self.source.out_size_uniform], *out.size_vec2
        )
        for uname, value in uniforms.items():
            self._set_user_uniform(uname, value)

        loc = self._position_location
        ctx.glEnableVertexAttribArray(loc)
        ctx.glVertexAttribPointer(
            loc, 2, gl.GL_FLOAT, False, 0, FULLSCREEN_QUAD_VERTICES
        )
        ctx.glDrawArrays(gl.GL_TRIANGLES, 0, 6)
        device.fb_resident = out
        return out

    # ------------------------------------------------------------------
    def _set_user_uniform(self, name: str, value) -> None:
        ctx = self.device.ctx
        location = self._uniform_locations[name]
        utype = self._user_uniform_types[name]
        try:
            if utype == "float":
                ctx.glUniform1f(location, float(value))
            elif utype in ("int", "bool"):
                ctx.glUniform1i(location, int(value))
            elif utype in ("vec2", "vec3", "vec4"):
                comps = int(utype[-1])
                values = np.asarray(value, dtype=np.float64).reshape(comps)
                getattr(ctx, f"glUniform{comps}f")(location, *values)
            elif utype in ("ivec2", "ivec3", "ivec4"):
                comps = int(utype[-1])
                values = np.asarray(value, dtype=np.int64).reshape(comps)
                getattr(ctx, f"glUniform{comps}i")(location, *values)
            elif utype in ("mat2", "mat3", "mat4"):
                order = int(utype[-1])
                getattr(ctx, f"glUniformMatrix{order}fv")(
                    location, 1, False, np.asarray(value, dtype=np.float64)
                )
            else:  # pragma: no cover - guarded at generation time
                raise GpgpuError(f"unsupported uniform type {utype}")
        except (TypeError, ValueError) as exc:
            received = np.asarray(value)
            raise GpgpuError(
                f"kernel '{self.name}': uniform '{name}' expects a "
                f"{utype} value, got shape {received.shape} "
                f"(dtype {received.dtype}): {exc}"
            ) from exc


class MultiOutputKernel:
    """Challenge (8): a kernel with several outputs, executed as one
    generated program per output."""

    def __init__(
        self,
        device,
        name: str,
        inputs: Sequence[Tuple[str, object]],
        outputs: Sequence[object],
        body: str,
        uniforms: Sequence[Tuple[str, str]] = (),
        mode: str = "map",
        preamble: str = "",
    ):
        self.device = device
        self.name = name
        sources = split_multi_output(
            name=name,
            inputs=inputs,
            output_formats=list(outputs),
            body=body,
            uniforms=uniforms,
            mode=mode,
            preamble=preamble,
        )
        self.kernels: List[Kernel] = [
            Kernel.from_source(device, f"{name}.out{i}", inputs, outputs[i], source)
            for i, source in enumerate(sources)
        ]

    def __call__(
        self,
        outs: Sequence[GpuArray],
        inputs: Optional[Dict[str, GpuArray]] = None,
        uniforms: Optional[Dict[str, object]] = None,
    ) -> Sequence[GpuArray]:
        if len(outs) != len(self.kernels):
            raise GpgpuError(
                f"kernel '{self.name}' produces {len(self.kernels)} outputs, "
                f"got {len(outs)} arrays"
            )
        for kernel, out in zip(self.kernels, outs):
            kernel(out, inputs=inputs, uniforms=uniforms)
        return outs
