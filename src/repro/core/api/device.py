"""GpgpuDevice: the top of the public API.

Owns the simulated GL context, builds programs with proper error
surfacing, allocates :class:`GpuArray` storage, constructs kernels,
implements both challenge-(7) readback strategies, and exposes the
performance-model wall clock for benchmarks.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ...gles2 import GLES2Context, enums as gl
from ...gles2.precision import FloatModel
from ...perf.machines import GpuParameters, VIDEOCORE_IV_GPU
from ...perf.wallclock import GpuTimeline, gpu_wall_time
from ..codegen.templates import (
    COPY_FRAGMENT_SHADER,
    FULLSCREEN_QUAD_VERTICES,
    PASSTHROUGH_VERTEX_SHADER,
    generate_kernel_source,
)
from ..numerics.formats import ALIASES, FORMATS, NumericFormat, get_format
from .buffer import GpuArray
from .errors import GpgpuError, ShaderBuildError
from .kernel import Kernel, KernelSpec, MultiOutputKernel, program_cache_key


class GpgpuDevice:
    """A general-purpose compute device on top of OpenGL ES 2.

    Parameters
    ----------
    float_model:
        Device arithmetic model: ``"exact"`` (float64 reference),
        ``"ieee32"`` or ``"videocore"`` (reduced-precision, matching
        the paper's observed 15-bit band).
    quantization:
        Framebuffer byte conversion: ``"round"`` (GL ES spec) or
        ``"floor"`` (the paper's printed eq. (2)).
    machine:
        GPU timing parameters for :meth:`wall_time`.
    execution_backend:
        ``"ast"`` (reference tree-walking interpreter), ``"ir"``
        (compiled linear-IR executor, bit-identical and faster on
        repeated launches) or ``"jit"`` (generated straight-line
        numpy code per compiled program — fastest steady state;
        falls back to the IR executor outside the JIT subset).
    tile_size:
        Fragment-tile edge in pixels; None selects the automatic
        policy (tile only when workers could use it and the draw is
        large).  Env default: ``REPRO_TILE_SIZE``.
    shade_workers:
        Worker processes for fragment shading (JIT backend only; 0 =
        in-process).  Env default: ``REPRO_SHADE_WORKERS``.
    graph_mode:
        When true, the multi-pass kernel drivers (``repro.kernels``)
        and graph-aware workloads record their launches into a
        deferred :class:`~repro.core.api.graph.LaunchGraph` and replay
        them through the fusing scheduler instead of executing
        eagerly.  None reads the ``REPRO_GRAPH`` environment knob
        ("1" enables); eager execution is the default.
    """

    def __init__(
        self,
        float_model: Union[str, FloatModel] = "ieee32",
        quantization: str = "round",
        machine: GpuParameters = VIDEOCORE_IV_GPU,
        strict_errors: bool = True,
        max_loop_iterations: int = 65536,
        execution_backend: str = "ast",
        tile_size: Optional[int] = None,
        shade_workers: Optional[int] = None,
        graph_mode: Optional[bool] = None,
    ):
        self.ctx = GLES2Context(
            width=1,
            height=1,
            float_model=float_model,
            quantization=quantization,
            strict_errors=strict_errors,
            max_loop_iterations=max_loop_iterations,
            execution_backend=execution_backend,
            tile_size=tile_size,
            shade_workers=shade_workers,
        )
        self.machine = machine
        #: Kernel objects memoised on their program-cache key.
        self._kernel_cache: Dict[Tuple[str, str], Kernel] = {}
        #: How many kernel() calls were served from the cache (full
        #: compile + link skipped) — asserted by tests.
        self.kernel_cache_hits = 0
        #: The array whose texture is attached to the currently bound
        #: FBO with freshly rendered contents (challenge 7 tracking).
        self.fb_resident: Optional[GpuArray] = None
        #: Ablation switch: force the copy-shader readback path even
        #: when a direct read would do.
        self.force_copy_readback = False
        self._copy_program: Optional[int] = None
        self._scratch: Dict[Tuple[int, int], GpuArray] = {}
        if graph_mode is None:
            graph_mode = os.environ.get("REPRO_GRAPH", "0") == "1"
        #: Whether the multi-pass drivers should record into launch
        #: graphs (REPRO_GRAPH knob; see repro.core.api.graph).
        self.graph_mode = bool(graph_mode)
        #: The currently recording LaunchGraph, if any.
        self._active_graph = None
        self._scratch_pool = None  # lazily built ScratchPool

    # ------------------------------------------------------------------
    # Deferred launch graphs
    # ------------------------------------------------------------------
    @property
    def graph_enabled(self) -> bool:
        """True when drivers should record into a launch graph: the
        graph knob is on and no recording is already active (drivers
        nested inside another recording fall back to joining nothing —
        the outer graph owns the schedule)."""
        return self.graph_mode and self._active_graph is None

    @property
    def scratch_pool(self):
        """The device-lifetime pool of scratch backing arrays."""
        if self._scratch_pool is None:
            from .graph import ScratchPool

            self._scratch_pool = ScratchPool(self)
        return self._scratch_pool

    def record(self):
        """Open a deferred :class:`~repro.core.api.graph.LaunchGraph`.

        Use as a context manager: launches recorded through
        ``graph.launch(...)`` execute at block exit, scheduled through
        map-chain fusion, scratch pooling and dead-launch elimination::

            with device.record() as graph:
                graph.launch(kernel, out, {"a": src})
            host = out.to_host()

        Recording is not reentrant — a second ``record()`` while one
        graph is open raises.
        """
        from .graph import LaunchGraph

        if self._active_graph is not None:
            raise GpgpuError(
                "a LaunchGraph is already recording on this device "
                "(recording is not reentrant)"
            )
        graph = LaunchGraph(self)
        self._active_graph = graph
        return graph

    def trace(self, path: Optional[str] = None,
              max_events: Optional[int] = None):
        """Record a structured execution trace of everything this
        process runs inside the block::

            with device.trace("out.json"):
                kernel(out, {"a": src})

        Spans cover shader compiles, uploads, draw phases, worker-pool
        dispatch, cache traffic and graph replays (see
        :mod:`repro.perf.trace`).  On clean exit the Chrome
        trace-event JSON is written to ``path`` — load it at
        https://ui.perfetto.dev, or inspect it with
        ``python -m repro.trace view``.  If a recorder is already
        active (``REPRO_TRACE`` set, or an enclosing ``trace()``
        block), the block joins it instead of starting a new one and
        leaves ownership untouched.
        """
        from ...perf import trace as perf_trace

        return perf_trace.session(path, max_events=max_events)

    # ------------------------------------------------------------------
    # Program building
    # ------------------------------------------------------------------
    def build_program(self, vertex_source: str, fragment_source: str) -> int:
        """Compile and link a program, raising ShaderBuildError with
        the info log on failure."""
        ctx = self.ctx
        vs = ctx.glCreateShader(gl.GL_VERTEX_SHADER)
        ctx.glShaderSource(vs, vertex_source)
        ctx.glCompileShader(vs)
        if not ctx.glGetShaderiv(vs, gl.GL_COMPILE_STATUS):
            raise ShaderBuildError(
                "vertex shader failed to compile",
                ctx.glGetShaderInfoLog(vs),
                vertex_source,
            )
        fs = ctx.glCreateShader(gl.GL_FRAGMENT_SHADER)
        ctx.glShaderSource(fs, fragment_source)
        ctx.glCompileShader(fs)
        if not ctx.glGetShaderiv(fs, gl.GL_COMPILE_STATUS):
            raise ShaderBuildError(
                "fragment shader failed to compile",
                ctx.glGetShaderInfoLog(fs),
                fragment_source,
            )
        program = ctx.glCreateProgram()
        ctx.glAttachShader(program, vs)
        ctx.glAttachShader(program, fs)
        ctx.glLinkProgram(program)
        if not ctx.glGetProgramiv(program, gl.GL_LINK_STATUS):
            raise ShaderBuildError(
                "program failed to link",
                ctx.glGetProgramInfoLog(program),
                fragment_source,
            )
        return program

    # ------------------------------------------------------------------
    # Arrays
    # ------------------------------------------------------------------
    def empty(self, length: int, fmt) -> GpuArray:
        """Allocate an uninitialised array."""
        return GpuArray(self, length, fmt)

    def array(self, host: np.ndarray, fmt=None) -> GpuArray:
        """Allocate and upload a host array (format inferred from its
        dtype when not given)."""
        host = np.asarray(host)
        inferred = fmt is None
        if inferred:
            fmt = host.dtype.name
        try:
            fmt = get_format(fmt)
        except ValueError as exc:
            supported = ", ".join(sorted(FORMATS))
            if inferred:
                raise GpgpuError(
                    f"cannot infer a texture format for host dtype "
                    f"'{host.dtype}' — GpuArray supports {supported} "
                    f"(paper §IV byte layouts).  Convert the host array "
                    f"or pass an explicit fmt=, e.g. "
                    f"device.array(host.astype('float32')) or "
                    f"device.array(host, fmt='int32')."
                ) from exc
            raise GpgpuError(
                f"unknown format {fmt!r} for device.array() — choose "
                f"one of {supported} (or a C alias: "
                f"{', '.join(sorted(ALIASES))})"
            ) from exc
        out = GpuArray(self, host.reshape(-1).shape[0], fmt)
        out.upload(host)
        return out

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def kernel(
        self,
        name: str,
        inputs: Sequence[Tuple[str, object]],
        output: object,
        body: str,
        uniforms: Sequence[Tuple[str, str]] = (),
        mode: str = "map",
        preamble: str = "",
        extra_formats: Sequence[object] = (),
    ) -> Kernel:
        """Create and compile a single-output kernel.

        Kernels are memoised on their program-cache key (the hash of
        the generated vertex + fragment sources): a second request for
        the same computation returns the already-compiled Kernel
        object and bumps :attr:`kernel_cache_hits`."""
        source = generate_kernel_source(
            name=name,
            inputs=inputs,
            output_format=output,
            body=body,
            uniforms=uniforms,
            mode=mode,
            preamble=preamble,
            extra_formats=extra_formats,
        )
        key = program_cache_key(source.vertex, source.fragment)
        cached = self._kernel_cache.get(key)
        if cached is not None:
            self.kernel_cache_hits += 1
            return cached
        spec = KernelSpec(
            name=name,
            inputs=tuple((n, get_format(f).name) for n, f in inputs),
            output=get_format(output).name,
            body=body,
            uniforms=tuple(uniforms),
            mode=mode,
            preamble=preamble,
        )
        kernel = Kernel.from_source(self, name, inputs, output, source, spec=spec)
        self._kernel_cache[key] = kernel
        return kernel

    def vertex_kernel(
        self,
        name: str,
        inputs: Sequence[Tuple[str, object]],
        output: object,
        body: str,
        uniforms: Sequence[Tuple[str, str]] = (),
        preamble: str = "",
    ):
        """Create a kernel that computes in the *vertex* stage
        (§III-1's other option) — inputs come from host arrays as
        normalised byte attributes; map semantics only."""
        from .vertex_kernel import VertexKernel

        return VertexKernel(
            self, name, inputs, output, body,
            uniforms=uniforms, preamble=preamble,
        )

    def multi_output_kernel(
        self,
        name: str,
        inputs: Sequence[Tuple[str, object]],
        outputs: Sequence[object],
        body: str,
        uniforms: Sequence[Tuple[str, str]] = (),
        mode: str = "map",
        preamble: str = "",
    ) -> MultiOutputKernel:
        """Create a multi-output kernel (split per challenge 8)."""
        return MultiOutputKernel(
            self, name, inputs, outputs, body,
            uniforms=uniforms, mode=mode, preamble=preamble,
        )

    # ------------------------------------------------------------------
    # Readback (challenge 7)
    # ------------------------------------------------------------------
    def read_framebuffer(self, array: GpuArray) -> np.ndarray:
        """Direct glReadPixels from the array's own framebuffer."""
        ctx = self.ctx
        ctx.glBindFramebuffer(gl.GL_FRAMEBUFFER, array.framebuffer())
        pixels = ctx.glReadPixels(
            0, 0, array.width, array.height, gl.GL_RGBA, gl.GL_UNSIGNED_BYTE
        )
        return pixels

    def copy_texture_and_read(self, array: GpuArray) -> np.ndarray:
        """The fallback readback: render the texture into a scratch
        framebuffer with a pass-through fragment shader, then read."""
        ctx = self.ctx
        if self._copy_program is None:
            self._copy_program = self.build_program(
                PASSTHROUGH_VERTEX_SHADER, COPY_FRAGMENT_SHADER
            )
        scratch = self._scratch_like(array)
        ctx.glUseProgram(self._copy_program)
        ctx.glBindFramebuffer(gl.GL_FRAMEBUFFER, scratch.framebuffer())
        ctx.glViewport(0, 0, array.width, array.height)
        ctx.glActiveTexture(gl.GL_TEXTURE0)
        ctx.glBindTexture(gl.GL_TEXTURE_2D, array.texture)
        ctx.glUniform1i(
            ctx.glGetUniformLocation(self._copy_program, "u_source"), 0
        )
        loc = ctx.glGetAttribLocation(self._copy_program, "a_position")
        ctx.glEnableVertexAttribArray(loc)
        ctx.glVertexAttribPointer(
            loc, 2, gl.GL_FLOAT, False, 0, FULLSCREEN_QUAD_VERTICES
        )
        ctx.glDrawArrays(gl.GL_TRIANGLES, 0, 6)
        pixels = ctx.glReadPixels(
            0, 0, array.width, array.height, gl.GL_RGBA, gl.GL_UNSIGNED_BYTE
        )
        self.fb_resident = None  # scratch now owns the framebuffer
        return pixels

    def _scratch_like(self, array: GpuArray) -> GpuArray:
        key = (array.width, array.height)
        scratch = self._scratch.get(key)
        if scratch is None:
            scratch = GpuArray(
                self, array.texel_count, "uint8",
                shape=(array.width, array.height),
            )
            self._scratch[key] = scratch
        return scratch

    # ------------------------------------------------------------------
    # Performance model
    # ------------------------------------------------------------------
    def wall_time(self) -> GpuTimeline:
        """Modeled application wall time of everything this device has
        executed since the last reset (paper §V methodology: includes
        transfers and kernel compilation)."""
        return gpu_wall_time(self.ctx.stats, self.machine)

    def reset_stats(self) -> None:
        self.ctx.stats.reset()

    # ------------------------------------------------------------------
    def precision_info(self) -> Tuple[Tuple[int, int], int]:
        """glGetShaderPrecisionFormat for highp float — the §IV-E probe
        for the device float format."""
        return self.ctx.glGetShaderPrecisionFormat(
            gl.GL_FRAGMENT_SHADER, gl.GL_HIGH_FLOAT
        )
