"""GpuArray: a 1-D host array living in an RGBA8 texture.

Each logical element occupies one RGBA texel whose four bytes carry
the element's §IV byte layout.  The 1-D index space is folded into a
2-D texture (challenge 3) of power-of-two width so the normalised-
coordinate addressing (challenge 4) is exact.

Reading data back follows the paper's challenge (7): if the array is
the one currently attached to the framebuffer (it was just computed),
``to_host`` reads it directly with ``glReadPixels``; otherwise a
pass-through copy shader first moves the texture into a framebuffer.
The framework tracks residency so well-ordered pipelines never pay for
the copy — the ablation benchmark measures exactly this difference.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...gles2 import enums as gl
from ..numerics.formats import NumericFormat, get_format
from .errors import GpgpuError


def texture_shape(length: int, max_size: int) -> "tuple[int, int]":
    """Choose a (width, height) folding for ``length`` elements.

    Width is the smallest power of two >= sqrt(length) (clamped to the
    device limit); height is whatever is needed to cover the rest.
    """
    if length <= 0:
        raise GpgpuError("array length must be positive")
    width = 1
    while width * width < length and width < max_size:
        width *= 2
    height = (length + width - 1) // width
    if height > max_size:
        raise GpgpuError(
            f"array of {length} elements exceeds the device texture "
            f"limit ({max_size}x{max_size})"
        )
    return width, height


class GpuArray:
    """A typed 1-D array stored in GPU texture memory."""

    def __init__(self, device, length: int, fmt, shape=None):
        self.device = device
        self.length = length
        self.format: NumericFormat = get_format(fmt)
        if shape is not None:
            self.width, self.height = shape
            if self.width * self.height < length:
                raise GpgpuError(
                    f"explicit texture shape {shape} cannot hold "
                    f"{length} elements"
                )
        else:
            self.width, self.height = texture_shape(
                length, device.ctx.limits.max_texture_size
            )
        ctx = device.ctx
        (self.texture,) = ctx.glGenTextures(1)
        ctx.glBindTexture(gl.GL_TEXTURE_2D, self.texture)
        ctx.glTexParameteri(gl.GL_TEXTURE_2D, gl.GL_TEXTURE_MIN_FILTER, gl.GL_NEAREST)
        ctx.glTexParameteri(gl.GL_TEXTURE_2D, gl.GL_TEXTURE_MAG_FILTER, gl.GL_NEAREST)
        ctx.glTexParameteri(gl.GL_TEXTURE_2D, gl.GL_TEXTURE_WRAP_S, gl.GL_CLAMP_TO_EDGE)
        ctx.glTexParameteri(gl.GL_TEXTURE_2D, gl.GL_TEXTURE_WRAP_T, gl.GL_CLAMP_TO_EDGE)
        # Allocate with explicit zero bytes: a graphics texture's
        # "undefined" default (opaque alpha) would read back as -2^24
        # through the int32 unpack.  Fresh arrays read as zero.
        ctx.glTexImage2D(
            gl.GL_TEXTURE_2D, 0, gl.GL_RGBA, self.width, self.height, 0,
            gl.GL_RGBA, gl.GL_UNSIGNED_BYTE,
            np.zeros((self.height, self.width, 4), dtype=np.uint8),
        )
        self._fbo: Optional[int] = None
        self.released = False

    # ------------------------------------------------------------------
    @property
    def texel_count(self) -> int:
        return self.width * self.height

    @property
    def size_vec2(self) -> "tuple[float, float]":
        """The (width, height) pair shaders receive as the size uniform."""
        return float(self.width), float(self.height)

    def _check_alive(self) -> None:
        if self.released:
            raise GpgpuError("GpuArray has been released")

    # ------------------------------------------------------------------
    def upload(self, host: np.ndarray) -> "GpuArray":
        """Pack a host array (§IV layout) and upload it as texels."""
        self._check_alive()
        host = np.asarray(host, dtype=self.format.dtype).reshape(-1)
        if host.shape[0] != self.length:
            raise GpgpuError(
                f"host array has {host.shape[0]} elements, GpuArray holds "
                f"{self.length}"
            )
        texels = self.format.host_pack(host)
        padded = np.zeros((self.texel_count, 4), dtype=np.uint8)
        padded[: self.length] = texels
        ctx = self.device.ctx
        ctx.glBindTexture(gl.GL_TEXTURE_2D, self.texture)
        ctx.glTexImage2D(
            gl.GL_TEXTURE_2D, 0, gl.GL_RGBA, self.width, self.height, 0,
            gl.GL_RGBA, gl.GL_UNSIGNED_BYTE,
            padded.reshape(self.height, self.width, 4),
        )
        if self.device.fb_resident is self:
            self.device.fb_resident = None
        return self

    def to_host(self) -> np.ndarray:
        """Read the array back to CPU memory.

        Direct ``glReadPixels`` when this array is framebuffer-resident
        (challenge 7's "careful kernel ordering" case); otherwise a
        copy shader runs first.
        """
        self._check_alive()
        device = self.device
        if device.fb_resident is self and not device.force_copy_readback:
            texels = device.read_framebuffer(self)
        else:
            texels = device.copy_texture_and_read(self)
        flat = texels.reshape(-1, 4)[: self.length]
        return self.format.host_unpack(flat)

    # ------------------------------------------------------------------
    def framebuffer(self) -> int:
        """The FBO rendering into this array's texture (lazily made)."""
        self._check_alive()
        if self._fbo is None:
            ctx = self.device.ctx
            (self._fbo,) = ctx.glGenFramebuffers(1)
            ctx.glBindFramebuffer(gl.GL_FRAMEBUFFER, self._fbo)
            ctx.glFramebufferTexture2D(
                gl.GL_FRAMEBUFFER, gl.GL_COLOR_ATTACHMENT0,
                gl.GL_TEXTURE_2D, self.texture, 0,
            )
            status = ctx.glCheckFramebufferStatus(gl.GL_FRAMEBUFFER)
            if status != gl.GL_FRAMEBUFFER_COMPLETE:
                raise GpgpuError(f"framebuffer incomplete: {hex(status)}")
        return self._fbo

    def respecify(self, length: int) -> "GpuArray":
        """Re-shape this array in place for ``length`` elements of the
        same format, keeping the GL texture and framebuffer objects.

        The storage is re-specified with explicit zero bytes — exactly
        the state a freshly constructed GpuArray starts in — so a
        pooled scratch array is bit-indistinguishable from a new
        allocation (same contents, same ``texture_upload_bytes``),
        while the texture/FBO object churn of repeated allocation is
        avoided.  Used by the launch-graph scratch pool.
        """
        self._check_alive()
        self.length = length
        self.width, self.height = texture_shape(
            length, self.device.ctx.limits.max_texture_size
        )
        ctx = self.device.ctx
        ctx.glBindTexture(gl.GL_TEXTURE_2D, self.texture)
        ctx.glTexImage2D(
            gl.GL_TEXTURE_2D, 0, gl.GL_RGBA, self.width, self.height, 0,
            gl.GL_RGBA, gl.GL_UNSIGNED_BYTE,
            np.zeros((self.height, self.width, 4), dtype=np.uint8),
        )
        if self.device.fb_resident is self:
            self.device.fb_resident = None
        return self

    def release(self) -> None:
        """Free the GL objects backing this array."""
        if self.released:
            return
        ctx = self.device.ctx
        ctx.glDeleteTextures([self.texture])
        if self._fbo is not None:
            ctx.glDeleteFramebuffers([self._fbo])
        if self.device.fb_resident is self:
            self.device.fb_resident = None
        self.released = True

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GpuArray({self.length} x {self.format.name}, "
            f"{self.width}x{self.height} texels)"
        )
