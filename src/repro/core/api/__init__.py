"""The public GPGPU framework API (paper §III put together)."""

from .buffer import GpuArray, texture_shape
from .device import GpgpuDevice
from .errors import GpgpuError, ShaderBuildError
from .kernel import Kernel, MultiOutputKernel
from .pipeline import Pipeline, PipelineStep

__all__ = [
    "GpgpuDevice",
    "GpuArray",
    "texture_shape",
    "Kernel",
    "MultiOutputKernel",
    "Pipeline",
    "PipelineStep",
    "GpgpuError",
    "ShaderBuildError",
]
