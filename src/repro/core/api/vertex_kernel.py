"""VertexKernel: GPGPU in the vertex stage (§III-1, the other option).

Launching renders one GL_POINTS primitive per output element.  Inputs
are host arrays: the §IV byte layouts are uploaded into a vertex
buffer and fed to the shader as *normalised unsigned-byte attributes*
(GL's c/255 attribute normalisation is exactly texture eq. (1), so the
same unpack GLSL applies).  The VideoCore IV has no vertex texture
units, so this path cannot gather — it exists for map-style kernels
and as the §III-1 comparison point; the E9 bench quantifies why the
fragment path is "the most popular".
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ...gles2 import enums as gl
from ..codegen.vertex_stage import generate_vertex_kernel_source
from ..numerics.formats import get_format
from .buffer import GpuArray
from .errors import GpgpuError


class VertexKernel:
    """A map kernel executed in the vertex processing stage."""

    def __init__(
        self,
        device,
        name: str,
        inputs: Sequence[Tuple[str, object]],
        output: object,
        body: str,
        uniforms: Sequence[Tuple[str, str]] = (),
        preamble: str = "",
    ):
        self.device = device
        self.name = name
        self.input_formats = [(iname, get_format(fmt)) for iname, fmt in inputs]
        self.output_format = get_format(output)
        self.source = generate_vertex_kernel_source(
            name=name,
            inputs=inputs,
            output_format=output,
            body=body,
            uniforms=uniforms,
            preamble=preamble,
        )
        self.program = device.build_program(
            self.source.vertex, self.source.fragment
        )
        ctx = device.ctx
        self._index_location = ctx.glGetAttribLocation(
            self.program, "a_gpgpu_index"
        )
        self._attribute_locations = {
            iname: ctx.glGetAttribLocation(self.program, f"a_{iname}")
            for iname, __ in self.input_formats
        }
        self._out_size_location = ctx.glGetUniformLocation(
            self.program, "u_out_size"
        )
        self._user_uniform_types = dict(self.source.user_uniforms)
        self._uniform_locations = {
            uname: ctx.glGetUniformLocation(self.program, uname)
            for uname, __ in self.source.user_uniforms
        }
        #: VBOs reused across launches (index stream + one per input).
        self._index_vbo: Optional[int] = None
        self._input_vbos: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def __call__(
        self,
        out: GpuArray,
        inputs: Optional[Dict[str, np.ndarray]] = None,
        uniforms: Optional[Dict[str, object]] = None,
    ) -> GpuArray:
        """Launch: one point per element of ``out``.

        ``inputs`` maps input names to *host* numpy arrays (vertex
        shaders cannot read textures on this device)."""
        device = self.device
        ctx = device.ctx
        inputs = inputs or {}
        uniforms = uniforms or {}

        expected = {iname for iname, __ in self.input_formats}
        if expected != set(inputs):
            raise GpgpuError(
                f"vertex kernel '{self.name}' expects inputs "
                f"{sorted(expected)}, got {sorted(inputs)}"
            )
        if out.format.name != self.output_format.name:
            raise GpgpuError(
                f"vertex kernel '{self.name}' writes "
                f"{self.output_format.name}, output array is "
                f"{out.format.name}"
            )
        unknown = set(uniforms) - set(self._user_uniform_types)
        if unknown:
            raise GpgpuError(
                f"unknown uniforms {sorted(unknown)} for vertex kernel "
                f"'{self.name}'"
            )
        n = out.length

        ctx.glUseProgram(self.program)
        ctx.glBindFramebuffer(gl.GL_FRAMEBUFFER, out.framebuffer())
        ctx.glViewport(0, 0, out.width, out.height)

        # Index stream attribute.
        if self._index_vbo is None:
            (self._index_vbo,) = ctx.glGenBuffers(1)
        ctx.glBindBuffer(gl.GL_ARRAY_BUFFER, self._index_vbo)
        index_data = np.arange(n, dtype=np.float32)
        ctx.glBufferData(gl.GL_ARRAY_BUFFER, index_data, gl.GL_STREAM_DRAW)
        ctx.glEnableVertexAttribArray(self._index_location)
        ctx.glVertexAttribPointer(
            self._index_location, 1, gl.GL_FLOAT, False, 0, 0
        )

        # Input byte attributes: §IV layout, normalised like eq. (1).
        for iname, fmt in self.input_formats:
            host = np.asarray(inputs[iname], dtype=fmt.dtype).reshape(-1)
            if host.shape[0] != n:
                raise GpgpuError(
                    f"input '{iname}' has {host.shape[0]} elements, "
                    f"output needs {n}"
                )
            packed = fmt.host_pack(host)  # (n, 4) uint8
            vbo = self._input_vbos.get(iname)
            if vbo is None:
                (vbo,) = ctx.glGenBuffers(1)
                self._input_vbos[iname] = vbo
            ctx.glBindBuffer(gl.GL_ARRAY_BUFFER, vbo)
            ctx.glBufferData(gl.GL_ARRAY_BUFFER, packed, gl.GL_STREAM_DRAW)
            location = self._attribute_locations[iname]
            ctx.glEnableVertexAttribArray(location)
            ctx.glVertexAttribPointer(
                location, 4, gl.GL_UNSIGNED_BYTE, True, 0, 0
            )

        ctx.glUniform2f(self._out_size_location, *out.size_vec2)
        for uname, value in uniforms.items():
            utype = self._user_uniform_types[uname]
            location = self._uniform_locations[uname]
            if utype == "float":
                ctx.glUniform1f(location, float(value))
            elif utype in ("int", "bool"):
                ctx.glUniform1i(location, int(value))
            else:
                raise GpgpuError(
                    f"vertex kernels support float/int/bool uniforms, "
                    f"not {utype}"
                )

        ctx.glDrawArrays(gl.GL_POINTS, 0, n)
        # Leave the byte attributes disabled so later fragment-kernel
        # launches (which reuse low attribute slots) see clean state.
        for location in self._attribute_locations.values():
            ctx.glDisableVertexAttribArray(location)
        ctx.glDisableVertexAttribArray(self._index_location)
        ctx.glBindBuffer(gl.GL_ARRAY_BUFFER, 0)
        device.fb_resident = out
        return out
