"""Deferred launch graphs: record/replay kernel scheduling.

Eager execution pays per-launch GL state churn, a fresh texture per
intermediate, and a full pack→store→unpack round-trip between every
pair of dependent passes.  A :class:`LaunchGraph` defers instead:
launches recorded through :meth:`LaunchGraph.launch` build a dataflow
graph (nodes = launches, edges = GpuArray versions) that is replayed
by a scheduler doing three things the eager path cannot:

* **map-chain fusion** — a producer whose scratch output is consumed
  at matching length by exactly one launch is folded into its
  consumer: one fused program (:mod:`repro.core.codegen.fuse`), one
  draw, no intermediate texture.  The §IV byte transformations are
  lossless, so inserting the explicit per-format round-trip between
  the concatenated stages keeps the fused result bit-identical to
  eager execution on every backend.

* **scratch-array lifetime pooling** — intermediates declared with
  :meth:`LaunchGraph.scratch` draw their storage from a per-device,
  format-keyed :class:`ScratchPool` and return it the moment their
  last reader has run.  A ping-pong ladder that eagerly allocates
  O(log n) textures runs from two pooled backings.

* **dead-launch elimination** — launches whose output no kept array
  and no later launch observes are dropped.

Recording validates every launch eagerly (mistakes surface where they
were made); replay happens when the ``with device.record() as graph:``
block exits.  Any node the scheduler cannot prove fusable — multiple
consumers, non-identity gathers, missing kernel spec, non-"round"
quantization, a failed fused build — simply executes on the ordinary
eager path, so the graph is never less correct than eager, only
cheaper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from ...perf import trace
from ..codegen.fuse import (
    FusedStage,
    compose_chain_cached,
    stage_unfusable_reason,
)
from ..numerics.formats import NumericFormat, get_format
from .buffer import GpuArray, texture_shape
from .errors import GpgpuError, ShaderBuildError
from .kernel import Kernel


class ScratchPool:
    """Device-lifetime pool of scratch backing arrays, keyed by format.

    ``acquire`` recycles a free backing by re-specifying its texture
    storage to the requested length — the same zero-filled
    ``glTexImage2D`` a fresh :class:`GpuArray` performs, so a pooled
    scratch is bit-indistinguishable (contents *and* upload counters)
    from a new allocation while the GL object churn is skipped.
    """

    def __init__(self, device):
        self.device = device
        self._free: Dict[str, List[GpuArray]] = {}

    def acquire(self, length: int, fmt) -> GpuArray:
        fmt = get_format(fmt)
        stats = self.device.ctx.stats
        free = self._free.get(fmt.name)
        if free:
            backing = free.pop()
            backing.respecify(length)
            stats.scratch_reuses += 1
            return backing
        stats.scratch_allocs += 1
        return GpuArray(self.device, length, fmt)

    def release(self, backing: GpuArray) -> None:
        self._free.setdefault(backing.format.name, []).append(backing)

    def free_count(self) -> int:
        return sum(len(backings) for backings in self._free.values())

    def drain(self) -> None:
        """Release the GL objects of every pooled backing."""
        for backings in self._free.values():
            for backing in backings:
                backing.release()
        self._free.clear()


class ScratchArray:
    """A recorded intermediate: length and format fixed at record time,
    storage assigned from the device :class:`ScratchPool` at replay.

    Mirrors the :class:`~repro.core.api.buffer.GpuArray` surface that
    kernels and readback touch, delegating to its pooled backing.  An
    unkept scratch is recycled as soon as its last recorded reader has
    executed; call :meth:`LaunchGraph.keep` on arrays that must
    survive replay (final results read back after the ``with`` block).
    """

    def __init__(self, graph: "LaunchGraph", length: int, fmt):
        if length <= 0:
            raise GpgpuError("array length must be positive")
        self.graph = graph
        self.device = graph.device
        self.length = length
        self.format: NumericFormat = get_format(fmt)
        self.width, self.height = texture_shape(
            length, self.device.ctx.limits.max_texture_size
        )
        self.backing: Optional[GpuArray] = None
        self.kept = False
        self.recycled = False

    # -- GpuArray surface ----------------------------------------------
    @property
    def texel_count(self) -> int:
        return self.width * self.height

    @property
    def size_vec2(self) -> "tuple[float, float]":
        return float(self.width), float(self.height)

    @property
    def texture(self) -> int:
        return self._materialised().texture

    def framebuffer(self) -> int:
        return self._materialised().framebuffer()

    def to_host(self):
        return self._materialised().to_host()

    def release(self) -> None:
        """Return the backing to the scratch pool."""
        if self.backing is not None and not self.recycled:
            self.device.scratch_pool.release(self.backing)
        self.backing = None
        self.recycled = True

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            "recycled" if self.recycled
            else "materialised" if self.backing is not None
            else "recorded"
        )
        return (
            f"ScratchArray({self.length} x {self.format.name}, {state})"
        )

    # ------------------------------------------------------------------
    def _materialised(self) -> GpuArray:
        if self.recycled:
            raise GpgpuError(
                "scratch array was recycled at replay — graph.keep() "
                "arrays that must be read back after the record block"
            )
        if self.backing is None:
            raise GpgpuError(
                "scratch array has no storage yet (the graph has not "
                "been replayed)"
            )
        return self.backing


@dataclass
class LaunchNode:
    """One recorded launch."""

    index: int
    kernel: Kernel
    out: object
    inputs: Dict[str, object]
    uniforms: Dict[str, object]
    out_version: int
    input_versions: Dict[str, int] = field(default_factory=dict)


@dataclass
class ReplayStats:
    """What one replay did — deltas, also accumulated into the
    context's lifetime :class:`~repro.perf.counters.ContextStats`."""

    recorded: int = 0
    executed_draws: int = 0
    fused_draws: int = 0
    elided_draws: int = 0
    dead_launches: int = 0
    scratch_allocs: int = 0
    scratch_reuses: int = 0
    elided_intermediate_bytes: int = 0


class LaunchGraph:
    """A deferred sequence of kernel launches (see module docstring).

    Obtained from :meth:`GpgpuDevice.record`; replays on clean exit of
    the ``with`` block (or via an explicit :meth:`replay`).
    """

    def __init__(self, device):
        self.device = device
        self.nodes: List[LaunchNode] = []
        self.closed = False
        self.stats: Optional[ReplayStats] = None
        self._versions: Dict[int, int] = {}
        self._arrays: Dict[int, object] = {}

    # -- recording -----------------------------------------------------
    def _check_open(self) -> None:
        if self.closed:
            raise GpgpuError("LaunchGraph has already been replayed")

    def scratch(self, length: int, fmt) -> ScratchArray:
        """Declare a pooled intermediate array."""
        self._check_open()
        array = ScratchArray(self, length, fmt)
        # Registered immediately so a kept-but-never-written scratch
        # still materialises (zero-filled) at replay.
        self._arrays.setdefault(id(array), array)
        return array

    def keep(self, array):
        """Mark a scratch array as surviving replay (final results).
        Passing a real GpuArray is a no-op, so drivers can keep
        whatever they are about to return."""
        if isinstance(array, ScratchArray):
            array.kept = True
        return array

    def launch(self, kernel: Kernel, out, inputs=None, uniforms=None):
        """Record one launch.  Validated immediately with the same
        checks as an eager ``kernel(out, inputs, uniforms)`` call;
        execution is deferred to replay."""
        self._check_open()
        if not isinstance(kernel, Kernel):
            raise GpgpuError(
                "graph.launch() records single-output Kernel objects"
            )
        inputs = dict(inputs or {})
        uniforms = dict(uniforms or {})
        kernel.validate_launch(out, inputs, uniforms)
        input_versions: Dict[str, int] = {}
        for name, arr in inputs.items():
            self._arrays.setdefault(id(arr), arr)
            input_versions[name] = self._versions.get(id(arr), 0)
        self._arrays.setdefault(id(out), out)
        version = self._versions.get(id(out), 0) + 1
        self._versions[id(out)] = version
        self.nodes.append(
            LaunchNode(
                index=len(self.nodes),
                kernel=kernel,
                out=out,
                inputs=inputs,
                uniforms=uniforms,
                out_version=version,
                input_versions=input_versions,
            )
        )
        return out

    def __enter__(self) -> "LaunchGraph":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.device._active_graph is self:
            self.device._active_graph = None
        if exc_type is None and not self.closed:
            self.replay()
        return False

    # -- scheduling ----------------------------------------------------
    def replay(self) -> ReplayStats:
        """Schedule and execute the recorded launches."""
        self._check_open()
        self.closed = True
        if self.device._active_graph is self:
            self.device._active_graph = None
        ctx_stats = self.device.ctx.stats
        allocs_before = ctx_stats.scratch_allocs
        reuses_before = ctx_stats.scratch_reuses

        # Manual span (rather than ``with``) so the replay body keeps
        # its indentation; the recorder check keeps the disabled path
        # down to one attribute load.
        recorder = trace.active()
        span_t0 = perf_counter() if recorder is not None else 0.0

        stats = ReplayStats(recorded=len(self.nodes))
        live = self._eliminate_dead(stats)
        chains, fused_member = self._plan_chains(live)
        steps = self._plan_steps(live, chains, fused_member)
        release_at = self._plan_lifetimes(steps, chains)

        for pos, (kind, payload) in enumerate(steps):
            if kind == "node":
                self._execute_node(payload)
                stats.executed_draws += 1
            else:
                chain = payload
                if self._execute_chain(chain):
                    stats.executed_draws += 1
                    stats.fused_draws += 1
                    stats.elided_draws += len(chain) - 1
                    chain_bytes = 0
                    for node in chain[:-1]:
                        inter = node.out
                        # One texture write plus one re-read that
                        # never happened: the elided transfer.
                        chain_bytes += (
                            inter.width * inter.height * 4 * 2
                        )
                        inter.recycled = True
                    stats.elided_intermediate_bytes += chain_bytes
                    trace.instant("graph.fuse", "graph", {
                        "stages": len(chain),
                        "elided_bytes": chain_bytes,
                    })
                else:
                    # Fused build/validation failed: run the chain on
                    # the eager path, then recycle its intermediates.
                    for node in chain:
                        self._execute_node(node)
                        stats.executed_draws += 1
                    for node in chain[:-1]:
                        if isinstance(node.out, ScratchArray):
                            node.out.release()
            for scratch in release_at.get(pos, ()):
                if not scratch.kept and not scratch.recycled:
                    scratch.release()

        # Kept scratch arrays no live launch wrote still honour their
        # keep: materialise them (zero-filled, like a fresh empty()).
        for arr in self._arrays.values():
            if (
                isinstance(arr, ScratchArray)
                and arr.kept
                and arr.backing is None
                and not arr.recycled
            ):
                self._materialise(arr)

        stats.scratch_allocs = ctx_stats.scratch_allocs - allocs_before
        stats.scratch_reuses = ctx_stats.scratch_reuses - reuses_before
        ctx_stats.fused_draws += stats.fused_draws
        ctx_stats.elided_draws += stats.elided_draws
        ctx_stats.dead_launches += stats.dead_launches
        ctx_stats.elided_intermediate_bytes += (
            stats.elided_intermediate_bytes
        )
        if recorder is not None:
            recorder.complete(
                "graph.replay", "graph", span_t0, perf_counter(), {
                    "recorded": stats.recorded,
                    "executed_draws": stats.executed_draws,
                    "fused_draws": stats.fused_draws,
                    "elided_draws": stats.elided_draws,
                    "dead_launches": stats.dead_launches,
                    "scratch_allocs": stats.scratch_allocs,
                    "scratch_reuses": stats.scratch_reuses,
                    "elided_intermediate_bytes": (
                        stats.elided_intermediate_bytes
                    ),
                },
            )
        self.stats = stats
        return stats

    # ------------------------------------------------------------------
    def _eliminate_dead(self, stats: ReplayStats) -> List[LaunchNode]:
        """Backward liveness over (array, version) pairs: a launch is
        live iff its written version is observable — read by a live
        later launch, or the final version of a real / kept array."""
        required: set = set()
        for aid, arr in self._arrays.items():
            final = self._versions.get(aid, 0)
            if final and (
                not isinstance(arr, ScratchArray) or arr.kept
            ):
                required.add((aid, final))
        live: List[LaunchNode] = []
        for node in reversed(self.nodes):
            if (id(node.out), node.out_version) in required:
                live.append(node)
                for name, arr in node.inputs.items():
                    required.add((id(arr), node.input_versions[name]))
            else:
                stats.dead_launches += 1
        live.reverse()
        return live

    def _plan_chains(
        self, live: List[LaunchNode]
    ) -> Tuple[List[List[LaunchNode]], Dict[int, int]]:
        """Find maximal fusable map chains among the live launches."""
        chains: List[List[LaunchNode]] = []
        fused_member: Dict[int, int] = {}
        if self.device.ctx.quantization != "round":
            # The eager intermediate's floor-mode byte conversion is
            # not reproducible in shader float arithmetic across float
            # models; stay on the eager path (see codegen.fuse).
            return chains, fused_member

        readers: Dict[Tuple[int, int], List[Tuple[LaunchNode, str]]] = {}
        for node in live:
            for name, arr in node.inputs.items():
                readers.setdefault(
                    (id(arr), node.input_versions[name]), []
                ).append((node, name))

        by_index = {node.index: node for node in live}
        fuse_next: Dict[int, Tuple[int, str]] = {}
        consumed: set = set()
        for p in live:
            out = p.out
            if not isinstance(out, ScratchArray) or out.kept:
                continue
            if self._versions.get(id(out), 0) != 1:
                continue  # rewritten later — not a simple intermediate
            reads = readers.get((id(out), 1), [])
            if len(reads) != 1:
                continue  # zero or multiple consumers / input slots
            consumer, iname = reads[0]
            if consumer.index <= p.index or consumer.index in consumed:
                continue
            if p.kernel.spec is None or consumer.kernel.spec is None:
                continue
            if out.length != consumer.out.length:
                continue
            if (out.width, out.height) != (
                consumer.out.width,
                consumer.out.height,
            ):
                continue
            if stage_unfusable_reason(p.kernel.spec, []) is not None:
                continue
            if (
                stage_unfusable_reason(consumer.kernel.spec, [iname])
                is not None
            ):
                continue
            fuse_next[p.index] = (consumer.index, iname)
            consumed.add(consumer.index)

        for p in live:
            if p.index not in fuse_next or p.index in consumed:
                continue  # not a chain head
            chain = [p]
            cur = p
            while cur.index in fuse_next:
                consumer = by_index[fuse_next[cur.index][0]]
                candidate = chain + [consumer]
                if not self._chain_inputs_stable(candidate, live):
                    break
                chain = candidate
                cur = consumer
            if len(chain) >= 2:
                cid = len(chains)
                chains.append(chain)
                for node in chain:
                    fused_member[node.index] = cid
        return chains, fused_member

    def _chain_inputs_stable(
        self, stages: List[LaunchNode], live: List[LaunchNode]
    ) -> bool:
        """Fusing executes every stage at the last stage's position:
        each stage's external inputs must still hold the version it
        recorded against, and none may alias the fused output."""
        final = stages[-1]
        chain_set = {node.index for node in stages}
        intermediates = {id(node.out) for node in stages[:-1]}
        for node in stages:
            for arr in node.inputs.values():
                if id(arr) in intermediates:
                    continue
                if arr is final.out:
                    return False
                for writer in live:
                    if writer.index in chain_set:
                        continue
                    if (
                        node.index < writer.index < final.index
                        and writer.out is arr
                    ):
                        return False
        return True

    def _plan_steps(self, live, chains, fused_member):
        steps: List[Tuple[str, object]] = []
        for node in live:
            cid = fused_member.get(node.index)
            if cid is None:
                steps.append(("node", node))
            elif node is chains[cid][-1]:
                steps.append(("chain", chains[cid]))
            # chain heads/middles are folded into the chain step
        return steps

    def _plan_lifetimes(self, steps, chains):
        """Last step position touching each scratch array → the step
        after which it returns to the pool.  Elided intermediates are
        excluded: they are never materialised at all."""
        last_use: Dict[int, int] = {}
        by_id: Dict[int, ScratchArray] = {}
        for pos, (kind, payload) in enumerate(steps):
            if kind == "node":
                touched = [payload.out, *payload.inputs.values()]
            else:
                chain = payload
                intermediates = {id(node.out) for node in chain[:-1]}
                touched = [chain[-1].out]
                for node in chain:
                    for arr in node.inputs.values():
                        if id(arr) not in intermediates:
                            touched.append(arr)
            for arr in touched:
                if isinstance(arr, ScratchArray):
                    by_id[id(arr)] = arr
                    last_use[id(arr)] = pos
        release_at: Dict[int, List[ScratchArray]] = {}
        for aid, pos in last_use.items():
            release_at.setdefault(pos, []).append(by_id[aid])
        return release_at

    # -- execution -----------------------------------------------------
    def _materialise(self, arr):
        if isinstance(arr, ScratchArray):
            if arr.recycled:  # pragma: no cover - scheduler invariant
                raise GpgpuError(
                    "internal: recycled scratch reached execution"
                )
            if arr.backing is None:
                arr.backing = self.device.scratch_pool.acquire(
                    arr.length, arr.format
                )
            return arr.backing
        return arr

    def _execute_node(self, node: LaunchNode) -> None:
        out = self._materialise(node.out)
        inputs = {
            name: self._materialise(arr)
            for name, arr in node.inputs.items()
        }
        node.kernel._execute(out, inputs, node.uniforms)

    def _execute_chain(self, chain: List[LaunchNode]) -> bool:
        """Build and run the fused program for one chain.  Returns
        False (caller falls back to eager) if the fused source fails
        to build or validate."""
        device = self.device
        stages = []
        for pos, node in enumerate(chain):
            inter = []
            for name, arr in node.inputs.items():
                for j, prev in enumerate(chain[:pos]):
                    if arr is prev.out:
                        inter.append((name, j))
                        break
            stages.append(
                FusedStage(
                    spec=node.kernel.spec, intermediates=tuple(inter)
                )
            )
        final = chain[-1]
        try:
            recipe = compose_chain_cached(stages)
            fused = device.kernel(
                name=recipe.name,
                inputs=recipe.inputs,
                output=recipe.output,
                body=recipe.body,
                uniforms=recipe.uniforms,
                mode="gather",
                preamble=recipe.preamble,
                extra_formats=recipe.extra_formats,
            )
        except (ValueError, ShaderBuildError) as exc:
            # Composition or build failure (injected or organic):
            # count the degraded path and replay the chain eagerly —
            # fusion is an optimisation, the eager ladder is always
            # semantically complete.
            from ...perf.counters import fault_path_stats
            from ...testing import faults

            fault_path_stats.fault_fallbacks += 1
            faults.note_swallowed("fuse_compose", exc)
            trace.instant("graph.fallback", "graph", {
                "stages": len(chain), "reason": type(exc).__name__,
            })
            return False
        fused_inputs = {
            fname: self._materialise(chain[si].inputs[orig])
            for si, orig, fname in recipe.input_map
        }
        fused_uniforms = {}
        for si, orig, fname in recipe.uniform_map:
            if orig in chain[si].uniforms:
                fused_uniforms[fname] = chain[si].uniforms[orig]
        out = self._materialise(final.out)
        try:
            fused.validate_launch(out, fused_inputs, fused_uniforms)
        except GpgpuError:
            trace.instant("graph.fallback", "graph", {
                "stages": len(chain), "reason": "validate_launch",
            })
            return False
        fused._execute(out, fused_inputs, fused_uniforms)
        return True
