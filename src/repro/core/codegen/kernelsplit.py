"""Multi-output kernel splitting — challenge (8).

OpenGL ES 2 fragment shaders write a single RGBA output
(``gl_FragColor`` / ``gl_FragData[0]``; ``gl_MaxDrawBuffers == 1``).
A GPGPU kernel with k outputs therefore "needs to be split in more
than one shaders, one per output" (§III-8).

:func:`split_multi_output` performs that transformation textually: the
author writes one body that assigns ``result0 .. result<k-1>``, and
the splitter produces k single-output kernel sources, each executing
the full body but packing only its own output.  The redundant
recomputation is the real cost of the ES 2 restriction — the paper
notes most GPGPU kernels (all of Rodinia) have one output, so in
practice the split is rarely needed.
"""

from __future__ import annotations

import re
from typing import List, Sequence, Tuple

from .templates import KernelSource, generate_kernel_source

_RESULT_RE = re.compile(r"\bresult(\d+)\b")


def count_outputs(body: str) -> int:
    """Number of distinct ``resultN`` variables a body assigns."""
    indices = {int(m.group(1)) for m in _RESULT_RE.finditer(body)}
    if not indices:
        return 0
    expected = set(range(max(indices) + 1))
    missing = expected - indices
    if missing:
        raise ValueError(
            f"multi-output body must use a dense result0..resultN range; "
            f"missing result{sorted(missing)[0]}"
        )
    return len(indices)


def split_multi_output(
    name: str,
    inputs: Sequence[Tuple[str, object]],
    output_formats: Sequence[object],
    body: str,
    uniforms: Sequence[Tuple[str, str]] = (),
    mode: str = "map",
    preamble: str = "",
) -> List[KernelSource]:
    """Split a k-output kernel body into k single-output kernels.

    ``body`` assigns ``result0 .. result{k-1}``; output i of the
    returned list packs ``result{i}`` in ``output_formats[i]``.
    """
    k = count_outputs(body)
    if k == 0:
        raise ValueError("body assigns no resultN variables")
    if len(output_formats) != k:
        raise ValueError(
            f"body produces {k} outputs but {len(output_formats)} "
            "output formats were given"
        )
    sources = []
    for i in range(k):
        declarations = "\n".join(
            f"float result{j} = 0.0;" for j in range(k)
        )
        wrapped = (
            f"{declarations}\n"
            f"{{\n{body.strip()}\n}}\n"
            f"result = result{i};"
        )
        sources.append(
            generate_kernel_source(
                name=f"{name}.out{i}",
                inputs=inputs,
                output_format=output_formats[i],
                body=wrapped,
                uniforms=uniforms,
                mode=mode,
                preamble=preamble,
            )
        )
    return sources
